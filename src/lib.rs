//! # pte — Proper-Temporal-Embedding safety for wireless CPS
//!
//! Umbrella crate for the reproduction of Tan et al., *"Guaranteeing
//! Proper-Temporal-Embedding Safety Rules in Wireless CPS: A Hybrid Formal
//! Modeling Approach"* (DSN 2013).
//!
//! This crate re-exports the workspace members; see the individual crates
//! for the detailed APIs:
//!
//! * [`hybrid`] — hybrid automaton formalism (Section II) + elaboration
//!   methodology (Section IV-C);
//! * [`ode`] — ODE integration substrate;
//! * [`sim`] — hybrid system co-simulation executor;
//! * [`wireless`] — lossy wireless channel substrate (fault model II-B);
//! * [`core`] — the paper's contribution: PTE safety rules, lease design
//!   pattern, conditions c1–c7, parameter synthesis, runtime monitor;
//! * [`tracheotomy`] — the Section V laser tracheotomy case study;
//! * [`verify`] — Monte-Carlo / exhaustive / adversarial verification,
//!   plus the unified `verify::api` session layer (one
//!   `VerificationRequest` front door over every backend, with
//!   portfolio racing, cancellation, and streaming progress);
//! * [`zones`] — symbolic zone-based (DBM) reachability: the fourth
//!   verification backend — a property-agnostic engine plus a
//!   safety-monitor layer — proving PTE safety (or any composed
//!   monitor property) over all real-valued timings and loss fates;
//! * [`contracts`] — compositional assume-guarantee verification:
//!   lease-interface contract automata, a timed refinement checker,
//!   and the `compositional` backend's per-device + pair-network
//!   proof decomposition for chain-12/16/20-scale fleets.
//!
//! ## Quickstart
//!
//! ```
//! use pte::prelude::*;
//!
//! // Synthesize a lease configuration for N = 2 entities that satisfies
//! // Theorem 1's conditions c1..c7, build the pattern system, run it under
//! // heavy packet loss, and check the PTE safety rules on the trace.
//! let cfg = pte::core::pattern::LeaseConfig::case_study();
//! assert!(pte::core::pattern::check_conditions(&cfg).is_satisfied());
//! ```

#![forbid(unsafe_code)]

pub use pte_contracts as contracts;
pub use pte_core as core;
pub use pte_hybrid as hybrid;
pub use pte_ode as ode;
pub use pte_sim as sim;
pub use pte_tracheotomy as tracheotomy;
pub use pte_verify as verify;
pub use pte_wireless as wireless;
pub use pte_zones as zones;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use pte_core::monitor::{check_pte, PteReport};
    pub use pte_core::pattern::{check_conditions, LeaseConfig};
    pub use pte_core::rules::PteSpec;
    pub use pte_hybrid::{Expr, HybridAutomaton, Pred, Time};
    pub use pte_sim::executor::{Executor, ExecutorConfig};
    pub use pte_sim::trace::Trace;
    pub use pte_tracheotomy::{scenario_by_name, scenario_registry, Scenario};
    pub use pte_verify::api::{
        BackendSel, BackendStats, Budget, Query, Verdict, VerificationReport, VerificationRequest,
    };
    pub use pte_zones::{
        check_lease_pattern, check_lease_pattern_with, check_monitored, CancelToken, Extrapolation,
        Limits, Monitor, Progress, SymbolicVerdict,
    };
}
