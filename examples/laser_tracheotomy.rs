//! The paper's case study end-to-end: one seeded 10-minute laser
//! tracheotomy trial under WiFi interference, with a round-by-round
//! timeline of what the ventilator, laser, and patient did.
//!
//! Run with: `cargo run --release --example laser_tracheotomy`

use pte::hybrid::Time;
use pte::tracheotomy::emulation::{run_trial, LossEnvironment, TrialConfig};

fn main() {
    let trial = TrialConfig {
        duration: Time::seconds(600.0),
        mean_on: Time::seconds(30.0),
        mean_off: Some(Time::seconds(18.0)),
        leased: true,
        loss: LossEnvironment::WifiInterference,
        seed: 7,
    };
    println!("laser tracheotomy trial: 10 min, E(Ton)=30s, E(Toff)=18s, WiFi interference, leases armed\n");

    let result = run_trial(&trial).expect("trial executes");

    println!("emissions:          {}", result.emissions);
    println!("PTE failures:       {}", result.failures);
    println!("laser lease stops:  {}", result.evt_to_stop);
    println!("vent lease stops:   {}", result.vent_lease_stops);
    println!(
        "wireless loss:      {:.1}% ({} of {} events dropped)",
        result.loss_rate() * 100.0,
        result.packets_dropped,
        result.packets_sent
    );
    println!();

    // Round-by-round margins, as measured by the monitor.
    println!("per-emission safeguard margins (required: enter >= 3 s, exit >= 1.5 s):");
    for m in &result.report.margins {
        let enter = m
            .enter_lead
            .map(|t| format!("{:.2} s", t.as_secs_f64()))
            .unwrap_or_else(|| "-".into());
        let exit = m
            .exit_lag
            .map(|t| format!("{:.2} s", t.as_secs_f64()))
            .unwrap_or_else(|| "(truncated)".into());
        println!(
            "  emission {}: enter lead {enter}, exit lag {exit}",
            m.interval
        );
    }

    assert!(result.report.is_safe(), "{}", result.report);
    println!(
        "\nall rounds PTE-safe despite {:.0}% event loss.",
        result.loss_rate() * 100.0
    );
}
