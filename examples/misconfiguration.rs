//! What goes wrong when the closed-form conditions are ignored —
//! Section V, scenario 3: setting `T^max_enter,2 = T^max_enter,1`
//! violates condition c5, and the laser can start emitting before the
//! 3-second enter-risky safeguard after the ventilator's pause.
//!
//! Run with: `cargo run --release --example misconfiguration`

use pte::core::pattern::check_conditions;
use pte::tracheotomy::scenarios::misconfigured_c5;

fn main() {
    println!("Section V, scenario 3: T_enter,2 := T_enter,1 (violates c5)\n");

    let (conditions, result) = misconfigured_c5().expect("scenario runs");

    println!("condition check:");
    println!("{conditions}");
    assert!(!conditions.is_satisfied());

    println!("simulation outcome (perfect links, one procedure):");
    println!("  emissions: {}", result.emissions);
    println!("  failures:  {}", result.failures);
    for v in &result.report.violations {
        println!("  violation: {v}");
    }
    assert!(result.failures > 0, "c5 violation must manifest");

    println!();
    println!("For contrast, the published configuration passes every condition:");
    let good = check_conditions(&pte::core::pattern::LeaseConfig::case_study());
    println!("{good}");
    assert!(good.is_satisfied());
    println!("Lesson: the conditions are not bureaucracy — each one guards a");
    println!("specific physical failure mode, and c5 is the enter-risky spacing.");
}
