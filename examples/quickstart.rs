//! Quickstart: synthesize a lease configuration, build the pattern
//! system, run it under heavy packet loss, and check the PTE safety
//! rules on the trace.
//!
//! Run with: `cargo run --release --example quickstart`

use pte::core::monitor::check_pte;
use pte::core::pattern::{build_pattern_system, check_conditions};
use pte::core::rules::PairSpec;
use pte::core::synthesis::{synthesize, SynthesisRequest};
use pte::hybrid::{Root, Time};
use pte::sim::driver::ScriptedDriver;
use pte::sim::executor::{Executor, ExecutorConfig};
use pte::wireless::topology::{bernoulli_star, StarTopology};

fn main() {
    // 1. Describe the requirements: three entities xi1 < xi2 < xi3, with
    //    enter/exit safeguards, a 90 s dwelling bound, and a task that
    //    needs at least 15 s of risky-core time.
    let request = SynthesisRequest {
        n: 3,
        safeguards: vec![
            PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
            PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)),
        ],
        rule1_bound: Time::seconds(90.0),
        min_run_initializer: Time::seconds(15.0),
        t_wait: Time::seconds(2.0),
        margin: Time::seconds(0.5),
    };

    // 2. Synthesize timing constants satisfying Theorem 1's c1..c7.
    let cfg = synthesize(&request).expect("requirements are feasible");
    let conditions = check_conditions(&cfg);
    assert!(conditions.is_satisfied());
    println!("synthesized configuration (all c1..c7 hold):\n{conditions}");
    println!(
        "risky dwelling bound: {} (<= requested {})\n",
        cfg.max_risky_dwelling(),
        request.rule1_bound
    );

    // 3. Build the hybrid system: supervisor + 2 participants + initializer.
    let sys = build_pattern_system(&cfg, true).expect("pattern builds");

    // 4. Run it over a lossy wireless star (30% i.i.d. loss on every link).
    let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).expect("executor");
    let topo = StarTopology::new(0, vec![1, 2, 3]);
    exec.set_bridge(bernoulli_star(&topo, 0.3, 2024));
    exec.add_driver(Box::new(ScriptedDriver::new(
        "operator",
        vec![
            (cfg.t_fb0_min + Time::seconds(1.0), Root::new("cmd_request")),
            (Time::seconds(120.0), Root::new("cmd_request")),
        ],
    )));
    let trace = exec.run_until(Time::seconds(300.0)).expect("runs");

    // 5. Check the PTE safety rules.
    let report = check_pte(&trace, &cfg.pte_spec());
    println!("monitor: {report}");
    for (name, intervals) in &report.intervals {
        let spans: Vec<String> = intervals.iter().map(|iv| format!("{iv}")).collect();
        println!("  {name}: risky {spans:?}");
    }
    assert!(report.is_safe(), "Theorem 1 held, as proved");
    println!("\nPTE safety rules hold under 30% packet loss — leases did their job.");
}
