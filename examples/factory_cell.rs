//! A second domain: an industrial robot cell with an N = 4 PTE chain.
//!
//! A welding robot (the Initializer) may only strike its arc when, in
//! order: the cell's exhaust fan is running in high-power mode (xi1), the
//! light curtain is muted (xi2), and the part clamp is engaged (xi3) —
//! and they must release in exactly the reverse order, with safeguard
//! spacings. All links are wireless and bursty (Gilbert–Elliott loss).
//!
//! Run with: `cargo run --release --example factory_cell`

use pte::core::monitor::check_pte;
use pte::core::pattern::{build_pattern_system, check_conditions};
use pte::core::rules::PairSpec;
use pte::core::synthesis::{synthesize, SynthesisRequest};
use pte::hybrid::Time;
use pte::sim::executor::{Executor, ExecutorConfig};
use pte::tracheotomy::surgeon::Surgeon;
use pte::wireless::loss::GilbertElliott;
use pte::wireless::topology::StarTopology;

fn main() {
    // Requirements: the fan needs 3 s of headroom before the curtain
    // mutes, the curtain 2 s before the clamp, the clamp 1 s before the
    // arc; releases need 2 / 1 / 0.5 s lags. An arc weld needs >= 20 s.
    let request = SynthesisRequest {
        n: 4,
        safeguards: vec![
            PairSpec::new(Time::seconds(3.0), Time::seconds(2.0)),
            PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
            PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)),
        ],
        rule1_bound: Time::seconds(600.0),
        min_run_initializer: Time::seconds(20.0),
        t_wait: Time::seconds(2.0),
        margin: Time::seconds(0.5),
    };
    let cfg = synthesize(&request).expect("feasible cell timing");
    assert!(check_conditions(&cfg).is_satisfied());
    println!("robot cell timing (N = 4), synthesized to satisfy c1..c7:");
    for i in 0..4 {
        println!(
            "  xi{}: enter {:.2}s, run {:.2}s, exit {:.2}s",
            i + 1,
            cfg.t_enter[i].as_secs_f64(),
            cfg.t_run[i].as_secs_f64(),
            cfg.t_exit[i].as_secs_f64()
        );
    }
    println!(
        "  risky dwelling bound: {:.1}s\n",
        cfg.max_risky_dwelling().as_secs_f64()
    );

    // Build and run under bursty wireless loss for 20 minutes; the
    // operator requests welds with exponential idle times.
    let sys = build_pattern_system(&cfg, true).expect("pattern builds");
    let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).expect("executor");
    let topo = StarTopology::new(0, vec![1, 2, 3, 4]);
    exec.set_bridge(topo.wire(99, |_, _, seed| {
        Box::new(GilbertElliott::new(0.08, 0.25, 0.02, 0.9, seed))
    }));
    exec.add_driver(Box::new(Surgeon::new(
        "initializer",
        Time::seconds(45.0),
        Some(Time::seconds(25.0)),
        99,
    )));
    let trace = exec.run_until(Time::seconds(1200.0)).expect("runs");

    let report = check_pte(&trace, &cfg.pte_spec());
    let welds = trace
        .index_of("initializer")
        .map(|i| trace.risky_intervals(i).len())
        .unwrap_or(0);
    println!("20 min of operation under bursty loss:");
    println!("  welds completed: {welds}");
    println!("  events dropped:  {}", trace.drop_count());
    println!("  monitor:         {report}");
    assert!(report.is_safe(), "{report}");
    println!("fan ⊃ curtain ⊃ clamp ⊃ arc embedding held in every round.");
}
