//! The comparison arm: what arbitrary packet loss does to a wireless CPS
//! *without* leases — the paper's "without Lease" trials and the
//! Section V narratives, condensed.
//!
//! Run with: `cargo run --release --example without_lease`

use pte::hybrid::Time;
use pte::tracheotomy::emulation::{run_trial, LossEnvironment, TrialConfig};
use pte::tracheotomy::scenarios::{forgetful_surgeon, lost_cancel};

fn main() {
    println!("=== Targeted narratives (Section V) ===\n");
    for outcome in [
        forgetful_surgeon().expect("scenario runs"),
        lost_cancel().expect("scenario runs"),
    ] {
        println!("scenario: {}", outcome.name);
        println!(
            "  with lease:    {} failures ({} lease rescues)",
            outcome.with_lease.failures,
            outcome.with_lease.evt_to_stop + outcome.with_lease.vent_lease_stops
        );
        let wo = outcome.without_lease.expect("comparison arm present");
        println!("  without lease: {} failures", wo.failures);
        for v in &wo.report.violations {
            println!("    - {v}");
        }
        assert_eq!(outcome.with_lease.failures, 0);
        assert!(wo.failures > 0);
        println!();
    }

    println!("=== Statistical comparison (10 minutes, 40% i.i.d. loss) ===\n");
    for leased in [true, false] {
        let trial = TrialConfig {
            duration: Time::seconds(600.0),
            mean_on: Time::seconds(20.0),
            mean_off: Some(Time::seconds(10.0)),
            leased,
            loss: LossEnvironment::Bernoulli(0.4),
            seed: 11,
        };
        let r = run_trial(&trial).expect("trial executes");
        println!(
            "  {}: {} emissions, {} failures, {:.0}% loss",
            if leased {
                "with lease   "
            } else {
                "without lease"
            },
            r.emissions,
            r.failures,
            r.loss_rate() * 100.0
        );
        if leased {
            assert_eq!(r.failures, 0, "{}", r.report);
        }
    }
    println!("\nSame system, same channel, same surgeon — only the lease timers differ.");
}
