//! Replication of the paper's Table I *shape* as integration tests:
//! short (CI-sized) versions of the four trials across seeds, asserting
//! the qualitative findings the paper reports.

use pte::hybrid::Time;
use pte::tracheotomy::emulation::{run_trial, LossEnvironment, TrialConfig};

fn short_trial(mean_off: f64, leased: bool, seed: u64) -> TrialConfig {
    TrialConfig {
        duration: Time::seconds(600.0),
        mean_on: Time::seconds(30.0),
        mean_off: Some(Time::seconds(mean_off)),
        leased,
        loss: LossEnvironment::WifiInterference,
        seed,
    }
}

#[test]
fn with_lease_rows_have_zero_failures() {
    // "the two rows corresponding to 'with Lease' both have 0 failures."
    for mean_off in [18.0, 6.0] {
        for seed in [42u64, 43, 44] {
            let r = run_trial(&short_trial(mean_off, true, seed)).unwrap();
            assert_eq!(
                r.failures, 0,
                "E(Toff)={mean_off} seed={seed}: {}",
                r.report
            );
        }
    }
}

#[test]
fn without_lease_rows_accumulate_failures() {
    // "the two rows corresponding to 'without Lease' both result in many
    // failures" — across a handful of seeds at trial length, at least one
    // failure each.
    for mean_off in [18.0, 6.0] {
        let mut total = 0usize;
        for seed in [42u64, 43, 44] {
            total += run_trial(&short_trial(mean_off, false, seed))
                .unwrap()
                .failures;
        }
        assert!(total > 0, "E(Toff)={mean_off}: no failures in 3 x 10 min");
    }
}

#[test]
fn emissions_happen_in_both_arms() {
    // The system keeps operating in both arms (the paper's without-lease
    // trials still recorded 11-12 emissions).
    for leased in [true, false] {
        let r = run_trial(&short_trial(18.0, leased, 42)).unwrap();
        assert!(
            r.emissions >= 3,
            "leased={leased}: only {} emissions in 10 min",
            r.emissions
        );
    }
}

#[test]
fn lease_stops_track_toff_distribution() {
    // P(Toff > T_run,2 = 20 s) is e^{-20/18} ≈ 0.33 vs e^{-20/6} ≈ 0.04:
    // lease rescues of the laser must be (weakly) more frequent with the
    // longer mean. Aggregate across seeds to avoid flakiness.
    let mut stops_18 = 0usize;
    let mut stops_6 = 0usize;
    for seed in 42u64..47 {
        stops_18 += run_trial(&short_trial(18.0, true, seed))
            .unwrap()
            .evt_to_stop;
        stops_6 += run_trial(&short_trial(6.0, true, seed))
            .unwrap()
            .evt_to_stop;
    }
    assert!(
        stops_18 > stops_6,
        "evtToStop: E(18) gave {stops_18}, E(6) gave {stops_6}"
    );
}

#[test]
fn interference_actually_disrupts() {
    let r = run_trial(&short_trial(18.0, true, 42)).unwrap();
    assert!(
        r.loss_rate() > 0.03,
        "interference should drop events: {:.3}",
        r.loss_rate()
    );
    assert!(r.packets_sent > 50, "wireless traffic present");
}
