//! Serde round-trips: automata, configurations, specs, and traces must
//! survive serialization (used for archiving experiment artifacts).

use pte::core::pattern::{build_supervisor, LeaseConfig};
use pte::core::rules::PteSpec;
use pte::hybrid::{HybridAutomaton, Root, Time};
use pte::sim::driver::ScriptedDriver;
use pte::sim::executor::{Executor, ExecutorConfig};
use pte::sim::trace::Trace;
use pte::tracheotomy::ventilator::ventilator;

#[test]
fn automaton_round_trips_through_json() {
    let cfg = LeaseConfig::case_study();
    for automaton in [build_supervisor(&cfg).unwrap(), ventilator(&cfg).unwrap()] {
        let json = serde_json::to_string(&automaton).expect("serializes");
        let back: HybridAutomaton = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(automaton, back);
    }
}

#[test]
fn config_and_spec_round_trip() {
    let cfg = LeaseConfig::case_study();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: LeaseConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);

    let spec = cfg.pte_spec();
    let json = serde_json::to_string(&spec).unwrap();
    let back: PteSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}

#[test]
fn trace_round_trips_and_queries_agree() {
    let cfg = LeaseConfig::case_study();
    let sys = pte::core::pattern::build_pattern_system(&cfg, true).unwrap();
    let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).unwrap();
    exec.add_driver(Box::new(ScriptedDriver::new(
        "driver",
        vec![(Time::seconds(14.0), Root::new("cmd_request"))],
    )));
    let trace = exec.run_until(Time::seconds(80.0)).unwrap();

    let json = serde_json::to_string(&trace).expect("serializes");
    let back: Trace = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(trace.events.len(), back.events.len());
    assert_eq!(trace.end_time, back.end_time);
    assert_eq!(trace.risky_intervals(1), back.risky_intervals(1));
    assert_eq!(trace.risky_intervals(2), back.risky_intervals(2));
}
