//! Theorem 2 (design pattern compliance) end-to-end: elaborating pattern
//! automata with independent simple children preserves the PTE guarantee,
//! and the elaboration's location projection maps elaborated trajectories
//! back onto pattern trajectories.

use pte::core::monitor::check_pte;
use pte::core::pattern::{build_participant, LeaseConfig};
use pte::hybrid::automaton::VarKind;
use pte::hybrid::elaboration::{elaborate, elaborate_parallel};
use pte::hybrid::independence::{are_independent, is_simple};
use pte::hybrid::Root;
use pte::hybrid::{Expr, HybridAutomaton, Pred, Time};
use pte::sim::driver::ScriptedDriver;
use pte::sim::executor::{Executor, ExecutorConfig};
use pte::tracheotomy::emulation::{build_case_study, emulation_spec, score_trace};
use pte::tracheotomy::ventilator::standalone_ventilator;
use pte::wireless::loss::BernoulliLoss;
use pte::wireless::topology::StarTopology;

/// A second simple child: a status lamp cycling through colors.
fn lamp() -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("lamp");
    let lum = b.var("Lum", VarKind::Continuous, 0.0);
    let inv = Pred::ge(Expr::var(lum), Expr::c(0.0)).and(Pred::le(Expr::var(lum), Expr::c(1.0)));
    let dim = b.location("LampDim");
    let bright = b.location("LampBright");
    b.invariant(dim, inv.clone());
    b.invariant(bright, inv);
    b.flow(dim, lum, Expr::c(0.5));
    b.flow(bright, lum, Expr::c(-0.5));
    b.edge(dim, bright)
        .guard(Pred::ge(Expr::var(lum), Expr::c(1.0)))
        .urgent()
        .done();
    b.edge(bright, dim)
        .guard(Pred::le(Expr::var(lum), Expr::c(0.0)))
        .urgent()
        .done();
    b.initial(dim, None);
    b.build().expect("lamp builds")
}

#[test]
fn elaborated_case_study_is_pte_safe_under_loss() {
    // The full Section V system (with the elaborated ventilator) under
    // 35% loss, many seeds: Theorem 2 says the elaboration cannot break
    // the pattern's guarantee.
    let cfg = LeaseConfig::case_study();
    for seed in 0..4u64 {
        let automata = build_case_study(&cfg, true).expect("builds");
        let mut exec = Executor::new(automata, ExecutorConfig::default()).expect("executor");
        let topo = StarTopology::new(0, vec![1, 2]);
        exec.set_bridge(topo.wire(seed, |_, _, s| Box::new(BernoulliLoss::new(0.35, s))));
        exec.add_driver(Box::new(pte::tracheotomy::surgeon::Surgeon::new(
            "laser-scalpel",
            Time::seconds(20.0),
            Some(Time::seconds(8.0)),
            seed,
        )));
        let trace = exec.run_until(Time::seconds(400.0)).expect("runs");
        let result = score_trace(&trace);
        assert_eq!(result.failures, 0, "seed {seed}: {}", result.report);
    }
}

#[test]
fn projection_maps_elaborated_trace_to_pattern_locations() {
    // Run the elaborated ventilator alone and project every visited
    // location back to the pattern automaton: the projected itinerary
    // must only use pattern locations and must respect the pattern's
    // edge relation (possibly with stuttering inside the child).
    let cfg = LeaseConfig::case_study();
    let pattern = build_participant(&cfg, 1, Pred::True).expect("pattern builds");
    let plant = standalone_ventilator();
    let el = elaborate_parallel(&pattern, &[("Fall-Back", &plant)]).expect("elaborates");

    let mut stim = HybridAutomaton::builder("stim");
    let c = stim.clock("c");
    let s0 = stim.location("S0");
    let s1 = stim.location("S1");
    stim.also_invariant(s0, Pred::le(Expr::var(c), Expr::c(7.0)));
    stim.edge(s0, s1)
        .guard(Pred::ge(Expr::var(c), Expr::c(7.0)))
        .urgent()
        .emit("evt_xi0_to_xi1_lease_req")
        .done();
    stim.initial(s0, None);
    let stim = stim.build().expect("stim builds");

    let exec = Executor::new(vec![el.automaton.clone(), stim], ExecutorConfig::default())
        .expect("executor");
    let trace = exec.run_until(Time::seconds(60.0)).expect("runs");

    let history = trace.location_history(0);
    assert!(history.len() > 4, "trace has activity");
    let mut projected: Vec<usize> = history
        .iter()
        .map(|(_, loc)| el.projection[loc.0].0)
        .collect();
    projected.dedup(); // collapse stuttering inside the child
                       // The projected itinerary must follow pattern edges.
    for w in projected.windows(2) {
        let (from, to) = (w[0], w[1]);
        assert!(
            pattern
                .edges
                .iter()
                .any(|e| e.src.0 == from && e.dst.0 == to),
            "projected step {} -> {} is not a pattern edge",
            pattern.loc_name(pte::hybrid::LocId(from)),
            pattern.loc_name(pte::hybrid::LocId(to))
        );
    }
    // And it must include the full lease round.
    let names: Vec<&str> = projected
        .iter()
        .map(|i| pattern.loc_name(pte::hybrid::LocId(*i)))
        .collect();
    assert_eq!(
        names,
        vec![
            "Fall-Back",
            "L0",
            "Entering",
            "Risky Core",
            "Exiting 1",
            "Fall-Back"
        ]
    );
}

#[test]
fn double_elaboration_preserves_safety() {
    // Elaborate the participant at Fall-Back with the ventilator AND at
    // Exiting 2 with a lamp — parallel elaboration with two mutually
    // independent simple children (Theorem 2's general form).
    let cfg = LeaseConfig::case_study();
    let pattern = build_participant(&cfg, 1, Pred::True).expect("pattern builds");
    let plant = standalone_ventilator();
    let the_lamp = lamp();
    assert!(is_simple(&the_lamp));
    assert!(are_independent(&pattern, &the_lamp));
    assert!(are_independent(&plant, &the_lamp));

    let el = elaborate_parallel(&pattern, &[("Fall-Back", &plant), ("Exiting 2", &the_lamp)])
        .expect("elaborates");
    let mut vent2 = el.automaton;
    vent2.name = "ventilator".to_string();

    // Swap it into the case study.
    let mut automata = build_case_study(&cfg, true).expect("builds");
    automata[1] = vent2;
    let mut exec = Executor::new(automata, ExecutorConfig::default()).expect("executor");
    let topo = StarTopology::new(0, vec![1, 2]);
    exec.set_bridge(topo.wire(5, |_, _, s| Box::new(BernoulliLoss::new(0.25, s))));
    exec.add_driver(Box::new(ScriptedDriver::new(
        "surgeon",
        vec![
            (Time::seconds(14.0), Root::new("cmd_request")),
            (Time::seconds(45.0), Root::new("cmd_cancel")),
            (Time::seconds(120.0), Root::new("cmd_request")),
        ],
    )));
    let trace = exec.run_until(Time::seconds(300.0)).expect("runs");
    let report = check_pte(&trace, &emulation_spec());
    assert!(report.is_safe(), "{report}");
}

#[test]
fn elaboration_rejects_unsafe_substitutions() {
    // Guard rails of the methodology: dependent or non-simple children
    // must be rejected, because Theorem 2's proof needs both properties.
    let cfg = LeaseConfig::case_study();
    let pattern = build_participant(&cfg, 1, Pred::True).expect("pattern builds");

    // Dependent child: reuses the pattern's clock variable name `c`.
    let mut bad = HybridAutomaton::builder("bad");
    bad.clock("c");
    let l = bad.location("BadLoc");
    bad.initial(l, None);
    let bad = bad.build().expect("builds");
    let fb = pattern.loc_by_name("Fall-Back").unwrap();
    assert!(elaborate(&pattern, fb, &bad).is_err());

    // Non-simple child: nonzero initial data.
    let mut ns = HybridAutomaton::builder("ns");
    ns.var("y", VarKind::Continuous, 0.7);
    let l = ns.location("NsLoc");
    ns.initial(l, None);
    let ns = ns.build().expect("builds");
    assert!(elaborate(&pattern, fb, &ns).is_err());
}
