//! Cross-crate property-based tests: the paper's guarantees as random
//! properties over configurations, loss processes, and schedules.

use proptest::prelude::*;
use pte::core::monitor::check_pte;
use pte::core::pattern::{build_pattern_system, check_conditions};
use pte::core::rules::PairSpec;
use pte::core::synthesis::{synthesize, SynthesisRequest};
use pte::hybrid::{Root, Time};
use pte::sim::driver::ScriptedDriver;
use pte::sim::executor::{Executor, ExecutorConfig};
use pte::wireless::topology::{bernoulli_star, StarTopology};

/// Strategy: a feasible synthesis request for small chains.
fn requests() -> impl Strategy<Value = SynthesisRequest> {
    (
        2usize..4,
        200u64..2_000,
        100u64..1_000,
        2u64..20,
        500u64..3_000,
    )
        .prop_map(|(n, risky_ms, safe_ms, run_s, wait_ms)| SynthesisRequest {
            n,
            safeguards: (0..n - 1)
                .map(|_| PairSpec::new(Time::millis(risky_ms as f64), Time::millis(safe_ms as f64)))
                .collect(),
            rule1_bound: Time::seconds(100_000.0),
            min_run_initializer: Time::seconds(run_s as f64),
            t_wait: Time::millis(wait_ms as f64),
            margin: Time::millis(150.0),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 1 as a property: any synthesized configuration, any loss
    /// probability, any seed — the leased system is PTE-safe.
    #[test]
    fn any_synthesized_config_is_safe_under_any_loss(
        req in requests(),
        p10 in 0u32..10,
        seed in 0u64..1_000,
    ) {
        let cfg = synthesize(&req).expect("synthesis feasible");
        prop_assert!(check_conditions(&cfg).is_satisfied());

        let sys = build_pattern_system(&cfg, true).expect("pattern builds");
        let n = cfg.n;
        let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).expect("executor");
        let topo = StarTopology::new(0, (1..=n).collect());
        exec.set_bridge(bernoulli_star(&topo, p10 as f64 / 10.0, seed));

        // One request plus a mid-run cancel attempt.
        let t_req = cfg.t_fb0_min + Time::seconds(0.5);
        exec.add_driver(Box::new(ScriptedDriver::new(
            "driver",
            vec![
                (t_req, Root::new("cmd_request")),
                (t_req + cfg.t_enter[n - 1] + cfg.t_run[n - 1] * 0.5,
                 Root::new("cmd_cancel")),
            ],
        )));
        let horizon = cfg.max_risky_dwelling() * 2.5 + cfg.t_fb0_min;
        let trace = exec.run_until(horizon).expect("runs");
        let report = check_pte(&trace, &cfg.pte_spec());
        prop_assert!(report.is_safe(), "{}", report);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The executor's timers are exact: risky intervals of the
    /// deterministic happy path land on the closed-form instants.
    #[test]
    fn happy_path_timing_is_exact(seed in 0u64..50) {
        let _ = seed; // schedule is deterministic; seed exercises rebuilds
        let cfg = pte::core::pattern::LeaseConfig::case_study();
        let sys = build_pattern_system(&cfg, true).expect("builds");
        let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).expect("executor");
        exec.add_driver(Box::new(ScriptedDriver::new(
            "driver",
            vec![(Time::seconds(14.0), Root::new("cmd_request"))],
        )));
        let trace = exec.run_until(Time::seconds(70.0)).expect("runs");

        // Grants cascade at t = 14; participant risky at 14 + 3 = 17,
        // initializer risky at 14 + 10 = 24 (lease expiry at 44, exit 45.5).
        let p = trace.index_of("participant1").unwrap();
        let i = trace.index_of("initializer").unwrap();
        let pv = trace.risky_intervals(p);
        let iv = trace.risky_intervals(i);
        prop_assert_eq!(pv.len(), 1);
        prop_assert_eq!(iv.len(), 1);
        prop_assert!(pv[0].start.approx_eq(Time::seconds(17.0), Time::seconds(1e-4)));
        prop_assert!(iv[0].start.approx_eq(Time::seconds(24.0), Time::seconds(1e-4)));
        prop_assert!(iv[0].end.approx_eq(Time::seconds(45.5), Time::seconds(1e-4)));
        // Measured enter lead = 7 s (c5's nominal value).
        let report = check_pte(&trace, &cfg.pte_spec());
        prop_assert!(report.is_safe());
        let lead = report.worst_enter_lead().unwrap();
        prop_assert!(lead.approx_eq(Time::seconds(7.0), Time::seconds(1e-3)));
    }
}

/// Builds a synthetic two-entity trace from randomized interval layouts
/// and feeds it to both monitors.
fn online_offline_agree(windows: Vec<(f64, f64, f64, f64)>) -> Result<(), TestCaseError> {
    use pte::core::online::OnlineMonitor;
    use pte::hybrid::LocId;
    use pte::sim::trace::{AutMeta, Trace, TraceEvent};

    let spec = pte::core::rules::PteSpec::uniform(
        vec!["outer".into(), "inner".into()],
        Time::seconds(40.0),
        vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
    );

    // Lay out rounds 200 s apart so they never overlap.
    let mut events = vec![
        TraceEvent::Init {
            t: Time::ZERO,
            aut: 0,
            loc: LocId(0),
        },
        TraceEvent::Init {
            t: Time::ZERO,
            aut: 1,
            loc: LocId(0),
        },
    ];
    let mut changes: Vec<(Time, usize, bool)> = Vec::new();
    for (k, (o_start, o_len, i_off, i_len)) in windows.iter().enumerate() {
        let base = k as f64 * 200.0;
        let os = base + o_start;
        let oe = os + o_len;
        let is = os + i_off;
        let ie = (is + i_len).min(base + 199.0);
        changes.push((Time::seconds(os), 0, true));
        changes.push((Time::seconds(oe), 0, false));
        changes.push((Time::seconds(is), 1, true));
        changes.push((Time::seconds(ie), 1, false));
    }
    changes.sort_by_key(|a| a.0);
    for (t, aut, risky) in &changes {
        events.push(TraceEvent::Transition {
            t: *t,
            aut: *aut,
            from: LocId(if *risky { 0 } else { 1 }),
            to: LocId(if *risky { 1 } else { 0 }),
            trigger: None,
        });
    }
    events.sort_by_key(|a| a.time());
    let end_time = Time::seconds(windows.len() as f64 * 200.0 + 100.0);
    let trace = Trace {
        meta: vec![
            AutMeta {
                name: "outer".into(),
                loc_names: vec!["S".into(), "R".into()],
                risky: vec![false, true],
                var_names: vec![],
            },
            AutMeta {
                name: "inner".into(),
                loc_names: vec!["S".into(), "R".into()],
                risky: vec![false, true],
                var_names: vec![],
            },
        ],
        events,
        samples: vec![],
        end_time,
    };

    let offline = check_pte(&trace, &spec);

    let mut online = OnlineMonitor::new(spec);
    for (t, aut, risky) in &changes {
        online.set_risky(*aut, *t, *risky);
    }
    online.advance(end_time);

    // Same verdict always. (Counts can differ on partially-covered inner
    // intervals: the online monitor reports the bad enter margin AND the
    // later abandonment, the offline monitor folds both into NotCovered.)
    prop_assert_eq!(
        offline.is_safe(),
        online.is_safe(),
        "offline: {:?}\nonline: {:?}",
        offline.violations,
        online.violations()
    );
    if offline.is_safe() {
        prop_assert_eq!(online.violations().len(), 0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The online monitor agrees with the offline monitor on complete
    /// traces (verdict and violation count), across randomized interval
    /// layouts that hit every rule: good embeddings, thin margins,
    /// uncovered inners, over-long dwellings.
    #[test]
    fn online_and_offline_monitors_agree(
        windows in proptest::collection::vec(
            (5.0f64..20.0, 10.0f64..60.0, 1.0f64..12.0, 5.0f64..55.0),
            1..5,
        ),
    ) {
        online_offline_agree(windows)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Determinism: identical seeds give identical traces (event counts
    /// and risky intervals), across loss probabilities.
    #[test]
    fn runs_are_deterministic(p10 in 0u32..10, seed in 0u64..100) {
        let run = || {
            let cfg = pte::core::pattern::LeaseConfig::case_study();
            let sys = build_pattern_system(&cfg, true).expect("builds");
            let mut exec =
                Executor::new(sys.automata, ExecutorConfig::default()).expect("executor");
            let topo = StarTopology::new(0, vec![1, 2]);
            exec.set_bridge(bernoulli_star(&topo, p10 as f64 / 10.0, seed));
            exec.add_driver(Box::new(ScriptedDriver::new(
                "driver",
                vec![(Time::seconds(14.0), Root::new("cmd_request"))],
            )));
            let trace = exec.run_until(Time::seconds(120.0)).expect("runs");
            (
                trace.events.len(),
                trace.risky_intervals(1),
                trace.risky_intervals(2),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}
