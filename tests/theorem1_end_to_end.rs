//! End-to-end checks of Theorem 1 across chain lengths and loss regimes:
//! a condition-satisfying, leased pattern system satisfies the PTE safety
//! rules under every loss process we can throw at it, and the
//! quantitative bounds of the theorem hold on the measured trace.

use pte::core::monitor::check_pte;
use pte::core::pattern::{build_pattern_system, check_conditions, LeaseConfig};
use pte::core::rules::PairSpec;
use pte::core::synthesis::{synthesize, SynthesisRequest};
use pte::core::theorem;
use pte::hybrid::Time;
use pte::sim::executor::{Executor, ExecutorConfig};
use pte::sim::trace::Trace;
use pte::tracheotomy::surgeon::Surgeon;
use pte::wireless::loss::{BernoulliLoss, GilbertElliott, LossModel};
use pte::wireless::topology::StarTopology;

fn synth(n: usize) -> LeaseConfig {
    synthesize(&SynthesisRequest {
        n,
        safeguards: (0..n - 1)
            .map(|_| PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)))
            .collect(),
        rule1_bound: Time::seconds(100_000.0),
        min_run_initializer: Time::seconds(8.0),
        t_wait: Time::seconds(1.5),
        margin: Time::seconds(0.3),
    })
    .expect("synthesis feasible")
}

fn run_system(
    cfg: &LeaseConfig,
    leased: bool,
    make_loss: impl FnMut(usize, usize, u64) -> Box<dyn LossModel>,
    seed: u64,
    horizon: f64,
) -> Trace {
    let sys = build_pattern_system(cfg, leased).expect("pattern builds");
    let n = cfg.n;
    let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).expect("executor");
    let topo = StarTopology::new(0, (1..=n).collect());
    exec.set_bridge(topo.wire(seed, make_loss));
    exec.add_driver(Box::new(Surgeon::new(
        "initializer",
        Time::seconds(20.0),
        Some(Time::seconds(6.0)),
        seed,
    )));
    exec.run_until(Time::seconds(horizon)).expect("runs")
}

#[test]
fn leased_chains_safe_under_bernoulli_loss() {
    for n in [2usize, 3, 5] {
        let cfg = synth(n);
        assert!(check_conditions(&cfg).is_satisfied());
        for seed in [1u64, 2, 3] {
            let trace = run_system(
                &cfg,
                true,
                |_, _, s| Box::new(BernoulliLoss::new(0.3, s)),
                seed,
                400.0,
            );
            let report = check_pte(&trace, &cfg.pte_spec());
            assert!(report.is_safe(), "n={n} seed={seed}: {report}");
        }
    }
}

#[test]
fn leased_chain_safe_under_bursty_loss() {
    let cfg = synth(3);
    for seed in [10u64, 11] {
        let trace = run_system(
            &cfg,
            true,
            |_, _, s| Box::new(GilbertElliott::new(0.1, 0.2, 0.02, 0.95, s)),
            seed,
            400.0,
        );
        let report = check_pte(&trace, &cfg.pte_spec());
        assert!(report.is_safe(), "seed={seed}: {report}");
    }
}

#[test]
fn theorem_bounds_hold_on_measured_trace() {
    let cfg = synth(3);
    let bounds = theorem::bounds(&cfg);
    let trace = run_system(
        &cfg,
        true,
        |_, _, s| Box::new(BernoulliLoss::new(0.2, s)),
        42,
        600.0,
    );
    // Global and per-entity risky dwelling bounds.
    for (k, name) in (1..=cfg.n).map(|i| (i - 1, cfg.entity_name(i))) {
        let idx = trace.index_of(&name).expect("entity in trace");
        for iv in trace.risky_intervals(idx) {
            assert!(
                iv.duration() <= bounds.risky_dwelling + Time::seconds(1e-4),
                "{name}: {} exceeds global bound {}",
                iv.duration(),
                bounds.risky_dwelling
            );
            assert!(
                iv.duration() <= bounds.per_entity_risky[k] + Time::seconds(1e-4),
                "{name}: {} exceeds per-entity bound {}",
                iv.duration(),
                bounds.per_entity_risky[k]
            );
        }
    }
}

#[test]
fn unleased_chain_fails_under_loss() {
    let cfg = synth(2);
    let mut any_failure = false;
    for seed in 0..6u64 {
        let trace = run_system(
            &cfg,
            false,
            |_, _, s| Box::new(BernoulliLoss::new(0.45, s)),
            seed,
            600.0,
        );
        let report = check_pte(&trace, &cfg.pte_spec());
        if !report.is_safe() {
            any_failure = true;
            break;
        }
    }
    assert!(
        any_failure,
        "45% loss must break the unleased system within 6 seeds"
    );
}

#[test]
fn pte_order_maintained_in_five_entity_chain() {
    // The full order xi1 < ... < xi5: every inner interval nests in the
    // adjacent outer one; transitively the outermost covers everything.
    let cfg = synth(5);
    let trace = run_system(
        &cfg,
        true,
        |_, _, s| Box::new(BernoulliLoss::new(0.1, s)),
        9,
        500.0,
    );
    let report = check_pte(&trace, &cfg.pte_spec());
    assert!(report.is_safe(), "{report}");
    // If the initializer ever ran, the whole chain must have run.
    let init_idx = trace.index_of("initializer").unwrap();
    if !trace.risky_intervals(init_idx).is_empty() {
        for i in 1..cfg.n {
            let idx = trace.index_of(&cfg.entity_name(i)).unwrap();
            assert!(
                !trace.risky_intervals(idx).is_empty(),
                "outer entity {i} must have entered risky"
            );
        }
    }
}
