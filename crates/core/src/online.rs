//! Online (incremental) PTE monitoring.
//!
//! [`check_pte`](crate::monitor::check_pte) scores a complete trace after
//! the fact; an embedded safety supervisor needs the same verdicts *as
//! they happen*. [`OnlineMonitor`] consumes location changes one at a
//! time plus periodic time advances and raises each violation at the
//! earliest instant it is decidable:
//!
//! * **Rule 1** fires the moment an entity's continuous risky dwelling
//!   passes its bound (on an [`OnlineMonitor::advance`] tick or a
//!   transition) — not when the dwelling eventually ends;
//! * **p2 / p1** fire when an inner entity enters risky without the outer
//!   being risky, or with an insufficient enter lead;
//! * **p2 (tail) / p3** fire when the outer exits risky while the inner
//!   is still risky, or sooner than `T^min_safe` after the inner exited.
//!
//! Verdicts agree with the offline monitor on complete traces (see the
//! equivalence property test in `tests/properties.rs`), with one
//! documented difference: the offline monitor skips exit-lag judgement
//! for intervals truncated by the end of a trace, while the online
//! monitor simply hasn't decided them yet.

use crate::monitor::Violation;
use crate::rules::PteSpec;
use pte_hybrid::Time;
use pte_sim::trace::Interval;

/// Per-entity incremental state.
#[derive(Clone, Debug)]
struct EntityState {
    /// Currently dwelling in risky locations?
    risky_since: Option<Time>,
    /// Rule-1 violation already reported for the current dwelling.
    rule1_reported: bool,
    /// Time the entity last *exited* risky (for p3 checks of its inner
    /// neighbour — not needed today but kept for symmetric queries).
    last_exit: Option<Time>,
    /// Inner-neighbour exits that still await this entity's exit to judge
    /// the exit lag (p3): the inner interval that ended.
    pending_exit_checks: Vec<Interval>,
}

impl EntityState {
    fn new() -> EntityState {
        EntityState {
            risky_since: None,
            rule1_reported: false,
            last_exit: None,
            pending_exit_checks: Vec::new(),
        }
    }
}

/// Incremental PTE monitor.
///
/// Feed it [`OnlineMonitor::set_risky`] calls whenever an ordered
/// entity's risky/safe status changes, and [`OnlineMonitor::advance`]
/// ticks so Rule 1 can fire mid-dwelling. Violations accumulate in
/// [`OnlineMonitor::violations`].
#[derive(Clone, Debug)]
pub struct OnlineMonitor {
    spec: PteSpec,
    states: Vec<EntityState>,
    violations: Vec<Violation>,
    now: Time,
}

impl OnlineMonitor {
    /// Creates a monitor for a specification (all entities start safe).
    pub fn new(spec: PteSpec) -> OnlineMonitor {
        let n = spec.entities.len();
        OnlineMonitor {
            spec,
            states: (0..n).map(|_| EntityState::new()).collect(),
            violations: Vec::new(),
            now: Time::ZERO,
        }
    }

    /// All violations raised so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` while no violation has been raised.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Current virtual time of the monitor.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances time and checks in-progress dwellings against Rule 1.
    pub fn advance(&mut self, now: Time) {
        debug_assert!(now >= self.now, "time must be monotone");
        self.now = now;
        for (k, st) in self.states.iter_mut().enumerate() {
            if let Some(start) = st.risky_since {
                if !st.rule1_reported
                    && now - start > self.spec.rule1_bounds[k] + self.spec.tolerance
                {
                    st.rule1_reported = true;
                    self.violations.push(Violation::Rule1 {
                        entity: self.spec.entities[k].clone(),
                        interval: Interval {
                            start,
                            end: now,
                            truncated: true,
                        },
                        bound: self.spec.rule1_bounds[k],
                    });
                }
            }
        }
    }

    /// Index of an entity by name.
    pub fn entity_index(&self, name: &str) -> Option<usize> {
        self.spec.entities.iter().position(|e| e == name)
    }

    /// Reports that entity `k` (spec index) became risky / safe at `t`.
    /// Redundant reports (same status) are ignored.
    pub fn set_risky(&mut self, k: usize, t: Time, risky: bool) {
        self.advance(t);
        let tol = self.spec.tolerance;
        match (risky, self.states[k].risky_since) {
            (true, None) => {
                // ENTER risky.
                self.states[k].risky_since = Some(t);
                self.states[k].rule1_reported = false;
                // p2/p1 against the outer neighbour (entity k-1).
                if k > 0 {
                    let pair = self.spec.pairs[k - 1];
                    match self.states[k - 1].risky_since {
                        None => self.violations.push(Violation::NotCovered {
                            outer: self.spec.entities[k - 1].clone(),
                            inner: self.spec.entities[k].clone(),
                            interval: Interval {
                                start: t,
                                end: t,
                                truncated: true,
                            },
                        }),
                        Some(outer_start) => {
                            let lead = t - outer_start;
                            if lead + tol < pair.t_min_risky {
                                self.violations.push(Violation::EnterMargin {
                                    outer: self.spec.entities[k - 1].clone(),
                                    inner: self.spec.entities[k].clone(),
                                    required: pair.t_min_risky,
                                    actual: lead,
                                    interval: Interval {
                                        start: t,
                                        end: t,
                                        truncated: true,
                                    },
                                });
                            }
                        }
                    }
                }
            }
            (false, Some(start)) => {
                // EXIT risky.
                let interval = Interval {
                    start,
                    end: t,
                    truncated: false,
                };
                self.states[k].risky_since = None;
                self.states[k].last_exit = Some(t);
                // Late Rule-1 (if no advance tick crossed the bound first).
                if !self.states[k].rule1_reported
                    && interval.duration() > self.spec.rule1_bounds[k] + tol
                {
                    self.violations.push(Violation::Rule1 {
                        entity: self.spec.entities[k].clone(),
                        interval,
                        bound: self.spec.rule1_bounds[k],
                    });
                }
                // p2 tail: the inner neighbour (k+1) must not still be
                // risky when this (outer) entity exits.
                if k + 1 < self.states.len() {
                    if let Some(inner_start) = self.states[k + 1].risky_since {
                        self.violations.push(Violation::NotCovered {
                            outer: self.spec.entities[k].clone(),
                            inner: self.spec.entities[k + 1].clone(),
                            interval: Interval {
                                start: inner_start,
                                end: t,
                                truncated: true,
                            },
                        });
                    }
                }
                // p3: judge pending inner exits against this outer exit.
                if k + 1 < self.states.len() {
                    let pair = self.spec.pairs[k];
                    let pending = std::mem::take(&mut self.states[k].pending_exit_checks);
                    for inner_iv in pending {
                        let lag = t - inner_iv.end;
                        if lag + tol < pair.t_min_safe {
                            self.violations.push(Violation::ExitMargin {
                                outer: self.spec.entities[k].clone(),
                                inner: self.spec.entities[k + 1].clone(),
                                required: pair.t_min_safe,
                                actual: lag,
                                interval: inner_iv,
                            });
                        }
                    }
                }
                // Queue this exit for the outer neighbour's p3 judgement.
                if k > 0 {
                    self.states[k - 1].pending_exit_checks.push(interval);
                }
            }
            // Redundant report: ignore.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{PairSpec, PteSpec};

    fn spec() -> PteSpec {
        PteSpec::uniform(
            vec!["outer".into(), "inner".into()],
            Time::seconds(60.0),
            vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
        )
    }

    fn t(s: f64) -> Time {
        Time::seconds(s)
    }

    #[test]
    fn clean_round_is_safe() {
        let mut m = OnlineMonitor::new(spec());
        m.set_risky(0, t(10.0), true);
        m.set_risky(1, t(15.0), true);
        m.set_risky(1, t(30.0), false);
        m.set_risky(0, t(40.0), false);
        m.advance(t(100.0));
        assert!(m.is_safe(), "{:?}", m.violations());
    }

    #[test]
    fn rule1_fires_mid_dwelling() {
        let mut m = OnlineMonitor::new(spec());
        m.set_risky(0, t(0.0), true);
        m.advance(t(59.0));
        assert!(m.is_safe());
        m.advance(t(61.0));
        assert_eq!(m.violations().len(), 1, "fires before the dwelling ends");
        assert!(matches!(m.violations()[0], Violation::Rule1 { .. }));
        // Not duplicated by later ticks or the eventual exit.
        m.advance(t(90.0));
        m.set_risky(0, t(95.0), false);
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn uncovered_entry_fires_immediately() {
        let mut m = OnlineMonitor::new(spec());
        m.set_risky(1, t(5.0), true);
        assert_eq!(m.violations().len(), 1);
        assert!(matches!(m.violations()[0], Violation::NotCovered { .. }));
    }

    #[test]
    fn enter_margin_checked_on_inner_entry() {
        let mut m = OnlineMonitor::new(spec());
        m.set_risky(0, t(10.0), true);
        m.set_risky(1, t(11.0), true); // lead 1 < 3
        assert_eq!(m.violations().len(), 1);
        assert!(matches!(m.violations()[0], Violation::EnterMargin { .. }));
    }

    #[test]
    fn outer_exit_while_inner_risky_fires() {
        let mut m = OnlineMonitor::new(spec());
        m.set_risky(0, t(10.0), true);
        m.set_risky(1, t(15.0), true);
        m.set_risky(0, t(20.0), false); // abandons the inner
        assert!(m
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::NotCovered { .. })));
    }

    #[test]
    fn exit_margin_judged_at_outer_exit() {
        let mut m = OnlineMonitor::new(spec());
        m.set_risky(0, t(10.0), true);
        m.set_risky(1, t(15.0), true);
        m.set_risky(1, t(30.0), false);
        m.set_risky(0, t(30.5), false); // lag 0.5 < 1.5
        assert_eq!(m.violations().len(), 1);
        match &m.violations()[0] {
            Violation::ExitMargin { actual, .. } => {
                assert!(actual.approx_eq(t(0.5), t(1e-9)));
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn multiple_rounds_independent() {
        let mut m = OnlineMonitor::new(spec());
        for k in 0..3 {
            let base = k as f64 * 100.0;
            m.set_risky(0, t(base + 10.0), true);
            m.set_risky(1, t(base + 15.0), true);
            m.set_risky(1, t(base + 30.0), false);
            m.set_risky(0, t(base + 40.0), false);
        }
        assert!(m.is_safe());
    }

    #[test]
    fn redundant_reports_ignored() {
        let mut m = OnlineMonitor::new(spec());
        m.set_risky(0, t(10.0), true);
        m.set_risky(0, t(11.0), true); // redundant
        m.set_risky(0, t(20.0), false);
        m.set_risky(0, t(21.0), false); // redundant
        assert!(m.is_safe());
    }

    #[test]
    fn entity_index_lookup() {
        let m = OnlineMonitor::new(spec());
        assert_eq!(m.entity_index("outer"), Some(0));
        assert_eq!(m.entity_index("inner"), Some(1));
        assert_eq!(m.entity_index("ghost"), None);
    }

    #[test]
    fn three_entity_chain_pending_checks() {
        let s = PteSpec::uniform(
            vec!["a".into(), "b".into(), "c".into()],
            Time::seconds(100.0),
            vec![
                PairSpec::new(Time::seconds(1.0), Time::seconds(1.0)),
                PairSpec::new(Time::seconds(1.0), Time::seconds(1.0)),
            ],
        );
        let mut m = OnlineMonitor::new(s);
        m.set_risky(0, t(0.0), true);
        m.set_risky(1, t(2.0), true);
        m.set_risky(2, t(4.0), true);
        m.set_risky(2, t(10.0), false);
        m.set_risky(1, t(12.0), false);
        m.set_risky(0, t(14.0), false);
        assert!(m.is_safe(), "{:?}", m.violations());

        // Now with a bad middle exit lag.
        let s = PteSpec::uniform(
            vec!["a".into(), "b".into(), "c".into()],
            Time::seconds(100.0),
            vec![
                PairSpec::new(Time::seconds(1.0), Time::seconds(1.0)),
                PairSpec::new(Time::seconds(1.0), Time::seconds(1.0)),
            ],
        );
        let mut m = OnlineMonitor::new(s);
        m.set_risky(0, t(0.0), true);
        m.set_risky(1, t(2.0), true);
        m.set_risky(2, t(4.0), true);
        m.set_risky(2, t(10.0), false);
        m.set_risky(1, t(10.5), false); // lag 0.5 < 1.0 for pair (b, c)
        m.set_risky(0, t(14.0), false);
        assert_eq!(m.violations().len(), 1);
        assert!(matches!(m.violations()[0], Violation::ExitMargin { .. }));
    }
}
