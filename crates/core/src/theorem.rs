//! Quantitative consequences of Theorems 1 and 2, used as oracles.
//!
//! Theorem 1 states that, under conditions c1–c7, (a) every entity's
//! continuous risky dwelling is bounded by `T^max_wait + T^max_LS1`, (b)
//! the PTE full order is maintained, and (c) the whole system resets to
//! Fall-Back within `T^max_wait + T^max_LS1` of every
//! `evtξ0Toξ1LeaseReq`. This module computes those bounds (and a few
//! sharper per-entity ones implied by the proof) so tests and experiments
//! can assert against them.

use crate::pattern::config::LeaseConfig;
use pte_hybrid::Time;

/// The bounds promised by Theorem 1 for a given configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TheoremBounds {
    /// Global bound on any entity's continuous risky dwelling
    /// (`T^max_wait + T^max_LS1`).
    pub risky_dwelling: Time,
    /// Sharper per-entity risky dwelling bounds
    /// (`T^max_run,i + T_exit,i` — Risky Core plus Exiting 1).
    pub per_entity_risky: Vec<Time>,
    /// Bound on the time from `evtξ0Toξ1LeaseReq` until every entity is
    /// back in Fall-Back.
    pub reset_span: Time,
    /// Worst-case full procedure cycle seen by the Supervisor: reset span
    /// plus its own wind-down walk (`N` waits) plus the Fall-Back dwell.
    pub supervisor_cycle: Time,
    /// Expected enter-risky lead between adjacent entities on the happy
    /// path (`T^max_enter,i+1 − T^max_enter,i`, all grants instantaneous).
    pub nominal_enter_leads: Vec<Time>,
}

/// Computes Theorem 1's bounds for a configuration.
pub fn bounds(cfg: &LeaseConfig) -> TheoremBounds {
    let per_entity_risky: Vec<Time> = (0..cfg.n).map(|k| cfg.t_run[k] + cfg.t_exit[k]).collect();
    let nominal_enter_leads: Vec<Time> = (0..cfg.n - 1)
        .map(|k| cfg.t_enter[k + 1] - cfg.t_enter[k])
        .collect();
    let reset_span = cfg.t_wait_max + cfg.t_ls1();
    TheoremBounds {
        risky_dwelling: reset_span,
        per_entity_risky,
        reset_span,
        supervisor_cycle: reset_span + cfg.t_wait_max * cfg.n as f64 + cfg.t_fb0_min,
        nominal_enter_leads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_bounds_match_paper() {
        let b = bounds(&LeaseConfig::case_study());
        // T_wait + T_LS1 = 3 + 44 = 47 s, under the 60 s Rule-1 limit.
        assert_eq!(b.risky_dwelling, Time::seconds(47.0));
        assert_eq!(b.reset_span, Time::seconds(47.0));
        // Ventilator: 35 + 6 = 41; laser: 20 + 1.5 = 21.5.
        assert_eq!(b.per_entity_risky[0], Time::seconds(41.0));
        assert_eq!(b.per_entity_risky[1], Time::seconds(21.5));
        // Nominal lead: 10 - 3 = 7 s >= safeguard 3 s.
        assert_eq!(b.nominal_enter_leads[0], Time::seconds(7.0));
    }

    #[test]
    fn per_entity_bounds_below_global() {
        let cfg = LeaseConfig::case_study();
        let b = bounds(&cfg);
        for per in &b.per_entity_risky {
            assert!(*per <= b.risky_dwelling);
        }
    }

    #[test]
    fn nominal_leads_exceed_safeguards_under_c5() {
        let cfg = LeaseConfig::case_study();
        let b = bounds(&cfg);
        for (lead, pair) in b.nominal_enter_leads.iter().zip(&cfg.safeguards) {
            assert!(*lead > pair.t_min_risky, "c5 implies this strictly");
        }
    }
}
