//! The Initializer design-pattern automaton `A_initzr` (Fig. 5(a)).
//!
//! Locations (Section IV-A, Initializer items 1–7):
//!
//! * **Fall-Back** (safe) — may request at any time ("human will"): on the
//!   reliable `cmd_request`, send `evtξNToξ0Req` and move to Requesting;
//! * **Requesting** (safe) — waits at most `T^max_req,N` for the
//!   Supervisor's approval; `cmd_cancel` (reporting `evtξNToξ0Cancel`) or
//!   the timeout return to Fall-Back; `??evtξ0ToξNApprove` moves to
//!   Entering;
//! * **Entering** (safe) — exact dwell `T^max_enter,N`, then the risky
//!   core; `cmd_cancel` or `??Abort` divert to Exiting 2;
//! * **Risky Core** (risky) — the lease: at most `T^max_run,N`; expiry
//!   (emitting the `evtToStop` marker), `cmd_cancel` or `??Abort` move to
//!   Exiting 1;
//! * **Exiting 1** (risky) / **Exiting 2** (safe) — exact dwell
//!   `T_exit,N`, then Fall-Back, reporting `evtξNToξ0Exit`.

use crate::pattern::config::LeaseConfig;
use crate::pattern::events::EventNames;
use pte_hybrid::{BuildError, Expr, HybridAutomaton, Pred};

/// Builds the Initializer automaton for entity `ξN`.
pub fn build_initializer(cfg: &LeaseConfig) -> Result<HybridAutomaton, BuildError> {
    let n = cfg.n;
    let ev = EventNames::new(n);
    let t_req = cfg.t_req_max.as_secs_f64();
    let t_enter = cfg.t_enter[n - 1].as_secs_f64();
    let t_run = cfg.t_run[n - 1].as_secs_f64();
    let t_exit = cfg.t_exit[n - 1].as_secs_f64();

    let mut b = HybridAutomaton::builder(cfg.entity_name(n));
    let c = b.clock("c");

    let fall_back = b.location("Fall-Back");
    let requesting = b.location("Requesting");
    let entering = b.location("Entering");
    let risky_core = b.risky_location("Risky Core");
    let exiting1 = b.risky_location("Exiting 1");
    let exiting2 = b.location("Exiting 2");

    // Fall-Back: request at any time (driver-triggered).
    b.edge(fall_back, requesting)
        .on(ev.cmd_request())
        .reset_clock(c)
        .emit(ev.req())
        .done();

    // Requesting: approval, cancel, or timeout.
    b.invariant(requesting, Pred::le(Expr::var(c), Expr::c(t_req)));
    b.edge(requesting, entering)
        .on_lossy(ev.approve())
        .reset_clock(c)
        .done();
    b.edge(requesting, fall_back)
        .on(ev.cmd_cancel())
        .reset_clock(c)
        .emit(ev.cancel_from_initializer())
        .done();
    b.edge(requesting, fall_back)
        .guard(Pred::ge(Expr::var(c), Expr::c(t_req)))
        .urgent()
        .reset_clock(c)
        .done();

    // Entering: exact dwell, divertible to Exiting 2.
    b.invariant(entering, Pred::le(Expr::var(c), Expr::c(t_enter)));
    b.edge(entering, risky_core)
        .guard(Pred::ge(Expr::var(c), Expr::c(t_enter)))
        .urgent()
        .reset_clock(c)
        .done();
    b.edge(entering, exiting2)
        .on(ev.cmd_cancel())
        .reset_clock(c)
        .emit(ev.cancel_from_initializer())
        .done();
    b.edge(entering, exiting2)
        .on_lossy(ev.abort(n))
        .reset_clock(c)
        .done();

    // Risky Core: the lease.
    b.invariant(risky_core, Pred::le(Expr::var(c), Expr::c(t_run)));
    b.edge(risky_core, exiting1)
        .guard(Pred::ge(Expr::var(c), Expr::c(t_run)))
        .urgent()
        .reset_clock(c)
        .emit(ev.to_stop(n))
        .done();
    b.edge(risky_core, exiting1)
        .on(ev.cmd_cancel())
        .reset_clock(c)
        .emit(ev.cancel_from_initializer())
        .done();
    b.edge(risky_core, exiting1)
        .on_lossy(ev.abort(n))
        .reset_clock(c)
        .done();

    // Exiting 1 / Exiting 2.
    for exiting in [exiting1, exiting2] {
        b.invariant(exiting, Pred::le(Expr::var(c), Expr::c(t_exit)));
        b.edge(exiting, fall_back)
            .guard(Pred::ge(Expr::var(c), Expr::c(t_exit)))
            .urgent()
            .reset_clock(c)
            .emit(ev.exit(n))
            .done();
    }

    b.initial(fall_back, None);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_hybrid::validate::validate;
    use pte_hybrid::{Root, Time};
    use pte_sim::driver::ScriptedDriver;
    use pte_sim::executor::{Executor, ExecutorConfig};

    fn initializer() -> HybridAutomaton {
        build_initializer(&LeaseConfig::case_study()).unwrap()
    }

    /// Supervisor-side stimulus automaton emitting scripted events.
    fn stimulus(events: Vec<(f64, String)>) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("stimulus");
        let c = b.clock("c");
        let mut prev = b.location("S0");
        b.initial(prev, None);
        for (k, (t, root)) in events.iter().enumerate() {
            let next = b.location(format!("S{}", k + 1));
            b.also_invariant(prev, Pred::le(Expr::var(c), Expr::c(*t)));
            b.edge(prev, next)
                .guard(Pred::ge(Expr::var(c), Expr::c(*t)))
                .urgent()
                .emit(root.clone())
                .done();
            prev = next;
        }
        b.build().unwrap()
    }

    fn run_with(
        stim: Vec<(f64, String)>,
        cmds: Vec<(f64, &str)>,
        until: f64,
    ) -> pte_sim::trace::Trace {
        let mut exec = Executor::new(
            vec![initializer(), stimulus(stim)],
            ExecutorConfig::default(),
        )
        .unwrap();
        exec.add_driver(Box::new(ScriptedDriver::new(
            "surgeon",
            cmds.into_iter()
                .map(|(t, r)| (Time::seconds(t), Root::new(r)))
                .collect(),
        )));
        exec.run_until(Time::seconds(until)).unwrap()
    }

    #[test]
    fn structure_valid() {
        let a = initializer();
        assert_eq!(a.locations.len(), 6);
        assert!(a.is_risky(a.loc_by_name("Risky Core").unwrap()));
        assert!(a.is_risky(a.loc_by_name("Exiting 1").unwrap()));
        let report = validate(&a);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn request_timeout_returns_to_fall_back() {
        // Request at t=1; no approval ever: back to Fall-Back at 1 + 5.
        let trace = run_with(vec![], vec![(1.0, "cmd_request")], 10.0);
        let fb = trace.location_intervals(0, "Fall-Back");
        assert_eq!(fb.len(), 2);
        assert!(fb[1]
            .start
            .approx_eq(Time::seconds(6.0), Time::seconds(1e-5)));
        assert!(!trace.events_with_root("evt_xi2_to_xi0_req").is_empty());
        assert!(trace.risky_intervals(0).is_empty());
    }

    #[test]
    fn full_cycle_with_lease_expiry() {
        // Approve at t=2: entering 2..12, risky 12..32 (lease), exit 32..33.5.
        let trace = run_with(
            vec![(2.0, "evt_xi0_to_xi2_approve".to_string())],
            vec![(1.0, "cmd_request")],
            40.0,
        );
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        assert!(risky[0]
            .start
            .approx_eq(Time::seconds(12.0), Time::seconds(1e-5)));
        assert!(risky[0]
            .end
            .approx_eq(Time::seconds(33.5), Time::seconds(1e-5)));
        assert_eq!(trace.events_with_root("evt_to_stop_xi2").len(), 1);
        assert!(!trace.events_with_root("evt_xi2_to_xi0_exit").is_empty());
    }

    #[test]
    fn surgeon_cancel_stops_emission_early() {
        let trace = run_with(
            vec![(2.0, "evt_xi0_to_xi2_approve".to_string())],
            vec![(1.0, "cmd_request"), (15.0, "cmd_cancel")],
            40.0,
        );
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        // Risky 12 .. 15 (cancel) + 1.5 (exit) = 16.5.
        assert!(risky[0]
            .end
            .approx_eq(Time::seconds(16.5), Time::seconds(1e-5)));
        assert!(trace.events_with_root("evt_to_stop_xi2").is_empty());
        assert!(!trace.events_with_root("evt_xi2_to_xi0_cancel").is_empty());
    }

    #[test]
    fn abort_during_entering_diverts_to_exiting2() {
        let trace = run_with(
            vec![
                (2.0, "evt_xi0_to_xi2_approve".to_string()),
                (5.0, "evt_xi0_to_xi2_abort".to_string()),
            ],
            vec![(1.0, "cmd_request")],
            20.0,
        );
        assert!(trace.risky_intervals(0).is_empty(), "aborted before risky");
        assert!(!trace.events_with_root("evt_xi2_to_xi0_exit").is_empty());
    }

    #[test]
    fn abort_during_risky_core_forces_exit() {
        let trace = run_with(
            vec![
                (2.0, "evt_xi0_to_xi2_approve".to_string()),
                (20.0, "evt_xi0_to_xi2_abort".to_string()),
            ],
            vec![(1.0, "cmd_request")],
            30.0,
        );
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        // Risky 12 .. 20 (abort) + 1.5 = 21.5.
        assert!(risky[0]
            .end
            .approx_eq(Time::seconds(21.5), Time::seconds(1e-5)));
    }

    #[test]
    fn cancel_while_requesting_reports_to_supervisor() {
        let trace = run_with(
            vec![],
            vec![(1.0, "cmd_request"), (3.0, "cmd_cancel")],
            10.0,
        );
        assert!(!trace.events_with_root("evt_xi2_to_xi0_cancel").is_empty());
        assert!(trace.risky_intervals(0).is_empty());
    }

    #[test]
    fn stale_approve_after_timeout_is_ignored() {
        // Approval arrives at t=8, after the 5 s request window expired.
        let trace = run_with(
            vec![(8.0, "evt_xi0_to_xi2_approve".to_string())],
            vec![(1.0, "cmd_request")],
            20.0,
        );
        assert!(trace.risky_intervals(0).is_empty());
    }

    #[test]
    fn risky_dwell_never_exceeds_lease_plus_exit() {
        // Even with no supervisor response at all after approval, the
        // initializer's risky dwelling is bounded by T_run + T_exit.
        let trace = run_with(
            vec![(2.0, "evt_xi0_to_xi2_approve".to_string())],
            vec![(1.0, "cmd_request")],
            60.0,
        );
        let cfg = LeaseConfig::case_study();
        for iv in trace.risky_intervals(0) {
            assert!(
                iv.duration() <= cfg.t_run[1] + cfg.t_exit[1] + Time::seconds(1e-5),
                "risky dwell {} exceeds lease bound",
                iv.duration()
            );
        }
    }
}
