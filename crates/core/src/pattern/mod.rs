//! The lease-based design pattern (Section IV-A).
//!
//! Three roles cooperate to let an Initializer perform a risky activity
//! while preserving the PTE safety rules under arbitrary wireless loss:
//!
//! * the **Supervisor** `ξ0` (base station) orchestrates: it leases the
//!   Participants in PTE order, then approves the Initializer, and walks
//!   the cancel/abort chain in reverse order afterwards;
//! * each **Participant** `ξi` (`i = 1 … N−1`) enters its risky locations
//!   only under a lease — a local timer that forces the exit path when it
//!   expires, whether or not any message arrives;
//! * the **Initializer** `ξN` requests the procedure, runs its risky core
//!   under its own lease, and may cancel at any time.
//!
//! [`check_conditions`] evaluates the closed-form constraints c1–c7 of
//! Theorem 1; [`build_pattern_system`] assembles the full hybrid system
//! with the paper's event wiring (all inter-entity events lossy, all
//! driver/sensor events reliable).

pub mod conditions;
pub mod config;
pub mod events;
pub mod initializer;
pub mod no_lease;
pub mod participant;
pub mod supervisor;
pub mod system;

pub use conditions::{check_conditions, Condition, ConditionReport};
pub use config::LeaseConfig;
pub use events::EventNames;
pub use initializer::build_initializer;
pub use no_lease::strip_leases;
pub use participant::{build_participant, build_participant_deniable};
pub use supervisor::build_supervisor;
pub use system::{build_pattern_system, build_pattern_system_with, PatternOptions, PatternSystem};
