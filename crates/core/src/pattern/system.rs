//! Assembly of the complete lease-pattern hybrid system.
//!
//! Index convention (matching `pte_wireless::topology::StarTopology`
//! usage downstream): automaton `0` is the Supervisor `ξ0`, automata
//! `1 … N−1` are Participants `ξ1 … ξN−1`, automaton `N` is the
//! Initializer `ξN`.

use crate::pattern::config::LeaseConfig;
use crate::pattern::initializer::build_initializer;
use crate::pattern::no_lease::strip_leases;
use crate::pattern::participant::{build_participant, build_participant_deniable};
use crate::pattern::supervisor::build_supervisor;
use pte_hybrid::{BuildError, HybridAutomaton, Pred};

/// Assembly options beyond the leased/baseline arm switch. `Default`
/// reproduces the base pattern exactly, so every existing call site is
/// unchanged by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PatternOptions {
    /// Build **deny-capable** participants
    /// ([`build_participant_deniable`]): each `ξi` maintains its own
    /// `ParticipationCondition` register, driven by the reliable local
    /// events `env_participation_ok_xi{i}` / `env_participation_bad_xi{i}`,
    /// which makes the L0 deny edge — and the Supervisor's `lease_deny`
    /// receive that starts the abort chain — live model text. `false`
    /// (the default) keeps the base pattern's always-true condition,
    /// whose deny edge is intentionally dead (the lint allowlist
    /// documents it).
    pub deny_capable: bool,
}

/// A fully assembled pattern system.
#[derive(Clone, Debug)]
pub struct PatternSystem {
    /// `automata[0]` = Supervisor, `automata[i]` = `ξi`.
    pub automata: Vec<HybridAutomaton>,
    /// The configuration the system was built from.
    pub config: LeaseConfig,
    /// Whether leases are armed (`false` = the Table I baseline).
    pub leased: bool,
}

impl PatternSystem {
    /// Automaton index of the Supervisor.
    pub fn supervisor_index(&self) -> usize {
        0
    }

    /// Automaton index of the Initializer (`ξN`).
    pub fn initializer_index(&self) -> usize {
        self.config.n
    }

    /// Automaton indices of the remote entities `ξ1 … ξN`.
    pub fn remote_indices(&self) -> Vec<usize> {
        (1..=self.config.n).collect()
    }
}

/// Builds the N-entity lease-pattern system.
///
/// With `leased = false`, the Risky Core lease timers of every remote
/// entity are stripped (the paper's "without Lease" comparison arm); the
/// Supervisor is unchanged in both arms.
pub fn build_pattern_system(cfg: &LeaseConfig, leased: bool) -> Result<PatternSystem, BuildError> {
    build_pattern_system_with(cfg, leased, PatternOptions::default())
}

/// [`build_pattern_system`] with explicit [`PatternOptions`].
pub fn build_pattern_system_with(
    cfg: &LeaseConfig,
    leased: bool,
    opts: PatternOptions,
) -> Result<PatternSystem, BuildError> {
    let mut automata = Vec::with_capacity(cfg.n + 1);
    automata.push(build_supervisor(cfg)?);
    for i in 1..cfg.n {
        let mut p = if opts.deny_capable {
            build_participant_deniable(cfg, i)?
        } else {
            build_participant(cfg, i, Pred::True)?
        };
        if !leased {
            p = strip_leases(&p);
        }
        automata.push(p);
    }
    let mut init = build_initializer(cfg)?;
    if !leased {
        init = strip_leases(&init);
    }
    automata.push(init);
    Ok(PatternSystem {
        automata,
        config: cfg.clone(),
        leased,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::check_pte;
    use pte_hybrid::{Root, Time};
    use pte_sim::driver::ScriptedDriver;
    use pte_sim::executor::{Executor, ExecutorConfig};

    #[test]
    fn assembly_shape() {
        let sys = build_pattern_system(&LeaseConfig::case_study(), true).unwrap();
        assert_eq!(sys.automata.len(), 3);
        assert_eq!(sys.automata[0].name, "supervisor");
        assert_eq!(sys.automata[1].name, "participant1");
        assert_eq!(sys.automata[2].name, "initializer");
        assert_eq!(sys.supervisor_index(), 0);
        assert_eq!(sys.initializer_index(), 2);
        assert_eq!(sys.remote_indices(), vec![1, 2]);
    }

    #[test]
    fn event_wiring_is_closed() {
        // Every evt_ root received by someone is emitted by someone else.
        let sys = build_pattern_system(&LeaseConfig::case_study(), true).unwrap();
        let mut emitted: Vec<String> = Vec::new();
        for a in &sys.automata {
            for r in a.emit_roots() {
                emitted.push(r.as_str().to_string());
            }
        }
        for a in &sys.automata {
            for (root, _) in a.receive_roots() {
                let s = root.as_str();
                if s.starts_with("evt_") {
                    assert!(
                        emitted.iter().any(|e| e == s),
                        "root `{s}` received by `{}` but never emitted",
                        a.name
                    );
                }
            }
        }
    }

    /// End-to-end: perfect links, one full procedure, PTE rules hold with
    /// the expected margins.
    #[test]
    fn happy_path_full_procedure_is_pte_safe() {
        let cfg = LeaseConfig::case_study();
        let sys = build_pattern_system(&cfg, true).unwrap();
        let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).unwrap();
        exec.add_driver(Box::new(ScriptedDriver::new(
            "surgeon",
            vec![
                (Time::seconds(14.0), Root::new("cmd_request")),
                (Time::seconds(40.0), Root::new("cmd_cancel")),
            ],
        )));
        let trace = exec.run_until(Time::seconds(120.0)).unwrap();

        // The ventilator (participant1) and laser (initializer) both saw
        // exactly one risky dwelling.
        let vent_risky = trace.risky_intervals(1);
        let laser_risky = trace.risky_intervals(2);
        assert_eq!(vent_risky.len(), 1, "{vent_risky:?}");
        assert_eq!(laser_risky.len(), 1, "{laser_risky:?}");

        let report = check_pte(&trace, &cfg.pte_spec());
        assert!(report.is_safe(), "{report}");

        // Enter lead >= 3 s by c5 (here 3 + enter spacing): the laser
        // enters risky T_enter,2 - T_enter,1 = 7 s after the ventilator.
        let lead = report.margins[0].enter_lead.unwrap();
        assert!(
            lead.approx_eq(Time::seconds(7.0), Time::seconds(0.01)),
            "lead {lead}"
        );
    }

    /// The lease guarantee end-to-end: all wireless events lost, yet PTE
    /// holds (the essence of Theorem 1).
    #[test]
    fn total_packet_loss_still_pte_safe() {
        use pte_sim::network::{Delivery, DropReason, FnChannel, NetworkBridge};
        let cfg = LeaseConfig::case_study();
        let sys = build_pattern_system(&cfg, true).unwrap();
        let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).unwrap();
        let mut bridge = NetworkBridge::perfect();
        bridge.set_default(Box::new(FnChannel(|_: &pte_sim::network::Message, _| {
            Delivery::Dropped {
                reason: DropReason::Scripted,
            }
        })));
        exec.set_bridge(bridge);
        exec.add_driver(Box::new(ScriptedDriver::new(
            "surgeon",
            vec![(Time::seconds(14.0), Root::new("cmd_request"))],
        )));
        let trace = exec.run_until(Time::seconds(120.0)).unwrap();
        // Nothing ever gets delivered, so nobody enters risky; PTE holds.
        let report = check_pte(&trace, &cfg.pte_spec());
        assert!(report.is_safe(), "{report}");
        assert!(trace.risky_intervals(1).is_empty());
        assert!(trace.risky_intervals(2).is_empty());
        assert!(trace.drop_count() > 0);
    }

    /// Deny-capable assembly: the deny wiring is closed (the lossy
    /// `lease_deny` roots the Supervisor receives are now emitted by a
    /// live participant edge), and an environment veto before the lease
    /// round makes the whole chain abort instead of running.
    #[test]
    fn deny_capable_system_wires_and_vetoes() {
        let cfg = LeaseConfig::case_study();
        let opts = PatternOptions { deny_capable: true };
        let sys = build_pattern_system_with(&cfg, true, opts).unwrap();
        assert_eq!(sys.automata.len(), 3);
        let emitted: Vec<String> = sys
            .automata
            .iter()
            .flat_map(|a| a.emit_roots())
            .map(|r| r.as_str().to_string())
            .collect();
        assert!(emitted.iter().any(|e| e == "evt_xi1_to_xi0_lease_deny"));

        let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).unwrap();
        exec.add_driver(Box::new(ScriptedDriver::new(
            "environment",
            vec![(Time::seconds(1.0), Root::new("env_participation_bad_xi1"))],
        )));
        exec.add_driver(Box::new(ScriptedDriver::new(
            "surgeon",
            vec![(Time::seconds(14.0), Root::new("cmd_request"))],
        )));
        let trace = exec.run_until(Time::seconds(120.0)).unwrap();
        assert!(!trace
            .events_with_root("evt_xi1_to_xi0_lease_deny")
            .is_empty());
        // The veto keeps everyone out of risky: the participant never
        // approved and the supervisor aborted before approving ξN.
        assert!(trace.risky_intervals(1).is_empty());
        assert!(trace.risky_intervals(2).is_empty());
        let report = check_pte(&trace, &cfg.pte_spec());
        assert!(report.is_safe(), "{report}");
    }

    #[test]
    fn no_lease_system_builds() {
        let sys = build_pattern_system(&LeaseConfig::case_study(), false).unwrap();
        assert!(!sys.leased);
        // The no-lease initializer has no lease expiry edge out of Risky
        // Core (no urgent edge from that location).
        let init = &sys.automata[2];
        let rc = init.loc_by_name("Risky Core").unwrap();
        assert!(init.edges_from(rc).all(|(_, e)| !e.urgent));
    }
}
