//! The Participant design-pattern automaton `A_ptcpnt,i` (Fig. 5(b)).
//!
//! Locations (Section IV-A, Participant items 1–7):
//!
//! * **Fall-Back** (safe) — on `??evtξ0ToξiLeaseReq`, move to `L0`;
//! * **L0** (safe, zero dwell) — if `ParticipationCondition` holds, send
//!   `evtξiToξ0LeaseApprove` and move to Entering, else send
//!   `evtξiToξ0LeaseDeny` and return to Fall-Back;
//! * **Entering** (safe) — dwell exactly `T^max_enter,i`, then enter the
//!   risky core. `??Cancel`/`??Abort` divert to Exiting 2;
//! * **Risky Core** (risky) — the lease: dwell at most `T^max_run,i`;
//!   expiry, `??Cancel` or `??Abort` move to Exiting 1;
//! * **Exiting 1** (risky) / **Exiting 2** (safe) — dwell exactly
//!   `T_exit,i`, then return to Fall-Back, reporting `evtξiToξ0Exit`.
//!
//! The lease-expiry edge out of Risky Core emits the internal
//! `evt_to_stop_xi{i}` marker so runs can count lease rescues (Table I's
//! `evtToStop` column).

use crate::pattern::config::LeaseConfig;
use crate::pattern::events::EventNames;
use pte_hybrid::automaton::VarKind;
use pte_hybrid::{BuildError, Expr, HybridAutomaton, Pred};

/// Builds the Participant automaton for entity `ξi` (`1 ≤ i ≤ N−1`).
///
/// `participation_condition` is the application-dependent proposition
/// checked at L0, over this automaton's own variables (the base pattern
/// has only the dwell clock, so pass [`Pred::True`] unless the automaton
/// is later elaborated with variables the condition can reference).
pub fn build_participant(
    cfg: &LeaseConfig,
    i: usize,
    participation_condition: Pred,
) -> Result<HybridAutomaton, BuildError> {
    build_participant_impl(cfg, i, Some(participation_condition))
}

/// Builds a **deny-capable** Participant: `ParticipationCondition` is
/// the register predicate `participate_bad ≤ 0.5`, maintained by the
/// reliable local environment events `env_participation_ok_xi{i}` /
/// `env_participation_bad_xi{i}` (mirroring the Supervisor's
/// `approval_bad` machinery). With the condition falsifiable, the L0
/// deny edge — and the Supervisor's `lease_deny` receive that aborts
/// the chain — is live.
pub fn build_participant_deniable(
    cfg: &LeaseConfig,
    i: usize,
) -> Result<HybridAutomaton, BuildError> {
    build_participant_impl(cfg, i, None)
}

/// Shared body: `Some(pred)` uses the caller's participation condition
/// verbatim (the base pattern); `None` wires the deniable register.
fn build_participant_impl(
    cfg: &LeaseConfig,
    i: usize,
    external_condition: Option<Pred>,
) -> Result<HybridAutomaton, BuildError> {
    assert!((1..cfg.n).contains(&i), "participant index must be in 1..N");
    let ev = EventNames::new(cfg.n);
    let t_enter = cfg.t_enter[i - 1].as_secs_f64();
    let t_run = cfg.t_run[i - 1].as_secs_f64();
    let t_exit = cfg.t_exit[i - 1].as_secs_f64();

    let mut b = HybridAutomaton::builder(cfg.entity_name(i));
    let c = b.clock("c");
    let (participation_condition, participate_bad) = match external_condition {
        Some(p) => (p, None),
        None => {
            let bad = b.var("participate_bad", VarKind::Continuous, 0.0);
            (Pred::le(Expr::var(bad), Expr::c(0.5)), Some(bad))
        }
    };

    let fall_back = b.location("Fall-Back");
    let l0 = b.location("L0");
    let entering = b.location("Entering");
    let risky_core = b.risky_location("Risky Core");
    let exiting1 = b.risky_location("Exiting 1");
    let exiting2 = b.location("Exiting 2");

    // Fall-Back: wait for a lease request.
    b.edge(fall_back, l0)
        .on_lossy(ev.lease_req(i))
        .reset_clock(c)
        .done();
    // Deny-capable participants track their participation condition in
    // Fall-Back via reliable environment maintenance self-loops, exactly
    // as the Supervisor tracks `approval_bad`.
    if let Some(bad) = participate_bad {
        b.edge(fall_back, fall_back)
            .on(ev.env_participation_ok(i))
            .reset(bad, Expr::c(0.0))
            .done();
        b.edge(fall_back, fall_back)
            .on(ev.env_participation_bad(i))
            .reset(bad, Expr::c(1.0))
            .done();
    }

    // L0: zero-dwell decision on ParticipationCondition.
    b.invariant(l0, Pred::le(Expr::var(c), Expr::c(0.0)));
    b.edge(l0, entering)
        .guard(participation_condition.clone())
        .urgent()
        .reset_clock(c)
        .emit(ev.lease_approve(i))
        .done();
    // The deny edge is not urgent: it fires only when the invariant forces
    // an exit and the approve guard is false.
    b.edge(l0, fall_back)
        .guard(participation_condition.not())
        .reset_clock(c)
        .emit(ev.lease_deny(i))
        .done();

    // Entering: exact dwell T_enter, divertible to Exiting 2.
    b.invariant(entering, Pred::le(Expr::var(c), Expr::c(t_enter)));
    b.edge(entering, risky_core)
        .guard(Pred::ge(Expr::var(c), Expr::c(t_enter)))
        .urgent()
        .reset_clock(c)
        .done();
    b.edge(entering, exiting2)
        .on_lossy(ev.cancel(i))
        .reset_clock(c)
        .done();
    b.edge(entering, exiting2)
        .on_lossy(ev.abort(i))
        .reset_clock(c)
        .done();

    // Risky Core: the lease. Expiry forces Exiting 1.
    b.invariant(risky_core, Pred::le(Expr::var(c), Expr::c(t_run)));
    b.edge(risky_core, exiting1)
        .guard(Pred::ge(Expr::var(c), Expr::c(t_run)))
        .urgent()
        .reset_clock(c)
        .emit(ev.to_stop(i))
        .done();
    b.edge(risky_core, exiting1)
        .on_lossy(ev.cancel(i))
        .reset_clock(c)
        .done();
    b.edge(risky_core, exiting1)
        .on_lossy(ev.abort(i))
        .reset_clock(c)
        .done();

    // Exiting 1 (risky) and Exiting 2 (safe): exact dwell T_exit, then
    // Fall-Back, reporting the exit to the Supervisor.
    for exiting in [exiting1, exiting2] {
        b.invariant(exiting, Pred::le(Expr::var(c), Expr::c(t_exit)));
        b.edge(exiting, fall_back)
            .guard(Pred::ge(Expr::var(c), Expr::c(t_exit)))
            .urgent()
            .reset_clock(c)
            .emit(ev.exit(i))
            .done();
    }

    b.initial(fall_back, None);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_hybrid::validate::validate;
    use pte_hybrid::{LocId, Time};
    use pte_sim::executor::{Executor, ExecutorConfig};
    use pte_sim::network::{NetworkBridge, PerfectChannel};

    fn participant() -> HybridAutomaton {
        build_participant(&LeaseConfig::case_study(), 1, Pred::True).unwrap()
    }

    /// A scripted counterpart emitting supervisor-side events.
    fn stimulus(events: Vec<(f64, &str)>) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("stimulus");
        let c = b.clock("c");
        let mut prev = b.location("S0");
        b.initial(prev, None);
        for (k, (t, root)) in events.iter().enumerate() {
            let next = b.location(format!("S{}", k + 1));
            b.also_invariant(prev, Pred::le(Expr::var(c), Expr::c(*t)));
            b.edge(prev, next)
                .guard(Pred::ge(Expr::var(c), Expr::c(*t)))
                .urgent()
                .emit(*root)
                .done();
            prev = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn structure_matches_pattern() {
        let p = participant();
        assert_eq!(p.locations.len(), 6);
        assert!(p.is_risky(p.loc_by_name("Risky Core").unwrap()));
        assert!(p.is_risky(p.loc_by_name("Exiting 1").unwrap()));
        assert!(!p.is_risky(p.loc_by_name("Exiting 2").unwrap()));
        assert!(!p.is_risky(p.loc_by_name("Entering").unwrap()));
        assert_eq!(p.initial_locations(), vec![LocId(0)]);
        let report = validate(&p);
        // The deny edge with guard `!true` = false is intentionally dead
        // when the participation condition is trivially true; no other
        // findings are acceptable.
        for f in &report.findings {
            let s = format!("{f}");
            assert!(s.contains("guard"), "unexpected finding: {s}");
        }
    }

    #[test]
    fn lease_expiry_forces_exit_without_any_message() {
        // Lease the participant, then never send anything again: it must
        // return to Fall-Back by itself after T_enter + T_run + T_exit.
        let stim = stimulus(vec![(1.0, "evt_xi0_to_xi1_lease_req")]);
        let exec = Executor::new(vec![participant(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(50.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        // Risky from 1 + 3 (enter) to 1 + 3 + 35 + 6 (lease + exit).
        assert!(risky[0]
            .start
            .approx_eq(Time::seconds(4.0), Time::seconds(1e-5)));
        assert!(risky[0]
            .end
            .approx_eq(Time::seconds(45.0), Time::seconds(1e-5)));
        // Lease rescue marker emitted.
        assert_eq!(trace.events_with_root("evt_to_stop_xi1").len(), 1);
        // Exit report emitted on return to Fall-Back.
        assert!(!trace.events_with_root("evt_xi1_to_xi0_exit").is_empty());
    }

    #[test]
    fn cancel_in_risky_core_shortens_dwell() {
        let stim = stimulus(vec![
            (1.0, "evt_xi0_to_xi1_lease_req"),
            (10.0, "evt_xi0_to_xi1_cancel"),
        ]);
        let exec = Executor::new(vec![participant(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(30.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        // Risky 4 .. 10 (cancel) + 6 (Exiting 1) = 16.
        assert!(risky[0]
            .end
            .approx_eq(Time::seconds(16.0), Time::seconds(1e-5)));
        // No lease rescue needed.
        assert!(trace.events_with_root("evt_to_stop_xi1").is_empty());
    }

    #[test]
    fn abort_during_entering_avoids_risky_entirely() {
        let stim = stimulus(vec![
            (1.0, "evt_xi0_to_xi1_lease_req"),
            (2.0, "evt_xi0_to_xi1_abort"),
        ]);
        let exec = Executor::new(vec![participant(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(20.0)).unwrap();
        assert!(trace.risky_intervals(0).is_empty(), "never entered risky");
        // Still reports exit after Exiting 2.
        assert!(!trace.events_with_root("evt_xi1_to_xi0_exit").is_empty());
    }

    #[test]
    fn deny_when_participation_condition_false() {
        let p = build_participant(&LeaseConfig::case_study(), 1, Pred::False).unwrap();
        let stim = stimulus(vec![(1.0, "evt_xi0_to_xi1_lease_req")]);
        let exec = Executor::new(vec![p, stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(10.0)).unwrap();
        assert!(!trace
            .events_with_root("evt_xi1_to_xi0_lease_deny")
            .is_empty());
        assert!(trace
            .events_with_root("evt_xi1_to_xi0_lease_approve")
            .is_empty());
        assert!(trace.risky_intervals(0).is_empty());
    }

    /// The deniable participant's condition register round-trips: a bad
    /// environment event makes the next lease request deny, a good one
    /// restores approval — so both L0 edges (and the Supervisor's
    /// `lease_deny` receive downstream) are live model text.
    #[test]
    fn deniable_participant_denies_then_recovers() {
        let p = build_participant_deniable(&LeaseConfig::case_study(), 1).unwrap();
        let stim = stimulus(vec![
            (0.5, "env_participation_bad_xi1"),
            (1.0, "evt_xi0_to_xi1_lease_req"),
            (2.0, "env_participation_ok_xi1"),
            (3.0, "evt_xi0_to_xi1_lease_req"),
        ]);
        let exec = Executor::new(vec![p, stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(10.0)).unwrap();
        assert_eq!(trace.events_with_root("evt_xi1_to_xi0_lease_deny").len(), 1);
        assert_eq!(
            trace.events_with_root("evt_xi1_to_xi0_lease_approve").len(),
            1
        );
    }

    /// With no environment interference the deniable participant behaves
    /// exactly like the base one (all-zero initial data satisfies the
    /// condition), and its validation report is clean — no intentionally
    /// dead deny edge to excuse.
    #[test]
    fn deniable_participant_defaults_to_approving() {
        let p = build_participant_deniable(&LeaseConfig::case_study(), 1).unwrap();
        let report = validate(&p);
        assert!(
            report.findings.is_empty(),
            "unexpected findings: {:?}",
            report.findings
        );
        let stim = stimulus(vec![(1.0, "evt_xi0_to_xi1_lease_req")]);
        let exec = Executor::new(vec![p, stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(50.0)).unwrap();
        assert_eq!(trace.risky_intervals(0).len(), 1);
        assert!(trace
            .events_with_root("evt_xi1_to_xi0_lease_deny")
            .is_empty());
    }

    #[test]
    fn approve_emitted_on_lease() {
        let stim = stimulus(vec![(1.0, "evt_xi0_to_xi1_lease_req")]);
        let exec = Executor::new(vec![participant(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(2.0)).unwrap();
        let approvals = trace.events_with_root("evt_xi1_to_xi0_lease_approve");
        assert_eq!(approvals.len(), 1);
    }

    #[test]
    fn repeated_rounds_work() {
        let stim = stimulus(vec![
            (1.0, "evt_xi0_to_xi1_lease_req"),
            (5.0, "evt_xi0_to_xi1_cancel"),
            // Second lease after the first exit completes (5 + 6 = 11).
            (20.0, "evt_xi0_to_xi1_lease_req"),
        ]);
        let exec = Executor::new(vec![participant(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(70.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 2, "{risky:?}");
    }

    #[test]
    fn lease_req_ignored_outside_fall_back() {
        // Second lease request arrives while still in Risky Core: ignored.
        let stim = stimulus(vec![
            (1.0, "evt_xi0_to_xi1_lease_req"),
            (10.0, "evt_xi0_to_xi1_lease_req"),
        ]);
        let exec = Executor::new(vec![participant(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(50.0)).unwrap();
        assert_eq!(
            trace.risky_intervals(0).len(),
            1,
            "one dwelling per lease round"
        );
        assert_eq!(
            trace.events_with_root("evt_xi1_to_xi0_lease_approve").len(),
            1
        );
    }

    #[test]
    fn perfect_bridge_is_default() {
        // Sanity: with the default bridge, lossy edges behave reliably.
        let mut exec = Executor::new(
            vec![participant(), stimulus(vec![])],
            ExecutorConfig::default(),
        )
        .unwrap();
        let mut bridge = NetworkBridge::perfect();
        bridge.set_default(Box::new(PerfectChannel));
        exec.set_bridge(bridge);
        let trace = exec.run_until(Time::seconds(1.0)).unwrap();
        assert_eq!(trace.risky_intervals(0).len(), 0);
    }
}
