//! The Supervisor design-pattern automaton `A_supvsr` (Fig. 3 / Fig. 4).
//!
//! Locations: `Fall-Back`, `Lease ξ1 … Lease ξN`, `Cancel Lease ξN … ξ1`,
//! and `Abort Lease ξN … ξ1` (3N + 1 locations).
//!
//! The paper gives Fig. 4 only as flow-block sketches; the edges here are
//! reconstructed from the prose of Section IV-A, the proof sketch of
//! Theorem 1, and the Section V scenario walkthroughs (see DESIGN.md):
//!
//! * **Fall-Back** — on `??evtξNToξ0Req`, if the Supervisor has dwelt at
//!   least `T^min_fb,0` *and* `ApprovalCondition` holds, move to
//!   `Lease ξ1`, sending `evtξ0Toξ1LeaseReq`;
//! * **Lease ξi** (`i < N`, Fig. 4(a)) — wait at most `T^max_wait` for
//!   `??LeaseApprove_i`; approval advances the chain (sending the next
//!   lease request, or `evtξ0ToξNApprove` when `i+1 = N`); denial,
//!   timeout, or an `ApprovalCondition` violation starts the **abort**
//!   chain at `ξi` (covering the case where `ξi` approved but the approval
//!   was lost); an Initializer cancel starts the **cancel** chain at `ξi`;
//! * **Lease ξN** (Fig. 4(b)) — the procedure is live. `??Exit_N` (the
//!   Initializer finished), an Initializer cancel, the overall lease
//!   budget `T^max_LS1` expiring, or an `ApprovalCondition` violation all
//!   lead into the wind-down chains;
//! * **Cancel/Abort Lease ξi** (Fig. 4(c)) — the cancel (resp. abort)
//!   event for `ξi` was sent on the ingress edge; `??Exit_i` advances the
//!   chain immediately. If the exit report is lost, the Supervisor may
//!   only proceed inward once `ξi` is *provably* back in Fall-Back: the
//!   grant clock `g_i` (running since `LeaseReq_i` was sent this round)
//!   must exceed `ξi`'s whole lease span
//!   `W_i = T^max_enter,i + T^max_run,i + T_exit,i`. Proceeding after
//!   only `T^max_wait` is unsound — with the cancel to `ξi` lost, `ξi`
//!   dwells risky until its lease expires, and cancelling `ξi−1` early
//!   breaks p2 coverage; our executor-based exploration found exactly
//!   this interleaving (see DESIGN.md). On the ordinary post-procedure
//!   walk `g_i ≥ W_i` already holds, so the confirmed and unconfirmed
//!   paths cost the same wall-clock time.
//!
//! `ApprovalCondition` is the predicate `approval_bad ≤ 0.5` over a data
//! state variable maintained by the reliable environment events
//! `env_approval_ok` / `env_approval_bad` (the wired SpO2 sensor of the
//! case study). All-zero initial data means the condition initially holds.

use crate::pattern::config::LeaseConfig;
use crate::pattern::events::EventNames;
use pte_hybrid::automaton::VarKind;
use pte_hybrid::{BuildError, Expr, HybridAutomaton, LocId, Pred};

/// Builds the Supervisor automaton `ξ0` for a configuration.
pub fn build_supervisor(cfg: &LeaseConfig) -> Result<HybridAutomaton, BuildError> {
    let n = cfg.n;
    let ev = EventNames::new(n);
    let t_wait = cfg.t_wait_max.as_secs_f64();
    let t_fb0 = cfg.t_fb0_min.as_secs_f64();
    let t_ls1 = cfg.t_ls1().as_secs_f64();

    let mut b = HybridAutomaton::builder("supervisor");
    let c = b.clock("c");
    let approval_bad = b.var("approval_bad", VarKind::Continuous, 0.0);
    let approval_ok_pred = Pred::le(Expr::var(approval_bad), Expr::c(0.5));
    // Grant clocks: g_i measures the time since lease_req_i (resp. the
    // initializer's approve) was sent this round. The wind-down chains
    // advance once g_i exceeds ξi's worst-case lease span W_i — usually
    // already true by the time the chain arrives, so lost exit reports
    // rarely cost wall-clock time while remaining provably safe.
    let grant: Vec<pte_hybrid::VarId> = (1..=n).map(|i| b.clock(format!("g{i}"))).collect();

    let fall_back = b.location("Fall-Back");
    let lease: Vec<LocId> = (1..=n)
        .map(|i| b.location(format!("Lease xi{i}")))
        .collect();
    let cancel: Vec<LocId> = (1..=n)
        .map(|i| b.location(format!("Cancel Lease xi{i}")))
        .collect();
    let abort: Vec<LocId> = (1..=n)
        .map(|i| b.location(format!("Abort Lease xi{i}")))
        .collect();

    // --- Fall-Back -------------------------------------------------------
    b.edge(fall_back, lease[0])
        .on_lossy(ev.req())
        .guard(Pred::ge(Expr::var(c), Expr::c(t_fb0)).and(approval_ok_pred.clone()))
        .reset_clock(c)
        .reset_clock(grant[0])
        .emit(ev.lease_req(1))
        .done();
    // Environment maintenance self-loops.
    b.edge(fall_back, fall_back)
        .on(ev.env_approval_ok())
        .reset(approval_bad, Expr::c(0.0))
        .done();
    b.edge(fall_back, fall_back)
        .on(ev.env_approval_bad())
        .reset(approval_bad, Expr::c(1.0))
        .done();

    // --- Lease ξi, i = 1 … N−1 (Fig. 4(a)) -------------------------------
    for i in 1..n {
        let here = lease[i - 1];
        b.invariant(here, Pred::le(Expr::var(c), Expr::c(t_wait)));

        // Approval advances the chain.
        let next_emit = if i + 1 == n {
            ev.approve()
        } else {
            ev.lease_req(i + 1)
        };
        b.edge(here, lease[i])
            .on_lossy(ev.lease_approve(i))
            .reset_clock(c)
            .reset_clock(grant[i])
            .emit(next_emit)
            .done();

        // Denial, timeout and ApprovalCondition violation start the abort
        // chain at ξi (its approval may have been sent and lost).
        b.edge(here, abort[i - 1])
            .on_lossy(ev.lease_deny(i))
            .reset_clock(c)
            .emit(ev.abort(i))
            .done();
        b.edge(here, abort[i - 1])
            .guard(Pred::ge(Expr::var(c), Expr::c(t_wait)))
            .urgent()
            .reset_clock(c)
            .emit(ev.abort(i))
            .done();
        b.edge(here, abort[i - 1])
            .on(ev.env_approval_bad())
            .reset(approval_bad, Expr::c(1.0))
            .reset_clock(c)
            .emit(ev.abort(i))
            .done();

        // Initializer cancel starts the cancel chain at ξi.
        b.edge(here, cancel[i - 1])
            .on_lossy(ev.cancel_from_initializer())
            .reset_clock(c)
            .emit(ev.cancel(i))
            .done();

        // Environment ok self-loop.
        b.edge(here, here)
            .on(ev.env_approval_ok())
            .reset(approval_bad, Expr::c(0.0))
            .done();
    }

    // --- Lease ξN (Fig. 4(b)) ---------------------------------------------
    {
        let here = lease[n - 1];
        b.invariant(here, Pred::le(Expr::var(c), Expr::c(t_ls1)));

        // Next stop of the wind-down chain after the Initializer is done.
        let (wind_down_dst, wind_down_emit) = if n >= 2 {
            (cancel[n - 2], ev.cancel(n - 1))
        } else {
            unreachable!("the pattern requires N >= 2")
        };

        // Initializer reports completion.
        b.edge(here, wind_down_dst)
            .on_lossy(ev.exit(n))
            .reset_clock(c)
            .emit(wind_down_emit.clone())
            .done();
        // Initializer cancels mid-procedure: cancel it first (it may never
        // have received the approval), then walk inward.
        b.edge(here, cancel[n - 1])
            .on_lossy(ev.cancel_from_initializer())
            .reset_clock(c)
            .emit(ev.cancel(n))
            .done();
        // Lease budget expiry (e.g. the exit report was lost): by c4 every
        // entity's own lease has expired by now, so walk the cancel chain.
        b.edge(here, wind_down_dst)
            .guard(Pred::ge(Expr::var(c), Expr::c(t_ls1)))
            .urgent()
            .reset_clock(c)
            .emit(wind_down_emit)
            .done();
        // ApprovalCondition violated: abort the Initializer immediately.
        b.edge(here, abort[n - 1])
            .on(ev.env_approval_bad())
            .reset(approval_bad, Expr::c(1.0))
            .reset_clock(c)
            .emit(ev.abort(n))
            .done();
        b.edge(here, here)
            .on(ev.env_approval_ok())
            .reset(approval_bad, Expr::c(0.0))
            .done();
    }

    // --- Cancel / Abort chains (Fig. 4(c)) --------------------------------
    for (chain, emit_kind) in [(&cancel, false), (&abort, true)] {
        for i in (1..=n).rev() {
            let here = chain[i - 1];
            // Safe inward-walk budget: ξi's lease provably expires once
            // g_i >= W_i (its grant was g_i ago; the whole span is W_i).
            let w_i = (cfg.t_enter[i - 1] + cfg.t_run[i - 1] + cfg.t_exit[i - 1]).as_secs_f64();
            let g_i = grant[i - 1];
            b.invariant(here, Pred::le(Expr::var(g_i), Expr::c(w_i)));
            let (dst, emit) = if i > 1 {
                (
                    chain[i - 2],
                    Some(if emit_kind {
                        ev.abort(i - 1)
                    } else {
                        ev.cancel(i - 1)
                    }),
                )
            } else {
                (fall_back, None)
            };
            // Exit report or timeout both advance the chain.
            let e1 = b.edge(here, dst).on_lossy(ev.exit(i)).reset_clock(c);
            match &emit {
                Some(root) => e1.emit(root.clone()).done(),
                None => e1.done(),
            };
            let e2 = b
                .edge(here, dst)
                .guard(Pred::ge(Expr::var(g_i), Expr::c(w_i)))
                .urgent()
                .reset_clock(c);
            match &emit {
                Some(root) => e2.emit(root.clone()).done(),
                None => e2.done(),
            };
            // Environment maintenance (no abort escalation while already
            // winding down).
            b.edge(here, here)
                .on(ev.env_approval_ok())
                .reset(approval_bad, Expr::c(0.0))
                .done();
            b.edge(here, here)
                .on(ev.env_approval_bad())
                .reset(approval_bad, Expr::c(1.0))
                .done();
        }
    }

    b.initial(fall_back, None);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_hybrid::validate::validate;
    use pte_hybrid::Time;
    use pte_sim::executor::{Executor, ExecutorConfig};

    fn supervisor() -> HybridAutomaton {
        build_supervisor(&LeaseConfig::case_study()).unwrap()
    }

    /// Remote-side stimulus emitting scripted events.
    fn stimulus(events: Vec<(f64, String)>) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("stimulus");
        let c = b.clock("c");
        let mut prev = b.location("S0");
        b.initial(prev, None);
        for (k, (t, root)) in events.iter().enumerate() {
            let next = b.location(format!("S{}", k + 1));
            b.also_invariant(prev, Pred::le(Expr::var(c), Expr::c(*t)));
            b.edge(prev, next)
                .guard(Pred::ge(Expr::var(c), Expr::c(*t)))
                .urgent()
                .emit(root.clone())
                .done();
            prev = next;
        }
        b.build().unwrap()
    }

    fn names(trace: &pte_sim::trace::Trace, aut: usize) -> Vec<String> {
        trace
            .location_history(aut)
            .iter()
            .map(|(_, l)| trace.meta[aut].loc_names[l.0].clone())
            .collect()
    }

    #[test]
    fn structure_and_validation() {
        let s = supervisor();
        // 3N + 1 locations for N = 2.
        assert_eq!(s.locations.len(), 7);
        assert!(s.loc_by_name("Lease xi1").is_some());
        assert!(s.loc_by_name("Lease xi2").is_some());
        assert!(s.loc_by_name("Cancel Lease xi2").is_some());
        assert!(s.loc_by_name("Abort Lease xi1").is_some());
        let report = validate(&s);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn request_before_fb_dwell_is_ignored() {
        // Request arrives at t=1 < T_fb0 = 13: supervisor stays put.
        let stim = stimulus(vec![(1.0, "evt_xi2_to_xi0_req".to_string())]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(5.0)).unwrap();
        assert_eq!(trace.location_history(0).len(), 1);
    }

    #[test]
    fn happy_path_walks_the_full_chain() {
        let stim = stimulus(vec![
            (14.0, "evt_xi2_to_xi0_req".to_string()),
            (15.0, "evt_xi1_to_xi0_lease_approve".to_string()),
            (40.0, "evt_xi2_to_xi0_exit".to_string()),
            (41.0, "evt_xi1_to_xi0_exit".to_string()),
        ]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(60.0)).unwrap();
        assert_eq!(
            names(&trace, 0),
            vec![
                "Fall-Back",
                "Lease xi1",
                "Lease xi2",
                "Cancel Lease xi1",
                "Fall-Back"
            ]
        );
        // Events emitted along the way.
        assert!(!trace
            .events_with_root("evt_xi0_to_xi1_lease_req")
            .is_empty());
        assert!(!trace.events_with_root("evt_xi0_to_xi2_approve").is_empty());
        assert!(!trace.events_with_root("evt_xi0_to_xi1_cancel").is_empty());
    }

    #[test]
    fn approval_timeout_aborts_from_xi1() {
        let stim = stimulus(vec![(14.0, "evt_xi2_to_xi0_req".to_string())]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(70.0)).unwrap();
        let ns = names(&trace, 0);
        assert_eq!(
            ns,
            vec!["Fall-Back", "Lease xi1", "Abort Lease xi1", "Fall-Back"],
            "{ns:?}"
        );
        assert!(!trace.events_with_root("evt_xi0_to_xi1_abort").is_empty());
        // Approval timeout at 14 + T_wait = 17; with the exit report never
        // arriving, the chain advances once the grant clock g_1 (running
        // since 14) reaches ξ1's worst-case lease span W_1 = 3 + 35 + 6 =
        // 44: Fall-Back at 14 + 44 = 58.
        let h = trace.location_history(0);
        assert!(h[2].0.approx_eq(Time::seconds(17.0), Time::seconds(1e-5)));
        assert!(h[3].0.approx_eq(Time::seconds(58.0), Time::seconds(1e-5)));
    }

    #[test]
    fn deny_aborts_chain() {
        let stim = stimulus(vec![
            (14.0, "evt_xi2_to_xi0_req".to_string()),
            (14.5, "evt_xi1_to_xi0_lease_deny".to_string()),
        ]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(30.0)).unwrap();
        let ns = names(&trace, 0);
        assert!(ns.contains(&"Abort Lease xi1".to_string()), "{ns:?}");
    }

    #[test]
    fn lease_budget_expiry_cancels_chain() {
        // Approval arrives but the initializer's exit report never does:
        // the supervisor leaves Lease xi2 after T_LS1 = 44 s.
        let stim = stimulus(vec![
            (14.0, "evt_xi2_to_xi0_req".to_string()),
            (15.0, "evt_xi1_to_xi0_lease_approve".to_string()),
        ]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(120.0)).unwrap();
        let h = trace.location_history(0);
        let ns = names(&trace, 0);
        assert_eq!(
            ns,
            vec![
                "Fall-Back",
                "Lease xi1",
                "Lease xi2",
                "Cancel Lease xi1",
                "Fall-Back"
            ]
        );
        // Lease xi2 entered at 15, left at 15 + 44 = 59; by then the grant
        // clock g_1 (running since 14) is 45 >= W_1 = 44, so the cancel
        // chain falls through to Fall-Back immediately.
        assert!(h[3].0.approx_eq(Time::seconds(59.0), Time::seconds(1e-5)));
        assert!(h[4].0.approx_eq(Time::seconds(59.0), Time::seconds(1e-5)));
    }

    #[test]
    fn initializer_cancel_cancels_initializer_first() {
        let stim = stimulus(vec![
            (14.0, "evt_xi2_to_xi0_req".to_string()),
            (15.0, "evt_xi1_to_xi0_lease_approve".to_string()),
            (20.0, "evt_xi2_to_xi0_cancel".to_string()),
        ]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(60.0)).unwrap();
        let ns = names(&trace, 0);
        assert!(
            ns.contains(&"Cancel Lease xi2".to_string()),
            "cancel chain includes the initializer: {ns:?}"
        );
        assert!(!trace.events_with_root("evt_xi0_to_xi2_cancel").is_empty());
        assert!(!trace.events_with_root("evt_xi0_to_xi1_cancel").is_empty());
    }

    #[test]
    fn approval_condition_gates_fall_back() {
        // env_approval_bad before the request: the request is ignored.
        let stim = stimulus(vec![
            (1.0, "env_approval_bad".to_string()),
            (14.0, "evt_xi2_to_xi0_req".to_string()),
        ]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(20.0)).unwrap();
        // Only env self-loop transitions; never leaves Fall-Back.
        let ns = names(&trace, 0);
        assert!(ns.iter().all(|l| l == "Fall-Back"), "{ns:?}");
    }

    #[test]
    fn approval_recovery_unblocks() {
        let stim = stimulus(vec![
            (1.0, "env_approval_bad".to_string()),
            (2.0, "env_approval_ok".to_string()),
            (14.0, "evt_xi2_to_xi0_req".to_string()),
        ]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(20.0)).unwrap();
        let ns = names(&trace, 0);
        assert!(ns.contains(&"Lease xi1".to_string()), "{ns:?}");
    }

    #[test]
    fn approval_violation_mid_procedure_aborts() {
        let stim = stimulus(vec![
            (14.0, "evt_xi2_to_xi0_req".to_string()),
            (15.0, "evt_xi1_to_xi0_lease_approve".to_string()),
            (20.0, "env_approval_bad".to_string()),
        ]);
        let exec = Executor::new(vec![supervisor(), stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(60.0)).unwrap();
        let ns = names(&trace, 0);
        assert!(ns.contains(&"Abort Lease xi2".to_string()), "{ns:?}");
        assert!(!trace.events_with_root("evt_xi0_to_xi2_abort").is_empty());
        assert!(!trace.events_with_root("evt_xi0_to_xi1_abort").is_empty());
    }

    #[test]
    fn n3_supervisor_chains() {
        let cfg = LeaseConfig {
            n: 3,
            t_fb0_min: Time::seconds(10.0),
            t_wait_max: Time::seconds(2.0),
            t_req_max: Time::seconds(5.0),
            t_enter: vec![Time::seconds(2.0), Time::seconds(6.0), Time::seconds(10.0)],
            t_run: vec![
                Time::seconds(60.0),
                Time::seconds(40.0),
                Time::seconds(15.0),
            ],
            t_exit: vec![Time::seconds(6.0), Time::seconds(4.0), Time::seconds(1.0)],
            safeguards: vec![
                crate::rules::PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
                crate::rules::PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
            ],
        };
        let s = build_supervisor(&cfg).unwrap();
        assert_eq!(s.locations.len(), 10);
        let stim = stimulus(vec![
            (11.0, "evt_xi3_to_xi0_req".to_string()),
            (11.5, "evt_xi1_to_xi0_lease_approve".to_string()),
            (12.0, "evt_xi2_to_xi0_lease_approve".to_string()),
            (30.0, "evt_xi3_to_xi0_exit".to_string()),
            (31.0, "evt_xi2_to_xi0_exit".to_string()),
            (32.0, "evt_xi1_to_xi0_exit".to_string()),
        ]);
        let exec = Executor::new(vec![s, stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(60.0)).unwrap();
        assert_eq!(
            names(&trace, 0),
            vec![
                "Fall-Back",
                "Lease xi1",
                "Lease xi2",
                "Lease xi3",
                "Cancel Lease xi2",
                "Cancel Lease xi1",
                "Fall-Back"
            ]
        );
    }
}
