//! The "without Lease" baseline (Table I's comparison arm).
//!
//! The paper's comparison trials disable exactly the lease timers on the
//! risky dwellings: "the ventilator does not set up a lease timer when it
//! is pausing, neither does the laser-scalpel set up a lease timer when it
//! is emitting laser". [`strip_leases`] implements that surgically: the
//! urgent expiry edge out of **Risky Core** is removed and the location's
//! dwell invariant is lifted, so the entity leaves its risky core *only*
//! upon receiving a cancel/abort (or, for the Initializer, the local
//! `cmd_cancel`). Everything else — entering discipline, exit dwell,
//! supervisor behaviour — is identical in both arms.

use pte_hybrid::{HybridAutomaton, Pred};

/// Returns a copy of a pattern automaton with the Risky Core lease
/// disarmed (see module docs). Automata without a "Risky Core" location
/// are returned unchanged.
pub fn strip_leases(automaton: &HybridAutomaton) -> HybridAutomaton {
    let mut a = automaton.clone();
    let Some(rc) = a.loc_by_name("Risky Core") else {
        return a;
    };
    // Lift the dwell bound.
    a.locations[rc.0].invariant = Pred::True;
    // Remove the urgent lease-expiry edge out of Risky Core.
    a.edges
        .retain(|e| !(e.src == rc && e.urgent && e.trigger.is_none()));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::config::LeaseConfig;
    use crate::pattern::initializer::build_initializer;
    use crate::pattern::participant::build_participant;
    use pte_hybrid::{Expr, Time};
    use pte_sim::executor::{Executor, ExecutorConfig};

    fn stimulus(events: Vec<(f64, String)>) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("stimulus");
        let c = b.clock("c");
        let mut prev = b.location("S0");
        b.initial(prev, None);
        for (k, (t, root)) in events.iter().enumerate() {
            let next = b.location(format!("S{}", k + 1));
            b.also_invariant(prev, Pred::le(Expr::var(c), Expr::c(*t)));
            b.edge(prev, next)
                .guard(Pred::ge(Expr::var(c), Expr::c(*t)))
                .urgent()
                .emit(root.clone())
                .done();
            prev = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn strips_only_risky_core_lease() {
        let cfg = LeaseConfig::case_study();
        let p = build_participant(&cfg, 1, Pred::True).unwrap();
        let stripped = strip_leases(&p);
        let rc = stripped.loc_by_name("Risky Core").unwrap();
        assert_eq!(stripped.locations[rc.0].invariant, Pred::True);
        assert!(stripped.edges_from(rc).all(|(_, e)| !e.urgent));
        // Cancel/abort edges preserved.
        assert_eq!(stripped.edges_from(rc).count(), 2);
        // Entering discipline intact.
        let entering = stripped.loc_by_name("Entering").unwrap();
        assert!(stripped.edges_from(entering).any(|(_, e)| e.urgent));
        // One less edge overall.
        assert_eq!(stripped.edges.len(), p.edges.len() - 1);
    }

    #[test]
    fn automaton_without_risky_core_unchanged() {
        let mut b = HybridAutomaton::builder("plain");
        let l = b.location("L");
        b.initial(l, None);
        let a = b.build().unwrap();
        assert_eq!(strip_leases(&a), a);
    }

    #[test]
    fn no_lease_participant_sticks_in_risky_core() {
        // Leased: auto-exits after T_run = 35 s. Stripped: dwells forever.
        let cfg = LeaseConfig::case_study();
        let p = strip_leases(&build_participant(&cfg, 1, Pred::True).unwrap());
        let stim = stimulus(vec![(1.0, "evt_xi0_to_xi1_lease_req".to_string())]);
        let exec = Executor::new(vec![p, stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(300.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        assert!(risky[0].truncated, "still risky at trace end");
        assert!(risky[0].duration() > Time::seconds(290.0));
    }

    #[test]
    fn no_lease_participant_still_obeys_cancel() {
        let cfg = LeaseConfig::case_study();
        let p = strip_leases(&build_participant(&cfg, 1, Pred::True).unwrap());
        let stim = stimulus(vec![
            (1.0, "evt_xi0_to_xi1_lease_req".to_string()),
            (100.0, "evt_xi0_to_xi1_cancel".to_string()),
        ]);
        let exec = Executor::new(vec![p, stim], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(200.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        assert!(!risky[0].truncated);
        // 4 .. 100 + 6 = 106.
        assert!(risky[0]
            .end
            .approx_eq(Time::seconds(106.0), Time::seconds(1e-5)));
    }

    #[test]
    fn no_lease_initializer_sticks_without_cancel() {
        let cfg = LeaseConfig::case_study();
        let i = strip_leases(&build_initializer(&cfg).unwrap());
        let stim = stimulus(vec![(2.0, "evt_xi0_to_xi2_approve".to_string())]);
        let mut exec = Executor::new(vec![i, stim], ExecutorConfig::default()).unwrap();
        exec.add_driver(Box::new(pte_sim::driver::ScriptedDriver::new(
            "surgeon",
            vec![(Time::seconds(1.0), pte_hybrid::Root::new("cmd_request"))],
        )));
        let trace = exec.run_until(Time::seconds(120.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        assert!(risky[0].truncated, "laser stuck emitting");
        assert!(trace.events_with_root("evt_to_stop_xi2").is_empty());
    }
}
