//! Event root naming for the lease pattern.
//!
//! Event roots follow the paper's `evtξiToξjKind` scheme, lower-cased for
//! wire friendliness: `evt_xi{i}_to_xi{j}_{kind}`. Driver-facing commands
//! (the surgeon's buttons) and environment/sensor events use the `cmd_` /
//! `env_` prefixes and are delivered reliably (they are local to their
//! entity), while every `evt_` root crosses the wireless star and is
//! received with `??` labels.

use pte_hybrid::Root;

/// Generates the canonical event roots for an `N`-entity pattern system.
#[derive(Clone, Copy, Debug)]
pub struct EventNames {
    /// Number of remote entities `N`.
    pub n: usize,
}

impl EventNames {
    /// Creates the naming scheme for `n` remote entities.
    pub fn new(n: usize) -> EventNames {
        EventNames { n }
    }

    /// `evtξNToξ0Req` — the Initializer's lease request.
    pub fn req(&self) -> Root {
        Root::new(format!("evt_xi{}_to_xi0_req", self.n))
    }

    /// `evtξNToξ0Cancel` — the Initializer's cancellation.
    pub fn cancel_from_initializer(&self) -> Root {
        Root::new(format!("evt_xi{}_to_xi0_cancel", self.n))
    }

    /// `evtξ0ToξiLeaseReq` — Supervisor leases Participant `i`.
    pub fn lease_req(&self, i: usize) -> Root {
        Root::new(format!("evt_xi0_to_xi{i}_lease_req"))
    }

    /// `evtξiToξ0LeaseApprove`.
    pub fn lease_approve(&self, i: usize) -> Root {
        Root::new(format!("evt_xi{i}_to_xi0_lease_approve"))
    }

    /// `evtξiToξ0LeaseDeny`.
    pub fn lease_deny(&self, i: usize) -> Root {
        Root::new(format!("evt_xi{i}_to_xi0_lease_deny"))
    }

    /// `evtξ0ToξNApprove` — Supervisor approves the Initializer.
    pub fn approve(&self) -> Root {
        Root::new(format!("evt_xi0_to_xi{}_approve", self.n))
    }

    /// `evtξ0ToξiCancel`.
    pub fn cancel(&self, i: usize) -> Root {
        Root::new(format!("evt_xi0_to_xi{i}_cancel"))
    }

    /// `evtξ0ToξiAbort`.
    pub fn abort(&self, i: usize) -> Root {
        Root::new(format!("evt_xi0_to_xi{i}_abort"))
    }

    /// `evtξiToξ0Exit` — entity `i` reports its return to Fall-Back.
    pub fn exit(&self, i: usize) -> Root {
        Root::new(format!("evt_xi{i}_to_xi0_exit"))
    }

    /// Internal marker emitted when entity `i`'s lease expiry forces the
    /// exit from Risky Core (the `evtToStop` counted in Table I).
    pub fn to_stop(&self, i: usize) -> Root {
        Root::new(format!("evt_to_stop_xi{i}"))
    }

    /// Driver command: the Initializer's human requests the procedure.
    pub fn cmd_request(&self) -> Root {
        Root::new("cmd_request")
    }

    /// Driver command: the Initializer's human cancels.
    pub fn cmd_cancel(&self) -> Root {
        Root::new("cmd_cancel")
    }

    /// Environment event: `ApprovalCondition` became true (e.g. SpO2 rose
    /// above threshold). Wired to the Supervisor, hence reliable.
    pub fn env_approval_ok(&self) -> Root {
        Root::new("env_approval_ok")
    }

    /// Environment event: `ApprovalCondition` became false.
    pub fn env_approval_bad(&self) -> Root {
        Root::new("env_approval_bad")
    }

    /// Environment event: entity `i`'s `ParticipationCondition` became
    /// true again. Local to `ξi` (a wired sensor), hence reliable. Only
    /// deny-capable participants receive these
    /// ([`crate::pattern::build_participant_deniable`]).
    pub fn env_participation_ok(&self, i: usize) -> Root {
        Root::new(format!("env_participation_ok_xi{i}"))
    }

    /// Environment event: entity `i`'s `ParticipationCondition` became
    /// false.
    pub fn env_participation_bad(&self, i: usize) -> Root {
        Root::new(format!("env_participation_bad_xi{i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_paper_scheme() {
        let e = EventNames::new(2);
        assert_eq!(e.req().as_str(), "evt_xi2_to_xi0_req");
        assert_eq!(e.lease_req(1).as_str(), "evt_xi0_to_xi1_lease_req");
        assert_eq!(e.lease_approve(1).as_str(), "evt_xi1_to_xi0_lease_approve");
        assert_eq!(e.approve().as_str(), "evt_xi0_to_xi2_approve");
        assert_eq!(e.cancel(1).as_str(), "evt_xi0_to_xi1_cancel");
        assert_eq!(e.abort(2).as_str(), "evt_xi0_to_xi2_abort");
        assert_eq!(e.exit(1).as_str(), "evt_xi1_to_xi0_exit");
        assert_eq!(e.to_stop(2).as_str(), "evt_to_stop_xi2");
        assert_eq!(
            e.env_participation_ok(1).as_str(),
            "env_participation_ok_xi1"
        );
        assert_eq!(
            e.env_participation_bad(2).as_str(),
            "env_participation_bad_xi2"
        );
    }

    #[test]
    fn roots_unique_across_entities() {
        let e = EventNames::new(4);
        let mut all = vec![
            e.req(),
            e.cancel_from_initializer(),
            e.approve(),
            e.cmd_request(),
            e.cmd_cancel(),
            e.env_approval_ok(),
            e.env_approval_bad(),
        ];
        for i in 1..=4 {
            all.extend([
                e.lease_req(i),
                e.lease_approve(i),
                e.lease_deny(i),
                e.cancel(i),
                e.abort(i),
                e.exit(i),
                e.to_stop(i),
                e.env_participation_ok(i),
                e.env_participation_bad(i),
            ]);
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "all roots unique");
    }
}
