//! Configuration constants of the lease design pattern.
//!
//! All of the paper's cyber (software) timing parameters in one place,
//! indexed the paper's way: entity `ξi` for `i = 1 … N`, where `ξN` is the
//! Initializer and `ξ1 … ξN−1` are Participants. Theorem 1 constrains
//! exactly these constants (conditions c1–c7); nothing about the physical
//! world appears here — that isolation is the point of the methodology.

use crate::rules::{PairSpec, PteSpec};
use pte_hybrid::Time;
use serde::{Deserialize, Serialize};

/// Timing configuration for a lease-pattern system of `N ≥ 2` entities
/// (plus the Supervisor `ξ0`, which has no risky locations).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// `N` — number of remote entities (Participants `ξ1…ξN−1` plus the
    /// Initializer `ξN`). Must be ≥ 2.
    pub n: usize,
    /// `T^min_fb,0` — minimum continuous dwell of the Supervisor in
    /// Fall-Back before it may grant a new request.
    pub t_fb0_min: Time,
    /// `T^max_wait` — the Supervisor's per-step wait budget (for a lease
    /// approval or an exit acknowledgement) before it moves on.
    pub t_wait_max: Time,
    /// `T^max_req,N` — how long the Initializer dwells in Requesting
    /// before auto-returning to Fall-Back.
    pub t_req_max: Time,
    /// `T^max_enter,i` for `i = 1…N` (index 0 ↦ ξ1). Dwell in Entering
    /// before the risky core begins.
    pub t_enter: Vec<Time>,
    /// `T^max_run,i` for `i = 1…N` — the **lease**: the maximum dwell in
    /// Risky Core before the automatic exit.
    pub t_run: Vec<Time>,
    /// `T_exit,i` for `i = 1…N` — exact dwell in Exiting 1 / Exiting 2.
    pub t_exit: Vec<Time>,
    /// Safeguard intervals per adjacent pair:
    /// `safeguards[i] = (T^min_risky:i+1→i+2, T^min_safe:i+2→i+1)` using
    /// paper indices; i.e. entry `k` relates `ξk+1` and `ξk+2`.
    pub safeguards: Vec<PairSpec>,
}

impl LeaseConfig {
    /// `T^max_LS1 = T^max_enter,1 + T^max_run,1 + T_exit,1` (condition c2's
    /// definition): the full lease span of the outermost participant,
    /// which budgets the Supervisor's overall procedure.
    pub fn t_ls1(&self) -> Time {
        self.t_enter[0] + self.t_run[0] + self.t_exit[0]
    }

    /// Theorem 1's bound on any entity's continuous risky dwelling:
    /// `T^max_wait + T^max_LS1`.
    pub fn max_risky_dwelling(&self) -> Time {
        self.t_wait_max + self.t_ls1()
    }

    /// The paper's case-study configuration (Section V): N = 2,
    /// ventilator = ξ1, laser scalpel = ξ2.
    pub fn case_study() -> LeaseConfig {
        LeaseConfig {
            n: 2,
            t_fb0_min: Time::seconds(13.0),
            t_wait_max: Time::seconds(3.0),
            t_req_max: Time::seconds(5.0),
            t_enter: vec![Time::seconds(3.0), Time::seconds(10.0)],
            t_run: vec![Time::seconds(35.0), Time::seconds(20.0)],
            t_exit: vec![Time::seconds(6.0), Time::seconds(1.5)],
            safeguards: vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
        }
    }

    /// A c1–c7-satisfying lease chain of `n ≥ 2` interlocked entities
    /// (one Supervisor, `n` leased devices): the scalable scenario
    /// family behind the registry's `chain-N` entries.
    ///
    /// Construction (all constants integer or half-integer seconds, so
    /// tick scaling is exact): `T^max_wait = 1`, every exit dwell `1`,
    /// every safeguard pair `(1, 0.5)`, enter dwells `2i` (so each c5
    /// enter lead has slack 1), and run dwells built inner→outer so
    /// each c6 nesting inequality holds with slack exactly 1. That
    /// yields `T^max_LS1 = 5n + 2 > n·T^max_wait` (c2),
    /// `T^max_req = n` sits strictly inside c3's window, and the c4
    /// budget telescopes with slack `2(i−1)`. `check_conditions`
    /// verifies all of this mechanically for every `n` (unit-tested to
    /// `n = 8`).
    pub fn chain(n: usize) -> LeaseConfig {
        assert!(n >= 2, "the lease pattern needs at least 2 entities");
        let t_wait = 1.0;
        let t_enter: Vec<f64> = (1..=n).map(|i| (2 * i) as f64).collect();
        let t_exit = vec![1.0; n];
        let mut t_run = vec![0.0; n];
        t_run[n - 1] = 4.0;
        for i in (0..n - 1).rev() {
            // c6 with slack 1: enter_i + run_i = T_wait + enter_{i+1} +
            // run_{i+1} + exit_{i+1} + 1.
            t_run[i] = t_wait + t_enter[i + 1] + t_run[i + 1] + t_exit[i + 1] + 1.0 - t_enter[i];
        }
        LeaseConfig {
            n,
            t_fb0_min: Time::seconds(5.0),
            t_wait_max: Time::seconds(t_wait),
            t_req_max: Time::seconds(n as f64),
            t_enter: t_enter.into_iter().map(Time::seconds).collect(),
            t_run: t_run.into_iter().map(Time::seconds).collect(),
            t_exit: t_exit.into_iter().map(Time::seconds).collect(),
            safeguards: vec![PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)); n - 1],
        }
    }

    /// Entity names used by the pattern builders: `ξi` for `i = 1…N−1` is
    /// `participant{i}`, `ξN` is `initializer`.
    pub fn entity_name(&self, i: usize) -> String {
        debug_assert!((1..=self.n).contains(&i));
        if i == self.n {
            "initializer".to_string()
        } else {
            format!("participant{i}")
        }
    }

    /// The PTE specification this configuration is meant to satisfy, with
    /// Rule-1 bounds set to Theorem 1's dwelling bound.
    pub fn pte_spec(&self) -> PteSpec {
        let entities = (1..=self.n).map(|i| self.entity_name(i)).collect();
        PteSpec {
            entities,
            rule1_bounds: vec![self.max_risky_dwelling(); self.n],
            pairs: self.safeguards.clone(),
            tolerance: Time::seconds(1e-6),
        }
    }

    /// Structural sanity (dimension agreement); the *semantic* constraints
    /// are conditions c1–c7, checked by
    /// [`check_conditions`](crate::pattern::check_conditions).
    pub fn dimensions_ok(&self) -> bool {
        self.n >= 2
            && self.t_enter.len() == self.n
            && self.t_run.len() == self.n
            && self.t_exit.len() == self.n
            && self.safeguards.len() == self.n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_dimensions() {
        let c = LeaseConfig::case_study();
        assert!(c.dimensions_ok());
        assert_eq!(c.n, 2);
        assert_eq!(c.t_ls1(), Time::seconds(44.0));
        assert_eq!(c.max_risky_dwelling(), Time::seconds(47.0));
    }

    #[test]
    fn entity_names() {
        let c = LeaseConfig::case_study();
        assert_eq!(c.entity_name(1), "participant1");
        assert_eq!(c.entity_name(2), "initializer");
    }

    #[test]
    fn pte_spec_shape() {
        let c = LeaseConfig::case_study();
        let s = c.pte_spec();
        assert!(s.validate().is_ok());
        assert_eq!(s.entities, vec!["participant1", "initializer"]);
        assert_eq!(s.rule1_bounds[0], Time::seconds(47.0));
        assert_eq!(s.pairs[0].t_min_risky, Time::seconds(3.0));
    }

    #[test]
    fn chains_satisfy_all_conditions() {
        for n in 2..=8 {
            let cfg = LeaseConfig::chain(n);
            assert!(cfg.dimensions_ok(), "chain({n}) dimensions");
            assert!(cfg.pte_spec().validate().is_ok(), "chain({n}) spec");
            let report = crate::pattern::check_conditions(&cfg);
            assert!(report.is_satisfied(), "chain({n}):\n{report}");
        }
    }

    #[test]
    fn chain_2_shape() {
        let cfg = LeaseConfig::chain(2);
        assert_eq!(cfg.t_enter, vec![Time::seconds(2.0), Time::seconds(4.0)]);
        assert_eq!(cfg.t_run, vec![Time::seconds(9.0), Time::seconds(4.0)]);
        assert_eq!(cfg.t_ls1(), Time::seconds(12.0));
        let spec = cfg.pte_spec();
        assert_eq!(spec.entities, vec!["participant1", "initializer"]);
    }

    #[test]
    #[should_panic(expected = "at least 2 entities")]
    fn chain_rejects_n1() {
        let _ = LeaseConfig::chain(1);
    }

    #[test]
    fn bad_dimensions_detected() {
        let mut c = LeaseConfig::case_study();
        c.t_enter.pop();
        assert!(!c.dimensions_ok());
    }
}
