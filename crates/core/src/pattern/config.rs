//! Configuration constants of the lease design pattern.
//!
//! All of the paper's cyber (software) timing parameters in one place,
//! indexed the paper's way: entity `ξi` for `i = 1 … N`, where `ξN` is the
//! Initializer and `ξ1 … ξN−1` are Participants. Theorem 1 constrains
//! exactly these constants (conditions c1–c7); nothing about the physical
//! world appears here — that isolation is the point of the methodology.

use crate::rules::{PairSpec, PteSpec};
use pte_hybrid::Time;
use serde::{Deserialize, Serialize};

/// Timing configuration for a lease-pattern system of `N ≥ 2` entities
/// (plus the Supervisor `ξ0`, which has no risky locations).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// `N` — number of remote entities (Participants `ξ1…ξN−1` plus the
    /// Initializer `ξN`). Must be ≥ 2.
    pub n: usize,
    /// `T^min_fb,0` — minimum continuous dwell of the Supervisor in
    /// Fall-Back before it may grant a new request.
    pub t_fb0_min: Time,
    /// `T^max_wait` — the Supervisor's per-step wait budget (for a lease
    /// approval or an exit acknowledgement) before it moves on.
    pub t_wait_max: Time,
    /// `T^max_req,N` — how long the Initializer dwells in Requesting
    /// before auto-returning to Fall-Back.
    pub t_req_max: Time,
    /// `T^max_enter,i` for `i = 1…N` (index 0 ↦ ξ1). Dwell in Entering
    /// before the risky core begins.
    pub t_enter: Vec<Time>,
    /// `T^max_run,i` for `i = 1…N` — the **lease**: the maximum dwell in
    /// Risky Core before the automatic exit.
    pub t_run: Vec<Time>,
    /// `T_exit,i` for `i = 1…N` — exact dwell in Exiting 1 / Exiting 2.
    pub t_exit: Vec<Time>,
    /// Safeguard intervals per adjacent pair:
    /// `safeguards[i] = (T^min_risky:i+1→i+2, T^min_safe:i+2→i+1)` using
    /// paper indices; i.e. entry `k` relates `ξk+1` and `ξk+2`.
    pub safeguards: Vec<PairSpec>,
}

impl LeaseConfig {
    /// `T^max_LS1 = T^max_enter,1 + T^max_run,1 + T_exit,1` (condition c2's
    /// definition): the full lease span of the outermost participant,
    /// which budgets the Supervisor's overall procedure.
    pub fn t_ls1(&self) -> Time {
        self.t_enter[0] + self.t_run[0] + self.t_exit[0]
    }

    /// Theorem 1's bound on any entity's continuous risky dwelling:
    /// `T^max_wait + T^max_LS1`.
    pub fn max_risky_dwelling(&self) -> Time {
        self.t_wait_max + self.t_ls1()
    }

    /// The paper's case-study configuration (Section V): N = 2,
    /// ventilator = ξ1, laser scalpel = ξ2.
    pub fn case_study() -> LeaseConfig {
        LeaseConfig {
            n: 2,
            t_fb0_min: Time::seconds(13.0),
            t_wait_max: Time::seconds(3.0),
            t_req_max: Time::seconds(5.0),
            t_enter: vec![Time::seconds(3.0), Time::seconds(10.0)],
            t_run: vec![Time::seconds(35.0), Time::seconds(20.0)],
            t_exit: vec![Time::seconds(6.0), Time::seconds(1.5)],
            safeguards: vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
        }
    }

    /// Entity names used by the pattern builders: `ξi` for `i = 1…N−1` is
    /// `participant{i}`, `ξN` is `initializer`.
    pub fn entity_name(&self, i: usize) -> String {
        debug_assert!((1..=self.n).contains(&i));
        if i == self.n {
            "initializer".to_string()
        } else {
            format!("participant{i}")
        }
    }

    /// The PTE specification this configuration is meant to satisfy, with
    /// Rule-1 bounds set to Theorem 1's dwelling bound.
    pub fn pte_spec(&self) -> PteSpec {
        let entities = (1..=self.n).map(|i| self.entity_name(i)).collect();
        PteSpec {
            entities,
            rule1_bounds: vec![self.max_risky_dwelling(); self.n],
            pairs: self.safeguards.clone(),
            tolerance: Time::seconds(1e-6),
        }
    }

    /// Structural sanity (dimension agreement); the *semantic* constraints
    /// are conditions c1–c7, checked by
    /// [`check_conditions`](crate::pattern::check_conditions).
    pub fn dimensions_ok(&self) -> bool {
        self.n >= 2
            && self.t_enter.len() == self.n
            && self.t_run.len() == self.n
            && self.t_exit.len() == self.n
            && self.safeguards.len() == self.n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_dimensions() {
        let c = LeaseConfig::case_study();
        assert!(c.dimensions_ok());
        assert_eq!(c.n, 2);
        assert_eq!(c.t_ls1(), Time::seconds(44.0));
        assert_eq!(c.max_risky_dwelling(), Time::seconds(47.0));
    }

    #[test]
    fn entity_names() {
        let c = LeaseConfig::case_study();
        assert_eq!(c.entity_name(1), "participant1");
        assert_eq!(c.entity_name(2), "initializer");
    }

    #[test]
    fn pte_spec_shape() {
        let c = LeaseConfig::case_study();
        let s = c.pte_spec();
        assert!(s.validate().is_ok());
        assert_eq!(s.entities, vec!["participant1", "initializer"]);
        assert_eq!(s.rule1_bounds[0], Time::seconds(47.0));
        assert_eq!(s.pairs[0].t_min_risky, Time::seconds(3.0));
    }

    #[test]
    fn bad_dimensions_detected() {
        let mut c = LeaseConfig::case_study();
        c.t_enter.pop();
        assert!(!c.dimensions_ok());
    }
}
