//! The closed-form constraints c1–c7 of Theorem 1.
//!
//! If a lease-pattern system's timing constants satisfy all seven
//! conditions, the PTE safety rules hold **under arbitrary loss of every
//! wirelessly-communicated event** (Theorem 1). Each condition is checked
//! and reported individually so misconfigurations are diagnosable (the
//! Section V scenario 3 walkthrough — `T^max_enter,1 = T^max_enter,2`
//! violating c5 — is reproduced as an ablation bench).

use crate::pattern::config::LeaseConfig;
use pte_hybrid::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of Theorem 1's conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Condition {
    /// c1: all configuration constants positive.
    C1,
    /// c2: `T^max_LS1 > N · T^max_wait`.
    C2,
    /// c3: `(N−1) T^max_wait < T^max_req,N < T^max_LS1`.
    C3,
    /// c4: `(i−1) T^max_wait + T^max_enter,i + T^max_run,i + T_exit,i ≤
    /// T^max_LS1` for all `i`.
    C4,
    /// c5: `T^max_enter,i + T^min_risky:i→i+1 < T^max_enter,i+1`.
    C5,
    /// c6: `T^max_enter,i + T^max_run,i > T^max_wait + T^max_enter,i+1 +
    /// T^max_run,i+1 + T_exit,i+1`.
    C6,
    /// c7: `T_exit,i > T^min_safe:i+1→i`.
    C7,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Condition::C1 => "c1",
            Condition::C2 => "c2",
            Condition::C3 => "c3",
            Condition::C4 => "c4",
            Condition::C5 => "c5",
            Condition::C6 => "c6",
            Condition::C7 => "c7",
        };
        write!(f, "{name}")
    }
}

/// The outcome of checking one condition instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConditionCheck {
    /// Which condition.
    pub condition: Condition,
    /// Entity index `i` the instance applies to, when per-entity.
    pub index: Option<usize>,
    /// Whether it holds.
    pub satisfied: bool,
    /// Human-readable instantiation (numbers plugged in).
    pub detail: String,
    /// Slack: how far inside the constraint the configuration sits
    /// (negative when violated). For strict inequalities the slack is the
    /// strict margin.
    pub slack: Time,
}

/// Aggregate report of all condition checks.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ConditionReport {
    /// Every condition instance checked.
    pub checks: Vec<ConditionCheck>,
}

impl ConditionReport {
    /// `true` iff every condition instance holds.
    pub fn is_satisfied(&self) -> bool {
        self.checks.iter().all(|c| c.satisfied)
    }

    /// The violated instances.
    pub fn violations(&self) -> Vec<&ConditionCheck> {
        self.checks.iter().filter(|c| !c.satisfied).collect()
    }

    /// The smallest slack across all instances (how close to the boundary
    /// the configuration sits).
    pub fn min_slack(&self) -> Option<Time> {
        self.checks.iter().map(|c| c.slack).min()
    }
}

impl fmt::Display for ConditionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            writeln!(
                f,
                "[{}] {}{}: {} (slack {})",
                if c.satisfied { "ok" } else { "VIOLATED" },
                c.condition,
                c.index.map(|i| format!("(i={i})")).unwrap_or_default(),
                c.detail,
                c.slack
            )?;
        }
        Ok(())
    }
}

/// Checks conditions c1–c7 of Theorem 1 against a configuration.
///
/// Also verifies dimensional sanity first; dimension errors surface as a
/// single failed pseudo-check on c1.
pub fn check_conditions(cfg: &LeaseConfig) -> ConditionReport {
    let mut report = ConditionReport::default();
    if !cfg.dimensions_ok() {
        report.checks.push(ConditionCheck {
            condition: Condition::C1,
            index: None,
            satisfied: false,
            detail: "configuration dimensions inconsistent (need n>=2, \
                     t_enter/t_run/t_exit of length n, safeguards of length n-1)"
                .to_string(),
            slack: Time::seconds(-1.0),
        });
        return report;
    }

    let n = cfg.n;
    let t_ls1 = cfg.t_ls1();

    // c1: positivity of every configuration constant.
    {
        let mut constants: Vec<(String, Time)> = vec![
            ("T_wait_max".into(), cfg.t_wait_max),
            ("T_fb0_min".into(), cfg.t_fb0_min),
            ("T_LS1_max".into(), t_ls1),
            ("T_req_max".into(), cfg.t_req_max),
        ];
        for i in 1..=n {
            constants.push((format!("T_enter_{i}"), cfg.t_enter[i - 1]));
            constants.push((format!("T_run_{i}"), cfg.t_run[i - 1]));
            constants.push((format!("T_exit_{i}"), cfg.t_exit[i - 1]));
        }
        let min = constants
            .iter()
            .map(|(_, v)| *v)
            .min()
            .unwrap_or(Time::ZERO);
        let bad: Vec<&str> = constants
            .iter()
            .filter(|(_, v)| *v <= Time::ZERO)
            .map(|(n, _)| n.as_str())
            .collect();
        report.checks.push(ConditionCheck {
            condition: Condition::C1,
            index: None,
            satisfied: bad.is_empty(),
            detail: if bad.is_empty() {
                "all configuration constants positive".to_string()
            } else {
                format!("non-positive constants: {}", bad.join(", "))
            },
            slack: min,
        });
    }

    // c2: T_LS1 > N * T_wait.
    {
        let rhs = cfg.t_wait_max * n as f64;
        report.checks.push(ConditionCheck {
            condition: Condition::C2,
            index: None,
            satisfied: t_ls1 > rhs,
            detail: format!("T_LS1 = {t_ls1} > N*T_wait = {rhs}"),
            slack: t_ls1 - rhs,
        });
    }

    // c3: (N-1) T_wait < T_req < T_LS1.
    {
        let lo = cfg.t_wait_max * (n as f64 - 1.0);
        let lower_ok = cfg.t_req_max > lo;
        let upper_ok = cfg.t_req_max < t_ls1;
        let slack = (cfg.t_req_max - lo).min(t_ls1 - cfg.t_req_max);
        report.checks.push(ConditionCheck {
            condition: Condition::C3,
            index: None,
            satisfied: lower_ok && upper_ok,
            detail: format!(
                "(N-1)*T_wait = {lo} < T_req = {} < T_LS1 = {t_ls1}",
                cfg.t_req_max
            ),
            slack,
        });
    }

    // c4: (i-1) T_wait + T_enter_i + T_run_i + T_exit_i <= T_LS1.
    for i in 1..=n {
        let lhs = cfg.t_wait_max * (i as f64 - 1.0)
            + cfg.t_enter[i - 1]
            + cfg.t_run[i - 1]
            + cfg.t_exit[i - 1];
        report.checks.push(ConditionCheck {
            condition: Condition::C4,
            index: Some(i),
            satisfied: lhs <= t_ls1,
            detail: format!("(i-1)T_wait + enter+run+exit = {lhs} <= T_LS1 = {t_ls1}"),
            slack: t_ls1 - lhs,
        });
    }

    // c5: T_enter_i + T_risky(i->i+1) < T_enter_{i+1}.
    for i in 1..n {
        let lhs = cfg.t_enter[i - 1] + cfg.safeguards[i - 1].t_min_risky;
        let rhs = cfg.t_enter[i];
        report.checks.push(ConditionCheck {
            condition: Condition::C5,
            index: Some(i),
            satisfied: lhs < rhs,
            detail: format!(
                "T_enter_{i} + T_risky({i}->{}) = {lhs} < T_enter_{} = {rhs}",
                i + 1,
                i + 1
            ),
            slack: rhs - lhs,
        });
    }

    // c6: T_enter_i + T_run_i > T_wait + T_enter_{i+1} + T_run_{i+1} +
    //     T_exit_{i+1}.
    for i in 1..n {
        let lhs = cfg.t_enter[i - 1] + cfg.t_run[i - 1];
        let rhs = cfg.t_wait_max + cfg.t_enter[i] + cfg.t_run[i] + cfg.t_exit[i];
        report.checks.push(ConditionCheck {
            condition: Condition::C6,
            index: Some(i),
            satisfied: lhs > rhs,
            detail: format!(
                "T_enter_{i}+T_run_{i} = {lhs} > T_wait+T_enter_{j}+T_run_{j}+T_exit_{j} = {rhs}",
                j = i + 1
            ),
            slack: lhs - rhs,
        });
    }

    // c7: T_exit_i > T_safe(i+1 -> i).
    for i in 1..n {
        let lhs = cfg.t_exit[i - 1];
        let rhs = cfg.safeguards[i - 1].t_min_safe;
        report.checks.push(ConditionCheck {
            condition: Condition::C7,
            index: Some(i),
            satisfied: lhs > rhs,
            detail: format!("T_exit_{i} = {lhs} > T_safe({} -> {i}) = {rhs}", i + 1),
            slack: lhs - rhs,
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::PairSpec;

    #[test]
    fn case_study_satisfies_all_conditions() {
        let report = check_conditions(&LeaseConfig::case_study());
        assert!(report.is_satisfied(), "{report}");
        // Spot-check the instantiated numbers against the paper:
        // T_LS1 = 3 + 35 + 6 = 44 > 2*3 = 6 (c2).
        let c2 = report
            .checks
            .iter()
            .find(|c| c.condition == Condition::C2)
            .unwrap();
        assert!(c2.slack.approx_eq(Time::seconds(38.0), Time::seconds(1e-9)));
    }

    #[test]
    fn c5_violated_by_equal_enter_times() {
        // Section V scenario 3: T_enter_2 = T_enter_1 violates c5 because
        // T_risky(1->2) = 3 > 0.
        let mut cfg = LeaseConfig::case_study();
        cfg.t_enter[1] = cfg.t_enter[0];
        let report = check_conditions(&cfg);
        assert!(!report.is_satisfied());
        let v = report.violations();
        assert!(v.iter().any(|c| c.condition == Condition::C5));
    }

    #[test]
    fn c1_detects_nonpositive() {
        let mut cfg = LeaseConfig::case_study();
        cfg.t_exit[0] = Time::ZERO;
        let report = check_conditions(&cfg);
        assert!(report
            .violations()
            .iter()
            .any(|c| c.condition == Condition::C1));
    }

    #[test]
    fn c2_violated_by_large_wait() {
        let mut cfg = LeaseConfig::case_study();
        cfg.t_wait_max = Time::seconds(30.0); // 2*30 = 60 > 44
        let report = check_conditions(&cfg);
        assert!(report
            .violations()
            .iter()
            .any(|c| c.condition == Condition::C2));
    }

    #[test]
    fn c3_violated_by_small_req() {
        let mut cfg = LeaseConfig::case_study();
        cfg.t_req_max = Time::seconds(2.0); // (N-1)*T_wait = 3 > 2
        let report = check_conditions(&cfg);
        assert!(report
            .violations()
            .iter()
            .any(|c| c.condition == Condition::C3));
    }

    #[test]
    fn c4_violated_by_long_inner_lease() {
        let mut cfg = LeaseConfig::case_study();
        cfg.t_run[1] = Time::seconds(60.0); // 3 + 10 + 60 + 1.5 > 44
        let report = check_conditions(&cfg);
        assert!(report
            .violations()
            .iter()
            .any(|c| c.condition == Condition::C4 && c.index == Some(2)));
    }

    #[test]
    fn c6_violated_by_short_outer_run() {
        let mut cfg = LeaseConfig::case_study();
        cfg.t_run[0] = Time::seconds(20.0); // 3+20 = 23 < 3+10+20+1.5 = 34.5
        let report = check_conditions(&cfg);
        assert!(report
            .violations()
            .iter()
            .any(|c| c.condition == Condition::C6));
    }

    #[test]
    fn c7_violated_by_short_exit() {
        let mut cfg = LeaseConfig::case_study();
        cfg.t_exit[0] = Time::seconds(1.0); // 1 < 1.5
        let report = check_conditions(&cfg);
        assert!(report
            .violations()
            .iter()
            .any(|c| c.condition == Condition::C7));
    }

    #[test]
    fn dimension_error_reported() {
        let mut cfg = LeaseConfig::case_study();
        cfg.safeguards = vec![];
        let report = check_conditions(&cfg);
        assert!(!report.is_satisfied());
    }

    #[test]
    fn min_slack_is_tightest_constraint() {
        let report = check_conditions(&LeaseConfig::case_study());
        let min = report.min_slack().unwrap();
        // c4 at i=1 is an equality by definition (T_LS1 = enter+run+exit of
        // ξ1), so the minimum slack is exactly 0; the tightest *strict*
        // constraint is c3's lower bound: T_req - (N-1)T_wait = 5 - 3 = 2.
        assert!(min.approx_eq(Time::ZERO, Time::seconds(1e-9)), "{min}");
        let strict_min = report
            .checks
            .iter()
            .filter(|c| c.condition != Condition::C4 && c.condition != Condition::C1)
            .map(|c| c.slack)
            .min()
            .unwrap();
        assert!(
            strict_min.approx_eq(Time::seconds(2.0), Time::seconds(1e-9)),
            "{strict_min}"
        );
    }

    #[test]
    fn three_entity_configuration() {
        // A hand-built N=3 configuration satisfying all conditions.
        let cfg = LeaseConfig {
            n: 3,
            t_fb0_min: Time::seconds(10.0),
            t_wait_max: Time::seconds(2.0),
            t_req_max: Time::seconds(5.0),
            t_enter: vec![Time::seconds(2.0), Time::seconds(6.0), Time::seconds(10.0)],
            t_run: vec![
                Time::seconds(60.0),
                Time::seconds(40.0),
                Time::seconds(15.0),
            ],
            t_exit: vec![Time::seconds(6.0), Time::seconds(4.0), Time::seconds(1.0)],
            safeguards: vec![
                PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
                PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
            ],
        };
        let report = check_conditions(&cfg);
        assert!(report.is_satisfied(), "{report}");
    }
}
