//! Offline PTE monitor: checks Rule 1 and Rule 2 over a trace.
//!
//! The monitor extracts each ordered entity's maximal risky dwelling
//! intervals from the trace and evaluates:
//!
//! * **Rule 1** — every interval's duration against the entity's bound
//!   (truncated intervals count once their elapsed span already exceeds
//!   the bound);
//! * **Rule 2 / p2** — every inner risky interval must be fully covered by
//!   one outer risky interval;
//! * **Rule 2 / p1** — the covering outer interval must have started at
//!   least `T^min_risky` before the inner one (enter-risky safeguard);
//! * **Rule 2 / p3** — the covering outer interval must end at least
//!   `T^min_safe` after the inner one (exit-risky safeguard). If the outer
//!   interval is truncated by the end of the trace, the future is unknown
//!   and the exit margin is not judged.
//!
//! Margins are measured and reported even when satisfied, so experiments
//! can plot worst-case margins (the ablation benches use this).

use crate::rules::PteSpec;
use pte_hybrid::Time;
use pte_sim::trace::{Interval, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One PTE violation with diagnostic detail.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// An entity named in the spec does not appear in the trace.
    EntityNotInTrace {
        /// The missing entity name.
        entity: String,
    },
    /// Rule 1: a continuous risky dwelling exceeded its bound.
    Rule1 {
        /// Offending entity.
        entity: String,
        /// The offending interval.
        interval: Interval,
        /// The configured bound.
        bound: Time,
    },
    /// Rule 2 / p2: an inner risky interval is not covered by any outer
    /// risky interval.
    NotCovered {
        /// Outer entity (must be risky whenever inner is).
        outer: String,
        /// Inner entity.
        inner: String,
        /// The uncovered inner interval.
        interval: Interval,
    },
    /// Rule 2 / p1: the enter-risky safeguard was violated.
    EnterMargin {
        /// Outer entity.
        outer: String,
        /// Inner entity.
        inner: String,
        /// Required minimum lead time (`T^min_risky`).
        required: Time,
        /// Measured lead time (outer enter → inner enter).
        actual: Time,
        /// Inner interval whose entry violated the safeguard.
        interval: Interval,
    },
    /// Rule 2 / p3: the exit-risky safeguard was violated.
    ExitMargin {
        /// Outer entity.
        outer: String,
        /// Inner entity.
        inner: String,
        /// Required minimum lag time (`T^min_safe`).
        required: Time,
        /// Measured lag time (inner exit → outer exit).
        actual: Time,
        /// Inner interval whose exit violated the safeguard.
        interval: Interval,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EntityNotInTrace { entity } => {
                write!(f, "entity `{entity}` not present in trace")
            }
            Violation::Rule1 {
                entity,
                interval,
                bound,
            } => write!(
                f,
                "Rule 1: `{entity}` dwelt in risky locations for {} (> bound {bound}) during {interval}",
                interval.duration()
            ),
            Violation::NotCovered {
                outer,
                inner,
                interval,
            } => write!(
                f,
                "Rule 2/p2: `{inner}` risky during {interval} without `{outer}` covering it"
            ),
            Violation::EnterMargin {
                outer,
                inner,
                required,
                actual,
                interval,
            } => write!(
                f,
                "Rule 2/p1: `{inner}` entered risky at {} only {actual} after `{outer}` (requires {required})",
                interval.start
            ),
            Violation::ExitMargin {
                outer,
                inner,
                required,
                actual,
                interval,
            } => write!(
                f,
                "Rule 2/p3: `{outer}` exited risky only {actual} after `{inner}` exited at {} (requires {required})",
                interval.end
            ),
        }
    }
}

/// Measured safeguard margins for one inner interval (reported even when
/// the rules hold — experiments plot the worst case).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairMargins {
    /// Outer entity name.
    pub outer: String,
    /// Inner entity name.
    pub inner: String,
    /// The inner interval.
    pub interval: Interval,
    /// Measured enter lead (outer enter → inner enter), if covered.
    pub enter_lead: Option<Time>,
    /// Measured exit lag (inner exit → outer exit), if judgeable.
    pub exit_lag: Option<Time>,
}

/// The monitor's verdict over one trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PteReport {
    /// All violations found, in detection order.
    pub violations: Vec<Violation>,
    /// Risky intervals per ordered entity (diagnostics).
    pub intervals: Vec<(String, Vec<Interval>)>,
    /// Measured margins for every judged inner interval.
    pub margins: Vec<PairMargins>,
}

impl PteReport {
    /// `true` if the trace satisfies every PTE safety rule.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations (the "failures" of Table I).
    pub fn failure_count(&self) -> usize {
        self.violations.len()
    }

    /// The smallest measured enter-risky lead across all pairs, if any
    /// inner interval was judged.
    pub fn worst_enter_lead(&self) -> Option<Time> {
        self.margins.iter().filter_map(|m| m.enter_lead).min()
    }

    /// The smallest measured exit-risky lag across all pairs.
    pub fn worst_exit_lag(&self) -> Option<Time> {
        self.margins.iter().filter_map(|m| m.exit_lag).min()
    }
}

impl fmt::Display for PteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_safe() {
            writeln!(f, "PTE: SAFE ({} intervals judged)", self.margins.len())?;
        } else {
            writeln!(f, "PTE: {} violation(s)", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
        }
        Ok(())
    }
}

/// Checks the PTE safety rules over a trace.
///
/// Entities are matched to trace automata by name; ordering and constants
/// come from the spec. See the module docs for the exact semantics of
/// truncated intervals.
pub fn check_pte(trace: &Trace, spec: &PteSpec) -> PteReport {
    let mut report = PteReport::default();
    let tol = spec.tolerance;

    // Resolve entities and extract risky intervals.
    let mut resolved: Vec<Option<usize>> = Vec::with_capacity(spec.entities.len());
    for name in &spec.entities {
        let idx = trace.index_of(name);
        if idx.is_none() {
            report.violations.push(Violation::EntityNotInTrace {
                entity: name.clone(),
            });
        }
        resolved.push(idx);
    }
    let intervals: Vec<Vec<Interval>> = resolved
        .iter()
        .map(|idx| idx.map(|i| trace.risky_intervals(i)).unwrap_or_default())
        .collect();
    for (name, ivs) in spec.entities.iter().zip(&intervals) {
        report.intervals.push((name.clone(), ivs.clone()));
    }

    // Rule 1.
    for ((name, ivs), bound) in spec.entities.iter().zip(&intervals).zip(&spec.rule1_bounds) {
        for iv in ivs {
            if iv.duration() > *bound + tol {
                report.violations.push(Violation::Rule1 {
                    entity: name.clone(),
                    interval: *iv,
                    bound: *bound,
                });
            }
        }
    }

    // Rule 2, adjacent pairs (the full order reduces to adjacent checks:
    // coverage is transitive and margins compose).
    for (k, pair) in spec.pairs.iter().enumerate() {
        let outer_name = &spec.entities[k];
        let inner_name = &spec.entities[k + 1];
        let outer = &intervals[k];
        let inner = &intervals[k + 1];
        if resolved[k].is_none() || resolved[k + 1].is_none() {
            continue;
        }

        for iv in inner {
            // p2: find the covering outer interval.
            let cover = outer
                .iter()
                .find(|o| o.start <= iv.start + tol && o.end + tol >= iv.end);
            let Some(cover) = cover else {
                report.violations.push(Violation::NotCovered {
                    outer: outer_name.clone(),
                    inner: inner_name.clone(),
                    interval: *iv,
                });
                report.margins.push(PairMargins {
                    outer: outer_name.clone(),
                    inner: inner_name.clone(),
                    interval: *iv,
                    enter_lead: None,
                    exit_lag: None,
                });
                continue;
            };

            // p1: enter-risky safeguard.
            let lead = iv.start - cover.start;
            if lead + tol < pair.t_min_risky {
                report.violations.push(Violation::EnterMargin {
                    outer: outer_name.clone(),
                    inner: inner_name.clone(),
                    required: pair.t_min_risky,
                    actual: lead,
                    interval: *iv,
                });
            }

            // p3: exit-risky safeguard. If either interval is truncated by
            // trace end, the true exits are unknown — skip judgement.
            let mut lag = None;
            if !iv.truncated && !cover.truncated {
                let l = cover.end - iv.end;
                lag = Some(l);
                if l + tol < pair.t_min_safe {
                    report.violations.push(Violation::ExitMargin {
                        outer: outer_name.clone(),
                        inner: inner_name.clone(),
                        required: pair.t_min_safe,
                        actual: l,
                        interval: *iv,
                    });
                }
            }

            report.margins.push(PairMargins {
                outer: outer_name.clone(),
                inner: inner_name.clone(),
                interval: *iv,
                enter_lead: Some(lead),
                exit_lag: lag,
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::PairSpec;
    use pte_hybrid::{LocId, Time};
    use pte_sim::trace::{AutMeta, TraceEvent};

    /// Builds a two-entity trace from explicit risky windows.
    /// Each entity has locations 0 = safe, 1 = risky.
    fn trace_from_windows(outer: &[(f64, f64)], inner: &[(f64, f64)], end: f64) -> Trace {
        let meta = vec![
            AutMeta {
                name: "outer".into(),
                loc_names: vec!["Safe".into(), "Risky".into()],
                risky: vec![false, true],
                var_names: vec![],
            },
            AutMeta {
                name: "inner".into(),
                loc_names: vec!["Safe".into(), "Risky".into()],
                risky: vec![false, true],
                var_names: vec![],
            },
        ];
        let mut events = vec![
            TraceEvent::Init {
                t: Time::ZERO,
                aut: 0,
                loc: LocId(0),
            },
            TraceEvent::Init {
                t: Time::ZERO,
                aut: 1,
                loc: LocId(0),
            },
        ];
        for (aut, windows) in [(0usize, outer), (1usize, inner)] {
            for (s, e) in windows {
                events.push(TraceEvent::Transition {
                    t: Time::seconds(*s),
                    aut,
                    from: LocId(0),
                    to: LocId(1),
                    trigger: None,
                });
                if *e <= end {
                    events.push(TraceEvent::Transition {
                        t: Time::seconds(*e),
                        aut,
                        from: LocId(1),
                        to: LocId(0),
                        trigger: None,
                    });
                }
            }
        }
        events.sort_by_key(|a| a.time());
        Trace {
            meta,
            events,
            samples: vec![],
            end_time: Time::seconds(end),
        }
    }

    fn spec(bound: f64, t_risky: f64, t_safe: f64) -> PteSpec {
        PteSpec::uniform(
            vec!["outer".into(), "inner".into()],
            Time::seconds(bound),
            vec![PairSpec::new(Time::seconds(t_risky), Time::seconds(t_safe))],
        )
    }

    #[test]
    fn clean_embedding_is_safe() {
        // outer risky [10, 40), inner risky [15, 30): lead 5 >= 3,
        // lag 10 >= 1.5, durations <= 60.
        let t = trace_from_windows(&[(10.0, 40.0)], &[(15.0, 30.0)], 100.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert!(r.is_safe(), "{r}");
        assert_eq!(r.margins.len(), 1);
        assert_eq!(r.margins[0].enter_lead, Some(Time::seconds(5.0)));
        assert_eq!(r.margins[0].exit_lag, Some(Time::seconds(10.0)));
        assert_eq!(r.worst_enter_lead(), Some(Time::seconds(5.0)));
        assert_eq!(r.worst_exit_lag(), Some(Time::seconds(10.0)));
    }

    #[test]
    fn rule1_violation_detected() {
        let t = trace_from_windows(&[(0.0, 90.0)], &[], 100.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert_eq!(r.failure_count(), 1);
        assert!(matches!(&r.violations[0],
            Violation::Rule1 { entity, .. } if entity == "outer"));
    }

    #[test]
    fn rule1_truncated_interval_counts_when_already_over() {
        // Still risky at trace end with 70 s elapsed > 60 s bound.
        let t = trace_from_windows(&[(10.0, 1000.0)], &[], 80.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert_eq!(r.failure_count(), 1);
    }

    #[test]
    fn rule1_truncated_interval_ok_when_under() {
        let t = trace_from_windows(&[(70.0, 1000.0)], &[], 80.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert!(r.is_safe());
    }

    #[test]
    fn uncovered_inner_detected() {
        // Inner risky with outer never risky.
        let t = trace_from_windows(&[], &[(5.0, 10.0)], 100.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotCovered { .. })));
    }

    #[test]
    fn partial_coverage_detected() {
        // Outer exits before inner does.
        let t = trace_from_windows(&[(0.0, 20.0)], &[(5.0, 30.0)], 100.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotCovered { .. })));
    }

    #[test]
    fn enter_margin_violation_detected() {
        // Lead is only 1 s (< 3 s).
        let t = trace_from_windows(&[(10.0, 40.0)], &[(11.0, 30.0)], 100.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert_eq!(r.failure_count(), 1);
        match &r.violations[0] {
            Violation::EnterMargin {
                required, actual, ..
            } => {
                assert_eq!(*required, Time::seconds(3.0));
                assert!(actual.approx_eq(Time::seconds(1.0), Time::seconds(1e-9)));
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn exit_margin_violation_detected() {
        // Lag is only 0.5 s (< 1.5 s).
        let t = trace_from_windows(&[(10.0, 30.5)], &[(15.0, 30.0)], 100.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert_eq!(r.failure_count(), 1);
        assert!(matches!(&r.violations[0], Violation::ExitMargin { .. }));
    }

    #[test]
    fn truncated_outer_skips_exit_judgement() {
        // Outer still risky at trace end: exit lag unknowable, not a
        // violation.
        let t = trace_from_windows(&[(10.0, 1000.0)], &[(15.0, 30.0)], 50.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert!(r.is_safe(), "{r}");
        assert_eq!(r.margins[0].exit_lag, None);
    }

    #[test]
    fn multiple_rounds_checked_independently() {
        let t = trace_from_windows(
            &[(10.0, 40.0), (60.0, 95.0)],
            &[(15.0, 30.0), (64.0, 80.0)],
            120.0,
        );
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        assert!(r.is_safe(), "{r}");
        assert_eq!(r.margins.len(), 2);
        // Second round lead = 4.
        assert_eq!(r.margins[1].enter_lead, Some(Time::seconds(4.0)));
    }

    #[test]
    fn missing_entity_reported() {
        let t = trace_from_windows(&[], &[], 10.0);
        let mut s = spec(60.0, 3.0, 1.5);
        s.entities[1] = "ghost".into();
        let r = check_pte(&t, &s);
        assert!(matches!(
            &r.violations[0],
            Violation::EntityNotInTrace { entity } if entity == "ghost"
        ));
    }

    #[test]
    fn report_display_readable() {
        let t = trace_from_windows(&[(10.0, 40.0)], &[(11.0, 30.0)], 100.0);
        let r = check_pte(&t, &spec(60.0, 3.0, 1.5));
        let s = format!("{r}");
        assert!(s.contains("violation"));
        assert!(s.contains("Rule 2/p1"));
    }

    #[test]
    fn three_entity_chain() {
        // xi1 ⊃ xi2 ⊃ xi3, all margins satisfied.
        let meta: Vec<AutMeta> = ["e1", "e2", "e3"]
            .iter()
            .map(|n| AutMeta {
                name: (*n).into(),
                loc_names: vec!["S".into(), "R".into()],
                risky: vec![false, true],
                var_names: vec![],
            })
            .collect();
        let mut events = Vec::new();
        for aut in 0..3 {
            events.push(TraceEvent::Init {
                t: Time::ZERO,
                aut,
                loc: LocId(0),
            });
        }
        let windows = [(10.0, 60.0), (15.0, 50.0), (20.0, 40.0)];
        for (aut, (s, e)) in windows.iter().enumerate() {
            events.push(TraceEvent::Transition {
                t: Time::seconds(*s),
                aut,
                from: LocId(0),
                to: LocId(1),
                trigger: None,
            });
            events.push(TraceEvent::Transition {
                t: Time::seconds(*e),
                aut,
                from: LocId(1),
                to: LocId(0),
                trigger: None,
            });
        }
        events.sort_by_key(|a| a.time());
        let t = Trace {
            meta,
            events,
            samples: vec![],
            end_time: Time::seconds(100.0),
        };
        let s = PteSpec::uniform(
            vec!["e1".into(), "e2".into(), "e3".into()],
            Time::seconds(60.0),
            vec![
                PairSpec::new(Time::seconds(3.0), Time::seconds(2.0)),
                PairSpec::new(Time::seconds(3.0), Time::seconds(2.0)),
            ],
        );
        let r = check_pte(&t, &s);
        assert!(r.is_safe(), "{r}");
        assert_eq!(r.margins.len(), 2);
    }
}
