//! The PTE safety rules as a checkable specification (Section III).
//!
//! * **Rule 1 (Bounded Dwelling).** Each entity's continuous dwelling time
//!   in risky locations is upper bounded by a constant.
//! * **Rule 2 (Proper-Temporal-Embedding).** The PTE partial order
//!   (Definition 1, properties p1–p3) between entities forms a full order
//!   `ξ1 < ξ2 < … < ξN`: whenever an inner entity is risky, every outer
//!   entity is already risky (p2), the outer entered at least
//!   `T^min_risky:i→i+1` earlier (p1), and will stay risky at least
//!   `T^min_safe:i+1→i` after the inner exits (p3).

use pte_hybrid::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Safeguard intervals for one adjacent pair `ξi < ξi+1` of the full order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairSpec {
    /// `T^min_risky:i→i+1` — the outer entity must have been risky at
    /// least this long before the inner entity becomes risky (p1).
    pub t_min_risky: Time,
    /// `T^min_safe:i+1→i` — the outer entity must remain risky at least
    /// this long after the inner entity returns to safe (p3).
    pub t_min_safe: Time,
}

impl PairSpec {
    /// Creates a pair specification.
    pub fn new(t_min_risky: Time, t_min_safe: Time) -> PairSpec {
        PairSpec {
            t_min_risky,
            t_min_safe,
        }
    }
}

/// A complete PTE safety rule set for a wireless CPS.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PteSpec {
    /// Entity (automaton) names in PTE order `ξ1 < ξ2 < … < ξN`.
    /// The Supervisor `ξ0` is *not* listed — the paper does not partition
    /// its locations into safe/risky.
    pub entities: Vec<String>,
    /// Rule 1: the bound on continuous risky dwelling, per entity
    /// (indexed like [`PteSpec::entities`]).
    pub rule1_bounds: Vec<Time>,
    /// Safeguard intervals for each adjacent pair
    /// (`pairs[i]` relates `entities[i]` and `entities[i+1]`).
    pub pairs: Vec<PairSpec>,
    /// Numeric slack for float comparisons (default 1 µs).
    pub tolerance: Time,
}

/// Errors detected by [`PteSpec::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// Fewer than 2 entities (Rule 2 needs an ordering).
    TooFewEntities,
    /// `rule1_bounds` length does not match `entities`.
    BoundsLengthMismatch,
    /// `pairs` length is not `entities.len() - 1`.
    PairsLengthMismatch,
    /// A bound or safeguard is negative.
    NegativeConstant,
    /// Two entities share a name.
    DuplicateEntity(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::TooFewEntities => write!(f, "PTE needs at least 2 ordered entities"),
            SpecError::BoundsLengthMismatch => {
                write!(f, "rule1_bounds length must equal entities length")
            }
            SpecError::PairsLengthMismatch => {
                write!(f, "pairs length must be entities length - 1")
            }
            SpecError::NegativeConstant => write!(f, "bounds and safeguards must be >= 0"),
            SpecError::DuplicateEntity(n) => write!(f, "duplicate entity `{n}`"),
        }
    }
}

impl std::error::Error for SpecError {}

impl PteSpec {
    /// Creates a specification with a uniform Rule-1 bound.
    pub fn uniform(entities: Vec<String>, rule1_bound: Time, pairs: Vec<PairSpec>) -> PteSpec {
        let n = entities.len();
        PteSpec {
            entities,
            rule1_bounds: vec![rule1_bound; n],
            pairs,
            tolerance: Time::seconds(1e-6),
        }
    }

    /// Number of ordered entities `N`.
    pub fn n(&self) -> usize {
        self.entities.len()
    }

    /// Structural validation of the specification itself.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.entities.len() < 2 {
            return Err(SpecError::TooFewEntities);
        }
        if self.rule1_bounds.len() != self.entities.len() {
            return Err(SpecError::BoundsLengthMismatch);
        }
        if self.pairs.len() != self.entities.len() - 1 {
            return Err(SpecError::PairsLengthMismatch);
        }
        for b in &self.rule1_bounds {
            if *b < Time::ZERO {
                return Err(SpecError::NegativeConstant);
            }
        }
        for p in &self.pairs {
            if p.t_min_risky < Time::ZERO || p.t_min_safe < Time::ZERO {
                return Err(SpecError::NegativeConstant);
            }
        }
        for (i, e) in self.entities.iter().enumerate() {
            if self.entities[..i].contains(e) {
                return Err(SpecError::DuplicateEntity(e.clone()));
            }
        }
        Ok(())
    }

    /// The laser tracheotomy case-study rules (Section V): ventilator <
    /// laser-scalpel, 60 s dwelling bound, safeguards 3 s / 1.5 s.
    pub fn case_study() -> PteSpec {
        PteSpec::uniform(
            vec!["ventilator".to_string(), "laser-scalpel".to_string()],
            Time::seconds(60.0),
            vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_spec_valid() {
        let s = PteSpec::case_study();
        assert_eq!(s.n(), 2);
        assert!(s.validate().is_ok());
        assert_eq!(s.pairs[0].t_min_risky, Time::seconds(3.0));
        assert_eq!(s.pairs[0].t_min_safe, Time::seconds(1.5));
        assert_eq!(s.rule1_bounds, vec![Time::seconds(60.0); 2]);
    }

    #[test]
    fn too_few_entities_rejected() {
        let s = PteSpec::uniform(vec!["only".into()], Time::seconds(1.0), vec![]);
        assert_eq!(s.validate(), Err(SpecError::TooFewEntities));
    }

    #[test]
    fn pairs_length_checked() {
        let s = PteSpec::uniform(
            vec!["a".into(), "b".into(), "c".into()],
            Time::seconds(1.0),
            vec![PairSpec::new(Time::ZERO, Time::ZERO)],
        );
        assert_eq!(s.validate(), Err(SpecError::PairsLengthMismatch));
    }

    #[test]
    fn bounds_length_checked() {
        let mut s = PteSpec::uniform(
            vec!["a".into(), "b".into()],
            Time::seconds(1.0),
            vec![PairSpec::new(Time::ZERO, Time::ZERO)],
        );
        s.rule1_bounds.pop();
        assert_eq!(s.validate(), Err(SpecError::BoundsLengthMismatch));
    }

    #[test]
    fn negative_constants_rejected() {
        let s = PteSpec::uniform(
            vec!["a".into(), "b".into()],
            Time::seconds(-1.0),
            vec![PairSpec::new(Time::ZERO, Time::ZERO)],
        );
        assert_eq!(s.validate(), Err(SpecError::NegativeConstant));
        let s2 = PteSpec::uniform(
            vec!["a".into(), "b".into()],
            Time::seconds(1.0),
            vec![PairSpec::new(Time::seconds(-0.1), Time::ZERO)],
        );
        assert_eq!(s2.validate(), Err(SpecError::NegativeConstant));
    }

    #[test]
    fn duplicates_rejected() {
        let s = PteSpec::uniform(
            vec!["a".into(), "a".into()],
            Time::seconds(1.0),
            vec![PairSpec::new(Time::ZERO, Time::ZERO)],
        );
        assert!(matches!(s.validate(), Err(SpecError::DuplicateEntity(_))));
    }
}
