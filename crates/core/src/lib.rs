//! # pte-core
//!
//! The paper's primary contribution, as a library:
//!
//! * [`rules`] — the **PTE safety rules** (Section III): Rule 1 (bounded
//!   continuous dwelling in risky locations) and Rule 2
//!   (proper-temporal-embedding full order with enter-/exit-risky
//!   safeguard intervals), as a checkable [`rules::PteSpec`];
//! * [`monitor`] — an offline checker evaluating both rules over a
//!   `pte_sim` [`Trace`](pte_sim::trace::Trace), with per-violation
//!   diagnostics and measured safety margins;
//! * [`online`] — the incremental counterpart: violations raised at the
//!   earliest decidable instant, for runtime enforcement;
//! * [`pattern`] — the **lease-based design pattern** (Section IV-A):
//!   generators for the Supervisor, Participant and Initializer hybrid
//!   automata (Figs. 3–5), the closed-form **conditions c1–c7** of
//!   Theorem 1, the baseline *no-lease* variants used in Table I, and the
//!   full-system assembly with the paper's event wiring;
//! * [`synthesis`] — constructive parameter synthesis: from the PTE
//!   requirements (safeguards, Rule-1 bound, minimum useful run times) to
//!   a [`pattern::LeaseConfig`] satisfying c1–c7;
//! * [`theorem`] — the quantitative bounds of Theorems 1 and 2 (risky
//!   dwelling bound `T^max_wait + T^max_LS1`, cycle bounds), used as
//!   monitor defaults and test oracles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod monitor;
pub mod online;
pub mod pattern;
pub mod rules;
pub mod synthesis;
pub mod theorem;

pub use monitor::{check_pte, PteReport, Violation};
pub use online::OnlineMonitor;
pub use pattern::{build_pattern_system, check_conditions, LeaseConfig, PatternSystem};
pub use rules::{PairSpec, PteSpec};
