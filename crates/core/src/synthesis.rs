//! Constructive parameter synthesis for the lease pattern.
//!
//! Theorem 1's conditions c1–c7 are *checkable*; this module makes them
//! *solvable*: given the PTE requirements — the safeguard intervals, the
//! Rule-1 dwelling bound, and the minimum useful risky-core duration for
//! the Initializer — [`synthesize`] constructs a [`LeaseConfig`]
//! satisfying every condition, or reports that the requirements are
//! infeasible within the bound.
//!
//! Construction (innermost-out): fix `ξN`'s times from the requirements,
//! then for `i = N−1 … 1` choose
//!
//! * `T_exit,i  = T^min_safe:i+1→i + margin` (c7),
//! * `T_enter,i = max(ε, T_enter,i+1 − T^min_risky:i→i+1 − margin)` — the
//!   *reversed* c5 recurrence: entering times must shrink inward by more
//!   than each safeguard,
//! * `T_run,i   = T_wait + T_enter,i+1 + T_run,i+1 + T_exit,i+1 + margin −
//!   T_enter,i` (c6 with margin),
//!
//! and finally check the aggregate conditions (c2, c3, c4) and the Rule-1
//! bound `T_wait + T_LS1 ≤ bound`.

use crate::pattern::conditions::check_conditions;
use crate::pattern::config::LeaseConfig;
use crate::rules::PairSpec;
use pte_hybrid::Time;
use std::fmt;

/// Requirements driving synthesis.
#[derive(Clone, Debug)]
pub struct SynthesisRequest {
    /// Number of remote entities `N ≥ 2`.
    pub n: usize,
    /// Safeguard intervals per adjacent pair (length `n − 1`).
    pub safeguards: Vec<PairSpec>,
    /// Rule-1 bound every entity's risky dwelling must respect
    /// (`T^max_wait + T^max_LS1 ≤ rule1_bound`).
    pub rule1_bound: Time,
    /// Minimum useful Risky Core duration for the Initializer (how long
    /// the actual task needs, e.g. laser emission time).
    pub min_run_initializer: Time,
    /// Supervisor per-step wait budget (dominated by worst-case message
    /// round trips; pick generously for slow links).
    pub t_wait: Time,
    /// Safety margin added on top of every strict inequality.
    pub margin: Time,
}

impl SynthesisRequest {
    /// A request mirroring the case study's requirements.
    pub fn case_study_like() -> SynthesisRequest {
        SynthesisRequest {
            n: 2,
            safeguards: vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
            rule1_bound: Time::seconds(60.0),
            min_run_initializer: Time::seconds(20.0),
            t_wait: Time::seconds(3.0),
            margin: Time::seconds(0.5),
        }
    }
}

/// Why synthesis failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SynthesisError {
    /// Dimensions inconsistent (`n < 2` or wrong safeguard count).
    BadRequest(String),
    /// The requirements cannot fit under the Rule-1 bound.
    Infeasible {
        /// The dwelling bound that the best construction would need.
        required_bound: Time,
        /// The requested bound.
        requested_bound: Time,
    },
    /// Internal: the construction produced a configuration that fails the
    /// condition check (should be impossible; kept as a safety net).
    ConstructionUnsound(String),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::BadRequest(s) => write!(f, "bad request: {s}"),
            SynthesisError::Infeasible {
                required_bound,
                requested_bound,
            } => write!(
                f,
                "infeasible: requirements need a dwelling bound of {required_bound}, \
                 but only {requested_bound} is allowed"
            ),
            SynthesisError::ConstructionUnsound(s) => {
                write!(f, "internal construction error: {s}")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Synthesizes a [`LeaseConfig`] satisfying conditions c1–c7 and the
/// Rule-1 bound, or explains why none exists for this construction.
pub fn synthesize(req: &SynthesisRequest) -> Result<LeaseConfig, SynthesisError> {
    if req.n < 2 {
        return Err(SynthesisError::BadRequest("n must be >= 2".to_string()));
    }
    if req.safeguards.len() != req.n - 1 {
        return Err(SynthesisError::BadRequest(format!(
            "need {} safeguard pairs, got {}",
            req.n - 1,
            req.safeguards.len()
        )));
    }
    if req.margin <= Time::ZERO || req.t_wait <= Time::ZERO {
        return Err(SynthesisError::BadRequest(
            "margin and t_wait must be positive".to_string(),
        ));
    }
    let n = req.n;
    let m = req.margin;

    // Innermost entity ξN: entering must exceed every accumulated
    // safeguard (the c5 recurrence unrolled): T_enter,N must be at least
    // sum of safeguards + N*margin above a base epsilon.
    let mut t_enter = vec![Time::ZERO; n];
    {
        let mut acc = m; // base entering time for ξ1
        for pair in &req.safeguards {
            acc = acc + pair.t_min_risky + m;
        }
        t_enter[n - 1] = acc;
    }
    // Reversed c5: T_enter,i = T_enter,i+1 - T_risky(i->i+1) - margin.
    for i in (0..n - 1).rev() {
        t_enter[i] = t_enter[i + 1] - req.safeguards[i].t_min_risky - m;
        if t_enter[i] <= Time::ZERO {
            return Err(SynthesisError::ConstructionUnsound(
                "entering time underflow".to_string(),
            ));
        }
    }

    // Exits: c7 with margin.
    let mut t_exit = vec![Time::ZERO; n];
    t_exit[n - 1] = req
        .safeguards
        .last()
        .map(|p| p.t_min_safe)
        .unwrap_or(Time::ZERO)
        .max(m)
        + m;
    for (slot, pair) in t_exit.iter_mut().zip(&req.safeguards) {
        *slot = pair.t_min_safe + m;
    }

    // Runs: ξN from the request; inward via c6 with margin.
    let mut t_run = vec![Time::ZERO; n];
    t_run[n - 1] = req.min_run_initializer.max(m);
    for i in (0..n - 1).rev() {
        t_run[i] = req.t_wait + t_enter[i + 1] + t_run[i + 1] + t_exit[i + 1] + m - t_enter[i];
    }

    let t_ls1 = t_enter[0] + t_run[0] + t_exit[0];

    // c3: (N-1) t_wait < t_req < t_ls1 — take the midpoint-ish value.
    let t_req_lo = req.t_wait * (n as f64 - 1.0);
    if t_ls1 <= t_req_lo + m * 2.0 {
        return Err(SynthesisError::ConstructionUnsound(
            "no room for t_req".to_string(),
        ));
    }
    let t_req = t_req_lo + ((t_ls1 - t_req_lo) * 0.5).min(m * 10.0);

    // Fall-back dwell: long enough to be meaningful; any positive value
    // satisfies c1 (the theorem places no upper constraint on it).
    let t_fb0 = (req.t_wait * 2.0).max(m);

    let cfg = LeaseConfig {
        n,
        t_fb0_min: t_fb0,
        t_wait_max: req.t_wait,
        t_req_max: t_req,
        t_enter,
        t_run,
        t_exit,
        safeguards: req.safeguards.clone(),
    };

    // Rule-1 bound feasibility.
    let needed = cfg.max_risky_dwelling();
    if needed > req.rule1_bound {
        return Err(SynthesisError::Infeasible {
            required_bound: needed,
            requested_bound: req.rule1_bound,
        });
    }

    // Safety net: the construction must satisfy c1–c7.
    let report = check_conditions(&cfg);
    if !report.is_satisfied() {
        return Err(SynthesisError::ConstructionUnsound(format!("{report}")));
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn case_study_like_request_succeeds() {
        let cfg = synthesize(&SynthesisRequest::case_study_like()).unwrap();
        assert!(check_conditions(&cfg).is_satisfied());
        assert!(cfg.max_risky_dwelling() <= Time::seconds(60.0));
        assert!(cfg.t_run[1] >= Time::seconds(20.0), "useful run preserved");
    }

    #[test]
    fn n3_request_succeeds() {
        let req = SynthesisRequest {
            n: 3,
            safeguards: vec![
                PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
                PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)),
            ],
            rule1_bound: Time::seconds(120.0),
            min_run_initializer: Time::seconds(10.0),
            t_wait: Time::seconds(2.0),
            margin: Time::seconds(0.25),
        };
        let cfg = synthesize(&req).unwrap();
        let report = check_conditions(&cfg);
        assert!(report.is_satisfied(), "{report}");
    }

    #[test]
    fn infeasible_bound_reported() {
        let mut req = SynthesisRequest::case_study_like();
        req.rule1_bound = Time::seconds(10.0); // cannot fit 20 s of emission
        match synthesize(&req) {
            Err(SynthesisError::Infeasible {
                required_bound,
                requested_bound,
            }) => {
                assert!(required_bound > requested_bound);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn bad_dimensions_rejected() {
        let mut req = SynthesisRequest::case_study_like();
        req.safeguards = vec![];
        assert!(matches!(
            synthesize(&req),
            Err(SynthesisError::BadRequest(_))
        ));
        req = SynthesisRequest::case_study_like();
        req.n = 1;
        assert!(matches!(
            synthesize(&req),
            Err(SynthesisError::BadRequest(_))
        ));
    }

    proptest! {
        /// Synthesized configurations always satisfy c1–c7 (when synthesis
        /// succeeds) — the constructive counterpart of Theorem 1.
        #[test]
        fn synthesis_sound(
            n in 2usize..6,
            risky_ms in 100u64..5_000,
            safe_ms in 100u64..3_000,
            run_s in 1u64..60,
            wait_ms in 200u64..5_000,
        ) {
            let req = SynthesisRequest {
                n,
                safeguards: (0..n-1)
                    .map(|_| PairSpec::new(
                        Time::millis(risky_ms as f64),
                        Time::millis(safe_ms as f64),
                    ))
                    .collect(),
                rule1_bound: Time::seconds(100_000.0), // effectively unbounded
                min_run_initializer: Time::seconds(run_s as f64),
                t_wait: Time::millis(wait_ms as f64),
                margin: Time::millis(100.0),
            };
            let cfg = synthesize(&req).unwrap();
            prop_assert!(check_conditions(&cfg).is_satisfied());
            // Useful run time preserved.
            prop_assert!(cfg.t_run[n-1] >= req.min_run_initializer);
        }

        /// With a binding Rule-1 bound, synthesis either fits under it or
        /// honestly reports infeasibility — never a violating config.
        #[test]
        fn synthesis_respects_bound(
            bound_s in 5u64..200,
            run_s in 1u64..100,
        ) {
            let req = SynthesisRequest {
                n: 2,
                safeguards: vec![PairSpec::new(Time::seconds(1.0), Time::seconds(0.5))],
                rule1_bound: Time::seconds(bound_s as f64),
                min_run_initializer: Time::seconds(run_s as f64),
                t_wait: Time::seconds(1.0),
                margin: Time::millis(200.0),
            };
            match synthesize(&req) {
                Ok(cfg) => prop_assert!(cfg.max_risky_dwelling() <= req.rule1_bound),
                Err(SynthesisError::Infeasible { required_bound, .. }) => {
                    prop_assert!(required_bound > req.rule1_bound)
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }
}
