//! The contract library and the compositional driver's bookkeeping:
//! builder shapes, profile parsing, dedup/cache counters, and the
//! soundness-by-construction fallback on the baseline arm.

use pte_contracts::{
    cache_stats, check_compositional, lease_client, lease_provider, localize, reset_cache,
    supervisor_iface, top_for, CompositionalLimits, CompositionalVerdict, ContractKind, EnvProfile,
    CONTRACT_NAMES, PROFILE_NAMES,
};
use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_zones::lower_network;

#[test]
fn contract_library_builders_have_expected_shapes() {
    let cfg = LeaseConfig::chain(3);
    let client = lease_client(&cfg, 1);
    assert_eq!(client.kind, ContractKind::Timed);
    assert!(!client.clocks.is_empty(), "the client envelope is timed");
    assert!(
        !client.alphabet.is_empty(),
        "the client speaks the lease protocol"
    );

    let provider = lease_provider(&cfg, 1);
    assert_eq!(provider.kind, ContractKind::Timed);

    let sys = build_pattern_system(&cfg, true).unwrap();
    let net = lower_network(&sys.automata).unwrap();
    let sup = &net.automata[net.automaton_by_name("supervisor").unwrap()];
    let iface = supervisor_iface(sup, &net.clocks);
    assert_eq!(iface.kind, ContractKind::Identity);

    let dev = &net.automata[net.automaton_by_name(&cfg.entity_name(1)).unwrap()];
    let top = top_for(dev);
    assert_eq!(top.kind, ContractKind::Universal);
    assert!(top.clocks.is_empty(), "top is untimed chatter");

    // Localization renames the device's clocks into a dense 1-based
    // local frame.
    let (local, clocks) = localize(dev, &net.clocks);
    assert!(!clocks.is_empty());
    for l in &local.locations {
        for a in &l.invariant {
            assert!(a.clock >= 1 && a.clock <= clocks.len());
        }
    }
}

#[test]
fn profile_and_contract_names_parse() {
    assert_eq!(EnvProfile::default(), EnvProfile::Top);
    for name in PROFILE_NAMES {
        let p = EnvProfile::parse(name).unwrap_or_else(|n| panic!("{n} must parse"));
        assert_eq!(p.name(), name);
    }
    assert_eq!(
        EnvProfile::parse("leese-client"),
        Err("leese-client".to_string())
    );
    assert!(CONTRACT_NAMES.contains(&"lease-client"));
    assert!(CONTRACT_NAMES.contains(&"top"));
}

/// The process-global refinement cache: a second identical run checks
/// nothing and serves every contract from the cache; the baseline arm
/// always falls back (never a direct Unsafe).
#[test]
fn refinement_cache_and_baseline_fallback() {
    reset_cache();
    let cfg = LeaseConfig::chain(2);
    let limits = CompositionalLimits::default();

    let cold = check_compositional(&cfg, true, EnvProfile::Top, &limits).unwrap();
    assert!(matches!(cold.verdict, CompositionalVerdict::Safe));
    assert!(cold.stats.contracts_checked > 0, "cold run must refine");
    assert_eq!(cold.stats.contracts_cached, 0);

    let warm = check_compositional(&cfg, true, EnvProfile::Top, &limits).unwrap();
    assert!(matches!(warm.verdict, CompositionalVerdict::Safe));
    assert_eq!(
        warm.stats.contracts_checked, 0,
        "warm run re-checks nothing"
    );
    assert!(warm.stats.contracts_cached > 0);

    let s = cache_stats();
    assert!(s.entries > 0);
    assert!(s.hits > 0 && s.misses > 0);

    // Baseline: the stripped devices escape the contract envelope, so
    // the argument falls back — it must never claim Safe or Unsafe.
    let baseline = check_compositional(&cfg, false, EnvProfile::Top, &limits).unwrap();
    match baseline.verdict {
        CompositionalVerdict::Fallback {
            reason,
            counter_example,
        } => {
            assert!(
                reason.contains("refinement failed"),
                "the baseline should fail refinement, got: {reason}"
            );
            assert!(
                counter_example.is_some(),
                "the refinement failure carries a symbolic trace"
            );
        }
        CompositionalVerdict::Safe => panic!("baseline must not be claimed safe"),
    }
}
