//! Worker-count determinism of the timed refinement checker: the
//! verdict — and for failures the exact reason and rendered
//! counter-example — is bit-identical at 1/2/4/8 workers, on both
//! arms of perturbed chain configurations. The baseline arm is the
//! load-bearing case: its lease-stripped devices escape the contract's
//! dwell envelope, and the symbolic trace that exhibits it must not
//! drift with the shard count (the compositional driver caches and
//! re-renders these traces, so nondeterminism here would poison the
//! process-global cache).

use proptest::prelude::*;
use pte_contracts::{lease_client, localize, refine, RefineLimits, RefineOutcome};
use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_zones::lower_network;

/// `device j ⊑ lease_client(j)` at a given worker count, folded to a
/// comparable string: `"holds"`, `"out-of-budget"`, or the failure's
/// reason plus its full rendered trace.
fn refine_rendered(cfg: &LeaseConfig, leased: bool, j: usize, workers: usize) -> String {
    let sys = build_pattern_system(cfg, leased).expect("pattern system builds");
    let net = lower_network(&sys.automata).expect("network lowers");
    let name = cfg.entity_name(j);
    let i = net
        .automaton_by_name(&name)
        .unwrap_or_else(|| panic!("device {name:?} missing"));
    let (local_dev, local_clocks) = localize(&net.automata[i], &net.clocks);
    let contract = lease_client(cfg, j);
    let limits = RefineLimits {
        workers,
        ..RefineLimits::default()
    };
    match refine(&local_dev, &local_clocks, &contract, &limits) {
        RefineOutcome::Holds(_) => "holds".to_string(),
        RefineOutcome::OutOfBudget(_) => "out-of-budget".to_string(),
        RefineOutcome::Fails(f) => format!("{}\n{}", f.reason, f.rendered),
    }
}

/// Every chain-3 device implements its own lease-client contract, at
/// every worker count.
#[test]
fn leased_chain_devices_refine_at_every_worker_count() {
    let cfg = LeaseConfig::chain(3);
    for j in 1..=3 {
        for workers in [1usize, 2, 4, 8] {
            assert_eq!(
                refine_rendered(&cfg, true, j, workers),
                "holds",
                "device {j} at {workers} workers"
            );
        }
    }
}

/// The lease-stripped baseline fails refinement — the fallback trigger
/// the compositional driver relies on — and the counter-example text
/// is bit-identical across worker counts.
#[test]
fn baseline_counter_example_is_bit_identical_across_workers() {
    let cfg = LeaseConfig::chain(3);
    let reference = refine_rendered(&cfg, false, 1, 1);
    assert_ne!(reference, "holds", "the baseline must fail refinement");
    assert!(
        reference.lines().count() > 2,
        "the failure must carry a real trace:\n{reference}"
    );
    for workers in [2usize, 4, 8] {
        assert_eq!(
            reference,
            refine_rendered(&cfg, false, 1, workers),
            "counter-example drifted at {workers} workers"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized chain timings, both arms: the refinement verdict and
    /// (when it fails) the exact counter-example text agree across
    /// 1/2/4/8 workers.
    #[test]
    fn perturbed_chains_refine_identically_across_workers(
        t_run1 in 5i64..50,
        t_enter2 in 2i64..16,
        leased_bit in 0u8..2,
    ) {
        use pte_hybrid::Time;
        let leased = leased_bit == 1;
        let mut cfg = LeaseConfig::chain(3);
        cfg.t_run[0] = Time::seconds(t_run1 as f64);
        cfg.t_enter[1] = Time::seconds(t_enter2 as f64);
        let reference = refine_rendered(&cfg, leased, 2, 1);
        for workers in [2usize, 4, 8] {
            prop_assert_eq!(
                &reference,
                &refine_rendered(&cfg, leased, 2, workers),
                "verdict or trace drifted at {} workers", workers
            );
        }
    }
}
