//! The compositional assume-guarantee driver.
//!
//! [`check_compositional`] decomposes the PTE safety obligation of an
//! `N`-entity lease system into
//!
//! 1. **N refinement checks** — every device (Participant / Initializer)
//!    must implement its [`lease_client`] contract, deduplicated across
//!    structurally identical devices (symmetry groups from the PR 8
//!    detector, generalized by a root-renaming structural digest) and
//!    memoized in a process-global verdict cache keyed by that digest;
//! 2. **N−1 abstract pair checks** — one small network per safeguard pair
//!    `(ξk, ξk+1)`: the *concrete* Supervisor (which owns every wind-down
//!    budget clock, so all pair-relevant timing races survive), the two
//!    pair members replaced by their timed `lease_client` contracts, and
//!    every other device replaced per the [`EnvProfile`] — by default the
//!    universal [`top_for`] chatter (clock- and location-free). Each pair
//!    network runs through the ordinary monitored zone engine
//!    ([`pte_zones::check`]) against the pair-restricted observer.
//!
//! Soundness: each slot of a pair network over-approximates the concrete
//! component it replaces (the Supervisor is itself; refinement-checked
//! contracts reproduce every observable emission *and* the exact risky
//! trajectory; chatter reproduces every emission of an unmonitored device
//! and receivers in this engine never constrain emitters), so every
//! concrete run projects onto an abstract run with the same observable
//! timeline for the monitored pair. All pairs Safe ⇒ the system is Safe.
//! Anything else — a refinement failure, an abstract violation (possibly
//! spurious), an exhausted budget — yields [`CompositionalVerdict::Fallback`]
//! and the caller must consult the monolithic engine: the compositional
//! path can never mint a spurious Safe, and it never reports Unsafe at all.

use crate::contract::{lease_client, localize, top_for, Contract};
use crate::refine::{refine, RefineLimits, RefineOutcome};
use pte_core::pattern::{build_pattern_system, config::LeaseConfig};
use pte_zones::lower::lower_network;
use pte_zones::ta::{TaAutomaton, TaNetwork};
use pte_zones::{check, detect_symmetry, Limits, ObserverSpec, SymbolicVerdict};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Which contract stands in for the devices *outside* the monitored pair.
/// The two pair members always get their timed `lease-client` contract —
/// the observer watches their risky flags, which only a refinement-checked
/// timed contract preserves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EnvProfile {
    /// Universal chatter ([`top_for`]): coarsest and cheapest — removes
    /// the environment devices' locations and clocks entirely.
    #[default]
    Top,
    /// Timed `lease-client` contracts everywhere: the tightest abstract
    /// network (close to monolithic cost) — an A/B lever for measuring
    /// what the chatter abstraction buys.
    LeaseClient,
}

/// The environment-profile names accepted by [`EnvProfile::parse`], in
/// display order.
pub const PROFILE_NAMES: [&str; 2] = ["top", "lease-client"];

impl EnvProfile {
    /// Parses a profile name. Unknown names are returned as `Err` so the
    /// caller can attach a did-you-mean suggestion over
    /// [`crate::contract::CONTRACT_NAMES`].
    pub fn parse(name: &str) -> Result<EnvProfile, String> {
        match name {
            "top" => Ok(EnvProfile::Top),
            "lease-client" => Ok(EnvProfile::LeaseClient),
            other => Err(other.to_string()),
        }
    }

    /// The canonical name (the `parse` inverse).
    pub fn name(&self) -> &'static str {
        match self {
            EnvProfile::Top => "top",
            EnvProfile::LeaseClient => "lease-client",
        }
    }
}

/// Budgets for one compositional run. `search` applies to **each**
/// abstract pair network individually (the engine-native meaning of
/// [`Limits::max_states`]); the per-stage totals are reported in
/// [`CompositionalStats`].
#[derive(Clone, Default)]
pub struct CompositionalLimits {
    /// Zone-engine limits for each abstract pair check.
    pub search: Limits,
    /// Budget for each refinement check.
    pub refine: RefineLimits,
}

/// Per-stage counters of a compositional run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositionalStats {
    /// Device slots that needed a contract.
    pub contracts_total: usize,
    /// Refinement checks actually explored.
    pub contracts_checked: usize,
    /// Slots skipped because a structurally identical device was already
    /// checked this run (symmetry groups / equal structural digests).
    pub contracts_deduped: usize,
    /// Slots answered from the process-global refinement verdict cache.
    pub contracts_cached: usize,
    /// Symmetry groups reported by the PR 8 detector on the lowered net.
    pub symmetry_groups: usize,
    /// State pairs admitted across all refinement checks.
    pub refine_pairs: usize,
    /// Successor pairs generated across all refinement checks.
    pub refine_transitions: usize,
    /// Abstract pair networks explored.
    pub pair_networks: usize,
    /// Zone-graph states across all abstract pair checks.
    pub abstract_states: usize,
    /// Zone-graph transitions across all abstract pair checks.
    pub abstract_transitions: usize,
}

/// What the compositional argument established.
#[derive(Clone, Debug)]
pub enum CompositionalVerdict {
    /// Every refinement holds and every abstract pair network is Safe:
    /// the concrete system is Safe.
    Safe,
    /// The argument did not close; the caller must fall back to the
    /// monolithic engine. Carries the reason and, for refinement
    /// failures, the symbolic counter-example.
    Fallback {
        /// One-line reason.
        reason: String,
        /// Rendered refinement counter-example, when one exists.
        counter_example: Option<String>,
    },
}

/// Verdict plus per-stage counters.
#[derive(Clone, Debug)]
pub struct CompositionalOutcome {
    /// The verdict.
    pub verdict: CompositionalVerdict,
    /// Stage counters (populated for fallbacks too).
    pub stats: CompositionalStats,
}

impl CompositionalOutcome {
    fn fallback(reason: String, ce: Option<String>, stats: CompositionalStats) -> Self {
        CompositionalOutcome {
            verdict: CompositionalVerdict::Fallback {
                reason,
                counter_example: ce,
            },
            stats,
        }
    }
}

// --- process-global refinement verdict cache -----------------------------

#[derive(Clone)]
enum CachedRefinement {
    Holds,
    Fails { reason: String, rendered: String },
}

static REFINE_CACHE: OnceLock<Mutex<HashMap<u64, CachedRefinement>>> = OnceLock::new();
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static DEDUPED: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<u64, CachedRefinement>> {
    REFINE_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Counters of the process-global refinement verdict cache (polled by the
/// verification daemon into its `DaemonStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContractCacheStats {
    /// Refinement checks answered from the cache.
    pub hits: u64,
    /// Refinement checks that had to be explored.
    pub misses: u64,
    /// Distinct (device, contract) digests cached.
    pub entries: u64,
    /// Within-run slots skipped via structural dedup, cumulative.
    pub deduped: u64,
}

/// A snapshot of the cache counters.
pub fn cache_stats() -> ContractCacheStats {
    ContractCacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        entries: cache().lock().map(|c| c.len() as u64).unwrap_or(0),
        deduped: DEDUPED.load(Ordering::Relaxed),
    }
}

/// Clears the cache and its counters (test isolation).
pub fn reset_cache() {
    if let Ok(mut c) = cache().lock() {
        c.clear();
    }
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    DEDUPED.store(0, Ordering::Relaxed);
}

// --- structural digests ---------------------------------------------------

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A digest of `(device, contract)` invariant under renaming event roots —
/// two slots with equal digests are interchangeable for refinement, which
/// both generalizes the PR 8 symmetry groups (whose members share roots
/// verbatim) and catches `demo_fleet`-style uniform fleets whose members
/// differ only in their channel indices.
fn refinement_digest(device: &TaAutomaton, contract: &Contract) -> u64 {
    use std::fmt::Write as _;
    let mut names: HashMap<String, usize> = HashMap::new();
    let mut buf = String::new();
    {
        let mut norm = |r: &pte_hybrid::Root, buf: &mut String| {
            let next = names.len();
            let id = *names.entry(r.as_str().to_string()).or_insert(next);
            let _ = write!(buf, "r{id},");
        };
        let mut aut = |a: &TaAutomaton, buf: &mut String| {
            let _ = write!(buf, "A[{}/{}]", a.locations.len(), a.initial);
            for l in &a.locations {
                let _ = write!(buf, "L{}{}", l.risky as u8, l.frozen as u8);
                for at in &l.invariant {
                    let _ = write!(buf, "i{}{:?}{};", at.clock, at.rel, at.ticks);
                }
            }
            for e in &a.edges {
                let _ = write!(buf, "E{}>{}u{}", e.src, e.dst, e.urgent as u8);
                for at in &e.guard {
                    let _ = write!(buf, "g{}{:?}{};", at.clock, at.rel, at.ticks);
                }
                for (c, v) in &e.resets {
                    let _ = write!(buf, "x{c}={v};");
                }
                match &e.sync {
                    pte_zones::ta::Sync::None => buf.push('n'),
                    pte_zones::ta::Sync::External(r) => {
                        buf.push('e');
                        norm(r, buf);
                    }
                    pte_zones::ta::Sync::Reliable(r) => {
                        buf.push('l');
                        norm(r, buf);
                    }
                    pte_zones::ta::Sync::Lossy(r) => {
                        buf.push('y');
                        norm(r, buf);
                    }
                }
                for r in &e.emits {
                    buf.push('!');
                    norm(r, buf);
                }
            }
        };
        aut(device, &mut buf);
        buf.push('|');
        aut(&contract.automaton, &mut buf);
        buf.push('|');
        // The alphabet, in the deterministic order of its BTreeSet.
        for r in &contract.alphabet {
            norm(r, &mut buf);
        }
    }
    fnv1a64(buf.as_bytes())
}

// --- pair-network assembly ------------------------------------------------

fn entity_index(cfg: &LeaseConfig, name: &str) -> Option<usize> {
    (1..=cfg.n).find(|&j| cfg.entity_name(j) == name)
}

/// Builds the abstract network for safeguard pair `k` (`0..n-1`,
/// protecting entities `k+1` and `k+2`): concrete supervisor, timed
/// contracts for the pair members, profile-selected contracts elsewhere.
fn build_pair_network(
    net: &TaNetwork,
    cfg: &LeaseConfig,
    k: usize,
    profile: EnvProfile,
) -> Result<TaNetwork, String> {
    let (outer, inner) = (k + 1, k + 2);
    let mut clocks = net.clocks.clone();
    let mut automata = Vec::with_capacity(net.automata.len());
    for aut in &net.automata {
        if aut.name == "supervisor" {
            automata.push(aut.clone());
            continue;
        }
        let j = entity_index(cfg, &aut.name)
            .ok_or_else(|| format!("unknown network component {:?}", aut.name))?;
        let contract = if j == outer || j == inner || profile == EnvProfile::LeaseClient {
            lease_client(cfg, j)
        } else {
            top_for(aut)
        };
        let map: Vec<usize> = contract
            .clocks
            .iter()
            .map(|cn| {
                clocks.push(format!("{}::{cn}", aut.name));
                clocks.len()
            })
            .collect();
        automata.push(contract.instantiate(&map));
    }
    Ok(TaNetwork { clocks, automata })
}

/// The observer restricted to safeguard pair `k`: the two entities, their
/// Rule 1 bounds, and the single pair-coverage safeguard, sliced from the
/// full [`ObserverSpec`] so the semantics match the monolithic monitor.
fn pair_spec(full: &ObserverSpec, k: usize) -> ObserverSpec {
    ObserverSpec {
        entities: full.entities[k..=k + 1].to_vec(),
        rule1_ticks: full.rule1_ticks[k..=k + 1].to_vec(),
        pairs: full.pairs[k..k + 1].to_vec(),
    }
}

// --- the driver -----------------------------------------------------------

/// Runs the compositional assume-guarantee argument for a lease system.
///
/// Never returns Unsafe: an abstract violation may be spurious, so it —
/// like any refinement failure or exhausted budget — surfaces as
/// [`CompositionalVerdict::Fallback`] for the caller to discharge with the
/// monolithic engine. The baseline (lease-stripped) arm fails refinement
/// naturally: without its lease timers a device may dwell in `Risky Core`
/// past the contract's `t_run` envelope.
pub fn check_compositional(
    cfg: &LeaseConfig,
    leased: bool,
    profile: EnvProfile,
    limits: &CompositionalLimits,
) -> Result<CompositionalOutcome, String> {
    let sys = build_pattern_system(cfg, leased).map_err(|e| format!("build: {e:?}"))?;
    let net = lower_network(&sys.automata).map_err(|e| format!("lower: {e}"))?;
    let mut stats = CompositionalStats {
        contracts_total: cfg.n,
        symmetry_groups: detect_symmetry(&net).groups.len(),
        ..CompositionalStats::default()
    };

    // Stage 1: every device must implement its lease-client contract (and,
    // under the Top profile, be emission-covered by its chatter stand-in).
    let mut seen: HashMap<u64, ()> = HashMap::new();
    for j in 1..=cfg.n {
        let name = cfg.entity_name(j);
        let device = net
            .automaton_by_name(&name)
            .map(|i| &net.automata[i])
            .ok_or_else(|| format!("device {name:?} missing from the lowered network"))?;
        let contract = lease_client(cfg, j);
        let (local_dev, local_clocks) = localize(device, &net.clocks);
        let digest = refinement_digest(&local_dev, &contract);
        if seen.contains_key(&digest) {
            stats.contracts_deduped += 1;
            DEDUPED.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        seen.insert(digest, ());

        let cached = cache().lock().ok().and_then(|c| c.get(&digest).cloned());
        let outcome = match cached {
            Some(CachedRefinement::Holds) => {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                stats.contracts_cached += 1;
                None
            }
            Some(CachedRefinement::Fails { reason, rendered }) => {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                stats.contracts_cached += 1;
                return Ok(CompositionalOutcome::fallback(
                    format!("refinement failed for {name}: {reason} (cached)"),
                    Some(rendered),
                    stats,
                ));
            }
            None => {
                CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                stats.contracts_checked += 1;
                Some(refine(&local_dev, &local_clocks, &contract, &limits.refine))
            }
        };
        if let Some(outcome) = outcome {
            let rs = outcome.stats();
            stats.refine_pairs += rs.pairs;
            stats.refine_transitions += rs.transitions;
            match outcome {
                RefineOutcome::Holds(_) => {
                    if let Ok(mut c) = cache().lock() {
                        c.insert(digest, CachedRefinement::Holds);
                    }
                }
                RefineOutcome::Fails(f) => {
                    if let Ok(mut c) = cache().lock() {
                        c.insert(
                            digest,
                            CachedRefinement::Fails {
                                reason: f.reason.clone(),
                                rendered: f.rendered.clone(),
                            },
                        );
                    }
                    return Ok(CompositionalOutcome::fallback(
                        format!("refinement failed for {name}: {}", f.reason),
                        Some(f.rendered),
                        stats,
                    ));
                }
                RefineOutcome::OutOfBudget(_) => {
                    return Ok(CompositionalOutcome::fallback(
                        format!("refinement budget exhausted for {name}"),
                        None,
                        stats,
                    ));
                }
            }
        }
        if profile == EnvProfile::Top {
            // The chatter stand-in must cover the device's emissions.
            let cover = refine(&local_dev, &local_clocks, &top_for(device), &limits.refine);
            if let RefineOutcome::Fails(f) = cover {
                return Ok(CompositionalOutcome::fallback(
                    format!("chatter cover failed for {name}: {}", f.reason),
                    Some(f.rendered),
                    stats,
                ));
            }
        }
    }

    // Stage 2: one abstract check per safeguard pair.
    let full_spec = ObserverSpec::from_spec(&cfg.pte_spec());
    for k in 0..cfg.n - 1 {
        let pair_net = build_pair_network(&net, cfg, k, profile)?;
        let spec = pair_spec(&full_spec, k);
        stats.pair_networks += 1;
        match check(&pair_net, &spec, &limits.search).map_err(|e| format!("pair {k}: {e}"))? {
            SymbolicVerdict::Safe(s) => {
                stats.abstract_states += s.states;
                stats.abstract_transitions += s.transitions;
            }
            SymbolicVerdict::Unsafe(_) => {
                return Ok(CompositionalOutcome::fallback(
                    format!(
                        "abstract pair network {k} (entities {}, {}) reported a violation \
                         (possibly spurious under the contract abstraction)",
                        k + 1,
                        k + 2
                    ),
                    None,
                    stats,
                ));
            }
            SymbolicVerdict::OutOfBudget { stats: s, .. } => {
                stats.abstract_states += s.states;
                stats.abstract_transitions += s.transitions;
                return Ok(CompositionalOutcome::fallback(
                    format!("abstract pair network {k} exhausted its search budget"),
                    None,
                    stats,
                ));
            }
        }
    }
    Ok(CompositionalOutcome {
        verdict: CompositionalVerdict::Safe,
        stats,
    })
}
