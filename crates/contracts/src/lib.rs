//! # pte-contracts — compositional assume-guarantee verification
//!
//! The monolithic zone engine ([`pte_zones::check`]) explores the product
//! of *all* `N` devices and caps out around chain-8. This crate implements
//! the ECDAR-style alternative (Reveaal's `composition.rs` /
//! `statepair.rs` construction): verify each device once against a small
//! *contract automaton* describing its observable interface, then verify
//! the safety property on abstract networks where devices are replaced by
//! their contracts.
//!
//! Three layers:
//!
//! * [`contract`] — the [`contract::Contract`] type and the canonical
//!   library (`lease-client`, `lease-provider`, `supervisor-iface`,
//!   `top`), derived per device from a
//!   [`pte_core::pattern::config::LeaseConfig`];
//! * [`refine`] — the timed refinement checker deciding
//!   `Device ⊑ Contract` by state-pair zone exploration, deterministic at
//!   any worker count, with symbolic counter-examples;
//! * [`compose`] — the driver [`compose::check_compositional`]: `N`
//!   (deduplicated, cached) refinement checks plus `N−1` small abstract
//!   pair checks; any gap in the argument falls back to the monolithic
//!   engine, so no spurious Safe is possible.

pub mod compose;
pub mod contract;
pub mod refine;

pub use compose::{
    cache_stats, check_compositional, reset_cache, CompositionalLimits, CompositionalOutcome,
    CompositionalStats, CompositionalVerdict, ContractCacheStats, EnvProfile, PROFILE_NAMES,
};
pub use contract::{
    lease_client, lease_provider, localize, supervisor_iface, top_for, Contract, ContractKind,
    CONTRACT_NAMES,
};
pub use refine::{refine, RefineFailure, RefineLimits, RefineOutcome, RefineStats};
