//! Timed refinement checking: `Device ⊑ Contract` by state-pair zone
//! exploration (the Reveaal `statepair.rs` construction).
//!
//! The checker explores pairs `(impl_location, spec_location, shared DBM)`
//! where the DBM ranges over the implementation's clocks (`1..=k`) and the
//! contract's clocks (`k+1..=k+m`) jointly. Each implementation edge must
//! be *matched*: an edge whose observable label (receive root and emitted
//! roots, restricted to the contract's alphabet) is visible must be
//! simulated by a spec edge with the same label whose guard contains the
//! whole enabled zone; an unobservable edge may stutter. On top of
//! language containment the checker enforces, at every reachable pair,
//!
//! * **risky-trajectory equality** — the monitored PTE property is not
//!   monotone in the risky signals, so a sound substitute must reproduce
//!   the device's risky flag exactly, not merely bound it;
//! * **invariant containment** — wherever the implementation may delay,
//!   the spec's invariant admits the delayed zone (so the contract never
//!   *forbids* a dwell the device can perform).
//!
//! The exploration is a round-based BFS: each round expands the whole
//! frontier (sharded over `workers` threads, like `reach.rs`), then admits
//! successors sequentially in frontier order with zone-inclusion
//! subsumption. Verdict *and* counter-example text are therefore
//! bit-identical at any worker count. The checker errs on the side of
//! refusal (nondeterministic or partially-covering spec guards fail), which
//! the compositional driver answers with a monolithic fallback — a
//! conservative refusal can cost performance, never soundness.

use crate::contract::{Contract, ContractKind};
use pte_zones::ta::{Sync, TaAutomaton, TaEdge};
use pte_zones::Dbm;
use std::collections::{BTreeSet, HashMap};

/// Budget and sharding knobs for one refinement check.
#[derive(Clone, Copy, Debug)]
pub struct RefineLimits {
    /// Maximum admitted state pairs before giving up.
    pub max_pairs: usize,
    /// Expansion shards per round (≥ 2 enables the thread pool).
    pub workers: usize,
}

impl Default for RefineLimits {
    fn default() -> RefineLimits {
        RefineLimits {
            max_pairs: 200_000,
            workers: 1,
        }
    }
}

/// Exploration counters for one refinement check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Admitted (non-subsumed) state pairs.
    pub pairs: usize,
    /// Successor pairs generated, including subsumed ones.
    pub transitions: usize,
    /// BFS rounds.
    pub rounds: usize,
}

/// A symbolic refinement counter-example: why the device does *not*
/// implement the contract, with the trace that exhibits it.
#[derive(Clone, Debug)]
pub struct RefineFailure {
    /// One-line machine-greppable reason.
    pub reason: String,
    /// Full rendered trace (deterministic across worker counts).
    pub rendered: String,
    /// Counters at the point of failure.
    pub stats: RefineStats,
}

/// Outcome of a `Device ⊑ Contract` check.
#[derive(Clone, Debug)]
pub enum RefineOutcome {
    /// The device implements the contract.
    Holds(RefineStats),
    /// It does not (or the checker could not prove it — the check is
    /// conservative); the failure carries a symbolic counter-example.
    Fails(Box<RefineFailure>),
    /// The pair budget was exhausted before a verdict.
    OutOfBudget(RefineStats),
}

impl RefineOutcome {
    /// `true` only for a proven refinement.
    pub fn holds(&self) -> bool {
        matches!(self, RefineOutcome::Holds(_))
    }

    /// The exploration counters, whatever the verdict.
    pub fn stats(&self) -> RefineStats {
        match self {
            RefineOutcome::Holds(s) | RefineOutcome::OutOfBudget(s) => *s,
            RefineOutcome::Fails(f) => f.stats,
        }
    }
}

/// Observable label of an edge under a contract alphabet: the receive
/// root (if visible) and the visible emissions, in emission order.
type Label = (Option<pte_hybrid::Root>, Vec<pte_hybrid::Root>);

fn label(e: &TaEdge, alphabet: &BTreeSet<pte_hybrid::Root>) -> Label {
    let root = e.sync.root().filter(|r| alphabet.contains(*r)).cloned();
    let emits = e
        .emits
        .iter()
        .filter(|r| alphabet.contains(*r))
        .cloned()
        .collect();
    (root, emits)
}

fn describe_label(e: &TaEdge) -> String {
    let mut s = String::new();
    match &e.sync {
        Sync::None => {}
        Sync::External(r) | Sync::Reliable(r) | Sync::Lossy(r) => {
            s.push_str("??");
            s.push_str(r.as_str());
        }
    }
    for r in &e.emits {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push('!');
        s.push_str(r.as_str());
    }
    if s.is_empty() {
        s.push_str("(internal)");
    }
    s
}

struct Node {
    qi: u32,
    qs: u32,
    zone: Dbm,
    parent: isize,
    step: String,
}

struct Succ {
    qi: u32,
    qs: u32,
    zone: Dbm,
    step: String,
}

#[derive(Debug)]
struct Fail {
    reason: String,
    detail: String,
}

struct Checker<'a> {
    imp: &'a TaAutomaton,
    spec: TaAutomaton,
    alphabet: &'a BTreeSet<pte_hybrid::Root>,
    kmax: Vec<i64>,
    names: Vec<String>,
    clocks: usize,
}

/// Decides `device ⊑ contract`. `impl_clocks` names the device's local
/// clocks (see [`crate::contract::localize`]); the device automaton must
/// already use local 1-based clock indices.
pub fn refine(
    device: &TaAutomaton,
    impl_clocks: &[String],
    contract: &Contract,
    limits: &RefineLimits,
) -> RefineOutcome {
    if contract.kind == ContractKind::Universal {
        return refine_universal(device, contract);
    }

    let ni = impl_clocks.len();
    let ns = contract.clocks.len();

    // Shift the contract's clocks past the implementation's.
    let mut spec = contract.automaton.clone();
    for l in &mut spec.locations {
        for a in &mut l.invariant {
            a.clock += ni;
        }
    }
    for e in &mut spec.edges {
        for a in &mut e.guard {
            a.clock += ni;
        }
        for (c, _) in &mut e.resets {
            *c += ni;
        }
    }

    let mut kmax = vec![0i64; ni + ns + 1];
    let mut fold = |aut: &TaAutomaton| {
        for l in &aut.locations {
            for a in &l.invariant {
                kmax[a.clock] = kmax[a.clock].max(a.ticks);
            }
        }
        for e in &aut.edges {
            for a in &e.guard {
                kmax[a.clock] = kmax[a.clock].max(a.ticks);
            }
            for (c, v) in &e.resets {
                kmax[*c] = kmax[*c].max(*v);
            }
        }
    };
    fold(device);
    fold(&spec);

    let names: Vec<String> = impl_clocks
        .iter()
        .map(|c| format!("i.{c}"))
        .chain(contract.clocks.iter().map(|c| format!("s.{c}")))
        .collect();

    let checker = Checker {
        imp: device,
        spec,
        alphabet: &contract.alphabet,
        kmax,
        names,
        clocks: ni + ns,
    };
    checker.run(device, contract, limits)
}

/// Discharges a [`ContractKind::Universal`] obligation: the chatter
/// contract must offer every distinct emission of the component. (Its
/// single location is never risky, so it is only sound for components the
/// observer does not monitor — the driver enforces that side condition.)
fn refine_universal(device: &TaAutomaton, contract: &Contract) -> RefineOutcome {
    let offered: BTreeSet<&Vec<pte_hybrid::Root>> =
        contract.automaton.edges.iter().map(|e| &e.emits).collect();
    let stats = RefineStats {
        pairs: 1,
        transitions: device.edges.len(),
        rounds: 1,
    };
    for e in &device.edges {
        if !e.emits.is_empty() && !offered.contains(&e.emits) {
            let roots: Vec<&str> = e.emits.iter().map(|r| r.as_str()).collect();
            return RefineOutcome::Fails(Box::new(RefineFailure {
                reason: format!(
                    "universal contract {} does not offer emission [{}]",
                    contract.name,
                    roots.join(", ")
                ),
                rendered: format!(
                    "{} ⋢ {}: emission [{}] of edge {} -> {} is not covered",
                    device.name,
                    contract.name,
                    roots.join(", "),
                    device.locations[e.src].name,
                    device.locations[e.dst].name
                ),
                stats,
            }));
        }
    }
    RefineOutcome::Holds(stats)
}

impl<'a> Checker<'a> {
    fn run(
        &self,
        device: &TaAutomaton,
        contract: &Contract,
        limits: &RefineLimits,
    ) -> RefineOutcome {
        let mut stats = RefineStats::default();
        let mut arena: Vec<Node> = Vec::new();
        let mut passed: HashMap<(u32, u32), Vec<Dbm>> = HashMap::new();
        let zone = Dbm::zero(self.clocks);
        let root = match self.settle(zone, device.initial, self.spec.initial) {
            Ok(Some(z)) => z,
            Ok(None) => return RefineOutcome::Holds(stats),
            Err(reason) => {
                return self.fail(
                    device,
                    contract,
                    &arena,
                    -1,
                    Fail {
                        reason,
                        detail: "at the initial state".to_string(),
                    },
                    stats,
                )
            }
        };
        passed.insert(
            (device.initial as u32, self.spec.initial as u32),
            vec![root.clone()],
        );
        arena.push(Node {
            qi: device.initial as u32,
            qs: self.spec.initial as u32,
            zone: root,
            parent: -1,
            step: format!(
                "start at ({}, {})",
                device.locations[device.initial].name, self.spec.locations[self.spec.initial].name
            ),
        });
        stats.pairs = 1;
        let mut frontier: Vec<usize> = vec![0];

        while !frontier.is_empty() {
            stats.rounds += 1;
            let results = self.expand_round(&arena, &frontier, limits.workers);
            // Failures are reported in frontier order, then edge order —
            // the expansion itself stops at the first failing edge of a
            // node, so the earliest (node, edge) failure wins.
            for (fi, res) in results.iter().enumerate() {
                if let Err(fail) = res {
                    return self.fail(
                        device,
                        contract,
                        &arena,
                        frontier[fi] as isize,
                        Fail {
                            reason: fail.reason.clone(),
                            detail: fail.detail.clone(),
                        },
                        stats,
                    );
                }
            }
            let mut next: Vec<usize> = Vec::new();
            for (fi, res) in results.into_iter().enumerate() {
                let parent = frontier[fi] as isize;
                for succ in res.unwrap() {
                    stats.transitions += 1;
                    let key = (succ.qi, succ.qs);
                    let stored = passed.entry(key).or_default();
                    if stored.iter().any(|z| z.includes(&succ.zone)) {
                        continue;
                    }
                    stored.retain(|z| !succ.zone.includes(z));
                    stored.push(succ.zone.clone());
                    arena.push(Node {
                        qi: succ.qi,
                        qs: succ.qs,
                        zone: succ.zone,
                        parent,
                        step: succ.step,
                    });
                    stats.pairs += 1;
                    next.push(arena.len() - 1);
                    if stats.pairs > limits.max_pairs {
                        return RefineOutcome::OutOfBudget(stats);
                    }
                }
            }
            frontier = next;
        }
        RefineOutcome::Holds(stats)
    }

    fn expand_round(
        &self,
        arena: &[Node],
        frontier: &[usize],
        workers: usize,
    ) -> Vec<Result<Vec<Succ>, Fail>> {
        if workers <= 1 || frontier.len() < 2 * workers {
            return frontier.iter().map(|&n| self.expand(&arena[n])).collect();
        }
        let chunk = frontier.len().div_ceil(workers);
        let mut out: Vec<Result<Vec<Succ>, Fail>> = Vec::with_capacity(frontier.len());
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        part.iter()
                            .map(|&n| self.expand(&arena[n]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("refinement shard panicked"));
            }
        })
        .expect("refinement scope panicked");
        out
    }

    /// Expands one admitted pair: every implementation edge must be
    /// matched or allowed to stutter. Stops at the first failing edge.
    fn expand(&self, node: &Node) -> Result<Vec<Succ>, Fail> {
        let qi = node.qi as usize;
        let qs = node.qs as usize;
        let mut out = Vec::new();
        for e in self.imp.edges.iter().filter(|e| e.src == qi) {
            let mut ze = node.zone.clone();
            if !e.guard.iter().all(|a| a.apply_and_close(&mut ze)) {
                continue; // edge not enabled anywhere in this zone
            }
            let lab = label(e, self.alphabet);
            let internal = lab.0.is_none() && lab.1.is_empty();

            // Spec candidates with the same observable label.
            let mut full: Vec<&TaEdge> = Vec::new();
            let mut partial = false;
            for f in self.spec.edges.iter().filter(|f| f.src == qs) {
                if label(f, self.alphabet) != lab {
                    continue;
                }
                let contains = f.guard.iter().all(|a| !a.negated().satisfiable_in(&ze));
                if contains {
                    full.push(f);
                } else {
                    let mut zf = ze.clone();
                    if f.guard.iter().all(|a| a.apply_and_close(&mut zf)) {
                        partial = true;
                    }
                }
            }

            let edge_desc = format!(
                "{} --{}--> {}",
                self.imp.locations[qi].name,
                describe_label(e),
                self.imp.locations[e.dst].name
            );
            let (spec_dst, spec_resets, spec_desc) = if full.is_empty() {
                if internal && self.imp.locations[e.dst].risky == self.imp.locations[qi].risky {
                    (qs, &[][..], "(spec stutters)".to_string())
                } else {
                    let reason = if partial {
                        "guard-mismatch: a spec edge matches the label but its guard does not \
                         contain the enabled zone"
                    } else if internal {
                        "no spec counterpart for an internal risky-changing edge"
                    } else {
                        "no spec edge matches the observable label"
                    };
                    return Err(Fail {
                        reason: reason.to_string(),
                        detail: format!("implementation edge {edge_desc}"),
                    });
                }
            } else {
                let f0 = full[0];
                if full
                    .iter()
                    .any(|f| f.dst != f0.dst || f.resets != f0.resets)
                {
                    return Err(Fail {
                        reason: "spec is nondeterministic: several matching edges with \
                                 different targets cover the enabled zone"
                            .to_string(),
                        detail: format!("implementation edge {edge_desc}"),
                    });
                }
                (
                    f0.dst,
                    &f0.resets[..],
                    format!("/ spec -> {}", self.spec.locations[f0.dst].name),
                )
            };

            for (c, v) in &e.resets {
                ze.reset(*c, *v);
            }
            for (c, v) in spec_resets {
                ze.reset(*c, *v);
            }
            match self.settle(ze, e.dst, spec_dst) {
                Ok(Some(mut z)) => {
                    z.extrapolate(&self.kmax);
                    out.push(Succ {
                        qi: e.dst as u32,
                        qs: spec_dst as u32,
                        zone: z,
                        step: format!("{edge_desc} {spec_desc}"),
                    });
                }
                Ok(None) => {}
                Err(reason) => {
                    return Err(Fail {
                        reason,
                        detail: format!("after implementation edge {edge_desc} {spec_desc}"),
                    });
                }
            }
        }
        Ok(out)
    }

    /// Entry + delay closure at a pair: conjoin the implementation
    /// invariant, verify the spec location admits every point (risky flag,
    /// entry set, and the whole implementation-delayed zone), and return
    /// the delayed zone. `Ok(None)` means the implementation itself cannot
    /// enter (pruned branch).
    fn settle(&self, mut z: Dbm, qi: usize, qs: usize) -> Result<Option<Dbm>, String> {
        let li = &self.imp.locations[qi];
        let ls = &self.spec.locations[qs];
        if li.risky != ls.risky {
            return Err(format!(
                "risky-flag mismatch: implementation {} is {}, spec {} is {}",
                li.name,
                if li.risky { "risky" } else { "safe" },
                ls.name,
                if ls.risky { "risky" } else { "safe" },
            ));
        }
        for a in &li.invariant {
            if !a.apply_and_close(&mut z) {
                return Ok(None);
            }
        }
        let escape = |z: &Dbm| ls.invariant.iter().find(|a| a.negated().satisfiable_in(z));
        if let Some(a) = escape(&z) {
            return Err(format!(
                "invariant escape on entry: spec {} requires {:?} but the entry zone leaves it",
                ls.name, a
            ));
        }
        if !li.frozen {
            let before = z.clone();
            z.up();
            for a in &li.invariant {
                a.apply_and_close(&mut z);
            }
            if ls.frozen && !before.includes(&z) {
                return Err(format!(
                    "frozen mismatch: spec {} freezes time but implementation {} can delay",
                    ls.name, li.name
                ));
            }
            if let Some(a) = escape(&z) {
                return Err(format!(
                    "invariant escape under delay: implementation {} may dwell past spec {} \
                     bound {:?}",
                    li.name, ls.name, a
                ));
            }
        }
        Ok(Some(z))
    }

    fn fail(
        &self,
        device: &TaAutomaton,
        contract: &Contract,
        arena: &[Node],
        at: isize,
        fail: Fail,
        stats: RefineStats,
    ) -> RefineOutcome {
        let mut steps: Vec<String> = Vec::new();
        let mut cur = at;
        while cur >= 0 {
            let n = &arena[cur as usize];
            steps.push(format!(
                "({}, {})  {}\n    via {}",
                device.locations[n.qi as usize].name,
                self.spec.locations[n.qs as usize].name,
                n.zone.render(&self.names),
                n.step,
            ));
            cur = n.parent;
        }
        steps.reverse();
        const SHOWN: usize = 30;
        let skipped = steps.len().saturating_sub(SHOWN);
        let mut rendered = format!(
            "{} ⋢ {}\nreason: {}\n{}\n",
            device.name, contract.name, fail.reason, fail.detail
        );
        if skipped > 0 {
            rendered.push_str(&format!("trace: … ({skipped} earlier steps)\n"));
        } else {
            rendered.push_str("trace:\n");
        }
        for s in &steps[skipped..] {
            rendered.push_str("  ");
            rendered.push_str(s);
            rendered.push('\n');
        }
        RefineOutcome::Fails(Box::new(RefineFailure {
            reason: fail.reason,
            rendered,
            stats,
        }))
    }
}
