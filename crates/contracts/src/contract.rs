//! Contract automata: observable interface specifications for lease-pattern
//! participants.
//!
//! A [`Contract`] is a small timed automaton over a device's *observable*
//! alphabet — the lease/grant/release/abort channels it shares with the
//! Supervisor, with the c1–c7 timing envelope from the [`LeaseConfig`] —
//! plus the risky/safe classification of its locations. The refinement
//! checker ([`crate::refine`]) decides whether a concrete (lowered) device
//! automaton implements a contract; the compositional driver
//! ([`crate::compose`]) then substitutes contracts for devices in small
//! per-safeguard abstract networks.
//!
//! The canonical library:
//!
//! | family             | kind      | describes                                     |
//! |--------------------|-----------|-----------------------------------------------|
//! | `lease-client`     | timed     | device-side lease protocol + timing envelope  |
//! | `lease-provider`   | untimed   | supervisor's per-device grant/release order   |
//! | `supervisor-iface` | identity  | the concrete supervisor, verbatim             |
//! | `top`              | universal | chatter: any emission of the device, anytime  |

use pte_core::pattern::{config::LeaseConfig, events::EventNames};
use pte_hybrid::Root;
use pte_zones::ta::{Atom, Rel, Sync, TaAutomaton, TaEdge, TaLocation};
use pte_zones::to_ticks;
use std::collections::BTreeSet;

/// How a contract relates to the component it abstracts, which determines
/// how [`crate::refine::refine`] discharges the substitution obligation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContractKind {
    /// A timed interface automaton; checked by state-pair zone exploration.
    Timed,
    /// The component itself, verbatim; the refinement is the identity and
    /// is still discharged through the full state-pair exploration (a
    /// useful self-test of the checker).
    Identity,
    /// The universal "chatter" contract: one location, a self-loop per
    /// distinct emission of the component, no clocks, never risky. Sound
    /// only for components whose risky signal is *not* monitored; checked
    /// syntactically (emission cover), not by zone exploration.
    Universal,
}

/// An observable interface specification for one network component.
///
/// The automaton uses **local** 1-based clock indices `1..=clocks.len()`;
/// instantiation into a network remaps them ([`Contract::instantiate`]).
#[derive(Clone, Debug)]
pub struct Contract {
    /// Display name, e.g. `lease-client(participant2)`.
    pub name: String,
    /// Library family: one of [`CONTRACT_NAMES`].
    pub family: &'static str,
    /// Discharge strategy for the refinement obligation.
    pub kind: ContractKind,
    /// The specification automaton (local clock indices).
    pub automaton: TaAutomaton,
    /// Names of the local clocks, index `i+1` ↔ `clocks[i]`.
    pub clocks: Vec<String>,
    /// Roots visible to this contract; everything else is internal to the
    /// implementation and matched by stuttering.
    pub alphabet: BTreeSet<Root>,
}

/// The canonical contract families, in suggestion order for the
/// did-you-mean diagnostics.
pub const CONTRACT_NAMES: [&str; 4] = ["lease-client", "lease-provider", "supervisor-iface", "top"];

impl Contract {
    /// Clones the contract automaton with local clock `k` remapped to the
    /// global index `map[k-1]`, for insertion into a [`pte_zones::ta::TaNetwork`].
    pub fn instantiate(&self, map: &[usize]) -> TaAutomaton {
        let mut aut = self.automaton.clone();
        let remap = |c: usize| -> usize {
            assert!(c >= 1 && c <= map.len(), "contract clock out of range");
            map[c - 1]
        };
        for loc in &mut aut.locations {
            for atom in &mut loc.invariant {
                atom.clock = remap(atom.clock);
            }
        }
        for e in &mut aut.edges {
            for atom in &mut e.guard {
                atom.clock = remap(atom.clock);
            }
            for (c, _) in &mut e.resets {
                *c = remap(*c);
            }
        }
        aut
    }
}

fn loc(name: &str, invariant: Vec<Atom>, risky: bool) -> TaLocation {
    TaLocation {
        name: name.to_string(),
        invariant,
        frozen: false,
        risky,
    }
}

fn le(clock: usize, ticks: i64) -> Atom {
    Atom {
        clock,
        rel: Rel::Le,
        ticks,
    }
}

fn ge(clock: usize, ticks: i64) -> Atom {
    Atom {
        clock,
        rel: Rel::Ge,
        ticks,
    }
}

struct EdgeSpec {
    src: usize,
    dst: usize,
    guard: Vec<Atom>,
    resets: Vec<(usize, i64)>,
    sync: Sync,
    emits: Vec<Root>,
    urgent: bool,
}

fn build(name: String, locations: Vec<TaLocation>, edges: Vec<EdgeSpec>) -> TaAutomaton {
    TaAutomaton {
        name,
        locations,
        edges: edges
            .into_iter()
            .map(|e| TaEdge {
                src: e.src,
                dst: e.dst,
                guard: e.guard,
                resets: e.resets,
                sync: e.sync,
                emits: e.emits,
                urgent: e.urgent,
            })
            .collect(),
        initial: 0,
    }
}

/// The device-side lease contract for entity `i` (`1..=cfg.n`): the exact
/// request/approve/enter/run/exit envelope of the pattern's Participant
/// (`i < N`) or Initializer (`i = N`), with every in-network receive lossy
/// and every timing constant drawn from the [`LeaseConfig`].
///
/// This is both the refinement obligation for the concrete device and its
/// stand-in inside the per-safeguard abstract networks, so it deliberately
/// preserves the device's mandatory-progress structure (invariants and
/// urgent expiry edges use the same constants as the device builders):
/// the contract must not dwell anywhere the device cannot.
pub fn lease_client(cfg: &LeaseConfig, i: usize) -> Contract {
    assert!(i >= 1 && i <= cfg.n, "entity index out of range");
    if i == cfg.n {
        initializer_client(cfg)
    } else {
        participant_client(cfg, i)
    }
}

fn participant_client(cfg: &LeaseConfig, i: usize) -> Contract {
    let ev = EventNames::new(cfg.n);
    let c = 1usize;
    let t_enter = to_ticks(cfg.t_enter[i - 1].as_secs_f64());
    let t_run = to_ticks(cfg.t_run[i - 1].as_secs_f64());
    let t_exit = to_ticks(cfg.t_exit[i - 1].as_secs_f64());

    // Locations mirror Fig. 5(b): Fall-Back, L0 (zero-dwell decision),
    // Entering, Risky Core, Exiting 1 (risky), Exiting 2 (safe).
    let locations = vec![
        loc("Fall-Back", vec![], false),
        loc("L0", vec![le(c, 0)], false),
        loc("Entering", vec![le(c, t_enter)], false),
        loc("Risky Core", vec![le(c, t_run)], true),
        loc("Exiting 1", vec![le(c, t_exit)], true),
        loc("Exiting 2", vec![le(c, t_exit)], false),
    ];
    let (fb, l0, entering, risky, ex1, ex2) = (0, 1, 2, 3, 4, 5);
    let edges = vec![
        EdgeSpec {
            src: fb,
            dst: l0,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.lease_req(i)),
            emits: vec![],
            urgent: false,
        },
        // The decision point: approve or deny, instantly. The contract
        // keeps the deny branch even for always-willing participants
        // (whose lowered deny edge is dead) — a contract may offer more.
        EdgeSpec {
            src: l0,
            dst: entering,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.lease_approve(i)],
            urgent: true,
        },
        EdgeSpec {
            src: l0,
            dst: fb,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.lease_deny(i)],
            urgent: true,
        },
        EdgeSpec {
            src: entering,
            dst: risky,
            guard: vec![ge(c, t_enter)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![],
            urgent: true,
        },
        EdgeSpec {
            src: entering,
            dst: ex2,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.cancel(i)),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: entering,
            dst: ex2,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.abort(i)),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: risky,
            dst: ex1,
            guard: vec![ge(c, t_run)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.to_stop(i)],
            urgent: true,
        },
        EdgeSpec {
            src: risky,
            dst: ex1,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.cancel(i)),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: risky,
            dst: ex1,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.abort(i)),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: ex1,
            dst: fb,
            guard: vec![ge(c, t_exit)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.exit(i)],
            urgent: true,
        },
        EdgeSpec {
            src: ex2,
            dst: fb,
            guard: vec![ge(c, t_exit)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.exit(i)],
            urgent: true,
        },
    ];
    let alphabet: BTreeSet<Root> = [
        ev.lease_req(i),
        ev.lease_approve(i),
        ev.lease_deny(i),
        ev.cancel(i),
        ev.abort(i),
        ev.exit(i),
        ev.to_stop(i),
    ]
    .into_iter()
    .collect();
    Contract {
        name: format!("lease-client({})", cfg.entity_name(i)),
        family: "lease-client",
        kind: ContractKind::Timed,
        automaton: build(cfg.entity_name(i), locations, edges),
        clocks: vec!["c".to_string()],
        alphabet,
    }
}

fn initializer_client(cfg: &LeaseConfig) -> Contract {
    let n = cfg.n;
    let ev = EventNames::new(n);
    let c = 1usize;
    let t_req = to_ticks(cfg.t_req_max.as_secs_f64());
    let t_enter = to_ticks(cfg.t_enter[n - 1].as_secs_f64());
    let t_run = to_ticks(cfg.t_run[n - 1].as_secs_f64());
    let t_exit = to_ticks(cfg.t_exit[n - 1].as_secs_f64());

    let locations = vec![
        loc("Fall-Back", vec![], false),
        loc("Requesting", vec![le(c, t_req)], false),
        loc("Entering", vec![le(c, t_enter)], false),
        loc("Risky Core", vec![le(c, t_run)], true),
        loc("Exiting 1", vec![le(c, t_exit)], true),
        loc("Exiting 2", vec![le(c, t_exit)], false),
    ];
    let (fb, req, entering, risky, ex1, ex2) = (0, 1, 2, 3, 4, 5);
    let edges = vec![
        EdgeSpec {
            src: fb,
            dst: req,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::External(ev.cmd_request()),
            emits: vec![ev.req()],
            urgent: false,
        },
        EdgeSpec {
            src: req,
            dst: entering,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.approve()),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: req,
            dst: fb,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::External(ev.cmd_cancel()),
            emits: vec![ev.cancel_from_initializer()],
            urgent: false,
        },
        EdgeSpec {
            src: req,
            dst: fb,
            guard: vec![ge(c, t_req)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![],
            urgent: true,
        },
        EdgeSpec {
            src: entering,
            dst: risky,
            guard: vec![ge(c, t_enter)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![],
            urgent: true,
        },
        EdgeSpec {
            src: entering,
            dst: ex2,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::External(ev.cmd_cancel()),
            emits: vec![ev.cancel_from_initializer()],
            urgent: false,
        },
        EdgeSpec {
            src: entering,
            dst: ex2,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.abort(n)),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: risky,
            dst: ex1,
            guard: vec![ge(c, t_run)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.to_stop(n)],
            urgent: true,
        },
        EdgeSpec {
            src: risky,
            dst: ex1,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::External(ev.cmd_cancel()),
            emits: vec![ev.cancel_from_initializer()],
            urgent: false,
        },
        EdgeSpec {
            src: risky,
            dst: ex1,
            guard: vec![],
            resets: vec![(c, 0)],
            sync: Sync::Lossy(ev.abort(n)),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: ex1,
            dst: fb,
            guard: vec![ge(c, t_exit)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.exit(n)],
            urgent: true,
        },
        EdgeSpec {
            src: ex2,
            dst: fb,
            guard: vec![ge(c, t_exit)],
            resets: vec![(c, 0)],
            sync: Sync::None,
            emits: vec![ev.exit(n)],
            urgent: true,
        },
    ];
    let alphabet: BTreeSet<Root> = [
        ev.cmd_request(),
        ev.cmd_cancel(),
        ev.req(),
        ev.cancel_from_initializer(),
        ev.approve(),
        ev.abort(n),
        ev.exit(n),
        ev.to_stop(n),
    ]
    .into_iter()
    .collect();
    Contract {
        name: format!("lease-client({})", cfg.entity_name(n)),
        family: "lease-client",
        kind: ContractKind::Timed,
        automaton: build(cfg.entity_name(n), locations, edges),
        clocks: vec!["c".to_string()],
        alphabet,
    }
}

/// The supervisor-side guarantee toward participant `i` (`1..cfg.n`): an
/// **untimed** projection of the supervisor's protocol order onto entity
/// `i`'s channels — request, then approve/deny, then exactly one release
/// (cancel or abort) before the next request. Library + refinement-test
/// material; the compositional driver keeps the concrete supervisor.
pub fn lease_provider(cfg: &LeaseConfig, i: usize) -> Contract {
    assert!(i >= 1 && i < cfg.n, "provider contracts cover participants");
    let ev = EventNames::new(cfg.n);
    let locations = vec![
        loc("Idle", vec![], false),
        loc("Pending", vec![], false),
        loc("Engaged", vec![], false),
        loc("Released", vec![], false),
    ];
    let (idle, pending, engaged, released) = (0, 1, 2, 3);
    let mut edges = vec![
        // A new round grants entity i.
        EdgeSpec {
            src: idle,
            dst: pending,
            guard: vec![],
            resets: vec![],
            sync: Sync::None,
            emits: vec![ev.lease_req(i)],
            urgent: false,
        },
        // The device approves (receipt may be lost: the supervisor's
        // receive is lossy, so from the device's view the approval may
        // also be followed by an abort — covered from Engaged too).
        EdgeSpec {
            src: pending,
            dst: engaged,
            guard: vec![],
            resets: vec![],
            sync: Sync::Lossy(ev.lease_approve(i)),
            emits: vec![],
            urgent: false,
        },
        // Denial is answered by an abort.
        EdgeSpec {
            src: pending,
            dst: released,
            guard: vec![],
            resets: vec![],
            sync: Sync::Lossy(ev.lease_deny(i)),
            emits: vec![ev.abort(i)],
            urgent: false,
        },
        // Exit report (or the grant-clock timeout, internal) ends the
        // round for entity i.
        EdgeSpec {
            src: released,
            dst: idle,
            guard: vec![],
            resets: vec![],
            sync: Sync::Lossy(ev.exit(i)),
            emits: vec![],
            urgent: false,
        },
        EdgeSpec {
            src: released,
            dst: idle,
            guard: vec![],
            resets: vec![],
            sync: Sync::None,
            emits: vec![],
            urgent: false,
        },
    ];
    // Internal releases: timeout/approval-violation aborts and
    // initializer-driven cancels, from both Pending and Engaged.
    for src in [pending, engaged] {
        for emit in [ev.abort(i), ev.cancel(i)] {
            edges.push(EdgeSpec {
                src,
                dst: released,
                guard: vec![],
                resets: vec![],
                sync: Sync::None,
                emits: vec![emit],
                urgent: false,
            });
        }
    }
    let alphabet: BTreeSet<Root> = [
        ev.lease_req(i),
        ev.lease_approve(i),
        ev.lease_deny(i),
        ev.cancel(i),
        ev.abort(i),
        ev.exit(i),
    ]
    .into_iter()
    .collect();
    Contract {
        name: format!("lease-provider(xi{i})"),
        family: "lease-provider",
        kind: ContractKind::Timed,
        automaton: build("supervisor".to_string(), locations, edges),
        clocks: vec![],
        alphabet,
    }
}

/// The identity contract for the supervisor: the lowered automaton itself
/// over its full alphabet. The compositional driver always keeps the
/// concrete supervisor; this contract exists so the refinement checker has
/// a non-trivial "identity" obligation to discharge (every edge must match
/// itself), which doubles as a soundness self-test.
pub fn supervisor_iface(sup: &TaAutomaton, clock_names: &[String]) -> Contract {
    let (automaton, clocks) = localize(sup, clock_names);
    let alphabet: BTreeSet<Root> = automaton
        .edges
        .iter()
        .flat_map(|e| {
            e.sync
                .root()
                .cloned()
                .into_iter()
                .chain(e.emits.iter().cloned())
        })
        .collect();
    Contract {
        name: "supervisor-iface".to_string(),
        family: "supervisor-iface",
        kind: ContractKind::Identity,
        automaton,
        clocks,
        alphabet,
    }
}

/// The universal "chatter" contract for a component: a single safe
/// location with one self-loop per distinct emission of the component,
/// fireable at any time. Sound as a stand-in for any component whose risky
/// signal the observer does not monitor: it reproduces every emission the
/// component could ever make (and more), and dropping the component's
/// receives only removes behaviors of the component itself — this
/// network's emitters never block on a receiver.
pub fn top_for(component: &TaAutomaton) -> Contract {
    let mut seen: BTreeSet<Vec<Root>> = BTreeSet::new();
    for e in &component.edges {
        if !e.emits.is_empty() {
            seen.insert(e.emits.clone());
        }
    }
    let alphabet: BTreeSet<Root> = seen.iter().flatten().cloned().collect();
    let edges = seen
        .into_iter()
        .map(|emits| EdgeSpec {
            src: 0,
            dst: 0,
            guard: vec![],
            resets: vec![],
            sync: Sync::None,
            emits,
            urgent: false,
        })
        .collect();
    Contract {
        name: format!("top({})", component.name),
        family: "top",
        kind: ContractKind::Universal,
        automaton: build(
            component.name.clone(),
            vec![loc("Chatter", vec![], false)],
            edges,
        ),
        clocks: vec![],
        alphabet,
    }
}

/// Rewrites an automaton taken from a lowered network (global clock
/// indices) into the local 1-based clock space used by contracts and the
/// refinement checker. Returns the rewritten automaton and the names of
/// the clocks it actually reads or resets, in ascending global order.
pub fn localize(aut: &TaAutomaton, clock_names: &[String]) -> (TaAutomaton, Vec<String>) {
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for l in &aut.locations {
        for a in &l.invariant {
            used.insert(a.clock);
        }
    }
    for e in &aut.edges {
        for a in &e.guard {
            used.insert(a.clock);
        }
        for (c, _) in &e.resets {
            used.insert(*c);
        }
    }
    let order: Vec<usize> = used.into_iter().collect();
    let local = |c: usize| -> usize { order.iter().position(|&g| g == c).unwrap() + 1 };
    let mut out = aut.clone();
    for l in &mut out.locations {
        for a in &mut l.invariant {
            a.clock = local(a.clock);
        }
    }
    for e in &mut out.edges {
        for a in &mut e.guard {
            a.clock = local(a.clock);
        }
        for (c, _) in &mut e.resets {
            *c = local(*c);
        }
    }
    let names = order
        .iter()
        .map(|&g| {
            clock_names
                .get(g - 1)
                .cloned()
                .unwrap_or_else(|| format!("x{g}"))
        })
        .collect();
    (out, names)
}
