//! `pte-verify-client` — submit verification requests to a running
//! `pte-verifyd`, render its streamed progress, and exit with the
//! verdict.
//!
//! ```sh
//! pte-verify-client --scenario case-study            # leased arm, symbolic
//! pte-verify-client --scenario chain-4 --baseline    # lease-stripped arm
//! pte-verify-client --scenario chain-3 --backend portfolio
//! pte-verify-client --scenario chain-6 --warm-from KEY   # seed from a prior proof
//! pte-verify-client --list                           # daemon's catalogue
//! pte-verify-client --stats                          # scheduler/cache stats
//! pte-verify-client --shutdown                       # graceful drain
//! ```
//!
//! Connection flags: `--socket PATH` (default `/tmp/pte-verifyd.sock`)
//! or `--tcp ADDR`. Request flags: `--baseline`, `--backend
//! {analytic,exhaustive,montecarlo,symbolic,compositional,auto,portfolio}`,
//! `--contract PROFILE` (environment contract profile for the
//! compositional backend; unknown names get a "did you mean"
//! diagnostic), `--refine-pairs N` (refinement state-pair budget),
//! `--budget N` (symbolic state budget), `--workers N`, `--quiet`
//! (suppress progress lines), `--no-cache` (bypass both cache tiers for
//! the lookup and the store), `--warm-from KEY` (ask the daemon to seed
//! the search from the named prior run's passed-list artifact — needs a
//! daemon started with `--cache-dir`; inadmissible artifacts silently
//! fall back to a cold run), and `--relax-safeguards MS` (submit the
//! scenario's config with every safeguard pair weakened to
//! `(MS, MS/2)` milliseconds — the canonical warm-start demo: a weaker
//! monitor over the same network admits the parent's whole proof).
//!
//! Exit status mirrors the CLI conventions of `zprobe`: `0` for a
//! `Safe` verdict (and for `--list`/`--stats`/`--shutdown`), `1` for
//! `Unsafe`, `2` for usage, connection, and unknown-scenario errors
//! (the daemon's diagnostic — "did you mean" suggestion included — is
//! printed to stderr verbatim), `3` for an inconclusive verdict.

use pte_bench::arg_value;
use pte_server::client::Client;
use pte_server::protocol::ServerFrame;
use pte_server::transport::Endpoint;
use pte_verify::{BackendSel, Verdict, VerificationRequest};
use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().collect();
    let endpoint = match arg_value(&args, "--tcp") {
        Some(addr) => Endpoint::Tcp(addr),
        None => Endpoint::Unix(PathBuf::from(
            arg_value(&args, "--socket").unwrap_or_else(|| "/tmp/pte-verifyd.sock".to_string()),
        )),
    };
    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pte-verify-client: cannot connect to {endpoint}: {e}");
            return 2;
        }
    };

    if args.iter().any(|a| a == "--list") {
        return match client.list_scenarios() {
            Ok(scenarios) => {
                println!("available scenarios (from {endpoint}):");
                for s in scenarios {
                    println!("  {:<12} (N={}) — {}", s.name, s.n, s.description);
                }
                0
            }
            Err(e) => {
                eprintln!("pte-verify-client: {e}");
                2
            }
        };
    }
    if args.iter().any(|a| a == "--stats") {
        return match client.stats() {
            Ok(s) => {
                println!(
                    "workers: {}/{} in use (peak {}), {} queued, {} active",
                    s.workers_in_use, s.worker_budget, s.peak_workers_in_use, s.queued, s.active
                );
                println!(
                    "requests: {} submitted, {} completed, {} cancelled",
                    s.submitted, s.completed, s.cancelled
                );
                println!(
                    "cache: {} entries ({} B{}), {} hits / {} misses, {} evictions",
                    s.cache_entries,
                    s.cache_bytes,
                    if s.cache_max_bytes != 0 {
                        format!(" of {} B", s.cache_max_bytes)
                    } else {
                        String::new()
                    },
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_evictions
                );
                println!(
                    "disk: {} files ({} B{}), {} hits / {} misses, \
                     {} artifact hits / {} artifact misses, {} stores, \
                     {} evictions, {} corrupt",
                    s.disk_files,
                    s.disk_bytes,
                    if s.disk_max_bytes != 0 {
                        format!(" of {} B", s.disk_max_bytes)
                    } else {
                        String::new()
                    },
                    s.disk_hits,
                    s.disk_misses,
                    s.disk_artifact_hits,
                    s.disk_artifact_misses,
                    s.disk_stores,
                    s.disk_evictions,
                    s.disk_corrupt
                );
                println!(
                    "contracts: {} refinements cached, {} hits / {} misses, {} deduped",
                    s.refine_cache_entries,
                    s.refine_cache_hits,
                    s.refine_cache_misses,
                    s.contracts_deduped
                );
                println!("uptime: {:.1} s", s.uptime_ms / 1e3);
                0
            }
            Err(e) => {
                eprintln!("pte-verify-client: {e}");
                2
            }
        };
    }
    if args.iter().any(|a| a == "--shutdown") {
        return match client.shutdown() {
            Ok(()) => {
                println!("daemon at {endpoint} is draining");
                0
            }
            Err(e) => {
                eprintln!("pte-verify-client: {e}");
                2
            }
        };
    }

    let name = arg_value(&args, "--scenario").unwrap_or_else(|| "case-study".to_string());
    let backend = match arg_value(&args, "--backend").as_deref() {
        None | Some("symbolic") => BackendSel::Symbolic,
        Some("analytic") => BackendSel::Analytic,
        Some("exhaustive") => BackendSel::Exhaustive,
        Some("montecarlo") => BackendSel::MonteCarlo,
        Some("compositional") => BackendSel::Compositional,
        Some("auto") => BackendSel::Auto,
        Some("portfolio") => BackendSel::Portfolio,
        Some(other) => {
            eprintln!("unknown backend `{other}`");
            return 2;
        }
    };
    // `--relax-safeguards MS` swaps the scenario-by-name spelling for
    // its inline config with every safeguard pair weakened to
    // `(MS, MS/2)` ms — same network, weaker monitor, so a
    // `--warm-from` parent proof transfers whole.
    let mut request = match arg_value(&args, "--relax-safeguards") {
        Some(ms) => {
            let Ok(ms) = ms.parse::<u64>() else {
                eprintln!("--relax-safeguards needs milliseconds, got `{ms}`");
                return 2;
            };
            let Some(scenario) = pte_tracheotomy::registry::by_name(&name) else {
                eprintln!("unknown scenario `{name}` (relaxation needs the registry config)");
                return 2;
            };
            let mut config = scenario.config;
            let pair = pte_core::rules::PairSpec::new(
                pte_hybrid::Time::seconds(ms as f64 / 1e3),
                pte_hybrid::Time::seconds(ms as f64 / 2e3),
            );
            config.safeguards = vec![pair; config.safeguards.len()];
            VerificationRequest::config(config).max_states(scenario.recommended_budget)
        }
        None => VerificationRequest::scenario(&name),
    }
    .leased(!args.iter().any(|a| a == "--baseline"))
    .backend(backend);
    if let Some(budget) = arg_value(&args, "--budget").and_then(|v| v.parse().ok()) {
        request = request.max_states(budget);
    }
    if let Some(workers) = arg_value(&args, "--workers").and_then(|v| v.parse().ok()) {
        request = request.workers(workers);
    }
    if let Some(pairs) = arg_value(&args, "--refine-pairs").and_then(|v| v.parse().ok()) {
        request = request.refine_pairs(pairs);
    }
    if let Some(profile) = arg_value(&args, "--contract") {
        // Validate locally so typos fail fast with the same diagnostic
        // the daemon would produce, without a round trip.
        if pte_verify::EnvProfile::parse(&profile).is_err() {
            eprintln!("{}", pte_verify::unknown_contract_diagnostic(&profile));
            return 2;
        }
        request = request.contract(&profile);
    }
    if let Some(parent) = arg_value(&args, "--warm-from") {
        request = request.warm_from(parent);
    }
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let quiet = args.iter().any(|a| a == "--quiet");

    let id = match client.submit_with(&request, no_cache) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("pte-verify-client: {e}");
            return 2;
        }
    };
    let outcome = client.wait_report(id, |frame| {
        if quiet {
            return;
        }
        if let ServerFrame::Progress {
            backend,
            round,
            settled,
            frontier,
            elapsed_ms,
            ..
        } = frame
        {
            eprintln!(
                "  [{backend}] round {round}: {settled} settled, {frontier} frontier ({:.1} s)",
                elapsed_ms / 1e3
            );
        }
    });
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            // Unknown-scenario diagnostics (with the "did you mean"
            // suggestion and the catalogue) arrive here.
            eprintln!("{e}");
            return 2;
        }
    };
    print!("{}", outcome.report);
    println!(
        "key: {}{}",
        outcome.key,
        if outcome.cached { " (cached)" } else { "" }
    );
    if let Some(seeded) = outcome
        .report
        .backend("symbolic")
        .map(|b| b.warm_seeded)
        .filter(|&s| s > 0)
    {
        println!("warm-start: {seeded} states transferred");
    }
    // The compositional backend's rendered verdict carries the whole
    // assume-guarantee story (contracts held / fallback reason +
    // refinement counter-example); surface it like a witness.
    if let Some(b) = outcome.report.backend("compositional") {
        println!("{}", b.rendered);
    }
    if let Some(c) = &outcome.report.compositional {
        println!(
            "compositional: {} contracts ({} checked, {} deduped, {} cached), \
             {} refine pairs, {} pair networks, {} abstract states",
            c.contracts_total,
            c.contracts_checked,
            c.contracts_deduped,
            c.contracts_cached,
            c.refine_pairs,
            c.pair_networks,
            c.abstract_states
        );
    }
    if let Some(witness) = &outcome.report.witness {
        println!("witness:\n{witness}");
    }
    match outcome.report.verdict {
        Verdict::Safe => 0,
        Verdict::Unsafe => 1,
        Verdict::Inconclusive(_) => 3,
    }
}
