//! SpO2 trajectory during a trial: the physiological view of the lease
//! guarantee. Plots (ASCII) the patient's blood oxygen across a scripted
//! procedure with a lost-cancel fault, with and without leases: the
//! leased run's SpO2 never approaches the 92% threshold because the
//! ventilator pause is bounded; the unleased run's SpO2 crashes through
//! it.

use pte_core::pattern::LeaseConfig;
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_sim::network::{Channel, Delivery, DropReason, Message, NetworkBridge};
use pte_tracheotomy::emulation::build_case_study;
use pte_tracheotomy::supervisor::SPO2_THRESHOLD;

/// Drops every ventilator stop command and laser uplink report.
struct LostStops;
impl Channel for LostStops {
    fn transmit(&mut self, msg: &Message, now: Time) -> Delivery {
        let r = msg.root.as_str();
        if r.contains("to_xi1_cancel")
            || r.contains("to_xi1_abort")
            || r.contains("xi2_to_xi0_cancel")
            || r.contains("xi2_to_xi0_exit")
        {
            Delivery::Dropped {
                reason: DropReason::Scripted,
            }
        } else {
            Delivery::Delivered { at: now }
        }
    }
}

fn run(leased: bool) -> Vec<(Time, f64)> {
    let cfg = LeaseConfig::case_study();
    let automata = build_case_study(&cfg, leased).expect("builds");
    let exec_cfg = ExecutorConfig {
        sample_interval: Some(Time::seconds(2.0)),
        ..Default::default()
    };
    let mut exec = Executor::new(automata, exec_cfg).expect("executor");
    let mut bridge = NetworkBridge::perfect();
    bridge.set_default(Box::new(LostStops));
    exec.set_bridge(bridge);
    exec.add_driver(Box::new(ScriptedDriver::new(
        "surgeon",
        vec![
            (Time::seconds(14.0), Root::new("cmd_request")),
            (Time::seconds(40.0), Root::new("cmd_cancel")),
        ],
    )));
    let trace = exec.run_until(Time::seconds(240.0)).expect("runs");
    let patient = trace.index_of("patient").unwrap();
    trace.series(patient, "SpO2")
}

fn plot(label: &str, series: &[(Time, f64)]) {
    println!("{label}:");
    for (t, v) in series.iter().step_by(3) {
        let cols = (((v - 80.0) / 20.0) * 60.0).clamp(0.0, 60.0) as usize;
        let marker = if *v < SPO2_THRESHOLD { '!' } else { '*' };
        println!(
            "  {:>6.0}s {:6.2}% |{}{}",
            t.as_secs_f64(),
            v,
            " ".repeat(cols),
            marker
        );
    }
    let min = series.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
    println!("  minimum SpO2: {min:.2}% (threshold {SPO2_THRESHOLD}%)\n");
}

fn main() {
    println!("Patient SpO2 during a procedure with lost stop commands\n");
    let leased = run(true);
    let unleased = run(false);
    plot(
        "WITH leases (ventilator pause bounded by its lease)",
        &leased,
    );
    plot("WITHOUT leases (ventilator stuck paused)", &unleased);

    let min_leased = leased.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
    let min_unleased = unleased.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
    assert!(
        min_leased > SPO2_THRESHOLD,
        "leased run must stay above threshold: {min_leased}"
    );
    assert!(
        min_unleased < SPO2_THRESHOLD,
        "unleased run must cross threshold: {min_unleased}"
    );
    println!("leased minimum {min_leased:.1}% vs unleased minimum {min_unleased:.1}% — the lease is what keeps the patient saturated.");
}
