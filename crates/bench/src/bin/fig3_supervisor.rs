//! Regenerates **Fig. 3**: the Supervisor design-pattern automaton
//! `A_supvsr`, rendered as DOT for the case study (N = 2) and for a
//! larger chain (N = 4) to show the general shape.

use pte_core::pattern::{build_supervisor, LeaseConfig};
use pte_core::rules::PairSpec;
use pte_core::synthesis::{synthesize, SynthesisRequest};
use pte_hybrid::dot::{to_dot_with, DotOptions};
use pte_hybrid::Time;

fn main() {
    let opts = DotOptions {
        show_flows: false,
        show_resets: false,
        ..Default::default()
    };

    let cfg2 = LeaseConfig::case_study();
    let sup2 = build_supervisor(&cfg2).expect("supervisor builds");
    println!("Fig. 3: Supervisor A_supvsr for N = 2 (case study):\n");
    println!("{}", to_dot_with(&sup2, &opts));

    // A synthesized N = 4 configuration for the general picture.
    let req = SynthesisRequest {
        n: 4,
        safeguards: vec![
            PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
            PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
            PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)),
        ],
        rule1_bound: Time::seconds(1200.0),
        min_run_initializer: Time::seconds(10.0),
        t_wait: Time::seconds(2.0),
        margin: Time::seconds(0.5),
    };
    let cfg4 = synthesize(&req).expect("synthesis succeeds");
    let sup4 = build_supervisor(&cfg4).expect("supervisor builds");
    println!("Fig. 3 (extended): Supervisor for N = 4 (synthesized config):\n");
    println!("{}", to_dot_with(&sup4, &opts));
    println!(
        "locations: N=2 -> {}, N=4 -> {} (3N + 1)",
        sup2.locations.len(),
        sup4.locations.len()
    );
    assert_eq!(sup2.locations.len(), 7);
    assert_eq!(sup4.locations.len(), 13);
}
