//! Regenerates **Fig. 4**: the Supervisor's per-location flow blocks —
//! (a) `Lease ξi` (i < N), (b) `Lease ξN`, (c) `Cancel/Abort Lease ξi` —
//! as structured text enumerating every edge with its trigger, guard, and
//! emissions.

use pte_core::pattern::{build_supervisor, LeaseConfig};
use pte_hybrid::HybridAutomaton;

fn print_block(a: &HybridAutomaton, loc_name: &str) {
    let loc = a.loc_by_name(loc_name).expect("location exists");
    println!("location `{loc_name}`");
    println!("  invariant: {}", a.locations[loc.0].invariant);
    for (_, e) in a.edges_from(loc) {
        let trigger = e
            .trigger
            .as_ref()
            .map(|t| format!("{}", t.label()))
            .unwrap_or_else(|| {
                if e.urgent {
                    "(urgent timer)".to_string()
                } else {
                    "(spontaneous)".to_string()
                }
            });
        let emits: Vec<String> = e.emits.iter().map(|r| format!("!{r}")).collect();
        println!(
            "  {trigger:<34} [{}] -> `{}` {}",
            e.guard,
            a.loc_name(e.dst),
            emits.join(" ")
        );
    }
    println!();
}

fn main() {
    let cfg = LeaseConfig::case_study();
    let sup = build_supervisor(&cfg).expect("supervisor builds");

    println!("Fig. 4 (a): flow block at `Lease xi1` (i = 1..N-1):\n");
    print_block(&sup, "Lease xi1");

    println!("Fig. 4 (b): flow block at `Lease xi2` (= Lease xiN):\n");
    print_block(&sup, "Lease xi2");

    println!("Fig. 4 (c): flow block at `Cancel Lease xi1` (and, with Cancel");
    println!("replaced by Abort, at `Abort Lease xi1`):\n");
    print_block(&sup, "Cancel Lease xi1");
    print_block(&sup, "Abort Lease xi1");
}
