//! Symbolic-region ablation: cross-checks the analytic feasible region
//! of Theorem 1 (conditions c1–c7, as used by `pte-core::synthesis`)
//! against the zone engine's symbolic verdicts over the
//! `(T^max_run,1 × T^max_enter,2)` plane.
//!
//! Theorem 1 is *sufficient*: every cell where c1–c7 hold must be
//! symbolically PTE-safe — a disagreement there would falsify either
//! the proof or the engine. The converse is not implied (the conditions
//! over-approximate), so cells can be symbolically safe while violating
//! some ci; the grid makes that conservatism visible.
//!
//! Legend: `#` = conditions hold ∧ symbolically safe, `!` = conditions
//! hold ∧ symbolic violation (**must never appear**), `s` = conditions
//! fail yet symbolically safe (conservatism of c1–c7), `.` = both agree
//! the cell is bad, `X` = the paper's configuration.

use pte_core::pattern::{check_conditions, LeaseConfig};
use pte_hybrid::Time;
use pte_zones::{check_lease_pattern_with, Limits};

fn main() {
    println!(
        "Symbolic vs analytic region over (T_run,1 [rows], T_enter,2 [cols]), \
         case-study otherwise\n"
    );

    let enters: Vec<f64> = (0..7).map(|k| 2.0 + k as f64 * 2.5).collect(); // 2..17
    let runs: Vec<f64> = (0..6).map(|k| 23.0 + k as f64 * 6.0).collect(); // 23..53 (incl. 35)
    let limits = Limits {
        max_states: 60_000,
        ..Limits::default()
    };

    print!("           ");
    for e in &enters {
        print!("{e:>5.1}");
    }
    println!("  <- T_enter,2 (s)");

    let mut soundness_holes = 0usize;
    let mut conservative = 0usize;
    let mut agree = 0usize;
    let mut inconclusive = 0usize;
    for r in &runs {
        print!("T_run1={r:>4.0}  ");
        for e in &enters {
            let mut cfg = LeaseConfig::case_study();
            cfg.t_run[0] = Time::seconds(*r);
            cfg.t_enter[1] = Time::seconds(*e);
            let analytic = check_conditions(&cfg).is_satisfied();
            // Three-way verdict: a truncated search or a lowering error
            // is *inconclusive*, not "unsafe" — conflating them would
            // report phantom soundness holes.
            let verdict = check_lease_pattern_with(&cfg, true, &limits);
            let (symbolic_safe, symbolic_unsafe) = match &verdict {
                Ok(v) => (v.is_safe(), v.is_unsafe()),
                Err(_) => (false, false),
            };
            let is_paper_point = (*r - 35.0).abs() < 0.5 && (*e - 10.0).abs() < 1.3;
            let ch = if is_paper_point {
                'X'
            } else if !symbolic_safe && !symbolic_unsafe {
                inconclusive += 1;
                '?'
            } else if analytic && symbolic_safe {
                agree += 1;
                '#'
            } else if analytic && symbolic_unsafe {
                soundness_holes += 1;
                '!'
            } else if symbolic_safe {
                conservative += 1;
                's'
            } else {
                agree += 1;
                '.'
            };
            print!("    {ch}");
        }
        println!();
    }

    println!(
        "\n# = c1..c7 ∧ symbolic-safe; s = symbolic-safe only (conditions \
         conservative); . = both reject; ? = inconclusive (budget/lowering); \
         ! = SOUNDNESS HOLE; X = paper's point"
    );
    println!(
        "agreeing cells: {agree}, conservative cells: {conservative}, \
         inconclusive: {inconclusive}, soundness holes: {soundness_holes}"
    );

    // Theorem 1 soundness, mechanically: no condition-satisfying cell may
    // be symbolically unsafe, and the paper's own point must verify.
    assert_eq!(soundness_holes, 0, "c1..c7 must imply symbolic safety");
    let paper = LeaseConfig::case_study();
    assert!(check_lease_pattern_with(&paper, true, &limits)
        .expect("paper point lowers")
        .is_safe());
}
