//! Regenerates **Table I**: PTE safety rule violation (failure) statistics
//! of emulation trials.
//!
//! Four trials of 30 minutes each under constant WiFi interference,
//! `E(Ton) = 30 s`: {with, without} lease × `E(Toff) ∈ {18 s, 6 s}`.
//!
//! Usage: `cargo run --release -p pte-bench --bin table1 [--seeds K]`
//! — with `K > 1`, each row is averaged over `K` seeded replications
//! (the paper ran one trial per row; replication tightens the estimate).

use pte_bench::seeds_arg;
use pte_tracheotomy::emulation::{run_trial, TrialConfig};
use pte_verify::report::TextTable;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds = seeds_arg(&args, 1);

    println!("Table I: PTE safety rule violation (failure) statistics of emulation trials");
    println!(
        "(30 min per trial, constant WiFi interference, E(Ton) = 30 s; {seeds} seed(s) per row)\n"
    );

    let mut table = TextTable::new(vec![
        "Trial Mode",
        "E(Toff) (sec)",
        "# of Laser Emissions",
        "# of Failures",
        "# of evtToStop",
        "paper: emissions/failures/evtToStop",
    ]);

    let rows = [
        (true, 18.0, "with Lease", (19, 0, 5)),
        (false, 18.0, "without Lease", (11, 4, 0)),
        (true, 6.0, "with Lease", (19, 0, 3)),
        (false, 6.0, "without Lease", (12, 3, 0)),
    ];

    for (leased, mean_off, label, paper) in rows {
        let mut emissions = 0usize;
        let mut failures = 0usize;
        let mut stops = 0usize;
        for k in 0..seeds {
            let trial = TrialConfig::paper_trial(mean_off, leased, 42 + k as u64);
            let r = run_trial(&trial).expect("trial executes");
            emissions += r.emissions;
            failures += r.failures;
            stops += r.evt_to_stop;
        }
        let div = seeds.max(1);
        table.row(vec![
            label.to_string(),
            format!("{mean_off}"),
            format!("{:.1}", emissions as f64 / div as f64),
            format!("{:.1}", failures as f64 / div as f64),
            format!("{:.1}", stops as f64 / div as f64),
            format!("{}/{}/{}", paper.0, paper.1, paper.2),
        ]);
    }

    println!("{}", table.render());
    println!("Expected shape: with Lease -> 0 failures in both rows;");
    println!("without Lease -> failures > 0; evtToStop larger for E(Toff)=18 than 6.");
}
