//! Prints the symbolic verdicts for a registry scenario: a safety proof
//! for the leased system and a symbolic counter-example for the
//! without-lease baseline. A thin shell over the unified
//! [`pte_verify::api`] session layer.
//!
//! ```sh
//! cargo run --release -p pte-bench --bin zprobe
//! cargo run --release -p pte-bench --bin zprobe -- --scenario chain-4
//! cargo run --release -p pte-bench --bin zprobe -- --list
//! cargo run --release -p pte-bench --bin zprobe -- --workers 4 --budget 200000
//! ```
//!
//! `--list` prints the scenario catalogue to stdout and exits 0; an
//! unknown `--scenario` prints it to stderr and exits 2
//! ([`registry::resolve_cli`]).

use pte_bench::arg_value;
use pte_tracheotomy::registry;
use pte_verify::{BackendSel, VerificationRequest};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("available scenarios:\n{}", registry::listing());
        return;
    }
    let name = arg_value(&args, "--scenario").unwrap_or_else(|| "case-study".to_string());
    let scenario = registry::resolve_cli(&name);

    // The registry's recommended budget (the request default when only
    // a scenario name is given) concludes every advertised scenario out
    // of the box; `--budget`/`--workers` override it.
    let mut request = VerificationRequest::scenario(&scenario.name)
        .backend(BackendSel::Symbolic)
        .workers(
            arg_value(&args, "--workers")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
        );
    if let Some(budget) = arg_value(&args, "--budget").and_then(|v| v.parse().ok()) {
        request = request.max_states(budget);
    }

    println!(
        "scenario {} (N={}): {}",
        scenario.name, scenario.n, scenario.description
    );
    for (label, leased) in [("with lease", true), ("without lease", false)] {
        let report = request
            .clone()
            .leased(leased)
            .run()
            .expect("registry scenarios resolve");
        let stats = report.primary();
        let trailer = if leased { "\n" } else { "" };
        println!(
            "{label} ({:.2?}):\n{}{trailer}",
            Duration::from_secs_f64(stats.wall_ms / 1e3),
            stats.rendered
        );
    }
}
