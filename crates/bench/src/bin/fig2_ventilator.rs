//! Regenerates **Fig. 2**: the hybrid automaton `A′vent` of a stand-alone
//! ventilator — its DOT rendering plus a simulated `Hvent(t)` trajectory
//! (the 0 ↔ 0.3 m triangle wave at ±0.1 m/s).

use pte_hybrid::dot::to_dot;
use pte_hybrid::Time;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_tracheotomy::ventilator::standalone_ventilator;

fn main() {
    let vent = standalone_ventilator();
    println!("Fig. 2: Hybrid automaton A'vent (Graphviz DOT):\n");
    println!("{}", to_dot(&vent));

    let cfg = ExecutorConfig {
        sample_interval: Some(Time::seconds(0.25)),
        ..Default::default()
    };
    let exec = Executor::new(vec![vent], cfg).expect("executor");
    let trace = exec.run_until(Time::seconds(15.0)).expect("runs");
    let series = trace.series(0, "Hvent");

    println!("Hvent(t) trajectory (t, metres):");
    for (t, h) in &series {
        let cols = (h / 0.3 * 50.0).round().max(0.0) as usize;
        println!("{t:>8}  {h:6.3}  |{}", "*".repeat(cols));
    }

    // Shape assertions: triangle between 0 and 0.3.
    let max = series.iter().map(|(_, h)| *h).fold(f64::MIN, f64::max);
    let min = series.iter().map(|(_, h)| *h).fold(f64::MAX, f64::min);
    assert!((0.29..=0.3 + 1e-6).contains(&max), "peak {max}");
    assert!((-1e-6..=0.01).contains(&min), "trough {min}");
    println!("\npeak = {max:.3} m, trough = {min:.3} m (expected 0.3 / 0.0)");
}
