//! Ablation: condition c5's slack vs the measured enter-risky margin.
//!
//! Sweeps `T^max_enter,2` from below the c5 boundary (violating) to well
//! above it, and reports (a) whether c5 holds, (b) the worst measured
//! enter-risky lead on a clean run, and (c) the monitor's verdict. The
//! crossover must sit exactly at the c5 boundary
//! `T^max_enter,1 + T^min_risky:1→2 = 6 s` — the paper's scenario 3 is
//! the leftmost column of this sweep.

use pte_core::monitor::check_pte;
use pte_core::pattern::{check_conditions, Condition, LeaseConfig};
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_tracheotomy::emulation::{build_case_study, emulation_spec};
use pte_verify::report::TextTable;

fn main() {
    println!("Ablation: c5 slack vs measured enter-risky margin (clean links)\n");
    let mut table = TextTable::new(vec![
        "T_enter,2 (s)",
        "c5 holds",
        "c5 slack (s)",
        "measured lead (s)",
        "required (s)",
        "PTE verdict",
    ]);

    let boundary = 6.0; // T_enter,1 + T_risky(1->2) = 3 + 3
    for t_enter2 in [3.0, 4.0, 5.0, 5.5, boundary, 6.5, 7.0, 8.0, 10.0, 12.0] {
        let mut cfg = LeaseConfig::case_study();
        cfg.t_enter[1] = Time::seconds(t_enter2);
        let conditions = check_conditions(&cfg);
        let c5 = conditions
            .checks
            .iter()
            .find(|c| c.condition == Condition::C5)
            .expect("c5 checked");

        let automata = build_case_study(&cfg, true).expect("builds");
        let mut exec = Executor::new(automata, ExecutorConfig::default()).expect("executor");
        exec.add_driver(Box::new(ScriptedDriver::new(
            "surgeon",
            vec![
                (Time::seconds(14.0), Root::new("cmd_request")),
                (Time::seconds(45.0), Root::new("cmd_cancel")),
            ],
        )));
        let trace = exec.run_until(Time::seconds(90.0)).expect("runs");
        let report = check_pte(&trace, &emulation_spec());
        let lead = report
            .worst_enter_lead()
            .map(|t| format!("{:.2}", t.as_secs_f64()))
            .unwrap_or_else(|| "-".to_string());

        table.row(vec![
            format!("{t_enter2}"),
            if c5.satisfied { "yes" } else { "NO" }.to_string(),
            format!("{:.2}", c5.slack.as_secs_f64()),
            lead,
            "3.00".to_string(),
            if report.is_safe() {
                "SAFE".to_string()
            } else {
                format!("{} violation(s)", report.failure_count())
            },
        ]);

        // c1–c7 are *sufficient*: c5 satisfied => safe, always. The
        // converse holds away from the boundary on this clean-link sweep
        // (at the boundary itself the measured lead equals the requirement
        // exactly, so the run squeaks by while c5's strict inequality
        // fails — sufficient, not necessary).
        if c5.satisfied {
            assert!(report.is_safe(), "c5 holds but run unsafe: {report}");
        } else if c5.slack < Time::seconds(-0.25) {
            assert!(
                !report.is_safe(),
                "c5 violated by {} s but clean run stayed safe",
                -c5.slack.as_secs_f64()
            );
        }
    }

    println!("{}", table.render());
    println!("Crossover at T_enter,2 = 6 s — exactly the c5 boundary");
    println!("T_enter,1 + T_risky(1->2); the paper's scenario 3 is the first row.");
}
