//! Feasible-region sweep: where in the (T^max_run,1 × T^max_enter,2)
//! plane do conditions c1–c7 hold, and how does the region interact with
//! the Rule-1 dwelling bound?
//!
//! Prints a grid: `#` = all conditions hold and the dwelling bound
//! `T_wait + T_LS1 ≤ 60 s` holds; `c` = conditions hold but the bound is
//! exceeded; `.` = some condition fails. The case-study point (35, 10)
//! is marked `X`.

use pte_core::pattern::{check_conditions, LeaseConfig};
use pte_hybrid::Time;

fn main() {
    println!("Feasible region over (T_run,1 [rows], T_enter,2 [cols]), case-study otherwise\n");

    let enters: Vec<f64> = (0..18).map(|k| 2.0 + k as f64).collect(); // 2..19
    let runs: Vec<f64> = (0..18).map(|k| 21.0 + k as f64 * 2.0).collect(); // 21..55 (incl. 35)

    print!("           ");
    for e in &enters {
        print!("{e:>3.0}");
    }
    println!("  <- T_enter,2 (s)");

    let mut feasible = 0usize;
    let mut bound_limited = 0usize;
    for r in &runs {
        print!("T_run1={r:>4.0}  ");
        for e in &enters {
            let mut cfg = LeaseConfig::case_study();
            cfg.t_run[0] = Time::seconds(*r);
            cfg.t_enter[1] = Time::seconds(*e);
            let ok = check_conditions(&cfg).is_satisfied();
            let bounded = cfg.max_risky_dwelling() <= Time::seconds(60.0);
            let is_paper_point = (*r - 35.0).abs() < 0.5 && (*e - 10.0).abs() < 0.5;
            let ch = if is_paper_point {
                'X'
            } else if ok && bounded {
                feasible += 1;
                '#'
            } else if ok {
                bound_limited += 1;
                'c'
            } else {
                '.'
            };
            print!("  {ch}");
        }
        println!();
    }

    println!("\n# = c1..c7 + 60 s dwelling bound; c = c1..c7 only; . = infeasible; X = paper's configuration");
    println!("feasible cells: {feasible}, bound-limited: {bound_limited}");

    // The paper's point must sit inside the fully feasible region.
    let paper = LeaseConfig::case_study();
    assert!(check_conditions(&paper).is_satisfied());
    assert!(paper.max_risky_dwelling() <= Time::seconds(60.0));
    assert!(feasible > 0, "region must be non-empty");
}
