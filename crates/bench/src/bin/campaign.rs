//! Verification campaign driver: sweeps a matrix of lease
//! configurations × {leased, baseline} across the analytic (c1–c7),
//! symbolic (zone-based), and bounded-exhaustive backends in parallel,
//! and emits both a text table and a machine-readable JSON report.
//!
//! ```sh
//! cargo run --release -p pte-bench --bin campaign -- \
//!     [--smoke] [--depth K] [--workers W] [--budget N] [--json PATH] \
//!     [--bench-json PATH]
//! ```
//!
//! * `--smoke` — tiny matrix for CI: asserts that every cell reaches a
//!   conclusive symbolic verdict, that conclusive backends agree, and
//!   that the emitted JSON parses back cleanly; any failure exits
//!   non-zero.
//! * `--depth K` — bounded-exhaustive decision depth (default 6).
//! * `--workers W` — symbolic engine workers per cell (default 1).
//! * `--budget N` — symbolic state budget per cell (default 60 000).
//! * `--json PATH` — write the JSON report to `PATH` (default: print a
//!   `== JSON ==` section to stdout).
//! * `--bench-json PATH` — additionally time the leased case-study
//!   proof (best of 3) and write a `BENCH_zones.json`-schema record
//!   (wall time, settled states, states/sec, peak passed-list bytes)
//!   to `PATH`, so campaign runs feed the same perf trajectory as
//!   `bench/benches/zones.rs`.
//!
//! Concurrency: the campaign runs a few cells at a time (capped, since
//! each cell's exhaustive `explore` already fans out to every core
//! internally — uncapped nesting would square the thread count and the
//! timing columns would measure scheduler contention, not backends).

use crossbeam::thread;
use parking_lot::Mutex;
use pte_bench::arg_value;
use pte_core::pattern::{check_conditions, LeaseConfig};
use pte_hybrid::Time;
use pte_verify::exhaustive::explore;
use pte_verify::report::TextTable;
use pte_verify::{verify_symbolic_with, CrossCheck, Extrapolation, Limits, SymbolicOutcome};
use serde::{Number, Value};
use std::time::Instant;

/// Cap on concurrently running cells (see module docs).
const MAX_CELL_WORKERS: usize = 4;

/// One cell of the campaign matrix.
#[derive(Clone, Debug)]
struct Cell {
    t_run1: f64,
    t_enter2: f64,
    leased: bool,
}

/// Backend results of one cell: the library's [`CrossCheck`] (which
/// owns the agreement semantics) plus per-backend timings and the
/// exhaustive explorer's violation/error split (`exhaustive_safe`
/// inside [`CrossCheck`] conflates the two on purpose — an errored run
/// is not a verified one — but diagnosis needs them apart).
#[derive(Clone, Debug)]
struct Row {
    cell: Cell,
    analytic_ok: bool,
    cross: CrossCheck,
    exhaustive_violations: usize,
    exhaustive_errors: usize,
    symbolic_ms: f64,
    exhaustive_ms: f64,
    /// Peak passed-list bytes (minimal form, full-matrix equivalent).
    passed_bytes: (usize, usize),
}

fn run_cell(cell: &Cell, limits: &Limits, depth: usize) -> Row {
    let mut cfg = LeaseConfig::case_study();
    cfg.t_run[0] = Time::seconds(cell.t_run1);
    cfg.t_enter[1] = Time::seconds(cell.t_enter2);

    let analytic_ok = check_conditions(&cfg).is_satisfied();

    let t = Instant::now();
    let verdict = verify_symbolic_with(&cfg, cell.leased, limits);
    let symbolic_ms = t.elapsed().as_secs_f64() * 1e3;
    let (symbolic, symbolic_states, passed_bytes) = match &verdict {
        Ok(v) => (
            SymbolicOutcome::from(v),
            v.stats().map_or(0, |s| s.states),
            v.stats()
                .map_or((0, 0), |s| (s.peak_passed_bytes, s.peak_passed_bytes_full)),
        ),
        Err(_) => (SymbolicOutcome::Inconclusive, 0, (0, 0)),
    };

    let t = Instant::now();
    let exhaustive = explore(&cfg, cell.leased, depth, false);
    let exhaustive_ms = t.elapsed().as_secs_f64() * 1e3;

    Row {
        cell: cell.clone(),
        analytic_ok,
        cross: CrossCheck {
            symbolic,
            exhaustive_safe: exhaustive.all_safe(),
            exhaustive_runs: exhaustive.runs,
            symbolic_states,
        },
        exhaustive_violations: exhaustive.violations.len(),
        exhaustive_errors: exhaustive.errors.len(),
        symbolic_ms,
        exhaustive_ms,
        passed_bytes,
    }
}

/// Human label for the exhaustive column: an errored exploration is not
/// "UNSAFE", it failed to execute.
fn exhaustive_label(r: &Row) -> &'static str {
    if r.exhaustive_errors > 0 {
        "ERROR"
    } else if r.cross.exhaustive_safe {
        "safe"
    } else {
        "UNSAFE"
    }
}

fn symbolic_label(outcome: SymbolicOutcome) -> &'static str {
    match outcome {
        SymbolicOutcome::Safe => "safe",
        SymbolicOutcome::Unsafe => "unsafe",
        SymbolicOutcome::Inconclusive => "inconclusive",
    }
}

/// Builds the report as a `serde::Value` tree and serializes it with
/// the vendored `serde_json` — the same machinery the self-validation
/// parse uses, so escaping/number formatting can't diverge from it.
fn to_json(rows: &[Row], depth: usize, limits: &Limits, elapsed_ms: f64) -> String {
    let num_u = |u: usize| Value::Num(Number::U(u as u64));
    let num_f = |f: f64| Value::Num(Number::F(f));
    let cells: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("t_run1".into(), num_f(r.cell.t_run1)),
                ("t_enter2".into(), num_f(r.cell.t_enter2)),
                ("leased".into(), Value::Bool(r.cell.leased)),
                ("analytic".into(), Value::Bool(r.analytic_ok)),
                (
                    "symbolic".into(),
                    Value::Str(symbolic_label(r.cross.symbolic).into()),
                ),
                ("symbolic_states".into(), num_u(r.cross.symbolic_states)),
                ("symbolic_ms".into(), num_f(r.symbolic_ms)),
                ("symbolic_passed_bytes".into(), num_u(r.passed_bytes.0)),
                ("symbolic_passed_bytes_full".into(), num_u(r.passed_bytes.1)),
                (
                    "exhaustive_safe".into(),
                    Value::Bool(r.cross.exhaustive_safe),
                ),
                (
                    "exhaustive_violations".into(),
                    num_u(r.exhaustive_violations),
                ),
                ("exhaustive_errors".into(), num_u(r.exhaustive_errors)),
                ("exhaustive_runs".into(), num_u(r.cross.exhaustive_runs)),
                ("exhaustive_ms".into(), num_f(r.exhaustive_ms)),
                ("agree".into(), Value::Bool(r.cross.agree())),
            ])
        })
        .collect();
    let report = Value::Obj(vec![
        (
            "campaign".into(),
            Value::Obj(vec![
                ("depth".into(), num_u(depth)),
                ("symbolic_budget".into(), num_u(limits.max_states)),
                ("symbolic_workers".into(), num_u(limits.effective_workers())),
                (
                    "extrapolation".into(),
                    Value::Str(format!("{:?}", limits.extrapolation)),
                ),
                ("wall_ms".into(), num_f(elapsed_ms)),
            ]),
        ),
        ("cells".into(), Value::Arr(cells)),
    ]);
    serde_json::to_string(&report).expect("report serializes")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let depth: usize = arg_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 } else { 6 });
    let budget: usize = arg_value(&args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let json_path = arg_value(&args, "--json");
    let bench_json_path = arg_value(&args, "--bench-json");

    let limits = Limits {
        max_states: budget,
        max_workers: workers,
        extrapolation: Extrapolation::ExtraLu,
        ..Limits::default()
    };

    // The sweep plane of `ablation_symbolic_region`, coarsened for the
    // smoke matrix: the paper's configuration plus a violating corner.
    let (runs1, enters2): (Vec<f64>, Vec<f64>) = if smoke {
        (vec![35.0], vec![2.0, 10.0])
    } else {
        (vec![23.0, 35.0, 47.0], vec![2.0, 7.0, 10.0, 14.5])
    };
    let mut cells = Vec::new();
    for r in &runs1 {
        for e in &enters2 {
            for leased in [true, false] {
                cells.push(Cell {
                    t_run1: *r,
                    t_enter2: *e,
                    leased,
                });
            }
        }
    }

    println!(
        "campaign: {} cells × 3 backends (exhaustive depth {depth}, symbolic budget {budget}, \
         {} symbolic workers)\n",
        cells.len(),
        limits.effective_workers(),
    );

    // Run cells concurrently: each worker pops the next unstarted cell.
    let started = Instant::now();
    let n_cells = cells.len();
    let queue: Mutex<Vec<Cell>> = Mutex::new(cells);
    let results: Mutex<Vec<Row>> = Mutex::new(Vec::new());
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(MAX_CELL_WORKERS)
        .min(n_cells);
    thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| loop {
                let Some(cell) = queue.lock().pop() else {
                    break;
                };
                let row = run_cell(&cell, &limits, depth);
                results.lock().push(row);
            });
        }
    })
    .expect("campaign worker panicked");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut rows = results.into_inner();
    rows.sort_by(|a, b| {
        (a.cell.t_run1, a.cell.t_enter2, a.cell.leased)
            .partial_cmp(&(b.cell.t_run1, b.cell.t_enter2, b.cell.leased))
            .expect("finite sweep constants")
    });

    let mut table = TextTable::new(vec![
        "T_run1",
        "T_enter2",
        "arm",
        "c1-c7",
        "symbolic",
        "states",
        "sym ms",
        "exhaustive",
        "runs",
        "exh ms",
        "agree",
    ]);
    for r in &rows {
        table.row(vec![
            format!("{}", r.cell.t_run1),
            format!("{}", r.cell.t_enter2),
            if r.cell.leased { "leased" } else { "baseline" }.to_string(),
            if r.analytic_ok { "ok" } else { "-" }.to_string(),
            symbolic_label(r.cross.symbolic).to_string(),
            format!("{}", r.cross.symbolic_states),
            format!("{:.0}", r.symbolic_ms),
            exhaustive_label(r).to_string(),
            format!("{}", r.cross.exhaustive_runs),
            format!("{:.0}", r.exhaustive_ms),
            if r.cross.agree() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("campaign wall time: {elapsed_ms:.0} ms");

    let json = to_json(&rows, depth, &limits, elapsed_ms);
    match &json_path {
        Some(path) => {
            std::fs::write(path, &json).expect("write JSON report");
            println!("JSON report written to {path}");
        }
        None => println!("\n== JSON ==\n{json}"),
    }

    // Self-validation (always; `--smoke` additionally asserts verdicts).
    let parsed = serde_json::from_str_value(&json).expect("campaign JSON must be well-formed");
    drop(parsed);

    // Gates. Always fatal: an exhaustive backend that failed to execute
    // (infrastructure, not a verdict), a Theorem-1 soundness hole
    // (analytically valid leased cell falsified symbolically), and a
    // symbolic *proof* contradicted by a concrete exhaustive
    // counter-example. The reverse direction — symbolic Unsafe,
    // bounded-exhaustive safe — can be legitimate at small depths (the
    // explorer only covers a `2^k` prefix of loss fates and one driver
    // script; see `CrossCheck::agree`), so outside `--smoke` it is
    // reported as a warning, not a failure. `--smoke` pins a matrix
    // whose cells are known to agree and asserts full conclusiveness.
    let mut failures = Vec::new();
    for r in &rows {
        if r.exhaustive_errors > 0 {
            failures.push(format!(
                "exhaustive backend failed to execute ({} errors) at {:?}",
                r.exhaustive_errors, r.cell
            ));
            continue;
        }
        if r.cell.leased && r.analytic_ok && r.cross.symbolic == SymbolicOutcome::Unsafe {
            failures.push(format!("soundness hole at {:?}", r.cell));
        }
        match r.cross.symbolic {
            SymbolicOutcome::Safe if !r.cross.exhaustive_safe => {
                failures.push(format!(
                    "symbolic proof contradicted by a concrete counter-example at {:?}",
                    r.cell
                ));
            }
            SymbolicOutcome::Unsafe if r.cross.exhaustive_safe => {
                let msg = format!(
                    "symbolic falsification not reproduced at exhaustive depth {depth} at {:?}",
                    r.cell
                );
                if smoke {
                    failures.push(msg);
                } else {
                    eprintln!("WARNING: {msg}");
                }
            }
            _ => {}
        }
        if smoke && r.cross.symbolic == SymbolicOutcome::Inconclusive {
            failures.push(format!("inconclusive smoke cell at {:?}", r.cell));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("all campaign gates passed");

    if let Some(path) = bench_json_path {
        write_bench_json(&path, &limits);
    }
}

/// Times the leased case-study proof (best of 3) and writes the
/// `BENCH_zones.json` schema shared with `bench/benches/zones.rs`.
fn write_bench_json(path: &str, limits: &Limits) {
    use pte_zones::SymbolicVerdict;

    let cfg = LeaseConfig::case_study();
    let mut best_secs = f64::INFINITY;
    let mut stats = None;
    for _ in 0..3 {
        let t = Instant::now();
        let verdict = verify_symbolic_with(&cfg, true, limits).expect("case study lowers");
        let secs = t.elapsed().as_secs_f64();
        let SymbolicVerdict::Safe(s) = verdict else {
            panic!("leased case study must be safe");
        };
        best_secs = best_secs.min(secs);
        stats = Some(s);
    }
    let stats = stats.expect("at least one proof run");
    pte_bench::write_zones_bench_json(path, best_secs, None, &stats, limits);
}
