//! Verification campaign driver: sweeps the scenario registry (case
//! study, `chain-2` … `chain-6` N-device lease chains, the lossy
//! stress variant) plus a case-study parameter sweep, each × {leased,
//! baseline}, across the analytic (c1–c7), symbolic (zone-based), and
//! bounded-exhaustive backends in parallel, and emits both a text table
//! and a machine-readable JSON report.
//!
//! ```sh
//! cargo run --release -p pte-bench --bin campaign -- \
//!     [--smoke] [--scenario NAME] [--depth K] [--workers W] \
//!     [--budget N] [--json PATH] [--bench-json PATH]
//! ```
//!
//! * `--smoke` — tiny matrix for CI (case study + `chain-3` + a
//!   violating sweep corner): asserts that every cell reaches a
//!   conclusive symbolic verdict, that conclusive backends agree, and
//!   that the emitted JSON parses back cleanly; any failure exits
//!   non-zero.
//! * `--scenario NAME` — run a single registry scenario (both arms,
//!   all backends). An unknown name exits with status 2 after listing
//!   the available scenarios on stderr
//!   ([`registry::resolve_cli`]).
//! * `--list` — print the scenario listing to stdout and exit 0.
//! * `--depth K` — bounded-exhaustive decision depth (default 6).
//! * `--workers W` — symbolic engine workers per cell (default 1).
//! * `--budget N` — symbolic state budget per cell. When omitted, each
//!   cell gets the registry's `recommended_budget` (N-scaled, ≥ 2×
//!   the measured explored set) so the default run stays conclusive
//!   on every registry scenario; an explicit value applies verbatim to every cell (and
//!   can deliberately starve a search to exercise the `inconclusive`
//!   reporting path).
//! * `--json PATH` — write the JSON report to `PATH` (default: print a
//!   `== JSON ==` section to stdout).
//! * `--bench-json PATH` — additionally time the leased case-study
//!   proof (best of 3) and write a `BENCH_zones.json`-schema record
//!   (wall time, settled states, states/sec, peak passed-list bytes,
//!   plus per-N scaling rows derived from the campaign's own chain
//!   cells) to `PATH`.
//!
//! A tripped budget is **never** a verdict: such cells are reported as
//! `inconclusive` (with the tripped limit named) in the table, the
//! JSON, and the gate summary — distinct from `safe`, `unsafe`, and
//! `error`.
//!
//! Concurrency: the campaign runs a few cells at a time (capped, since
//! each cell's exhaustive `explore` already fans out to every core
//! internally — uncapped nesting would square the thread count and the
//! timing columns would measure scheduler contention, not backends).
//!
//! All backend dispatch goes through the unified
//! [`pte_verify::api`] session layer — this binary only builds
//! requests, lays the per-backend stats out as a table/JSON, and
//! enforces the cross-backend gates.

use crossbeam::thread;
use parking_lot::Mutex;
use pte_bench::{arg_value, ScalingRow};
use pte_core::pattern::LeaseConfig;
use pte_hybrid::Time;
use pte_tracheotomy::registry;
use pte_verify::report::TextTable;
use pte_verify::{
    BackendSel, BackendStats, CrossCheck, Extrapolation, Limits, Query, SymbolicOutcome, Verdict,
    VerificationRequest,
};
use serde::{Number, Value};
use std::time::Instant;

/// Cap on concurrently running cells (see module docs).
const MAX_CELL_WORKERS: usize = 4;

/// One cell of the campaign matrix: a named configuration and an arm.
#[derive(Clone, Debug)]
struct Cell {
    /// Registry scenario name, or `sweep[r=..,e=..]` for sweep cells.
    name: String,
    /// Number of leased entities.
    n: usize,
    cfg: LeaseConfig,
    leased: bool,
    /// Per-cell symbolic state budget (N-scaled for big chains).
    budget: usize,
    /// Sweep parameters in milliseconds `(t_run1, t_enter2)` for sweep
    /// cells (`None` for registry cells): rows sort by name then by
    /// these numerically, so `e=2` precedes `e=10` and `e=14.5`.
    sweep_params: Option<(i64, i64)>,
}

/// Backend results of one cell: the library's [`CrossCheck`] (which
/// owns the agreement semantics) plus per-backend timings, the
/// exhaustive explorer's violation/error split, and the explicit
/// symbolic status (`safe` / `unsafe` / `inconclusive` / `error` —
/// a tripped budget or a failed build must never read as a verdict).
#[derive(Clone, Debug)]
struct Row {
    cell: Cell,
    analytic_ok: bool,
    cross: CrossCheck,
    /// The limit that ended an inconclusive search, rendered.
    symbolic_tripped: Option<String>,
    /// Build/lowering failure, rendered (status `error`).
    symbolic_error: Option<String>,
    exhaustive_violations: usize,
    exhaustive_errors: usize,
    symbolic_ms: f64,
    exhaustive_ms: f64,
    /// Peak passed-list bytes (minimal form, full-matrix equivalent).
    passed_bytes: (usize, usize),
}

impl Row {
    /// Explicit four-valued symbolic status for table/JSON/gates.
    fn symbolic_status(&self) -> &'static str {
        if self.symbolic_error.is_some() {
            "error"
        } else {
            match self.cross.symbolic {
                SymbolicOutcome::Safe => "safe",
                SymbolicOutcome::Unsafe => "unsafe",
                SymbolicOutcome::Inconclusive => "inconclusive",
            }
        }
    }
}

/// Maps an API verdict back onto the three-valued [`SymbolicOutcome`]
/// the agreement logic ([`CrossCheck`]) speaks.
fn outcome_of(v: &Verdict) -> SymbolicOutcome {
    match v {
        Verdict::Safe => SymbolicOutcome::Safe,
        Verdict::Unsafe => SymbolicOutcome::Unsafe,
        Verdict::Inconclusive(_) => SymbolicOutcome::Inconclusive,
    }
}

fn run_cell(cell: &Cell, workers: usize, depth: usize) -> Row {
    let request = |backend: BackendSel| {
        VerificationRequest::config(cell.cfg.clone())
            .leased(cell.leased)
            .backend(backend)
            .max_states(cell.budget)
            .workers(workers)
            .depth(depth)
    };
    let backend_stats = |backend: BackendSel| -> BackendStats {
        request(backend)
            .run()
            .expect("inline-config requests are well-formed")
            .primary()
            .clone()
    };

    // The c1–c7 column is arm-independent: conditions constrain the
    // configuration, not the lease arm.
    let analytic_ok = request(BackendSel::Analytic)
        .query(Query::ConditionCheck)
        .run()
        .expect("inline-config requests are well-formed")
        .verdict
        == Verdict::Safe;

    let symbolic = backend_stats(BackendSel::Symbolic);
    let exhaustive = backend_stats(BackendSel::Exhaustive);

    Row {
        cell: cell.clone(),
        analytic_ok,
        cross: CrossCheck {
            symbolic: outcome_of(&symbolic.verdict),
            exhaustive_safe: exhaustive.verdict == Verdict::Safe,
            exhaustive_runs: exhaustive.runs,
            symbolic_states: symbolic.states,
        },
        symbolic_tripped: symbolic.tripped,
        symbolic_error: symbolic.error,
        exhaustive_violations: exhaustive.violations,
        exhaustive_errors: exhaustive.errors,
        symbolic_ms: symbolic.wall_ms,
        exhaustive_ms: exhaustive.wall_ms,
        passed_bytes: (symbolic.peak_passed_bytes, symbolic.peak_passed_bytes_full),
    }
}

/// Human label for the exhaustive column: an errored exploration is not
/// "UNSAFE", it failed to execute.
fn exhaustive_label(r: &Row) -> &'static str {
    if r.exhaustive_errors > 0 {
        "ERROR"
    } else if r.cross.exhaustive_safe {
        "safe"
    } else {
        "UNSAFE"
    }
}

/// Builds the report as a `serde::Value` tree and serializes it with
/// the vendored `serde_json` — the same machinery the self-validation
/// parse uses, so escaping/number formatting can't diverge from it.
fn to_json(
    rows: &[Row],
    depth: usize,
    base_budget: usize,
    workers: usize,
    elapsed_ms: f64,
) -> String {
    let num_u = |u: usize| Value::Num(Number::U(u as u64));
    let num_f = |f: f64| Value::Num(Number::F(f));
    let opt_str = |o: &Option<String>| match o {
        Some(s) => Value::Str(s.clone()),
        None => Value::Null,
    };
    let cells: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("scenario".into(), Value::Str(r.cell.name.clone())),
                ("n".into(), num_u(r.cell.n)),
                ("leased".into(), Value::Bool(r.cell.leased)),
                ("analytic".into(), Value::Bool(r.analytic_ok)),
                ("symbolic".into(), Value::Str(r.symbolic_status().into())),
                ("symbolic_tripped".into(), opt_str(&r.symbolic_tripped)),
                ("symbolic_error".into(), opt_str(&r.symbolic_error)),
                ("symbolic_budget".into(), num_u(r.cell.budget)),
                ("symbolic_states".into(), num_u(r.cross.symbolic_states)),
                ("symbolic_ms".into(), num_f(r.symbolic_ms)),
                ("symbolic_passed_bytes".into(), num_u(r.passed_bytes.0)),
                ("symbolic_passed_bytes_full".into(), num_u(r.passed_bytes.1)),
                (
                    "exhaustive_safe".into(),
                    Value::Bool(r.cross.exhaustive_safe),
                ),
                (
                    "exhaustive_violations".into(),
                    num_u(r.exhaustive_violations),
                ),
                ("exhaustive_errors".into(), num_u(r.exhaustive_errors)),
                ("exhaustive_runs".into(), num_u(r.cross.exhaustive_runs)),
                ("exhaustive_ms".into(), num_f(r.exhaustive_ms)),
                ("agree".into(), Value::Bool(r.cross.agree())),
            ])
        })
        .collect();
    let count = |status: &str| {
        rows.iter()
            .filter(|r| r.symbolic_status() == status)
            .count()
    };
    let report = Value::Obj(vec![
        (
            "campaign".into(),
            Value::Obj(vec![
                ("depth".into(), num_u(depth)),
                ("base_symbolic_budget".into(), num_u(base_budget)),
                ("symbolic_workers".into(), num_u(effective_workers(workers))),
                // The extrapolation operator the API's symbolic runs use
                // (the engine default; the API exposes no override).
                (
                    "extrapolation".into(),
                    Value::Str(format!("{:?}", Extrapolation::default())),
                ),
                ("wall_ms".into(), num_f(elapsed_ms)),
            ]),
        ),
        // Explicit status tally: `inconclusive`/`error` counts can never
        // be silently folded into `safe` by a report consumer.
        (
            "summary".into(),
            Value::Obj(vec![
                ("safe".into(), num_u(count("safe"))),
                ("unsafe".into(), num_u(count("unsafe"))),
                ("inconclusive".into(), num_u(count("inconclusive"))),
                ("error".into(), num_u(count("error"))),
                (
                    "agree".into(),
                    num_u(rows.iter().filter(|r| r.cross.agree()).count()),
                ),
            ]),
        ),
        ("cells".into(), Value::Arr(cells)),
    ]);
    serde_json::to_string(&report).expect("report serializes")
}

/// The case-study parameter sweep (the `ablation_symbolic_region`
/// plane, coarsened): the paper's configuration plus violating corners.
fn sweep_cells(smoke: bool, base_budget: usize) -> Vec<Cell> {
    let (runs1, enters2): (Vec<f64>, Vec<f64>) = if smoke {
        (vec![35.0], vec![2.0, 10.0])
    } else {
        (vec![23.0, 35.0, 47.0], vec![2.0, 7.0, 10.0, 14.5])
    };
    let mut cells = Vec::new();
    for r in &runs1 {
        for e in &enters2 {
            for leased in [true, false] {
                let mut cfg = LeaseConfig::case_study();
                cfg.t_run[0] = Time::seconds(*r);
                cfg.t_enter[1] = Time::seconds(*e);
                cells.push(Cell {
                    name: format!("sweep[r={r},e={e}]"),
                    n: 2,
                    cfg,
                    leased,
                    budget: base_budget,
                    sweep_params: Some(((r * 1e3) as i64, (e * 1e3) as i64)),
                });
            }
        }
    }
    cells
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let depth: usize = arg_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 } else { 6 });
    let explicit_budget: Option<usize> = arg_value(&args, "--budget").and_then(|v| v.parse().ok());
    let base_budget: usize = explicit_budget.unwrap_or(60_000);
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let json_path = arg_value(&args, "--json");
    let bench_json_path = arg_value(&args, "--bench-json");
    let only_scenario = arg_value(&args, "--scenario");

    if args.iter().any(|a| a == "--list") {
        println!("available scenarios:\n{}", registry::listing());
        return;
    }

    let registry_cell = |s: &registry::Scenario, leased: bool| Cell {
        name: s.name.clone(),
        n: s.n,
        cfg: s.config.clone(),
        leased,
        budget: explicit_budget.unwrap_or(s.recommended_budget),
        sweep_params: None,
    };

    let mut cells: Vec<Cell> = Vec::new();
    match &only_scenario {
        Some(name) => {
            let s = registry::resolve_cli(name);
            for leased in [true, false] {
                cells.push(registry_cell(&s, leased));
            }
        }
        None => {
            for s in registry::registry() {
                // The smoke matrix keeps CI fast: case study + chain-3
                // cover both the paper instance and an N > 2 chain.
                if smoke && !matches!(s.name.as_str(), "case-study" | "chain-3") {
                    continue;
                }
                // Compositional-scale fleets (chain-12+) are excluded
                // from the default matrix: their recommended budget is
                // deliberately below the monolithic zone graph, so the
                // symbolic and exhaustive columns here could only
                // report inconclusive. Run them explicitly
                // (`--scenario chain-12`) or through
                // `pte-verify-client --backend compositional`.
                if s.n > 8 {
                    continue;
                }
                for leased in [true, false] {
                    cells.push(registry_cell(&s, leased));
                }
            }
            cells.extend(sweep_cells(smoke, base_budget));
        }
    }

    println!(
        "campaign: {} cells × 3 backends (exhaustive depth {depth}, base symbolic budget \
         {base_budget}, {} symbolic workers)\n",
        cells.len(),
        effective_workers(workers),
    );

    // Run cells concurrently: each worker pops the next unstarted cell.
    let started = Instant::now();
    let n_cells = cells.len();
    let queue: Mutex<Vec<Cell>> = Mutex::new(cells);
    let results: Mutex<Vec<Row>> = Mutex::new(Vec::new());
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(MAX_CELL_WORKERS)
        .min(n_cells);
    thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| loop {
                let Some(cell) = queue.lock().pop() else {
                    break;
                };
                let row = run_cell(&cell, workers, depth);
                results.lock().push(row);
            });
        }
    })
    .expect("campaign worker panicked");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut rows = results.into_inner();
    fn row_order(r: &Row) -> (&str, i64, i64, bool) {
        match r.cell.sweep_params {
            // Sweep cells group under "sweep" and order numerically.
            Some((run, enter)) => ("sweep", run, enter, r.cell.leased),
            None => (r.cell.name.as_str(), 0, 0, r.cell.leased),
        }
    }
    rows.sort_by(|a, b| row_order(a).cmp(&row_order(b)));

    let mut table = TextTable::new(vec![
        "scenario",
        "N",
        "arm",
        "c1-c7",
        "symbolic",
        "states",
        "sym ms",
        "exhaustive",
        "runs",
        "exh ms",
        "agree",
    ]);
    for r in &rows {
        table.row(vec![
            r.cell.name.clone(),
            format!("{}", r.cell.n),
            if r.cell.leased { "leased" } else { "baseline" }.to_string(),
            if r.analytic_ok { "ok" } else { "-" }.to_string(),
            r.symbolic_status().to_string(),
            format!("{}", r.cross.symbolic_states),
            format!("{:.0}", r.symbolic_ms),
            exhaustive_label(r).to_string(),
            format!("{}", r.cross.exhaustive_runs),
            format!("{:.0}", r.exhaustive_ms),
            if r.cross.agree() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("campaign wall time: {elapsed_ms:.0} ms");

    let json = to_json(&rows, depth, base_budget, workers, elapsed_ms);
    match &json_path {
        Some(path) => {
            std::fs::write(path, &json).expect("write JSON report");
            println!("JSON report written to {path}");
        }
        None => println!("\n== JSON ==\n{json}"),
    }

    // Self-validation (always; `--smoke` additionally asserts verdicts).
    let parsed = serde_json::from_str_value(&json).expect("campaign JSON must be well-formed");
    drop(parsed);

    // Gates. Always fatal: an exhaustive backend that failed to execute
    // (infrastructure, not a verdict), a symbolic backend that failed
    // to build, a Theorem-1 soundness hole (analytically valid leased
    // cell falsified symbolically), and a symbolic *proof* contradicted
    // by a concrete exhaustive counter-example. An inconclusive cell is
    // surfaced by name with the limit that tripped — fatal in `--smoke`
    // (its matrix is sized to be conclusive), a loud warning otherwise
    // — and never counts as agreement. The reverse disagreement —
    // symbolic Unsafe, bounded-exhaustive safe — can be legitimate at
    // small depths (the explorer only covers a `2^k` prefix of loss
    // fates and one driver script; see `CrossCheck::agree`), so outside
    // `--smoke` it is a warning too.
    let mut failures = Vec::new();
    for r in &rows {
        let where_ = format!(
            "{} ({})",
            r.cell.name,
            if r.cell.leased { "leased" } else { "baseline" }
        );
        if r.exhaustive_errors > 0 {
            failures.push(format!(
                "exhaustive backend failed to execute ({} errors) at {where_}",
                r.exhaustive_errors
            ));
            continue;
        }
        if let Some(e) = &r.symbolic_error {
            failures.push(format!("symbolic backend failed to build at {where_}: {e}"));
            continue;
        }
        if r.cell.leased && r.analytic_ok && r.cross.symbolic == SymbolicOutcome::Unsafe {
            failures.push(format!("soundness hole at {where_}"));
        }
        match r.cross.symbolic {
            SymbolicOutcome::Safe if !r.cross.exhaustive_safe => {
                failures.push(format!(
                    "symbolic proof contradicted by a concrete counter-example at {where_}"
                ));
            }
            SymbolicOutcome::Unsafe if r.cross.exhaustive_safe => {
                let msg = format!(
                    "symbolic falsification not reproduced at exhaustive depth {depth} at {where_}"
                );
                if smoke {
                    failures.push(msg);
                } else {
                    eprintln!("WARNING: {msg}");
                }
            }
            SymbolicOutcome::Inconclusive => {
                let msg = format!(
                    "inconclusive cell at {where_} (tripped: {}; raise --budget)",
                    r.symbolic_tripped.as_deref().unwrap_or("unknown"),
                );
                if smoke {
                    failures.push(msg);
                } else {
                    eprintln!("WARNING: {msg}");
                }
            }
            _ => {}
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("all campaign gates passed");

    if let Some(path) = bench_json_path {
        write_bench_json(&path, base_budget, workers, &rows);
    }
}

/// `--workers 0` resolved to one per CPU — the same rule the symbolic
/// engine applies ([`Limits::effective_workers`]), used here only for
/// report metadata.
fn effective_workers(workers: usize) -> usize {
    Limits {
        max_workers: workers,
        ..Limits::default()
    }
    .effective_workers()
}

/// Times the leased case-study proof (best of 3) and writes the
/// `BENCH_zones.json` schema shared with `bench/benches/zones.rs`,
/// attaching per-N scaling rows derived from the campaign's own leased
/// chain cells (no re-verification needed).
fn write_bench_json(path: &str, base_budget: usize, workers: usize, rows: &[Row]) {
    use pte_zones::SearchStats;

    // The limits the timed request actually runs under (the bench
    // record schema reports max_states/workers from them).
    let limits = Limits {
        max_states: base_budget,
        max_workers: workers,
        ..Limits::default()
    };
    let request = VerificationRequest::config(LeaseConfig::case_study())
        .leased(true)
        .backend(BackendSel::Symbolic)
        .max_states(limits.max_states)
        .workers(limits.max_workers);
    let mut best_secs = f64::INFINITY;
    let mut stats = None;
    for _ in 0..3 {
        let report = request.run().expect("case study lowers");
        let s = report.primary().clone();
        assert_eq!(s.verdict, Verdict::Safe, "leased case study must be safe");
        best_secs = best_secs.min(s.wall_ms / 1e3);
        stats = Some(SearchStats {
            states: s.states,
            transitions: s.transitions,
            peak_passed_bytes: s.peak_passed_bytes,
            peak_passed_bytes_full: s.peak_passed_bytes_full,
            ..SearchStats::default()
        });
    }
    let stats = stats.expect("at least one proof run");
    let scaling: Vec<ScalingRow> = rows
        .iter()
        .filter(|r| {
            r.cell.leased && r.cell.name.starts_with("chain-") && r.symbolic_status() == "safe"
        })
        .map(|r| ScalingRow {
            scenario: r.cell.name.clone(),
            n: r.cell.n,
            states: r.cross.symbolic_states,
            // Campaign cells run concurrently; their wall times measure
            // contention, so only the state counts travel.
            secs: None,
        })
        .collect();
    pte_bench::write_zones_bench_json(
        path,
        best_secs,
        None,
        &stats,
        &limits,
        &scaling,
        &[],
        &[],
        &[],
    );
}
