//! Regenerates **Fig. 7**: (a) the laser tracheotomy wireless CPS layout
//! and (b) the emulation layout — as the sink-based star topology with
//! the wired SpO2 path annotated.

use pte_wireless::topology::StarTopology;

fn main() {
    let topo = StarTopology::new(0, vec![1, 2]);
    let names = vec![
        "tracheotomy supervisor (base station)".to_string(),
        "ventilator (Participant xi1)".to_string(),
        "laser-scalpel (Initializer xi2, surgeon-operated)".to_string(),
    ];
    println!("Fig. 7: laser tracheotomy wireless CPS / emulation layout\n");
    println!("{}", topo.render(&names));
    println!("wired (reliable) paths:");
    println!("  patient --(SpO2 oximeter)--> supervisor      [env_approval_ok/bad]");
    println!("  patient <--(breathes with display)-- ventilator [evtVPumpIn/Out]");
    println!("  surgeon --(buttons)--> laser-scalpel          [cmd_request/cmd_cancel]");
    println!();
    println!("interference: duty-cycled 802.11g source near the supervisor;");
    println!("every wireless up/downlink passes through its loss process.");
    println!("links: {:?}", topo.links());
    assert_eq!(topo.links().len(), 4);
}
