//! Regenerates **Fig. 5**: (a) the Initializer pattern automaton
//! `A_initzr` and (b) the Participant pattern automaton `A_ptcpnt,i`,
//! rendered as DOT with risky locations highlighted.

use pte_core::pattern::{build_initializer, build_participant, LeaseConfig};
use pte_hybrid::dot::{to_dot_with, DotOptions};
use pte_hybrid::Pred;

fn main() {
    let cfg = LeaseConfig::case_study();
    let opts = DotOptions {
        show_flows: false,
        ..Default::default()
    };

    let initializer = build_initializer(&cfg).expect("initializer builds");
    println!("Fig. 5 (a): Initializer A_initzr (risky = doubleoctagon):\n");
    println!("{}", to_dot_with(&initializer, &opts));

    let participant = build_participant(&cfg, 1, Pred::True).expect("participant builds");
    println!("Fig. 5 (b): Participant A_ptcpnt,1:\n");
    println!("{}", to_dot_with(&participant, &opts));

    // The paper's risky partition.
    for a in [&initializer, &participant] {
        let risky: Vec<&str> = a.risky_locations().map(|l| a.loc_name(l)).collect();
        println!("{}: V_risky = {risky:?}", a.name);
        assert_eq!(risky, vec!["Risky Core", "Exiting 1"]);
    }
}
