//! Bench-regression gate: compares a freshly emitted `BENCH_zones.json`
//! against the committed baseline and fails (exit 1) when the
//! case-study row's `states_per_sec` regressed by more than the
//! allowed fraction, when any chain scaling row present in **both**
//! records regressed past the same margin, when the fresh record
//! lacks the `chain-8` scaling row (the deep chain must stay feasible,
//! not silently drop out of the bench), or when it lacks the
//! `chain-12` compositional row (the assume-guarantee argument must
//! keep closing the fleet the monolithic engine cannot).
//!
//! ```sh
//! cargo run --release -p pte-bench --bin bench_gate -- \
//!     [--fresh BENCH_zones.json] \
//!     [--baseline crates/bench/BENCH_zones.baseline.json] \
//!     [--daemon-fresh BENCH_daemon.json] \
//!     [--daemon-baseline crates/bench/BENCH_daemon.baseline.json] \
//!     [--max-regression 0.25]
//! ```
//!
//! When `--daemon-fresh` is given, the daemon record's warm-start row
//! is gated too: the fresh `warm_speedup` (cold re-verification wall
//! time over warm) must reach the same fraction of the baseline's,
//! and the row must be present at all — a change that silently stops
//! warm starts from engaging would otherwise just drop it.
//!
//! The baseline is a real record from the PR 4 container (2 vCPUs);
//! `--max-regression` (default 0.25, i.e. a fresh run must reach at
//! least 75% of the baseline throughput) absorbs ordinary scheduler
//! noise while still catching real hot-path regressions. Runners with
//! wildly different hardware should regenerate the baseline or widen
//! the margin rather than delete the gate.

use pte_bench::arg_value;
use serde::Value;

/// One zones bench record: the case-study throughput/wall-time pair
/// plus the per-scenario chain scaling throughputs (scenario →
/// states_per_sec, for rows that carry a sequential timing).
struct Record {
    states_per_sec: f64,
    wall_ms: f64,
    scaling: Vec<(String, f64)>,
    /// Compositional rows: scenario → abstract states/sec.
    compositional: Vec<(String, f64)>,
}

/// Reads and validates a zones bench record at `path`.
fn read_record(path: &str) -> Result<Record, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = serde_json::from_str_value(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Value::Obj(fields) = &value else {
        return Err(format!("{path}: expected a JSON object"));
    };
    let field = |name: &str| -> Result<f64, String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Value::Num(n) => Some(n.as_f64()),
                _ => None,
            })
            .ok_or_else(|| format!("{path}: missing numeric field `{name}`"))
    };
    match fields.iter().find(|(k, _)| k == "bench") {
        Some((_, Value::Str(s))) if s == "zones" => {}
        _ => return Err(format!("{path}: not a zones bench record")),
    }
    // Both the scaling and compositional arrays carry
    // `(scenario, states_per_sec)` rows; rows without a timing
    // (campaign-derived) are informational, not gated.
    let rate_rows = |name: &str| -> Vec<(String, f64)> {
        let mut out = Vec::new();
        if let Some((_, Value::Arr(rows))) = fields.iter().find(|(k, _)| k == name) {
            for row in rows {
                let Value::Obj(row) = row else { continue };
                let get = |name: &str| row.iter().find(|(k, _)| k == name).map(|(_, v)| v);
                let (Some(Value::Str(scenario)), Some(Value::Num(rate))) =
                    (get("scenario"), get("states_per_sec"))
                else {
                    continue;
                };
                out.push((scenario.clone(), rate.as_f64()));
            }
        }
        out
    };
    Ok(Record {
        states_per_sec: field("states_per_sec")?,
        wall_ms: field("wall_ms")?,
        scaling: rate_rows("scaling"),
        compositional: rate_rows("compositional"),
    })
}

fn num_f(v: Option<&str>, default: f64) -> f64 {
    v.and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Reads a daemon bench record's warm-start row: `(warm_speedup,
/// warm_seeded_states)`, or `None` when the record has no warm row.
fn read_daemon_warm(path: &str) -> Result<Option<(f64, u64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = serde_json::from_str_value(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Value::Obj(fields) = &value else {
        return Err(format!("{path}: expected a JSON object"));
    };
    match fields.iter().find(|(k, _)| k == "bench") {
        Some((_, Value::Str(s))) if s == "daemon" => {}
        _ => return Err(format!("{path}: not a daemon bench record")),
    }
    let num = |name: &str| {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Value::Num(n) => Some(n.as_f64()),
                _ => None,
            })
    };
    Ok(num("warm_speedup").map(|s| (s, num("warm_seeded_states").unwrap_or(0.0) as u64)))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fresh_path = arg_value(&args, "--fresh").unwrap_or_else(|| "BENCH_zones.json".to_string());
    let baseline_path = arg_value(&args, "--baseline")
        .unwrap_or_else(|| "crates/bench/BENCH_zones.baseline.json".to_string());
    let max_regression = num_f(arg_value(&args, "--max-regression").as_deref(), 0.25);
    let floor = 1.0 - max_regression;

    let fresh = read_record(&fresh_path).unwrap_or_else(|e| {
        eprintln!("bench gate: {e}");
        std::process::exit(2);
    });
    let baseline = read_record(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench gate: {e}");
        std::process::exit(2);
    });

    let mut failed = false;
    let ratio = fresh.states_per_sec / baseline.states_per_sec;
    println!(
        "bench gate: case-study states/sec {:.0} vs baseline {:.0} \
         (ratio {ratio:.2}; wall {:.1} ms vs {:.1} ms; \
         allowed regression {:.0}%)",
        fresh.states_per_sec,
        baseline.states_per_sec,
        fresh.wall_ms,
        baseline.wall_ms,
        max_regression * 100.0
    );
    if ratio < floor {
        eprintln!(
            "bench gate FAILED: fresh throughput is {:.0}% of baseline \
             (floor {:.0}%) — the zone-engine hot path regressed",
            ratio * 100.0,
            floor * 100.0
        );
        failed = true;
    }

    // The deep chain must stay in the record: a change that makes
    // chain-8 blow its budget would otherwise just drop the row.
    if !fresh.scaling.iter().any(|(s, _)| s == "chain-8") {
        eprintln!("bench gate FAILED: fresh record has no chain-8 scaling row");
        failed = true;
    }

    // The compositional argument must keep closing chain-12: a
    // refinement or contract regression that pushed it to the
    // monolithic fallback would panic the bench and drop the row.
    if !fresh.compositional.iter().any(|(s, _)| s == "chain-12") {
        eprintln!("bench gate FAILED: fresh record has no chain-12 compositional row");
        failed = true;
    }

    // Per-scenario throughput, for rows both records carry — the
    // monolithic chain scaling rows and the compositional rows alike.
    let arms = [
        ("", &fresh.scaling, &baseline.scaling),
        (
            " (compositional)",
            &fresh.compositional,
            &baseline.compositional,
        ),
    ];
    for (tag, fresh_rows, base_rows) in arms {
        for (scenario, fresh_rate) in fresh_rows.iter() {
            let Some((_, base_rate)) = base_rows.iter().find(|(s, _)| s == scenario) else {
                continue;
            };
            let ratio = fresh_rate / base_rate;
            println!(
                "bench gate: {scenario}{tag} states/sec {fresh_rate:.0} vs baseline \
                 {base_rate:.0} (ratio {ratio:.2})"
            );
            if ratio < floor {
                eprintln!(
                    "bench gate FAILED: {scenario}{tag} throughput is {:.0}% of baseline \
                     (floor {:.0}%)",
                    ratio * 100.0,
                    floor * 100.0
                );
                failed = true;
            }
        }
    }

    // The daemon warm-start row, when a daemon record was supplied.
    if let Some(daemon_fresh_path) = arg_value(&args, "--daemon-fresh") {
        let daemon_baseline_path = arg_value(&args, "--daemon-baseline")
            .unwrap_or_else(|| "crates/bench/BENCH_daemon.baseline.json".to_string());
        let fresh_warm = read_daemon_warm(&daemon_fresh_path).unwrap_or_else(|e| {
            eprintln!("bench gate: {e}");
            std::process::exit(2);
        });
        let base_warm = read_daemon_warm(&daemon_baseline_path).unwrap_or_else(|e| {
            eprintln!("bench gate: {e}");
            std::process::exit(2);
        });
        match (fresh_warm, base_warm) {
            (None, _) => {
                eprintln!(
                    "bench gate FAILED: {daemon_fresh_path} has no warm-start row \
                     — warm re-verification silently stopped engaging"
                );
                failed = true;
            }
            (Some((fresh, seeded)), base) => {
                let base_speedup = base.map(|(s, _)| s);
                let ratio = base_speedup.map(|b| fresh / b);
                println!(
                    "bench gate: warm-start speedup {fresh:.1}x vs baseline {} \
                     ({seeded} states transferred)",
                    base_speedup
                        .map(|b| format!("{b:.1}x (ratio {:.2})", fresh / b))
                        .unwrap_or_else(|| "none".to_string()),
                );
                if seeded == 0 {
                    eprintln!(
                        "bench gate FAILED: warm row transferred 0 states — the \
                         artifact was rejected and the 'warm' run was really cold"
                    );
                    failed = true;
                }
                if let Some(ratio) = ratio {
                    if ratio < floor {
                        eprintln!(
                            "bench gate FAILED: warm-vs-cold speedup is {:.0}% of \
                             baseline (floor {:.0}%) — the warm-start path regressed",
                            ratio * 100.0,
                            floor * 100.0
                        );
                        failed = true;
                    }
                }
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("bench gate passed");
}
