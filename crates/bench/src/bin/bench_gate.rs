//! Bench-regression gate: compares a freshly emitted `BENCH_zones.json`
//! against the committed baseline and fails (exit 1) when the
//! case-study row's `states_per_sec` regressed by more than the
//! allowed fraction.
//!
//! ```sh
//! cargo run --release -p pte-bench --bin bench_gate -- \
//!     [--fresh BENCH_zones.json] \
//!     [--baseline crates/bench/BENCH_zones.baseline.json] \
//!     [--max-regression 0.25]
//! ```
//!
//! The baseline is a real record from the PR 4 container (2 vCPUs);
//! `--max-regression` (default 0.25, i.e. a fresh run must reach at
//! least 75% of the baseline throughput) absorbs ordinary scheduler
//! noise while still catching real hot-path regressions. Runners with
//! wildly different hardware should regenerate the baseline or widen
//! the margin rather than delete the gate.

use pte_bench::arg_value;
use serde::Value;

/// Reads `path` and extracts the case-study `states_per_sec` plus the
/// `wall_ms` of a zones bench record.
fn read_record(path: &str) -> Result<(f64, f64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = serde_json::from_str_value(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Value::Obj(fields) = &value else {
        return Err(format!("{path}: expected a JSON object"));
    };
    let field = |name: &str| -> Result<f64, String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Value::Num(n) => Some(n.as_f64()),
                _ => None,
            })
            .ok_or_else(|| format!("{path}: missing numeric field `{name}`"))
    };
    match fields.iter().find(|(k, _)| k == "bench") {
        Some((_, Value::Str(s))) if s == "zones" => {}
        _ => return Err(format!("{path}: not a zones bench record")),
    }
    Ok((field("states_per_sec")?, field("wall_ms")?))
}

fn num_f(v: Option<&str>, default: f64) -> f64 {
    v.and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fresh_path = arg_value(&args, "--fresh").unwrap_or_else(|| "BENCH_zones.json".to_string());
    let baseline_path = arg_value(&args, "--baseline")
        .unwrap_or_else(|| "crates/bench/BENCH_zones.baseline.json".to_string());
    let max_regression = num_f(arg_value(&args, "--max-regression").as_deref(), 0.25);

    let (fresh, fresh_ms) = read_record(&fresh_path).unwrap_or_else(|e| {
        eprintln!("bench gate: {e}");
        std::process::exit(2);
    });
    let (baseline, baseline_ms) = read_record(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench gate: {e}");
        std::process::exit(2);
    });

    let ratio = fresh / baseline;
    println!(
        "bench gate: case-study states/sec {fresh:.0} vs baseline {baseline:.0} \
         (ratio {ratio:.2}; wall {fresh_ms:.1} ms vs {baseline_ms:.1} ms; \
         allowed regression {max_regression:.0}%)",
        max_regression = max_regression * 100.0
    );
    if ratio < 1.0 - max_regression {
        eprintln!(
            "bench gate FAILED: fresh throughput is {:.0}% of baseline \
             (floor {:.0}%) — the zone-engine hot path regressed",
            ratio * 100.0,
            (1.0 - max_regression) * 100.0
        );
        std::process::exit(1);
    }
    println!("bench gate passed");
}
