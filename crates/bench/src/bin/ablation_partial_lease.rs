//! Ablation: *which* lease protects *whom*?
//!
//! Table I compares all-leases vs no-leases; this ablation arms the
//! ventilator's and the laser's leases independently (2 × 2 arms) under
//! heavy loss and attributes each violation to an entity. Expected shape:
//! the laser's Rule-1 failures vanish iff the laser's lease is armed; the
//! ventilator's iff the ventilator's; PTE holds only with both.
//!
//! Usage: `cargo run --release -p pte-bench --bin ablation_partial_lease
//! [--seeds K]` (default 8).

use pte_bench::seeds_arg;
use pte_core::monitor::Violation;
use pte_hybrid::Time;
use pte_tracheotomy::emulation::{run_trial_partial, LossEnvironment, TrialConfig};
use pte_verify::report::TextTable;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds = seeds_arg(&args, 8);

    println!("Ablation: per-entity lease arming, {seeds} seeds/arm (10 min, 35% i.i.d. loss)\n");
    let mut table = TextTable::new(vec![
        "vent lease",
        "laser lease",
        "failing seeds",
        "vent violations",
        "laser violations",
        "other violations",
    ]);

    for (vent_leased, laser_leased) in [(true, true), (true, false), (false, true), (false, false)]
    {
        let mut failing = 0usize;
        let mut vent_v = 0usize;
        let mut laser_v = 0usize;
        let mut other_v = 0usize;
        for k in 0..seeds {
            let trial = TrialConfig {
                duration: Time::seconds(600.0),
                mean_on: Time::seconds(20.0),
                mean_off: Some(Time::seconds(10.0)),
                leased: true, // overridden per-entity below
                loss: LossEnvironment::Bernoulli(0.35),
                seed: 31_000 + k as u64,
            };
            let r = run_trial_partial(&trial, vent_leased, laser_leased).expect("trial executes");
            if r.failures > 0 {
                failing += 1;
            }
            for v in &r.report.violations {
                let entity = match v {
                    Violation::Rule1 { entity, .. } => Some(entity.as_str()),
                    Violation::NotCovered { inner, .. } => Some(inner.as_str()),
                    Violation::EnterMargin { inner, .. } | Violation::ExitMargin { inner, .. } => {
                        Some(inner.as_str())
                    }
                    _ => None,
                };
                match entity {
                    Some("ventilator") => vent_v += 1,
                    Some("laser-scalpel") => laser_v += 1,
                    _ => other_v += 1,
                }
            }
        }
        table.row(vec![
            vent_leased.to_string(),
            laser_leased.to_string(),
            format!("{failing}/{seeds}"),
            vent_v.to_string(),
            laser_v.to_string(),
            other_v.to_string(),
        ]);
        if vent_leased && laser_leased {
            assert_eq!(failing, 0, "both leases armed must be safe");
        }
    }

    println!("{}", table.render());
    println!("Shape: the fully-leased arm is clean; each entity's Rule-1");
    println!("violations disappear exactly when its own lease is armed.");
}
