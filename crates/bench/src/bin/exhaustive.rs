//! Bounded-exhaustive loss exploration of the lease pattern.
//!
//! Enumerates every drop/deliver assignment of the first `k` wireless
//! transmissions (default k = 10: 2 × 1024 runs) for both arms:
//! the leased system must be PTE-safe in **every** run; the no-lease arm
//! reports how many assignments break it.
//!
//! Usage: `cargo run --release -p pte-bench --bin exhaustive
//! [--depth K] [--cancel]`.

use pte_bench::arg_value;
use pte_core::pattern::LeaseConfig;
use pte_verify::exhaustive::explore;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let depth: usize = arg_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let cancel = args.iter().any(|a| a == "--cancel");

    let cfg = LeaseConfig::case_study();
    println!(
        "Bounded-exhaustive exploration, depth {depth} ({} runs per arm, cancel={cancel})\n",
        2u64 << depth
    );

    let start = std::time::Instant::now();
    let leased = explore(&cfg, true, depth, cancel);
    println!("with lease:    {leased}   [{:?}]", start.elapsed());
    assert!(
        leased.all_safe(),
        "Theorem 1: every assignment must be safe"
    );

    let start = std::time::Instant::now();
    let unleased = explore(&cfg, false, depth, cancel);
    println!("without lease: {unleased}   [{:?}]", start.elapsed());
    if !unleased.all_safe() {
        println!(
            "\nfirst counter-example (mask {:#b}, default_drop={}):\n{}",
            unleased.violations[0].mask,
            unleased.violations[0].default_drop,
            unleased.violations[0].report
        );
    }
}
