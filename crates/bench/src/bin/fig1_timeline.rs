//! Regenerates **Fig. 1**: the proper-temporal-embedding timeline, with
//! the four annotated quantities measured from an actual clean run:
//!
//! * `t1` — ventilator-risky lead before laser emission (≥ 3 s);
//! * `t2` — ventilator-risky lag after laser emission (≥ 1.5 s);
//! * `t3` — ventilator pause duration (bounded);
//! * `t4` — laser emission duration (bounded).

use pte_core::monitor::check_pte;
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_tracheotomy::emulation::{build_case_study, emulation_spec};

fn bar(start: f64, end: f64, scale: f64, width: usize, ch: char) -> String {
    let mut line = vec![' '; width];
    let a = ((start * scale) as usize).min(width - 1);
    let b = ((end * scale) as usize).min(width - 1);
    for cell in line.iter_mut().take(b + 1).skip(a) {
        *cell = ch;
    }
    line.into_iter().collect()
}

fn main() {
    let cfg = pte_core::pattern::LeaseConfig::case_study();
    let automata = build_case_study(&cfg, true).expect("case study builds");
    let mut exec = Executor::new(automata, ExecutorConfig::default()).expect("executor");
    exec.add_driver(Box::new(ScriptedDriver::new(
        "surgeon",
        vec![
            (Time::seconds(14.0), Root::new("cmd_request")),
            (Time::seconds(40.0), Root::new("cmd_cancel")),
        ],
    )));
    let trace = exec.run_until(Time::seconds(80.0)).expect("runs");

    let vent = trace.index_of("ventilator").unwrap();
    let laser = trace.index_of("laser-scalpel").unwrap();
    let vent_iv = trace.risky_intervals(vent);
    let laser_iv = trace.risky_intervals(laser);
    assert_eq!(vent_iv.len(), 1, "one clean round expected");
    assert_eq!(laser_iv.len(), 1);
    let (v, l) = (vent_iv[0], laser_iv[0]);

    let t1 = l.start - v.start;
    let t2 = v.end - l.end;
    let t3 = v.duration();
    let t4 = l.duration();

    println!("Fig. 1: Proper-Temporal-Embedding example (measured from a clean round)\n");
    let scale = 1.0; // 1 char per second
    let width = 80;
    println!(
        "ventilator pause   |{}|",
        bar(
            v.start.as_secs_f64(),
            v.end.as_secs_f64(),
            scale,
            width,
            '='
        )
    );
    println!(
        "laser emission     |{}|",
        bar(
            l.start.as_secs_f64(),
            l.end.as_secs_f64(),
            scale,
            width,
            '#'
        )
    );
    println!(
        "                    0{:>width$}",
        "t (s)",
        width = width - 1
    );
    println!();
    println!(
        "t1 (enter-risky safeguard, >= {}): {t1}",
        cfg.safeguards[0].t_min_risky
    );
    println!(
        "t2 (exit-risky safeguard,  >= {}): {t2}",
        cfg.safeguards[0].t_min_safe
    );
    println!(
        "t3 (ventilator pause, bounded by {}): {t3}",
        cfg.max_risky_dwelling()
    );
    println!(
        "t4 (laser emission,   bounded by {}): {t4}",
        cfg.max_risky_dwelling()
    );

    let report = check_pte(&trace, &emulation_spec());
    println!(
        "\nmonitor verdict: {}",
        if report.is_safe() {
            "SAFE"
        } else {
            "VIOLATION"
        }
    );
    assert!(report.is_safe());
}
