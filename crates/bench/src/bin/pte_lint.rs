//! `pte-lint`: the static model linter over lowered lease-pattern
//! networks.
//!
//! Builds and lowers the named registry scenarios (both arms by
//! default), runs the [static analysis](pte_zones::analysis) — clock
//! reduction, activity masks, lint diagnostics — and prints every
//! finding. Exit status is the CI contract: `1` when any diagnostic is
//! `error`-severity, `2` on usage/build failures, `0` otherwise
//! (warnings and infos never fail the gate).
//!
//! The canonical pattern allowlist
//! ([`pte_zones::analysis::lint::pattern_allowlist`]) is applied by
//! default, downgrading the base pattern's *intentional* dead text
//! (the `lease_deny` receives that go live only under
//! `PatternOptions { deny_capable: true }`, and the `[approval_bad=1]`
//! mode copies of the register fold) to info — so registry scenarios
//! lint warning-clean and any *new* warning stands out. `--raw` shows
//! undowngraded findings.
//!
//! ```sh
//! cargo run --release -p pte-bench --bin pte-lint                # all scenarios
//! cargo run --release -p pte-bench --bin pte-lint -- chain-4    # one scenario
//! cargo run --release -p pte-bench --bin pte-lint -- --chain 8  # ad-hoc chain N
//! cargo run --release -p pte-bench --bin pte-lint -- --raw      # no allowlist
//! cargo run --release -p pte-bench --bin pte-lint -- --arm leased --json
//! ```

use pte_core::pattern::LeaseConfig;
use pte_tracheotomy::registry;
use pte_zones::{analyze_lease_pattern, apply_allowlist, pattern_allowlist, ModelAnalysis};
use serde::{Number, Value};

/// One linted (scenario, arm) cell.
struct Cell {
    name: String,
    leased: bool,
    analysis: ModelAnalysis,
}

fn lint_config(name: &str, cfg: &LeaseConfig, arms: &[bool], raw: bool, out: &mut Vec<Cell>) {
    for &leased in arms {
        match analyze_lease_pattern(cfg, leased) {
            Ok(mut analysis) => {
                if !raw {
                    apply_allowlist(&mut analysis.diagnostics, &pattern_allowlist());
                }
                out.push(Cell {
                    name: name.to_string(),
                    leased,
                    analysis,
                })
            }
            Err(e) => {
                eprintln!("pte-lint: {name} (leased={leased}): {e}");
                std::process::exit(2);
            }
        }
    }
}

fn cell_value(c: &Cell) -> Value {
    let num = |u: usize| Value::Num(Number::U(u as u64));
    let s = c.analysis.stats();
    let diagnostics: Vec<Value> = c
        .analysis
        .diagnostics
        .iter()
        .map(|d| {
            let mut fields = vec![
                ("severity".into(), Value::Str(d.severity.to_string())),
                ("code".into(), Value::Str(d.code.to_string())),
            ];
            if let Some(a) = &d.automaton {
                fields.push(("automaton".into(), Value::Str(a.clone())));
            }
            if let Some(site) = &d.site {
                fields.push(("site".into(), Value::Str(site.clone())));
            }
            fields.push(("message".into(), Value::Str(d.message.clone())));
            Value::Obj(fields)
        })
        .collect();
    Value::Obj(vec![
        ("scenario".into(), Value::Str(c.name.clone())),
        ("leased".into(), Value::Bool(c.leased)),
        ("clocks_before".into(), num(s.clocks_before)),
        ("clocks_after".into(), num(s.clocks_after)),
        ("clocks_dropped".into(), num(s.clocks_dropped)),
        ("clocks_merged".into(), num(s.clocks_merged)),
        ("locations_unreachable".into(), num(s.locations_unreachable)),
        ("errors".into(), num(s.errors)),
        ("warnings".into(), num(s.warnings)),
        ("infos".into(), num(s.infos)),
        ("diagnostics".into(), Value::Arr(diagnostics)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let raw = args.iter().any(|a| a == "--raw");
    let arms: &[bool] = match pte_bench::arg_value(&args, "--arm").as_deref() {
        None | Some("both") => &[true, false],
        Some("leased") => &[true],
        Some("baseline") => &[false],
        Some(other) => {
            eprintln!("pte-lint: unknown --arm `{other}` (leased | baseline | both)");
            std::process::exit(2);
        }
    };

    let mut cells = Vec::new();
    if let Some(n) = pte_bench::arg_value(&args, "--chain") {
        let n: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("pte-lint: --chain expects an entity count");
            std::process::exit(2);
        });
        lint_config(
            &format!("chain-{n}"),
            &LeaseConfig::chain(n),
            arms,
            raw,
            &mut cells,
        );
    }
    let named: Vec<&String> = args[1..]
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip option values (`--arm leased`, `--chain 8`).
            let pos = args.iter().position(|x| &x == a).unwrap();
            !matches!(args[pos - 1].as_str(), "--arm" | "--chain")
        })
        .collect();
    if !named.is_empty() {
        for name in named {
            match registry::by_name(name) {
                Some(s) => lint_config(&s.name, &s.config, arms, raw, &mut cells),
                None => {
                    eprintln!(
                        "{}",
                        registry::unknown_scenario_diagnostic(name, &registry::listing())
                    );
                    std::process::exit(2);
                }
            }
        }
    } else if cells.is_empty() {
        for s in registry::registry() {
            lint_config(&s.name, &s.config, arms, raw, &mut cells);
        }
    }

    let errors: usize = cells.iter().map(|c| c.analysis.stats().errors).sum();
    if json {
        let doc = Value::Obj(vec![
            ("lint".into(), Value::Str("pte".into())),
            (
                "scenarios".into(),
                Value::Arr(cells.iter().map(cell_value).collect()),
            ),
            ("errors".into(), Value::Num(Number::U(errors as u64))),
        ]);
        println!(
            "{}",
            serde_json::to_string(&doc).expect("lint report serializes")
        );
    } else {
        for c in &cells {
            let s = c.analysis.stats();
            println!(
                "{} ({}): clocks {} -> {} ({} dropped, {} merged), \
                 {} unreachable locations, {} errors / {} warnings / {} infos",
                c.name,
                if c.leased { "leased" } else { "baseline" },
                s.clocks_before,
                s.clocks_after,
                s.clocks_dropped,
                s.clocks_merged,
                s.locations_unreachable,
                s.errors,
                s.warnings,
                s.infos,
            );
            for d in &c.analysis.diagnostics {
                println!("  {d}");
            }
        }
        println!(
            "pte-lint: {} cell(s), {errors} error(s){}",
            cells.len(),
            if errors > 0 { " — FAILED" } else { "" }
        );
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
