//! Ablation: failure probability vs wireless loss rate, with and without
//! leases.
//!
//! The lease arm's row must be identically zero at every loss probability
//! (Theorem 1 holds under *arbitrary* loss); the no-lease arm's failure
//! probability grows with the loss rate. Each cell is a Monte-Carlo batch
//! over seeds.
//!
//! Usage: `cargo run --release -p pte-bench --bin ablation_loss_sweep
//! [--seeds K]` (default 10).

use pte_bench::seeds_arg;
use pte_hybrid::Time;
use pte_tracheotomy::emulation::{LossEnvironment, TrialConfig};
use pte_verify::montecarlo::{case_study_outcome, run_batch};
use pte_verify::report::TextTable;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds = seeds_arg(&args, 10);

    println!(
        "Ablation: failure rate vs wireless loss probability ({seeds} seeds/cell, 10 min trials)\n"
    );

    let mut table = TextTable::new(vec![
        "p(loss)",
        "with lease: failing trials",
        "with lease: emissions",
        "without lease: failing trials",
        "without lease: emissions",
    ]);

    for p10 in 0..=9 {
        let p = p10 as f64 / 10.0;
        let mut cells = vec![format!("{p:.1}")];
        for leased in [true, false] {
            let summary = run_batch(seeds, 9_000 + p10 * 100, |seed| {
                case_study_outcome(&TrialConfig {
                    duration: Time::seconds(600.0),
                    mean_on: Time::seconds(20.0),
                    mean_off: Some(Time::seconds(10.0)),
                    leased,
                    loss: LossEnvironment::Bernoulli(p),
                    seed,
                })
            });
            if leased {
                assert_eq!(
                    summary.failing_trials, 0,
                    "Theorem 1: lease arm must never fail (p = {p})"
                );
            }
            cells.push(format!("{}/{}", summary.failing_trials, summary.trials));
            cells.push(format!("{}", summary.total_emissions));
        }
        // Reorder: p, lease-fail, lease-emissions, nolease-fail, nolease-em.
        table.row(cells);
    }

    println!("{}", table.render());
    println!("Shape: the lease column is all zeros (Theorem 1); the no-lease");
    println!("failure count grows with p; emissions shrink as loss starves grants.");
}
