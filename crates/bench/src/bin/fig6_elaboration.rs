//! Regenerates **Fig. 6**: the atomic elaboration example — a host
//! automaton `A` with locations {Fall-Back, Risky} elaborated at
//! Fall-Back with the simple ventilator `A′vent` of Fig. 2, shown before
//! (a) and after (b), with the paper's structural observations asserted
//! (e.g. "no edge from Risky to PumpIn because PumpIn is not an initial
//! location of A′vent").

use pte_hybrid::automaton::VarKind;
use pte_hybrid::dot::to_dot;
use pte_hybrid::elaboration::elaborate;
use pte_hybrid::{Expr, HybridAutomaton, Pred};
use pte_tracheotomy::ventilator::standalone_ventilator;

fn fig6_host() -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("A");
    let x = b.var("x", VarKind::Continuous, 0.0);
    let fb = b.location("Fall-Back");
    let risky = b.risky_location("Risky");
    b.flow(fb, x, Expr::c(1.0));
    b.flow(risky, x, Expr::c(-2.0));
    b.edge(fb, risky)
        .on_lossy("go")
        .guard(Pred::ge(Expr::var(x), Expr::c(5.0)))
        .done();
    b.edge(risky, fb)
        .guard(Pred::le(Expr::var(x), Expr::c(0.0)))
        .urgent()
        .done();
    b.initial(fb, None);
    b.build().expect("host builds")
}

fn main() {
    let host = fig6_host();
    println!("Fig. 6 (a): host automaton A (shaded location = to be elaborated):\n");
    println!("{}", to_dot(&host));

    let vent = standalone_ventilator();
    let fb = host.loc_by_name("Fall-Back").unwrap();
    let elaborated = elaborate(&host, fb, &vent).expect("elaboration succeeds");
    let a2 = &elaborated.automaton;
    println!("Fig. 6 (b): A'' = E(A, Fall-Back, A'vent):\n");
    println!("{}", to_dot(a2));

    // The paper's callout: no edge from Risky to PumpIn, because PumpIn is
    // not an initial location of A'vent.
    let risky = a2.loc_by_name("Risky").unwrap();
    let pump_in = a2.loc_by_name("PumpIn").unwrap();
    let pump_out = a2.loc_by_name("PumpOut").unwrap();
    assert!(
        !a2.edges.iter().any(|e| e.src == risky && e.dst == pump_in),
        "no Risky -> PumpIn edge"
    );
    assert!(
        a2.edges.iter().any(|e| e.src == risky && e.dst == pump_out),
        "Risky -> PumpOut edge exists"
    );
    // Egress `go` edges from both child locations.
    let go_edges = a2
        .edges
        .iter()
        .filter(|e| e.trigger.is_some() && e.dst == risky)
        .count();
    assert_eq!(go_edges, 2, "`go` egress copied from every child location");
    println!("structural checks: ingress only to PumpOut (initial), egress from both child locations — OK");
}
