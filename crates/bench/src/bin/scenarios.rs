//! Runs the three Section V failure narratives and prints both arms of
//! each: the lease-based system must stay safe, the comparison arm must
//! fail exactly the way the paper describes.

use pte_tracheotomy::scenarios::{forgetful_surgeon, lost_cancel, misconfigured_c5};
use pte_verify::report::TextTable;

fn main() {
    println!("Section V scenarios\n");

    let mut table = TextTable::new(vec![
        "scenario",
        "arm",
        "emissions",
        "failures",
        "lease stops (laser/vent)",
    ]);

    for outcome in [
        forgetful_surgeon().expect("scenario 1 runs"),
        lost_cancel().expect("scenario 2 runs"),
    ] {
        table.row(vec![
            outcome.name.clone(),
            "with lease".to_string(),
            outcome.with_lease.emissions.to_string(),
            outcome.with_lease.failures.to_string(),
            format!(
                "{}/{}",
                outcome.with_lease.evt_to_stop, outcome.with_lease.vent_lease_stops
            ),
        ]);
        if let Some(wo) = &outcome.without_lease {
            table.row(vec![
                String::new(),
                "without lease".to_string(),
                wo.emissions.to_string(),
                wo.failures.to_string(),
                format!("{}/{}", wo.evt_to_stop, wo.vent_lease_stops),
            ]);
            for v in &wo.report.violations {
                println!("  [{}] {v}", outcome.name);
            }
        }
    }
    println!();

    let (conditions, result) = misconfigured_c5().expect("scenario 3 runs");
    println!(
        "scenario 3 (T_enter,2 := T_enter,1 violates c5): conditions satisfied = {}",
        conditions.is_satisfied()
    );
    for c in conditions.violations() {
        println!("  violated: {} — {}", c.condition, c.detail);
    }
    println!("  run outcome: {} failures", result.failures);
    for v in &result.report.violations {
        println!("  {v}");
    }
    println!();
    println!("{}", table.render());
}
