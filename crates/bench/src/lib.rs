//! # pte-bench
//!
//! Benchmarks and regenerators for every table and figure of the paper.
//!
//! Binaries (run with `cargo run --release -p pte-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — PTE failure statistics, 4 trials × 30 min |
//! | `fig1_timeline` | Fig. 1 — PTE timeline with measured t1..t4 |
//! | `fig2_ventilator` | Fig. 2 — stand-alone ventilator (trajectory + DOT) |
//! | `fig3_supervisor` | Fig. 3 — Supervisor pattern automaton (DOT) |
//! | `fig4_flowblocks` | Fig. 4 — Lease/Cancel/Abort flow blocks (text) |
//! | `fig5_roles` | Fig. 5 — Initializer & Participant automata (DOT) |
//! | `fig6_elaboration` | Fig. 6 — atomic elaboration example (DOT ×2) |
//! | `fig7_layout` | Fig. 7 — emulation layout (star topology) |
//! | `scenarios` | Section V failure narratives |
//! | `ablation_loss_sweep` | failure rate vs loss probability × lease arm |
//! | `ablation_conditions` | safeguard margin vs c5 slack |
//! | `exhaustive` | bounded-exhaustive loss exploration |
//! | `campaign` | config-matrix sweep across analytic/symbolic/exhaustive backends (JSON + text report) |
//!
//! Criterion benches (`cargo bench -p pte-bench`): executor throughput,
//! monitor throughput, channel models, parameter synthesis, elaboration,
//! and the symbolic zone engine (DBM ops, worker-count scaling,
//! ExtraM-vs-ExtraLU extrapolation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parses `--name value` style options from `std::env::args`-like input.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a `--seeds N` option with a default.
pub fn seeds_arg(args: &[String], default: usize) -> usize {
    arg_value(args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["prog", "--seeds", "12", "--x", "y"]);
        assert_eq!(arg_value(&a, "--x").as_deref(), Some("y"));
        assert_eq!(arg_value(&a, "--missing"), None);
        assert_eq!(seeds_arg(&a, 3), 12);
        assert_eq!(seeds_arg(&args(&["prog"]), 3), 3);
        assert_eq!(seeds_arg(&args(&["prog", "--seeds", "zz"]), 3), 3);
    }
}
