//! # pte-bench
//!
//! Benchmarks and regenerators for every table and figure of the paper.
//!
//! Binaries (run with `cargo run --release -p pte-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — PTE failure statistics, 4 trials × 30 min |
//! | `fig1_timeline` | Fig. 1 — PTE timeline with measured t1..t4 |
//! | `fig2_ventilator` | Fig. 2 — stand-alone ventilator (trajectory + DOT) |
//! | `fig3_supervisor` | Fig. 3 — Supervisor pattern automaton (DOT) |
//! | `fig4_flowblocks` | Fig. 4 — Lease/Cancel/Abort flow blocks (text) |
//! | `fig5_roles` | Fig. 5 — Initializer & Participant automata (DOT) |
//! | `fig6_elaboration` | Fig. 6 — atomic elaboration example (DOT ×2) |
//! | `fig7_layout` | Fig. 7 — emulation layout (star topology) |
//! | `scenarios` | Section V failure narratives |
//! | `ablation_loss_sweep` | failure rate vs loss probability × lease arm |
//! | `ablation_conditions` | safeguard margin vs c5 slack |
//! | `exhaustive` | bounded-exhaustive loss exploration |
//! | `campaign` | config-matrix sweep across analytic/symbolic/exhaustive backends (JSON + text report) |
//!
//! Criterion benches (`cargo bench -p pte-bench`): executor throughput,
//! monitor throughput, channel models, parameter synthesis, elaboration,
//! and the symbolic zone engine (DBM ops, worker-count scaling,
//! ExtraM-vs-ExtraLU extrapolation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pte_zones::{Limits, SearchStats};
use serde::{Number, Value};

/// Parses `--name value` style options from `std::env::args`-like input.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// One per-scenario scaling measurement attached to `BENCH_zones.json`
/// (states settled and states/sec vs the entity count `N`).
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Registry scenario name (e.g. `chain-4`).
    pub scenario: String,
    /// Number of leased entities.
    pub n: usize,
    /// Settled symbolic states of the leased safety proof.
    pub states: usize,
    /// Proof wall time in seconds, when measured **sequentially**
    /// (`benches/zones.rs`). `None` for rows derived from campaign
    /// cells, which run up to 4 cells concurrently — their wall times
    /// measure contention, not the engine, so only the
    /// contention-free state counts are recorded.
    pub secs: Option<f64>,
}

/// One reduced-vs-unreduced measurement pair attached to
/// `BENCH_zones.json`: the same leased safety proof run with the
/// static-analysis pass on and off, so the clock-reduction /
/// activity-mask payoff is a recorded number rather than a claim.
#[derive(Clone, Debug)]
pub struct ReductionRow {
    /// Registry scenario name (e.g. `chain-4`).
    pub scenario: String,
    /// DBM clock count (network + observer) with the analysis pass on.
    pub clocks_reduced: usize,
    /// DBM clock count with the analysis pass off.
    pub clocks_unreduced: usize,
    /// Settled states / wall seconds / states-per-sec, analysis on.
    pub reduced: (usize, f64, f64),
    /// Settled states / wall seconds / states-per-sec, analysis off.
    pub unreduced: (usize, f64, f64),
}

/// One symmetry-quotient measurement pair attached to
/// `BENCH_zones.json`: the same full exploration run with the orbit
/// quotient on and off ([`pte_zones::Limits::symmetry`]), on a
/// structurally symmetric model ([`pte_zones::demo_fleet`] — the
/// lease chains are asymmetric and auto-disable the quotient, so the
/// honest payoff is measured where symmetry actually exists).
#[derive(Clone, Debug)]
pub struct SymmetryRow {
    /// Model name (e.g. `fleet-4`).
    pub model: String,
    /// Settled states / wall seconds / states-per-sec, quotient on.
    /// States count orbit *representatives*.
    pub quotient: (usize, f64, f64),
    /// Settled states / wall seconds / states-per-sec, quotient off.
    pub full: (usize, f64, f64),
    /// Successors the quotient folded onto an existing representative.
    pub orbits: usize,
}

/// One compositional-verification measurement attached to
/// `BENCH_zones.json`: a chain scenario proved Safe through the
/// assume-guarantee argument (per-device refinement + abstract pair
/// networks) instead of the monolithic zone search — the scale regime
/// where the monolithic engine trips its budget.
#[derive(Clone, Debug)]
pub struct CompositionalRow {
    /// Registry scenario name (e.g. `chain-12`).
    pub scenario: String,
    /// Number of leased entities.
    pub n: usize,
    /// Settled abstract states summed over all pair networks.
    pub abstract_states: usize,
    /// Abstract pair networks checked.
    pub pair_networks: usize,
    /// Admitted refinement state pairs summed over all contracts.
    pub refine_pairs: usize,
    /// End-to-end wall time in seconds (refinements + pair checks).
    pub secs: f64,
}

/// Writes the `BENCH_zones.json` perf record shared by
/// `benches/zones.rs` and `campaign --bench-json`: wall time of the
/// leased case-study proof, settled states, states/sec, the
/// passed-list byte accounting, per-N chain scaling rows,
/// reduced-vs-unreduced ablation rows, symmetry-quotient rows, and
/// compositional-scale rows.
/// `falsify_secs` is the optional baseline-falsification timing (the
/// bench measures it, the campaign does not). The emitted JSON is
/// round-trip-validated before writing.
#[allow(clippy::too_many_arguments)]
pub fn write_zones_bench_json(
    path: &str,
    proof_secs: f64,
    falsify_secs: Option<f64>,
    stats: &SearchStats,
    limits: &Limits,
    scaling: &[ScalingRow],
    reduction: &[ReductionRow],
    symmetry: &[SymmetryRow],
    compositional: &[CompositionalRow],
) {
    let num_u = |u: usize| Value::Num(Number::U(u as u64));
    let num_f = |f: f64| Value::Num(Number::F(f));
    let mut fields = vec![
        ("bench".into(), Value::Str("zones".into())),
        ("case".into(), Value::Str("leased_case_study_proof".into())),
        ("wall_ms".into(), num_f(proof_secs * 1e3)),
    ];
    if let Some(secs) = falsify_secs {
        fields.push(("falsify_baseline_ms".into(), num_f(secs * 1e3)));
    }
    fields.extend([
        ("settled_states".into(), num_u(stats.states)),
        ("transitions".into(), num_u(stats.transitions)),
        (
            "states_per_sec".into(),
            num_f(stats.states as f64 / proof_secs),
        ),
        ("peak_passed_bytes".into(), num_u(stats.peak_passed_bytes)),
        (
            "peak_passed_bytes_full".into(),
            num_u(stats.peak_passed_bytes_full),
        ),
        (
            "compression_factor".into(),
            num_f(stats.peak_passed_bytes_full as f64 / stats.peak_passed_bytes.max(1) as f64),
        ),
        ("workers".into(), num_u(limits.effective_workers())),
        ("max_states".into(), num_u(limits.max_states)),
    ]);
    if !scaling.is_empty() {
        let rows: Vec<Value> = scaling
            .iter()
            .map(|r| {
                let mut row = vec![
                    ("scenario".into(), Value::Str(r.scenario.clone())),
                    ("n".into(), num_u(r.n)),
                    ("settled_states".into(), num_u(r.states)),
                ];
                if let Some(secs) = r.secs {
                    row.push(("wall_ms".into(), num_f(secs * 1e3)));
                    row.push((
                        "states_per_sec".into(),
                        num_f(r.states as f64 / secs.max(1e-9)),
                    ));
                }
                Value::Obj(row)
            })
            .collect();
        fields.push(("scaling".into(), Value::Arr(rows)));
    }
    if !reduction.is_empty() {
        let arm = |clocks: usize, (states, secs, rate): (usize, f64, f64)| {
            Value::Obj(vec![
                ("dbm_clocks".into(), num_u(clocks)),
                ("settled_states".into(), num_u(states)),
                ("wall_ms".into(), num_f(secs * 1e3)),
                ("states_per_sec".into(), num_f(rate)),
            ])
        };
        let rows: Vec<Value> = reduction
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("scenario".into(), Value::Str(r.scenario.clone())),
                    ("reduced".into(), arm(r.clocks_reduced, r.reduced)),
                    ("unreduced".into(), arm(r.clocks_unreduced, r.unreduced)),
                    (
                        "speedup".into(),
                        num_f(r.reduced.2 / r.unreduced.2.max(1e-9)),
                    ),
                ])
            })
            .collect();
        fields.push(("reduction".into(), Value::Arr(rows)));
    }
    if !symmetry.is_empty() {
        let arm = |(states, secs, rate): (usize, f64, f64)| {
            Value::Obj(vec![
                ("settled_states".into(), num_u(states)),
                ("wall_ms".into(), num_f(secs * 1e3)),
                ("states_per_sec".into(), num_f(rate)),
            ])
        };
        let rows: Vec<Value> = symmetry
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("model".into(), Value::Str(r.model.clone())),
                    ("quotient".into(), arm(r.quotient)),
                    ("full".into(), arm(r.full)),
                    ("orbits_folded".into(), num_u(r.orbits)),
                    (
                        "state_reduction".into(),
                        num_f(r.full.0 as f64 / r.quotient.0.max(1) as f64),
                    ),
                ])
            })
            .collect();
        fields.push(("symmetry".into(), Value::Arr(rows)));
    }
    if !compositional.is_empty() {
        let rows: Vec<Value> = compositional
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("scenario".into(), Value::Str(r.scenario.clone())),
                    ("n".into(), num_u(r.n)),
                    ("abstract_states".into(), num_u(r.abstract_states)),
                    ("pair_networks".into(), num_u(r.pair_networks)),
                    ("refine_pairs".into(), num_u(r.refine_pairs)),
                    ("wall_ms".into(), num_f(r.secs * 1e3)),
                    (
                        "states_per_sec".into(),
                        num_f(r.abstract_states as f64 / r.secs.max(1e-9)),
                    ),
                ])
            })
            .collect();
        fields.push(("compositional".into(), Value::Arr(rows)));
    }
    let json = serde_json::to_string(&Value::Obj(fields)).expect("bench report serializes");
    serde_json::from_str_value(&json).expect("bench JSON must parse back");
    std::fs::write(path, &json).expect("write zones bench JSON");
    println!(
        "zones bench record: {:.1} ms, {:.0} states/s -> {path}",
        proof_secs * 1e3,
        stats.states as f64 / proof_secs
    );
}

/// The warm-start measurement pair attached to `BENCH_daemon.json`:
/// re-verifying a perturbed scenario cold vs warm-seeded from the
/// unperturbed parent's persisted passed-list artifact.
#[derive(Clone, Debug)]
pub struct WarmBenchRow {
    /// What was re-verified (e.g. `chain-6 safeguards relaxed`).
    pub case: String,
    /// Best-of-N cold re-verification latency (full zone search).
    pub cold_ms: f64,
    /// Best-of-N warm re-verification latency (proof transfer).
    pub warm_ms: f64,
    /// States the warm run seeded from the parent artifact.
    pub seeded_states: usize,
}

/// Writes the `BENCH_daemon.json` perf record emitted by
/// `benches/daemon.rs`: best-of-N wall times of the same case-study
/// proof run three ways — in-process (`VerificationRequest::run`),
/// through `pte-verifyd` cold (socket + scheduling + a real search),
/// and through the daemon's report cache — plus the derived dispatch
/// overhead and cache speedup, and (when measured) the chain-6
/// warm-start re-verification row. The emitted JSON is
/// round-trip-validated before writing.
pub fn write_daemon_bench_json(
    path: &str,
    in_process_ms: f64,
    daemon_cold_ms: f64,
    daemon_cached_ms: f64,
    warm: Option<&WarmBenchRow>,
) {
    let num_f = |f: f64| Value::Num(Number::F(f));
    let mut fields = vec![
        ("bench".into(), Value::Str("daemon".into())),
        ("case".into(), Value::Str("leased_case_study_proof".into())),
        ("in_process_ms".into(), num_f(in_process_ms)),
        ("daemon_cold_ms".into(), num_f(daemon_cold_ms)),
        ("daemon_cached_ms".into(), num_f(daemon_cached_ms)),
        (
            "dispatch_overhead_ms".into(),
            num_f(daemon_cold_ms - in_process_ms),
        ),
        (
            "cache_speedup".into(),
            num_f(daemon_cold_ms / daemon_cached_ms.max(1e-9)),
        ),
    ];
    if let Some(w) = warm {
        fields.extend([
            ("warm_case".into(), Value::Str(w.case.clone())),
            ("warm_cold_ms".into(), num_f(w.cold_ms)),
            ("warm_ms".into(), num_f(w.warm_ms)),
            (
                "warm_speedup".into(),
                num_f(w.cold_ms / w.warm_ms.max(1e-9)),
            ),
            (
                "warm_seeded_states".into(),
                Value::Num(Number::U(w.seeded_states as u64)),
            ),
        ]);
    }
    let json = serde_json::to_string(&Value::Obj(fields)).expect("daemon bench report serializes");
    serde_json::from_str_value(&json).expect("daemon bench JSON must parse back");
    std::fs::write(path, &json).expect("write daemon bench JSON");
    println!(
        "daemon bench record: in-process {in_process_ms:.1} ms, cold {daemon_cold_ms:.1} ms, \
         cached {daemon_cached_ms:.2} ms{} -> {path}",
        warm.map(|w| format!(
            ", warm re-verify {:.1} ms vs cold {:.1} ms",
            w.warm_ms, w.cold_ms
        ))
        .unwrap_or_default()
    );
}

/// Parses a `--seeds N` option with a default.
pub fn seeds_arg(args: &[String], default: usize) -> usize {
    arg_value(args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["prog", "--seeds", "12", "--x", "y"]);
        assert_eq!(arg_value(&a, "--x").as_deref(), Some("y"));
        assert_eq!(arg_value(&a, "--missing"), None);
        assert_eq!(seeds_arg(&a, 3), 12);
        assert_eq!(seeds_arg(&args(&["prog"]), 3), 3);
        assert_eq!(seeds_arg(&args(&["prog", "--seeds", "zz"]), 3), 3);
    }
}
