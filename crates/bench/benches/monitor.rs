//! PTE monitor throughput: checking traces with many risky intervals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pte_core::monitor::check_pte;
use pte_core::rules::{PairSpec, PteSpec};
use pte_hybrid::{LocId, Time};
use pte_sim::trace::{AutMeta, Trace, TraceEvent};

/// Builds a synthetic two-entity trace with `rounds` clean embeddings.
fn synthetic_trace(rounds: usize) -> Trace {
    let meta = vec![
        AutMeta {
            name: "outer".into(),
            loc_names: vec!["S".into(), "R".into()],
            risky: vec![false, true],
            var_names: vec![],
        },
        AutMeta {
            name: "inner".into(),
            loc_names: vec!["S".into(), "R".into()],
            risky: vec![false, true],
            var_names: vec![],
        },
    ];
    let mut events = vec![
        TraceEvent::Init {
            t: Time::ZERO,
            aut: 0,
            loc: LocId(0),
        },
        TraceEvent::Init {
            t: Time::ZERO,
            aut: 1,
            loc: LocId(0),
        },
    ];
    for k in 0..rounds {
        let base = k as f64 * 100.0;
        for (aut, enter, exit) in [(0usize, 10.0, 60.0), (1usize, 20.0, 50.0)] {
            events.push(TraceEvent::Transition {
                t: Time::seconds(base + enter),
                aut,
                from: LocId(0),
                to: LocId(1),
                trigger: None,
            });
            events.push(TraceEvent::Transition {
                t: Time::seconds(base + exit),
                aut,
                from: LocId(1),
                to: LocId(0),
                trigger: None,
            });
        }
    }
    events.sort_by_key(|a| a.time());
    Trace {
        meta,
        events,
        samples: vec![],
        end_time: Time::seconds(rounds as f64 * 100.0),
    }
}

fn bench_monitor(c: &mut Criterion) {
    let spec = PteSpec::uniform(
        vec!["outer".into(), "inner".into()],
        Time::seconds(60.0),
        vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
    );
    let mut group = c.benchmark_group("check_pte");
    for rounds in [10usize, 100, 1000] {
        let trace = synthetic_trace(rounds);
        group.throughput(Throughput::Elements(rounds as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &trace, |b, trace| {
            b.iter(|| {
                let report = check_pte(trace, &spec);
                assert!(report.is_safe());
                report
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
