//! Daemon dispatch latency: the same case-study safety proof measured
//! in-process, through `pte-verifyd` cold, and through the daemon's
//! report cache — quantifying what the service layer costs (socket +
//! JSON framing + scheduling) and what it buys (a cache hit skips the
//! zone search entirely).
//!
//! Besides the human-readable `bench:` lines, the run emits a
//! machine-readable `BENCH_daemon.json` (path overridable via the
//! `BENCH_DAEMON_JSON` env var) with the three latencies plus the
//! derived dispatch overhead and cache speedup — and, when the
//! chain-6 warm-start pass runs, the cold-vs-warm re-verification
//! latencies after a monitor-weakening delta (the persistent-cache
//! payoff: the parent proof transfers whole, no re-exploration).

use criterion::{criterion_group, criterion_main, Criterion};
use pte_bench::WarmBenchRow;
use pte_core::rules::PairSpec;
use pte_hybrid::Time;
use pte_server::client::Client;
use pte_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use pte_server::transport::Endpoint;
use pte_verify::{BackendSel, Verdict, VerificationRequest};
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

const SAMPLES: usize = 5;
/// The warm-start case: re-verifying the deep chain after a
/// monitor-weakening delta.
const WARM_SCENARIO: &str = "chain-6";
/// Warm samples are cheap (proof transfer, no search); cold ones each
/// re-run the full chain-6 proof, so fewer are taken.
const WARM_COLD_SAMPLES: usize = 2;

fn request() -> VerificationRequest {
    VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic)
}

/// Boots a daemon on a unique Unix socket; returns endpoint, handle,
/// and serving thread.
fn boot(
    cache_capacity: usize,
    cache_dir: Option<PathBuf>,
    tag: &str,
) -> (Endpoint, DaemonHandle, thread::JoinHandle<()>) {
    let endpoint = Endpoint::Unix(std::env::temp_dir().join(format!(
        "pte-verifyd-bench-{}-{tag}.sock",
        std::process::id()
    )));
    let daemon = Daemon::bind(&DaemonConfig {
        endpoint: endpoint.clone(),
        workers: 0,
        cache_capacity,
        cache_mem_bytes: 0,
        cache_dir,
        cache_disk_bytes: 0,
    })
    .expect("bind bench daemon");
    let handle = daemon.handle();
    let serving = thread::spawn(move || daemon.run().expect("bench daemon run"));
    (endpoint, handle, serving)
}

/// Best-of-N in-process latency — the floor the daemon adds overhead
/// to.
fn measure_in_process() -> f64 {
    let req = request();
    (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let report = req.run().expect("in-process run");
            assert_eq!(report.verdict, Verdict::Safe);
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Best-of-N cold submit→report latency (cache disabled, so every
/// submit runs the search).
fn measure_daemon_cold() -> f64 {
    let (endpoint, handle, serving) = boot(0, None, "cold");
    let mut client = Client::connect(&endpoint).expect("connect");
    let best = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let outcome = client.verify(&request()).expect("cold verify");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(!outcome.cached, "cache is disabled — every run is cold");
            assert_eq!(outcome.report.verdict, Verdict::Safe);
            ms
        })
        .fold(f64::INFINITY, f64::min);
    handle.shutdown();
    serving.join().expect("bench daemon thread");
    best
}

/// Best-of-N cached submit→report latency (one cold run populates the
/// entry, then every hit is a lookup).
fn measure_daemon_cached() -> f64 {
    let (endpoint, handle, serving) = boot(16, None, "cached");
    let mut client = Client::connect(&endpoint).expect("connect");
    let cold = client.verify(&request()).expect("populating verify");
    assert!(!cold.cached);
    let best = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let outcome = client.verify(&request()).expect("cached verify");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(outcome.cached, "repeat submits must hit the cache");
            assert_eq!(outcome.report.verdict, Verdict::Safe);
            ms
        })
        .fold(f64::INFINITY, f64::min);
    handle.shutdown();
    serving.join().expect("bench daemon thread");
    best
}

/// The incremental re-verification payoff: prove `chain-6` cold once
/// (populating the persistent cache), then re-verify a
/// monitor-weakened variant both cold and warm through the same
/// daemon. The warm run transfers the parent's whole passed list and
/// skips the zone search.
fn measure_daemon_warm() -> WarmBenchRow {
    let cache_dir =
        std::env::temp_dir().join(format!("pte-verifyd-bench-{}-warm", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let (endpoint, handle, serving) = boot(16, Some(cache_dir.clone()), "warm");
    let mut client = Client::connect(&endpoint).expect("connect");

    let scenario = pte_tracheotomy::registry::by_name(WARM_SCENARIO).expect("registry scenario");
    let parent_req = VerificationRequest::scenario(WARM_SCENARIO).backend(BackendSel::Symbolic);
    let parent = client.verify(&parent_req).expect("parent proof");
    assert_eq!(parent.report.verdict, Verdict::Safe);

    // The delta: same network, every safeguard pair weakened — the
    // canonical "timing slack grew" re-verification.
    let mut relaxed = scenario.config;
    relaxed.safeguards =
        vec![PairSpec::new(Time::seconds(0.5), Time::seconds(0.25)); relaxed.safeguards.len()];
    let child = VerificationRequest::config(relaxed)
        .max_states(scenario.recommended_budget)
        .backend(BackendSel::Symbolic);

    // `--no-cache` keeps every sample an actual run (the warm child
    // would otherwise be a report hit from its own first sample).
    let cold_ms = (0..WARM_COLD_SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let outcome = client.verify_with(&child, true).expect("cold re-verify");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(!outcome.cached);
            assert_eq!(outcome.report.verdict, Verdict::Safe);
            ms
        })
        .fold(f64::INFINITY, f64::min);

    let warm_req = child.clone().warm_from(parent.key.clone());
    let mut seeded_states = 0usize;
    let warm_ms = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let outcome = client.verify_with(&warm_req, true).expect("warm re-verify");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(!outcome.cached);
            assert_eq!(outcome.report.verdict, Verdict::Safe);
            seeded_states = outcome
                .report
                .backend("symbolic")
                .expect("symbolic ran")
                .warm_seeded;
            assert!(
                seeded_states > 0,
                "the warm submit must actually transfer the parent proof"
            );
            ms
        })
        .fold(f64::INFINITY, f64::min);

    handle.shutdown();
    serving.join().expect("bench daemon thread");
    let _ = std::fs::remove_dir_all(&cache_dir);
    WarmBenchRow {
        case: format!("{WARM_SCENARIO} safeguards relaxed"),
        cold_ms,
        warm_ms,
        seeded_states,
    }
}

fn bench_daemon_latency(_c: &mut Criterion) {
    let in_process_ms = measure_in_process();
    let daemon_cold_ms = measure_daemon_cold();
    let daemon_cached_ms = measure_daemon_cached();
    let warm = measure_daemon_warm();

    println!("bench: daemon/in_process                                 {in_process_ms:.1} ms");
    println!("bench: daemon/cold_submit                                {daemon_cold_ms:.1} ms");
    println!("bench: daemon/cached_submit                              {daemon_cached_ms:.2} ms");
    println!(
        "bench: daemon/warm_reverify_cold ({})        {:.1} ms",
        warm.case, warm.cold_ms
    );
    println!(
        "bench: daemon/warm_reverify_warm ({})        {:.1} ms ({} states transferred)",
        warm.case, warm.warm_ms, warm.seeded_states
    );

    // A cache hit skips the whole search: it must beat the cold path
    // outright (generously bounded so a loaded CI machine cannot flake
    // this).
    assert!(
        daemon_cached_ms < daemon_cold_ms,
        "cache hit ({daemon_cached_ms:.2} ms) must be faster than a cold run \
         ({daemon_cold_ms:.1} ms)"
    );
    // The warm-start contract from the roadmap: re-verifying the deep
    // chain after a slack-preserving delta is ≥5× faster than cold.
    assert!(
        warm.warm_ms * 5.0 <= warm.cold_ms,
        "warm re-verification ({:.1} ms) must be at least 5x faster than \
         cold ({:.1} ms)",
        warm.warm_ms,
        warm.cold_ms
    );

    let path =
        std::env::var("BENCH_DAEMON_JSON").unwrap_or_else(|_| "BENCH_daemon.json".to_string());
    pte_bench::write_daemon_bench_json(
        &path,
        in_process_ms,
        daemon_cold_ms,
        daemon_cached_ms,
        Some(&warm),
    );
}

criterion_group!(benches, bench_daemon_latency);
criterion_main!(benches);
