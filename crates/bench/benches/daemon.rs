//! Daemon dispatch latency: the same case-study safety proof measured
//! in-process, through `pte-verifyd` cold, and through the daemon's
//! report cache — quantifying what the service layer costs (socket +
//! JSON framing + scheduling) and what it buys (a cache hit skips the
//! zone search entirely).
//!
//! Besides the human-readable `bench:` lines, the run emits a
//! machine-readable `BENCH_daemon.json` (path overridable via the
//! `BENCH_DAEMON_JSON` env var) with the three latencies plus the
//! derived dispatch overhead and cache speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use pte_server::client::Client;
use pte_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use pte_server::transport::Endpoint;
use pte_verify::{BackendSel, Verdict, VerificationRequest};
use std::thread;
use std::time::Instant;

const SAMPLES: usize = 5;

fn request() -> VerificationRequest {
    VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic)
}

/// Boots a daemon on a unique Unix socket; returns endpoint, handle,
/// and serving thread.
fn boot(cache_capacity: usize, tag: &str) -> (Endpoint, DaemonHandle, thread::JoinHandle<()>) {
    let endpoint = Endpoint::Unix(std::env::temp_dir().join(format!(
        "pte-verifyd-bench-{}-{tag}.sock",
        std::process::id()
    )));
    let daemon = Daemon::bind(&DaemonConfig {
        endpoint: endpoint.clone(),
        workers: 0,
        cache_capacity,
    })
    .expect("bind bench daemon");
    let handle = daemon.handle();
    let serving = thread::spawn(move || daemon.run().expect("bench daemon run"));
    (endpoint, handle, serving)
}

/// Best-of-N in-process latency — the floor the daemon adds overhead
/// to.
fn measure_in_process() -> f64 {
    let req = request();
    (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let report = req.run().expect("in-process run");
            assert_eq!(report.verdict, Verdict::Safe);
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Best-of-N cold submit→report latency (cache disabled, so every
/// submit runs the search).
fn measure_daemon_cold() -> f64 {
    let (endpoint, handle, serving) = boot(0, "cold");
    let mut client = Client::connect(&endpoint).expect("connect");
    let best = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let outcome = client.verify(&request()).expect("cold verify");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(!outcome.cached, "cache is disabled — every run is cold");
            assert_eq!(outcome.report.verdict, Verdict::Safe);
            ms
        })
        .fold(f64::INFINITY, f64::min);
    handle.shutdown();
    serving.join().expect("bench daemon thread");
    best
}

/// Best-of-N cached submit→report latency (one cold run populates the
/// entry, then every hit is a lookup).
fn measure_daemon_cached() -> f64 {
    let (endpoint, handle, serving) = boot(16, "cached");
    let mut client = Client::connect(&endpoint).expect("connect");
    let cold = client.verify(&request()).expect("populating verify");
    assert!(!cold.cached);
    let best = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let outcome = client.verify(&request()).expect("cached verify");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(outcome.cached, "repeat submits must hit the cache");
            assert_eq!(outcome.report.verdict, Verdict::Safe);
            ms
        })
        .fold(f64::INFINITY, f64::min);
    handle.shutdown();
    serving.join().expect("bench daemon thread");
    best
}

fn bench_daemon_latency(_c: &mut Criterion) {
    let in_process_ms = measure_in_process();
    let daemon_cold_ms = measure_daemon_cold();
    let daemon_cached_ms = measure_daemon_cached();

    println!("bench: daemon/in_process                                 {in_process_ms:.1} ms");
    println!("bench: daemon/cold_submit                                {daemon_cold_ms:.1} ms");
    println!("bench: daemon/cached_submit                              {daemon_cached_ms:.2} ms");

    // A cache hit skips the whole search: it must beat the cold path
    // outright (generously bounded so a loaded CI machine cannot flake
    // this).
    assert!(
        daemon_cached_ms < daemon_cold_ms,
        "cache hit ({daemon_cached_ms:.2} ms) must be faster than a cold run \
         ({daemon_cold_ms:.1} ms)"
    );

    let path =
        std::env::var("BENCH_DAEMON_JSON").unwrap_or_else(|_| "BENCH_daemon.json".to_string());
    pte_bench::write_daemon_bench_json(&path, in_process_ms, daemon_cold_ms, daemon_cached_ms);
}

criterion_group!(benches, bench_daemon_latency);
criterion_main!(benches);
