//! Elaboration cost: building the case-study ventilator (pattern
//! elaborated with the plant) and parallel elaborations at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pte_core::pattern::LeaseConfig;
use pte_hybrid::automaton::VarKind;
use pte_hybrid::elaboration::elaborate_parallel;
use pte_hybrid::{Expr, HybridAutomaton, Pred};
use pte_tracheotomy::ventilator::ventilator;

/// A simple child automaton with `k` locations in a cycle.
fn child(name: &str, var: &str, evt: &str, k: usize) -> HybridAutomaton {
    let mut b = HybridAutomaton::builder(name);
    let x = b.var(var, VarKind::Continuous, 0.0);
    let inv = Pred::ge(Expr::var(x), Expr::c(-1.0));
    let locs: Vec<_> = (0..k).map(|i| b.location(format!("{name}-L{i}"))).collect();
    for (i, l) in locs.iter().enumerate() {
        b.invariant(*l, inv.clone());
        let next = locs[(i + 1) % k];
        b.edge(*l, next).on(format!("{evt}{i}")).done();
    }
    b.initial(locs[0], None);
    b.build().expect("child builds")
}

fn bench_case_study_elaboration(c: &mut Criterion) {
    let cfg = LeaseConfig::case_study();
    c.bench_function("elaborate_ventilator", |b| {
        b.iter(|| ventilator(&cfg).expect("builds"))
    });
}

fn bench_parallel_elaboration(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_elaboration");
    for child_size in [2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(child_size),
            &child_size,
            |b, &k| {
                // Host with two elaborable locations.
                let mut hb = HybridAutomaton::builder("host");
                let _h = hb.var("h", VarKind::Continuous, 0.0);
                let a = hb.location("A");
                let r = hb.risky_location("B");
                hb.edge(a, r).on_lossy("go").done();
                hb.edge(r, a).on_lossy("back").done();
                hb.initial(a, None);
                let host = hb.build().expect("host builds");
                let c1 = child("c1", "x1", "e1_", k);
                let c2 = child("c2", "x2", "e2_", k);
                b.iter(|| {
                    elaborate_parallel(&host, &[("A", &c1), ("B", &c2)]).expect("elaborates")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_case_study_elaboration,
    bench_parallel_elaboration
);
criterion_main!(benches);
