//! Executor throughput: simulated seconds per wall-clock second on the
//! full case-study system (4 automata, wireless star, interference,
//! surgeon driver) and on the bare pattern system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_hybrid::Time;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_tracheotomy::emulation::{run_trial, LossEnvironment, TrialConfig};
use pte_tracheotomy::surgeon::Surgeon;

fn bench_case_study_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("case_study_trial");
    for secs in [60u64, 300] {
        group.throughput(Throughput::Elements(secs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{secs}s")),
            &secs,
            |b, &secs| {
                b.iter(|| {
                    let trial = TrialConfig {
                        duration: Time::seconds(secs as f64),
                        mean_on: Time::seconds(20.0),
                        mean_off: Some(Time::seconds(10.0)),
                        leased: true,
                        loss: LossEnvironment::WifiInterference,
                        seed: 7,
                    };
                    run_trial(&trial).expect("trial executes")
                });
            },
        );
    }
    group.finish();
}

fn bench_pattern_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_system_300s");
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = synth_config(n);
            b.iter(|| {
                let sys = build_pattern_system(&cfg, true).expect("builds");
                let mut exec =
                    Executor::new(sys.automata, ExecutorConfig::default()).expect("executor");
                exec.add_driver(Box::new(Surgeon::new(
                    "initializer",
                    Time::seconds(20.0),
                    Some(Time::seconds(5.0)),
                    3,
                )));
                exec.run_until(Time::seconds(300.0)).expect("runs")
            });
        });
    }
    group.finish();
}

fn synth_config(n: usize) -> LeaseConfig {
    use pte_core::rules::PairSpec;
    use pte_core::synthesis::{synthesize, SynthesisRequest};
    synthesize(&SynthesisRequest {
        n,
        safeguards: (0..n - 1)
            .map(|_| PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)))
            .collect(),
        rule1_bound: Time::seconds(100_000.0),
        min_run_initializer: Time::seconds(10.0),
        t_wait: Time::seconds(1.0),
        margin: Time::seconds(0.25),
    })
    .expect("synthesis succeeds")
}

criterion_group!(benches, bench_case_study_trial, bench_pattern_system);
criterion_main!(benches);
