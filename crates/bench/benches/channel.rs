//! Channel model throughput: loss decisions per second for each model,
//! plus the CRC32 packet path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pte_hybrid::Time;
use pte_wireless::loss::{BernoulliLoss, BitError, GilbertElliott, Interferer, LossModel};
use pte_wireless::packet::{crc32, Packet};

fn bench_loss_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss_models");
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("bernoulli", |b| {
        let mut m = BernoulliLoss::new(0.2, 1);
        b.iter(|| {
            let mut lost = 0u32;
            for k in 0..10_000 {
                lost += m.is_lost(Time::millis(k as f64)) as u32;
            }
            lost
        });
    });
    group.bench_function("gilbert_elliott", |b| {
        let mut m = GilbertElliott::new(0.05, 0.2, 0.01, 0.8, 1);
        b.iter(|| {
            let mut lost = 0u32;
            for k in 0..10_000 {
                lost += m.is_lost(Time::millis(k as f64)) as u32;
            }
            lost
        });
    });
    group.bench_function("interferer", |b| {
        let mut m = Interferer::paper_conditions(1);
        b.iter(|| {
            let mut lost = 0u32;
            for k in 0..10_000 {
                lost += m.is_lost(Time::millis(k as f64)) as u32;
            }
            lost
        });
    });
    group.bench_function("bit_error", |b| {
        let mut m = BitError::new(1e-4, 24, 1);
        b.iter(|| {
            let mut lost = 0u32;
            for k in 0..10_000 {
                lost += m.is_lost(Time::millis(k as f64)) as u32;
            }
            lost
        });
    });
    group.finish();
}

fn bench_packet_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet");
    let p = Packet::event(1, 0, 42, "evt_xi1_to_xi0_lease_approve");
    let frame = p.encode();
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode", |b| b.iter(|| p.encode()));
    group.bench_function("verify", |b| b.iter(|| Packet::verify(&frame)));
    group.bench_function("decode", |b| b.iter(|| Packet::decode(&frame).unwrap()));
    group.bench_function("crc32_1k", |b| {
        let data = vec![0xA5u8; 1024];
        b.iter(|| crc32(&data))
    });
    group.finish();
}

criterion_group!(benches, bench_loss_models, bench_packet_path);
criterion_main!(benches);
