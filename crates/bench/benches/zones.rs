//! Benchmarks of the symbolic zone engine: raw DBM throughput,
//! end-to-end verdict latency on the case-study pattern, the parallel
//! worker-count scaling of the sharded engine, the ExtraM-vs-LU
//! extrapolation comparison, the passed-list compression factor, and
//! the compositional assume-guarantee rows for the chain-12/16/20
//! fleets the monolithic engine cannot close within the registry
//! budget.
//!
//! Besides the human-readable `bench:` lines, the run emits a
//! machine-readable `BENCH_zones.json` (path overridable via the
//! `BENCH_ZONES_JSON` env var) with wall time, settled states,
//! states/sec, and peak passed-list bytes, so CI tracks the perf
//! trajectory instead of an empty folder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pte_core::pattern::LeaseConfig;
use pte_zones::dbm::{Bound, Dbm};
use pte_zones::reach::check_monitored;
use pte_zones::{
    check_lease_pattern_with, demo_fleet, lower_network, Extrapolation, Limits,
    LocationReachMonitor, SymbolicVerdict,
};
use std::time::Instant;

fn case_limits() -> Limits {
    Limits {
        max_states: 60_000,
        ..Limits::default()
    }
}

/// Canonicalization cost on a representative matrix (the engine's inner
/// loop: every successor zone is re-closed).
fn bench_dbm_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbm");
    for clocks in [4usize, 8, 16] {
        // A non-trivial zone: staggered resets and bounds.
        let mut base = Dbm::zero(clocks);
        for x in 1..=clocks {
            base.up();
            base.reset(x, x as i64);
            base.constrain(x, 0, Bound::le(40 + x as i64));
        }
        base.canonicalize();
        group.throughput(Throughput::Elements(((clocks + 1) * (clocks + 1)) as u64));
        group.bench_with_input(BenchmarkId::new("canonicalize", clocks), &base, |b, z| {
            b.iter(|| {
                let mut m = z.clone();
                m.up();
                m.constrain(1, 0, Bound::le(35));
                m.canonicalize();
                m.is_empty()
            })
        });
    }
    group.finish();
}

/// Lowering the full case-study pattern network to timed automata.
fn bench_lowering(c: &mut Criterion) {
    let sys = pte_core::pattern::build_pattern_system(&LeaseConfig::case_study(), true).unwrap();
    c.bench_function("lower/case_study", |b| {
        b.iter(|| lower_network(&sys.automata).unwrap().clock_count())
    });
}

/// End-to-end symbolic verdicts: the full safety proof of the leased
/// system and the (much faster) falsification of the baseline.
fn bench_symbolic_verdicts(c: &mut Criterion) {
    let cfg = LeaseConfig::case_study();
    let limits = case_limits();
    let mut group = c.benchmark_group("symbolic");
    group.bench_function("prove_leased_safe", |b| {
        b.iter(|| {
            assert!(check_lease_pattern_with(&cfg, true, &limits)
                .unwrap()
                .is_safe())
        })
    });
    group.bench_function("falsify_unleased", |b| {
        b.iter(|| {
            assert!(check_lease_pattern_with(&cfg, false, &limits)
                .unwrap()
                .is_unsafe())
        })
    });
    group.finish();
}

/// Worker-count scaling of the sharded parallel engine on the leased
/// safety proof. Verdicts are asserted identical across counts (the
/// engine's determinism guarantee), so these rows differ only in
/// wall-clock time.
fn bench_parallel_workers(c: &mut Criterion) {
    let cfg = LeaseConfig::case_study();
    let mut group = c.benchmark_group("symbolic_workers");
    for workers in [1usize, 2, 4, 8] {
        let limits = Limits {
            max_workers: workers,
            ..case_limits()
        };
        group.bench_with_input(
            BenchmarkId::new("prove_leased_safe", workers),
            &limits,
            |b, limits| {
                b.iter(|| {
                    assert!(check_lease_pattern_with(&cfg, true, limits)
                        .unwrap()
                        .is_safe())
                })
            },
        );
    }
    group.finish();
}

/// ExtraM vs ExtraLU on the leased safety proof: LU is a coarser sound
/// abstraction, so it must settle no more states — and on this
/// configuration strictly fewer (asserted, so the claim can't bit-rot).
fn bench_extrapolation(c: &mut Criterion) {
    let cfg = LeaseConfig::case_study();
    let settled = |extrapolation: Extrapolation| -> usize {
        let limits = Limits {
            extrapolation,
            ..case_limits()
        };
        let verdict = check_lease_pattern_with(&cfg, true, &limits).unwrap();
        assert!(verdict.is_safe());
        verdict.stats().expect("safe verdict carries stats").states
    };
    let m_states = settled(Extrapolation::ExtraM);
    let lu_states = settled(Extrapolation::ExtraLu);
    assert!(
        lu_states < m_states,
        "ExtraLU must settle strictly fewer states than ExtraM \
         on the case study (LU {lu_states} vs M {m_states})"
    );
    println!("bench: symbolic_extrapolation/settled_states          ExtraM {m_states}, ExtraLU {lu_states}");

    let mut group = c.benchmark_group("symbolic_extrapolation");
    for (name, extrapolation) in [
        ("extra_m", Extrapolation::ExtraM),
        ("extra_lu", Extrapolation::ExtraLu),
    ] {
        let limits = Limits {
            extrapolation,
            ..case_limits()
        };
        group.bench_with_input(
            BenchmarkId::new("prove_leased_safe", name),
            &limits,
            |b, limits| {
                b.iter(|| {
                    assert!(check_lease_pattern_with(&cfg, true, limits)
                        .unwrap()
                        .is_safe())
                })
            },
        );
    }
    group.finish();
}

/// Passed-list compression: the engine stores settled zones in minimal
/// constraint form; the full-matrix footprint it replaces is tracked
/// alongside, and the ratio is asserted ≥ 2× so the compression claim
/// can't bit-rot (the measured factor on the case study is far higher —
/// printed below and recorded in `BENCH_zones.json`).
fn bench_passed_compression(_c: &mut Criterion) {
    let cfg = LeaseConfig::case_study();
    let verdict = check_lease_pattern_with(&cfg, true, &case_limits()).unwrap();
    let stats = verdict.stats().expect("safe verdict carries stats");
    assert!(stats.peak_passed_bytes > 0, "peak bytes must be reported");
    assert!(
        stats.peak_passed_bytes_full >= 2 * stats.peak_passed_bytes,
        "minimal constraint form must at least halve passed-list memory \
         (minimal {} vs full-matrix {})",
        stats.peak_passed_bytes,
        stats.peak_passed_bytes_full
    );
    println!(
        "bench: symbolic_memory/passed_list                       minimal {} B vs full {} B ({:.1}x)",
        stats.peak_passed_bytes,
        stats.peak_passed_bytes_full,
        stats.peak_passed_bytes_full as f64 / stats.peak_passed_bytes as f64
    );
}

/// N-entity chain scaling: settled states and states/sec of the leased
/// safety proof for `chain-2` … `chain-8` (the registry's scalable
/// scenario family), run with the default engine — static analysis on,
/// so the rows track what `check` actually does. The unreduced
/// trajectory (≈ 57k states at `chain-4`, ≈ 477k at `chain-6`) is
/// recorded separately by [`reduction_rows`]. The measured rows are
/// printed and carried into `BENCH_zones.json` by [`emit_bench_json`];
/// the bench gate requires the `chain-8` row, so a regression that
/// makes the deep chain infeasible fails CI instead of dropping a row.
fn chain_scaling_rows() -> Vec<pte_bench::ScalingRow> {
    let mut rows = Vec::new();
    for n in 2..=8usize {
        let cfg = LeaseConfig::chain(n);
        // Real headroom over the explored set: a small future shift
        // must not turn this row into an OutOfBudget panic. Deep chains
        // need the registry-scale budget.
        let limits = Limits {
            max_states: if n >= 6 { 1_000_000 } else { 120_000 },
            ..case_limits()
        };
        let t = Instant::now();
        let verdict = check_lease_pattern_with(&cfg, true, &limits).unwrap();
        let secs = t.elapsed().as_secs_f64();
        let SymbolicVerdict::Safe(stats) = verdict else {
            panic!("chain-{n} leased must be safe");
        };
        println!(
            "bench: symbolic_scaling/chain-{n}                          {} states, {:.0} ms, {:.0} states/s",
            stats.states,
            secs * 1e3,
            stats.states as f64 / secs
        );
        rows.push(pte_bench::ScalingRow {
            scenario: format!("chain-{n}"),
            n,
            states: stats.states,
            secs: Some(secs),
        });
    }
    // Zone graphs must grow strictly with N, or the scenarios are not
    // actually exercising scale.
    assert!(rows.windows(2).all(|w| w[0].states < w[1].states));
    rows
}

/// Reduced-vs-unreduced ablation: the chain-4 and chain-6 leased
/// safety proofs run with the static analysis pass on
/// (`Limits::reduce_clocks = true`, the default) and off. Chains are
/// globally clock-irreducible — every clock is live during the
/// innermost nested lease, so the DBM dimension is identical across
/// arms — but the per-location activity masks collapse the idle-device
/// interleavings, and the states/sec improvement is asserted so the
/// payoff can't silently bit-rot. One run per arm: the unreduced
/// chain-6 proof settles ≈ 477k states, far too slow for best-of-5.
fn reduction_rows() -> Vec<pte_bench::ReductionRow> {
    let mut rows = Vec::new();
    for n in [4usize, 6] {
        let cfg = LeaseConfig::chain(n);
        let arm = |reduce: bool| -> (usize, usize, f64, f64) {
            let limits = Limits {
                max_states: 600_000,
                reduce_clocks: reduce,
                ..Limits::default()
            };
            let t = Instant::now();
            let verdict = check_lease_pattern_with(&cfg, true, &limits).unwrap();
            let secs = t.elapsed().as_secs_f64();
            let SymbolicVerdict::Safe(stats) = verdict else {
                panic!("chain-{n} leased must be safe (reduce={reduce})");
            };
            (
                stats.dbm_clocks,
                stats.states,
                secs,
                stats.states as f64 / secs,
            )
        };
        let (clocks_r, states_r, secs_r, rate_r) = arm(true);
        let (clocks_u, states_u, secs_u, rate_u) = arm(false);
        println!(
            "bench: symbolic_reduction/chain-{n}                        \
             reduced {clocks_r} clocks / {states_r} states / {:.0} ms vs \
             unreduced {clocks_u} clocks / {states_u} states / {:.0} ms",
            secs_r * 1e3,
            secs_u * 1e3,
        );
        assert!(
            secs_r < secs_u && rate_r > rate_u,
            "the analysis pass must speed chain-{n} up \
             (reduced {:.0} ms vs unreduced {:.0} ms)",
            secs_r * 1e3,
            secs_u * 1e3
        );
        rows.push(pte_bench::ReductionRow {
            scenario: format!("chain-{n}"),
            clocks_reduced: clocks_r,
            clocks_unreduced: clocks_u,
            reduced: (states_r, secs_r, rate_r),
            unreduced: (states_u, secs_u, rate_u),
        });
    }
    rows
}

/// Compositional-scale rows: chain-12/16/20 proved Safe through the
/// assume-guarantee argument (per-device refinement against the
/// `lease_client` contract library, then N−1 abstract pair networks)
/// at the registry's 40k budget — the budget the monolithic engine
/// trips at chain-12 (≈ 67k+ states). Each verdict is asserted Safe
/// and asserted to have stayed on the compositional path (zero
/// fallback), so a refinement regression that silently rerouted these
/// rows through the monolithic engine would fail the bench instead of
/// recording a meaningless timing. One run per row: chain-20 takes
/// several seconds end to end.
fn compositional_rows() -> Vec<pte_bench::CompositionalRow> {
    use pte_contracts::{
        check_compositional, CompositionalLimits, CompositionalVerdict, EnvProfile, RefineLimits,
    };
    let mut rows = Vec::new();
    for n in [12usize, 16, 20] {
        let cfg = LeaseConfig::chain(n);
        let limits = CompositionalLimits {
            search: Limits {
                max_states: 40_000,
                ..Limits::default()
            },
            refine: RefineLimits {
                workers: 2,
                ..RefineLimits::default()
            },
        };
        let t = Instant::now();
        let out = check_compositional(&cfg, true, EnvProfile::default(), &limits).unwrap();
        let secs = t.elapsed().as_secs_f64();
        assert!(
            matches!(out.verdict, CompositionalVerdict::Safe),
            "chain-{n} must close compositionally, got {:?}",
            out.verdict
        );
        println!(
            "bench: compositional/chain-{n}                             \
             {} abstract states, {} pair nets, {:.0} ms",
            out.stats.abstract_states,
            out.stats.pair_networks,
            secs * 1e3,
        );
        rows.push(pte_bench::CompositionalRow {
            scenario: format!("chain-{n}"),
            n,
            abstract_states: out.stats.abstract_states,
            pair_networks: out.stats.pair_networks,
            refine_pairs: out.stats.refine_pairs,
            secs,
        });
    }
    rows
}

/// Symmetry-quotient ablation on the structurally symmetric demo
/// fleet (the lease chains are asymmetric, so the quotient
/// self-disables there — measuring it on a chain would record a no-op).
/// Each row is a full fleet exploration with the orbit quotient on and
/// off: fleet-3 sequentially, fleet-4 at 4 workers (its unquotiented
/// arm settles ≈ 130k states — the expensive run that motivates the
/// quotient). The ≥ 5× state reduction is asserted per row so the
/// acceptance number can't silently bit-rot, and one run per arm:
/// the unquotiented fleet-4 exploration is far too slow for best-of-5.
fn symmetry_rows() -> Vec<pte_bench::SymmetryRow> {
    let mut rows = Vec::new();
    for (devices, workers) in [(3usize, 1usize), (4, 4)] {
        let arm = |symmetry: bool| -> (usize, f64, f64, usize) {
            let limits = Limits {
                max_states: 400_000,
                max_workers: workers,
                symmetry,
                ..Limits::default()
            };
            let net = demo_fleet(devices);
            let monitor = LocationReachMonitor::new(&net, &[]).unwrap();
            let t = Instant::now();
            let verdict = check_monitored(&net, &monitor, &limits).unwrap();
            let secs = t.elapsed().as_secs_f64();
            let SymbolicVerdict::Safe(stats) = verdict else {
                panic!("fleet-{devices} exploration must settle (symmetry={symmetry})");
            };
            (stats.states, secs, stats.states as f64 / secs, stats.orbits)
        };
        let (states_q, secs_q, rate_q, orbits) = arm(true);
        let (states_f, secs_f, rate_f, _) = arm(false);
        println!(
            "bench: symbolic_symmetry/fleet-{devices}                          \
             quotient {states_q} states / {:.0} ms vs full {states_f} states / {:.0} ms \
             ({:.1}x states, {orbits} orbits folded)",
            secs_q * 1e3,
            secs_f * 1e3,
            states_f as f64 / states_q.max(1) as f64,
        );
        assert!(
            states_q * 5 <= states_f,
            "the quotient must shrink fleet-{devices} by ≥ 5× \
             (quotient {states_q} vs full {states_f})"
        );
        assert!(orbits > 0, "the quotient must engage on the fleet");
        rows.push(pte_bench::SymmetryRow {
            model: format!("fleet-{devices}"),
            quotient: (states_q, secs_q, rate_q),
            full: (states_f, secs_f, rate_f),
            orbits,
        });
    }
    rows
}

/// Emits `BENCH_zones.json`: best-of-5 wall time of the leased
/// case-study proof (plus the baseline falsification), settled states,
/// states/sec, the passed-list byte accounting, the chain scaling
/// rows, the reduced-vs-unreduced ablation rows, and the
/// symmetry-quotient rows.
fn emit_bench_json(_c: &mut Criterion) {
    let cfg = LeaseConfig::case_study();
    let limits = case_limits();

    let mut proof_secs = f64::INFINITY;
    let mut stats = None;
    for _ in 0..5 {
        let t = Instant::now();
        let verdict = check_lease_pattern_with(&cfg, true, &limits).unwrap();
        let secs = t.elapsed().as_secs_f64();
        let SymbolicVerdict::Safe(s) = verdict else {
            panic!("leased case study must be safe");
        };
        proof_secs = proof_secs.min(secs);
        stats = Some(s);
    }
    let stats = stats.expect("at least one proof run");

    let mut falsify_secs = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        assert!(check_lease_pattern_with(&cfg, false, &limits)
            .unwrap()
            .is_unsafe());
        falsify_secs = falsify_secs.min(t.elapsed().as_secs_f64());
    }

    let scaling = chain_scaling_rows();
    let reduction = reduction_rows();
    let symmetry = symmetry_rows();
    let compositional = compositional_rows();
    let path = std::env::var("BENCH_ZONES_JSON").unwrap_or_else(|_| "BENCH_zones.json".to_string());
    pte_bench::write_zones_bench_json(
        &path,
        proof_secs,
        Some(falsify_secs),
        &stats,
        &limits,
        &scaling,
        &reduction,
        &symmetry,
        &compositional,
    );
}

criterion_group!(
    benches,
    bench_dbm_ops,
    bench_lowering,
    bench_symbolic_verdicts,
    bench_parallel_workers,
    bench_extrapolation,
    bench_passed_compression,
    emit_bench_json
);
criterion_main!(benches);
