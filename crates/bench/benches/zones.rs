//! Benchmarks of the symbolic zone engine: raw DBM throughput and
//! end-to-end verdict latency on the case-study pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pte_core::pattern::LeaseConfig;
use pte_zones::dbm::{Bound, Dbm};
use pte_zones::{check_lease_pattern_with, lower_network, Limits};

/// Canonicalization cost on a representative matrix (the engine's inner
/// loop: every successor zone is re-closed).
fn bench_dbm_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbm");
    for clocks in [4usize, 8, 16] {
        // A non-trivial zone: staggered resets and bounds.
        let mut base = Dbm::zero(clocks);
        for x in 1..=clocks {
            base.up();
            base.reset(x, x as i64);
            base.constrain(x, 0, Bound::le(40 + x as i64));
        }
        base.canonicalize();
        group.throughput(Throughput::Elements(((clocks + 1) * (clocks + 1)) as u64));
        group.bench_with_input(BenchmarkId::new("canonicalize", clocks), &base, |b, z| {
            b.iter(|| {
                let mut m = z.clone();
                m.up();
                m.constrain(1, 0, Bound::le(35));
                m.canonicalize();
                m.is_empty()
            })
        });
    }
    group.finish();
}

/// Lowering the full case-study pattern network to timed automata.
fn bench_lowering(c: &mut Criterion) {
    let sys = pte_core::pattern::build_pattern_system(&LeaseConfig::case_study(), true).unwrap();
    c.bench_function("lower/case_study", |b| {
        b.iter(|| lower_network(&sys.automata).unwrap().clock_count())
    });
}

/// End-to-end symbolic verdicts: the full safety proof of the leased
/// system and the (much faster) falsification of the baseline.
fn bench_symbolic_verdicts(c: &mut Criterion) {
    let cfg = LeaseConfig::case_study();
    let limits = Limits { max_states: 60_000 };
    let mut group = c.benchmark_group("symbolic");
    group.bench_function("prove_leased_safe", |b| {
        b.iter(|| {
            assert!(check_lease_pattern_with(&cfg, true, &limits)
                .unwrap()
                .is_safe())
        })
    });
    group.bench_function("falsify_unleased", |b| {
        b.iter(|| {
            assert!(check_lease_pattern_with(&cfg, false, &limits)
                .unwrap()
                .is_unsafe())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dbm_ops,
    bench_lowering,
    bench_symbolic_verdicts
);
criterion_main!(benches);
