//! Parameter synthesis and condition-checking cost vs chain length N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pte_core::pattern::check_conditions;
use pte_core::rules::PairSpec;
use pte_core::synthesis::{synthesize, SynthesisRequest};
use pte_hybrid::Time;

fn request(n: usize) -> SynthesisRequest {
    SynthesisRequest {
        n,
        safeguards: (0..n - 1)
            .map(|_| PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)))
            .collect(),
        rule1_bound: Time::seconds(1e9),
        min_run_initializer: Time::seconds(10.0),
        t_wait: Time::seconds(1.0),
        margin: Time::seconds(0.25),
    }
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    for n in [2usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let req = request(n);
            b.iter(|| synthesize(&req).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_conditions(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_conditions");
    for n in [2usize, 8, 32] {
        let cfg = synthesize(&request(n)).expect("feasible");
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| {
                let report = check_conditions(cfg);
                assert!(report.is_satisfied());
                report
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_conditions);
criterion_main!(benches);
