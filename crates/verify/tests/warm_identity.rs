//! Warm-start soundness at the API front door: for registry scenarios,
//! a warm-started re-verification reaches the **same verdict and the
//! same counter-example text** as a cold run — at every worker count.
//! The fast core (N ≤ 4, both arms, workers 1/2/4/8) runs in tier-1;
//! the full registry matrix at recommended budgets is `#[ignore]`d
//! (campaign-scale: `chain-5`/`chain-6` are 25 s / 170 s release-mode
//! proofs) and run with `cargo test --release -- --ignored`.
//!
//! The engine's warm gates are pinned in
//! `crates/zones/tests/warm_start.rs`; this file pins what the *API*
//! promises schedulers: `run_with_artifacts` never lets an artifact —
//! fresh, stale, or foreign — flip a verdict or change a witness.

use pte_tracheotomy::registry;
use pte_verify::{
    new_sink, ArtifactIo, BackendSel, CancelToken, PassedArtifact, Verdict, VerificationReport,
    VerificationRequest,
};
use std::sync::Arc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A symbolic request for one scenario arm at one worker count.
fn request(scenario: &str, leased: bool, workers: usize, max_states: usize) -> VerificationRequest {
    VerificationRequest::scenario(scenario)
        .leased(leased)
        .backend(BackendSel::Symbolic)
        .max_states(max_states)
        .workers(workers)
}

/// Runs `req` with artifact plumbing; panics on API errors (every
/// scenario here resolves).
fn run(req: &VerificationRequest, io: &ArtifactIo) -> VerificationReport {
    req.run_with_artifacts(&CancelToken::new(), None, None, io)
        .expect("registry scenario resolves")
}

fn warm_seeded(report: &VerificationReport) -> usize {
    report
        .backend("symbolic")
        .expect("symbolic ran")
        .warm_seeded
}

/// The cold-vs-warm contract on one scenario arm: cold runs agree
/// bit-for-bit across worker counts, the warm runs (seeded with the
/// cold proof, when there is one) agree with the cold verdict and
/// witness at every worker count, and a `warm_start(false)` opt-out
/// runs cold even with an artifact in hand.
fn assert_identity(scenario: &str, leased: bool, max_states: usize) {
    // Cold reference (one worker) with capture.
    let sink = new_sink();
    let io = ArtifactIo {
        warm: None,
        capture: Some(sink.clone()),
    };
    let reference = run(&request(scenario, leased, 1, max_states), &io);
    let ref_stats = reference.backend("symbolic").expect("symbolic ran");
    let artifact = sink.lock().take();
    assert_eq!(
        artifact.is_some(),
        reference.verdict == Verdict::Safe,
        "{scenario} (leased={leased}): exactly the Safe runs capture artifacts"
    );

    for w in WORKER_COUNTS {
        let cold = run(
            &request(scenario, leased, w, max_states),
            &ArtifactIo::default(),
        );
        assert_eq!(
            cold.verdict, reference.verdict,
            "{scenario} (leased={leased}, workers={w}): cold verdict drifted"
        );
        assert_eq!(
            cold.witness, reference.witness,
            "{scenario} (leased={leased}, workers={w}): cold witness drifted"
        );
        assert_eq!(
            cold.backend("symbolic").unwrap().rendered,
            ref_stats.rendered,
            "{scenario} (leased={leased}, workers={w}): cold rendering drifted"
        );
        assert_eq!(warm_seeded(&cold), 0);
    }

    let Some(artifact) = artifact else {
        return;
    };
    let artifact = Arc::new(artifact);
    let mut warm_rendered: Option<String> = None;
    for w in WORKER_COUNTS {
        let io = ArtifactIo {
            warm: Some(artifact.clone()),
            capture: None,
        };
        let warm = run(&request(scenario, leased, w, max_states), &io);
        assert_eq!(
            warm.verdict, reference.verdict,
            "{scenario} (leased={leased}, workers={w}): warm verdict drifted"
        );
        assert_eq!(
            warm.witness, reference.witness,
            "{scenario} (leased={leased}, workers={w}): warm witness drifted"
        );
        assert_eq!(
            warm_seeded(&warm),
            ref_stats.states,
            "{scenario} (leased={leased}, workers={w}): full proof transfer expected"
        );
        // Warm runs render deterministically too (the transferred
        // proof's state count; no transitions are re-fired).
        let rendered = warm.backend("symbolic").unwrap().rendered.clone();
        if let Some(first) = &warm_rendered {
            assert_eq!(&rendered, first);
        } else {
            warm_rendered = Some(rendered);
        }
    }

    // The opt-out knob forces a cold run even with an artifact in hand.
    let io = ArtifactIo {
        warm: Some(artifact),
        capture: None,
    };
    let opted_out = run(
        &request(scenario, leased, 2, max_states).warm_start(false),
        &io,
    );
    assert_eq!(opted_out.verdict, reference.verdict);
    assert_eq!(
        warm_seeded(&opted_out),
        0,
        "warm_start(false) must run cold"
    );
}

/// Tier-1 core: every fast registry scenario (N ≤ 4 — `chain-5`+ are
/// campaign-scale), both arms, workers 1/2/4/8.
#[test]
fn fast_registry_cold_and_warm_runs_are_bit_identical() {
    for s in registry::registry() {
        if s.n > 4 {
            continue;
        }
        for leased in [true, false] {
            assert_identity(&s.name, leased, 80_000);
        }
    }
}

/// The full matrix at recommended budgets — release-mode / campaign
/// territory, kept out of tier-1 wall time.
#[test]
#[ignore = "campaign-scale: run with --release -- --ignored"]
fn full_registry_cold_and_warm_runs_are_bit_identical() {
    for s in registry::registry() {
        for leased in [true, false] {
            assert_identity(&s.name, leased, s.recommended_budget);
        }
    }
}

/// SplitMix64 — the workspace's dependency-free generative-test
/// scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generative sweep: random *weakening* safeguard perturbations of the
/// lease chain warm-start from the unperturbed proof at a random
/// worker count, and every verdict matches the corresponding cold run.
/// (Weakenings only — strengthened monitors are pinned to fall back to
/// cold in `crates/zones/tests/warm_start.rs`.)
#[test]
fn random_weakenings_warm_start_and_agree_with_cold() {
    use pte_core::pattern::LeaseConfig;
    use pte_core::rules::PairSpec;
    use pte_hybrid::Time;

    for seed in 0..12u64 {
        let mut state = splitmix64(seed ^ 0x5EED_CAFE);
        let mut draw = |bound: u64| {
            state = splitmix64(state);
            state % bound
        };
        let n = 2 + (draw(2) as usize); // chain-2 or chain-3
        let base = LeaseConfig::chain(n);

        // Capture the parent proof cold.
        let sink = new_sink();
        let io = ArtifactIo {
            warm: None,
            capture: Some(sink.clone()),
        };
        let parent = run(
            &VerificationRequest::config(base.clone()).backend(BackendSel::Symbolic),
            &io,
        );
        assert_eq!(parent.verdict, Verdict::Safe);
        let states = parent.backend("symbolic").unwrap().states;
        let artifact: Arc<PassedArtifact> = Arc::new(sink.lock().take().expect("Safe captures"));

        // Chain safeguards are (1.0 s, 0.5 s); any microsecond-exact
        // pair at or below that only weakens the monitored property.
        let mut relaxed = base.clone();
        relaxed.safeguards = (0..n - 1)
            .map(|_| {
                let risky_ms = 1 + draw(1000); // ≤ 1.0 s
                let safe_ms = 1 + draw(500); // ≤ 0.5 s
                PairSpec::new(
                    Time::seconds(risky_ms as f64 / 1000.0),
                    Time::seconds(safe_ms as f64 / 1000.0),
                )
            })
            .collect();
        let workers = WORKER_COUNTS[draw(4) as usize];
        let req = VerificationRequest::config(relaxed)
            .backend(BackendSel::Symbolic)
            .workers(workers);

        let cold = run(&req, &ArtifactIo::default());
        let warm = run(
            &req,
            &ArtifactIo {
                warm: Some(artifact),
                capture: None,
            },
        );
        assert_eq!(warm.verdict, cold.verdict, "seed {seed}");
        assert_eq!(warm.witness, cold.witness, "seed {seed}");
        assert_eq!(
            warm_seeded(&warm),
            states,
            "seed {seed}: a weakening must transfer the whole proof"
        );
    }
}
