//! Serde round-trip gates for [`VerificationReport`] — the artifact
//! `pte-verifyd` ships over the wire and stores in its report cache.
//! A report that does not survive serialization byte-for-byte would
//! silently corrupt both, so every variant of the verdict lattice
//! (each [`Inconclusive`] reason included) and witness text of every
//! unpleasant shape (control characters, quotes, non-BMP unicode,
//! bidi overrides) must come back exactly.

use proptest::prelude::*;
use pte_verify::api::{AnalysisSummary, BackendStats, Inconclusive, Verdict, VerificationReport};
use pte_verify::CompositionalStats;
use serde::{Deserialize as _, Serialize as _};

/// Characters chosen to stress JSON escaping: ASCII, quotes and
/// backslashes, every escape-class control character, DEL, combining
/// and non-BMP unicode, and a bidi override.
const NASTY_CHARS: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{8}', '\u{c}', '\u{1b}',
    '\u{7f}', 'é', 'λ', '→', '子', '𝄞', '\u{202e}', '\u{301}',
];

fn text() -> BoxedStrategy<String> {
    proptest::collection::vec(
        (0usize..NASTY_CHARS.len()).prop_map(|i| NASTY_CHARS[i]),
        0..24,
    )
    .prop_map(|cs| cs.into_iter().collect())
    .boxed()
}

fn option_text() -> BoxedStrategy<Option<String>> {
    prop_oneof![Just(None), text().prop_map(Some)].boxed()
}

fn boolean() -> BoxedStrategy<bool> {
    prop_oneof![Just(false), Just(true)].boxed()
}

/// Every [`Inconclusive`] reason, with adversarial payload text.
fn inconclusive() -> BoxedStrategy<Inconclusive> {
    prop_oneof![
        Just(Inconclusive::Cancelled),
        text().prop_map(Inconclusive::Budget),
        text().prop_map(Inconclusive::Error),
        text().prop_map(Inconclusive::Unsupported),
        text().prop_map(Inconclusive::Unknown),
    ]
    .boxed()
}

fn verdict() -> BoxedStrategy<Verdict> {
    prop_oneof![
        Just(Verdict::Safe),
        Just(Verdict::Unsafe),
        inconclusive().prop_map(Verdict::Inconclusive),
    ]
    .boxed()
}

/// Optional compositional stage counters, as the compositional
/// backend attaches them (absent on every other backend).
fn compositional() -> BoxedStrategy<Option<CompositionalStats>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(0usize..100_000, 10).prop_map(|ns| {
            Some(CompositionalStats {
                contracts_total: ns[0],
                contracts_checked: ns[1],
                contracts_deduped: ns[2],
                contracts_cached: ns[3],
                symmetry_groups: ns[4],
                refine_pairs: ns[5],
                refine_transitions: ns[6],
                pair_networks: ns[7],
                abstract_states: ns[8],
                abstract_transitions: ns[9],
            })
        }),
    ]
    .boxed()
}

fn backend_stats() -> BoxedStrategy<BackendStats> {
    (
        prop_oneof![
            Just("analytic".to_string()),
            Just("exhaustive".to_string()),
            Just("montecarlo".to_string()),
            Just("symbolic".to_string()),
            Just("compositional".to_string()),
        ],
        verdict(),
        (text(), option_text(), option_text(), option_text()),
        (0.0f64..5e3, boolean()),
        proptest::collection::vec(0usize..1_000_000, 8),
        compositional(),
    )
        .prop_map(
            |(
                backend,
                verdict,
                (rendered, witness, tripped, error),
                (wall_ms, cancelled),
                ns,
                compositional,
            )| {
                BackendStats {
                    backend,
                    verdict,
                    rendered,
                    witness,
                    wall_ms,
                    states: ns[0],
                    transitions: ns[1],
                    frontier: ns[2],
                    peak_passed_bytes: ns[3],
                    peak_passed_bytes_full: ns[4],
                    runs: ns[5],
                    depth: ns[6],
                    violations: ns[7],
                    warm_seeded: ns[4] % 10_000,
                    errors: ns[7] % 3,
                    tripped,
                    error,
                    cancelled,
                    compositional,
                }
            },
        )
        .boxed()
}

fn analysis() -> BoxedStrategy<Option<AnalysisSummary>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(0usize..200, 8).prop_map(|ns| {
            Some(AnalysisSummary {
                clocks_before: ns[0],
                clocks_after: ns[1],
                clocks_dropped: ns[2],
                clocks_merged: ns[3],
                locations_unreachable: ns[4],
                errors: ns[5],
                warnings: ns[6],
                infos: ns[7],
            })
        }),
    ]
    .boxed()
}

fn report() -> BoxedStrategy<VerificationReport> {
    (
        option_text(),
        boolean(),
        verdict(),
        // The vendored proptest implements `Strategy` for tuples of at
        // most six elements; nest to stay under the limit.
        (option_text(), option_text(), option_text(), analysis()),
        proptest::collection::vec(backend_stats(), 0..4),
        0.0f64..6e4,
    )
        .prop_map(
            |(
                scenario,
                leased,
                verdict,
                (witness, winner, tripped, analysis),
                backends,
                wall_ms,
            )| {
                // Mirror the dispatcher: the report-level counters are
                // hoisted from whichever backend attached them.
                let compositional = backends.iter().find_map(|b| b.compositional.clone());
                VerificationReport {
                    scenario,
                    leased,
                    verdict,
                    witness,
                    winner,
                    tripped,
                    backends,
                    analysis,
                    compositional,
                    wall_ms,
                }
            },
        )
        .boxed()
}

/// One full round trip through compact JSON text — the exact path the
/// daemon's `Report` frames and cache comparisons take.
fn round_trip(report: &VerificationReport) -> VerificationReport {
    let json = serde_json::to_string(&report.to_value()).expect("report serializes");
    let value = serde_json::from_str_value(&json).expect("report JSON parses");
    VerificationReport::from_value(&value).expect("report deserializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary reports — every verdict shape, adversarial strings,
    /// random stat blocks — survive value-tree AND text round trips
    /// exactly.
    #[test]
    fn reports_round_trip_through_serde(report in report()) {
        let via_value = VerificationReport::from_value(&report.to_value())
            .expect("value round trip");
        prop_assert_eq!(&via_value, &report);
        let via_text = round_trip(&report);
        prop_assert_eq!(&via_text, &report);
    }
}

/// Pinned (non-random) coverage: every `Inconclusive` reason variant
/// round-trips inside a full report, so a missing match arm in a
/// future serde impl cannot hide behind sampling.
#[test]
fn every_inconclusive_reason_round_trips() {
    let reasons = vec![
        Inconclusive::Cancelled,
        Inconclusive::Budget("state budget (max_states = 10)".into()),
        Inconclusive::Error("lowering failed: \"clock overflow\"\n  at λ".into()),
        Inconclusive::Unsupported("montecarlo cannot decide location-reach".into()),
        Inconclusive::Unknown(String::new()),
    ];
    for reason in reasons {
        let report = VerificationReport {
            scenario: Some("case-study".into()),
            leased: true,
            verdict: Verdict::Inconclusive(reason.clone()),
            witness: None,
            winner: None,
            tripped: Some("cancellation token".into()),
            backends: vec![BackendStats {
                backend: "symbolic".into(),
                verdict: Verdict::Inconclusive(reason.clone()),
                cancelled: matches!(reason, Inconclusive::Cancelled),
                ..BackendStats::default()
            }],
            analysis: Some(AnalysisSummary {
                clocks_before: 5,
                clocks_after: 5,
                warnings: 3,
                infos: 3,
                locations_unreachable: 2,
                ..AnalysisSummary::default()
            }),
            compositional: Some(CompositionalStats {
                contracts_total: 12,
                contracts_checked: 3,
                contracts_deduped: 9,
                refine_pairs: 72,
                pair_networks: 11,
                abstract_states: 6_694,
                ..CompositionalStats::default()
            }),
            wall_ms: 1.5,
        };
        assert_eq!(round_trip(&report), report, "reason {reason:?}");
    }
}

/// Pinned witness-text shapes: the strings most likely to break a JSON
/// writer (raw control characters, backslash runs, bidi overrides,
/// astral-plane symbols, embedded JSON) come back byte-identical.
#[test]
fn unusual_witness_text_round_trips() {
    let witnesses = [
        "plain ascii witness",
        "quotes \" and \\ backslashes \\\\ and / slashes",
        "controls: \u{0}\u{1}\u{8}\t\n\r\u{c}\u{1b}\u{7f}",
        "unicode: é λ → 子 𝄞 🚨 \u{301}combining",
        "bidi: \u{202e}override\u{202c} done",
        "{\"looks\":\"like json\",\"n\":[1,2,3]}",
        "line1\nline2\n  indented zone: x - y <= 17\n",
    ];
    for witness in witnesses {
        let report = VerificationReport {
            scenario: None,
            leased: false,
            verdict: Verdict::Unsafe,
            witness: Some(witness.to_string()),
            winner: Some("symbolic".into()),
            tripped: None,
            backends: vec![BackendStats {
                backend: "symbolic".into(),
                verdict: Verdict::Unsafe,
                witness: Some(witness.to_string()),
                rendered: format!("unsafe: {witness}"),
                ..BackendStats::default()
            }],
            analysis: None,
            compositional: None,
            wall_ms: 0.25,
        };
        let back = round_trip(&report);
        assert_eq!(back.witness.as_deref(), Some(witness));
        assert_eq!(back, report, "witness {witness:?}");
    }
}
