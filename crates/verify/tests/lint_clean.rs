//! The registry lints warning-clean under the canonical pattern
//! allowlist — PR 7's open finding, closed in two halves:
//!
//! * the base pattern's `lease_deny` receives and `[approval_bad=1]`
//!   mode copies are *documented as intentional* by
//!   [`pte_zones::analysis::lint::pattern_allowlist`], so `pte-lint`
//!   (which applies the allowlist by default) reports no warnings on
//!   any registry scenario, and a **new** warning fails this test
//!   instead of drowning in expected noise;
//! * the deny path itself exists behind
//!   [`pte_core::pattern::PatternOptions::deny_capable`] — opting in
//!   makes the deny receives live model text, so the allowlisted
//!   `dead-edge` findings disappear *for real* rather than by fiat.

use pte_core::pattern::{build_pattern_system_with, PatternOptions};
use pte_tracheotomy::registry;
use pte_zones::analysis::{analyze, apply_allowlist, pattern_allowlist, Severity};
use pte_zones::{analyze_lease_pattern, lower_network};

/// Every registry scenario, both arms: no error ever, and no warning
/// once the canonical allowlist has marked the intentional findings.
#[test]
fn registry_lints_warning_clean_under_pattern_allowlist() {
    for s in registry::registry() {
        for leased in [true, false] {
            let mut analysis = analyze_lease_pattern(&s.config, leased).unwrap();
            let errors = analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            assert_eq!(errors, 0, "{} (leased={leased}) has lint errors", s.name);
            apply_allowlist(&mut analysis.diagnostics, &pattern_allowlist());
            let leftover: Vec<String> = analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .map(|d| d.to_string())
                .collect();
            assert!(
                leftover.is_empty(),
                "{} (leased={leased}) still warns after allowlist:\n{}",
                s.name,
                leftover.join("\n")
            );
        }
    }
}

/// The allowlist is not hiding live problems: the base pattern really
/// does produce the allowlisted warnings (the list is load-bearing,
/// not vestigial), and the deny-capable assembly eliminates the
/// `lease_deny` dead-edge findings at the source.
#[test]
fn deny_capable_assembly_makes_deny_receives_live() {
    let s = registry::by_name("chain-3").unwrap();

    let base = analyze_lease_pattern(&s.config, true).unwrap();
    assert!(
        base.diagnostics
            .iter()
            .any(|d| d.code == "dead-edge" && d.message.contains("lease_deny")),
        "base pattern should flag the dead deny receives"
    );

    let opts = PatternOptions { deny_capable: true };
    let sys = build_pattern_system_with(&s.config, true, opts).unwrap();
    let net = lower_network(&sys.automata).unwrap();
    let deny = analyze(&net);
    assert!(
        !deny
            .diagnostics
            .iter()
            .any(|d| d.code == "dead-edge" && d.message.contains("lease_deny")),
        "deny-capable arm must not flag lease_deny receives: {:#?}",
        deny.diagnostics
            .iter()
            .filter(|d| d.code == "dead-edge")
            .collect::<Vec<_>>()
    );
}
