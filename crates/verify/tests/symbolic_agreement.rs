//! Backend agreement: the symbolic zone engine must reach the same
//! verdicts as the bounded-exhaustive explorer on shared configurations
//! (the ISSUE's acceptance criterion for the fourth backend).
//!
//! Three shared configurations are checked: the paper's leased
//! case-study (safe), the without-lease baseline (unsafe), and a
//! leased-but-misconfigured variant violating condition c5 (unsafe in
//! both backends). A synthesized configuration rounds the set out on
//! the safe side.

use pte_core::pattern::{check_conditions, LeaseConfig};
use pte_core::rules::PairSpec;
use pte_core::synthesis::{synthesize, SynthesisRequest};
use pte_hybrid::Time;
use pte_verify::symbolic::cross_check;

/// A c5-violating variant: the inner entity enters risky with no enter
/// lead over the outer one (Section V scenario 3's misconfiguration).
fn c5_broken() -> LeaseConfig {
    let mut cfg = LeaseConfig::case_study();
    cfg.t_enter[1] = cfg.t_enter[0]; // equal enter dwell: zero lead < T^min_risky
    cfg
}

#[test]
fn agreement_on_leased_case_study() {
    let cfg = LeaseConfig::case_study();
    assert!(check_conditions(&cfg).is_satisfied());
    let cc = cross_check(&cfg, true, 6, false).expect("cross-check runs");
    assert!(cc.symbolic_safe(), "Theorem 1 symbolically: {cc}");
    assert!(cc.agree(), "{cc}");
}

#[test]
fn agreement_on_unleased_baseline() {
    let cfg = LeaseConfig::case_study();
    let cc = cross_check(&cfg, false, 6, true).expect("cross-check runs");
    assert!(
        !cc.symbolic_safe(),
        "baseline must be provably unsafe: {cc}"
    );
    assert!(cc.agree(), "{cc}");
}

#[test]
fn agreement_on_c5_violation() {
    let cfg = c5_broken();
    assert!(
        !check_conditions(&cfg).is_satisfied(),
        "the variant must violate c1-c7"
    );
    let cc = cross_check(&cfg, true, 6, false).expect("cross-check runs");
    assert!(!cc.symbolic_safe(), "zero enter lead must be found: {cc}");
    assert!(cc.agree(), "{cc}");
}

#[test]
fn synthesized_configuration_is_symbolically_safe() {
    let req = SynthesisRequest {
        n: 2,
        safeguards: vec![PairSpec::new(Time::seconds(2.0), Time::seconds(1.0))],
        rule1_bound: Time::seconds(120.0),
        min_run_initializer: Time::seconds(10.0),
        t_wait: Time::seconds(2.0),
        margin: Time::seconds(0.5),
    };
    let cfg = synthesize(&req).expect("feasible");
    assert!(check_conditions(&cfg).is_satisfied());
    let cc = cross_check(&cfg, true, 5, false).expect("cross-check runs");
    assert!(cc.symbolic_safe(), "{cc}");
    assert!(cc.agree(), "{cc}");
}
