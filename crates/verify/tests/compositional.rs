//! The compositional assume-guarantee backend through the unified API
//! front door: agreement with the monolithic symbolic engine on every
//! fast chain (both arms), the soundness-by-construction fallback on
//! the baseline, and the scale gap the chain-12/16/20 registry
//! scenarios exist for — the monolithic engine trips a budget the
//! compositional argument closes with room to spare. The fast tests
//! stay debug-mode cheap; the full release-mode matrix (chain-2..8
//! both arms, and the registry-budget scale gate) is `#[ignore]`d and
//! run where tier-1 time permits.

use pte_tracheotomy::registry;
use pte_verify::{BackendSel, Inconclusive, Verdict, VerificationRequest};

fn request(
    scenario: &str,
    leased: bool,
    backend: BackendSel,
    budget: usize,
) -> VerificationRequest {
    VerificationRequest::scenario(scenario)
        .leased(leased)
        .backend(backend)
        .max_states(budget)
        .workers(2)
}

/// Compositional and symbolic verdicts agree on the fast registry
/// scenarios, both arms. The leased arm closes through the contract
/// argument (stats prove it stayed compositional); the baseline arm
/// falls back to the monolithic engine and reports its Unsafe verdict
/// — never a spurious Safe, never an abstract Unsafe.
#[test]
fn compositional_agrees_with_symbolic_on_fast_scenarios() {
    for s in registry::registry() {
        if s.n > 3 {
            continue;
        }
        for leased in [true, false] {
            let symbolic = request(&s.name, leased, BackendSel::Symbolic, 80_000)
                .run()
                .unwrap_or_else(|e| panic!("{} (leased={leased}): {e}", s.name));
            let comp = request(&s.name, leased, BackendSel::Compositional, 80_000)
                .run()
                .unwrap_or_else(|e| panic!("{} (leased={leased}): {e}", s.name));
            assert_eq!(
                comp.verdict, symbolic.verdict,
                "{} (leased={leased}): compositional disagrees\n{comp}\n{symbolic}",
                s.name
            );
            let stats = comp
                .compositional
                .as_ref()
                .expect("the compositional backend reports its stage counters");
            assert!(stats.contracts_total > 0);
            if leased {
                assert_eq!(comp.verdict, Verdict::Safe, "{}: {comp}", s.name);
                assert!(
                    stats.pair_networks == s.n - 1,
                    "{}: one abstract network per safeguard pair, got {}",
                    s.name,
                    stats.pair_networks
                );
                assert!(stats.abstract_states > 0);
            } else {
                assert_eq!(comp.verdict, Verdict::Unsafe, "{}: {comp}", s.name);
                let b = comp.backend("compositional").expect("backend stats");
                assert!(
                    b.rendered.contains("fell back to monolithic"),
                    "{}: the baseline must be discharged by the fallback:\n{}",
                    s.name,
                    b.rendered
                );
                assert!(
                    comp.witness.is_some(),
                    "{}: the fallback falsification carries a witness",
                    s.name
                );
            }
        }
    }
}

/// The scale gap, sized for debug-mode tier-1: at a 6 000-state
/// budget the monolithic engine trips on chain-12 while every
/// abstract pair search of the compositional argument fits with room
/// to spare. (`chain_12_closes_at_registry_budget` pins the same gap
/// at the registry's real 40 000-state recommendation.)
#[test]
fn chain_12_scale_gap_at_reduced_budget() {
    let mono = request("chain-12", true, BackendSel::Symbolic, 6_000)
        .run()
        .expect("chain-12 registered");
    match &mono.verdict {
        Verdict::Inconclusive(Inconclusive::Budget(what)) => {
            assert!(what.contains("state budget"), "tripped on: {what}")
        }
        other => panic!("monolithic chain-12 must trip the 6k budget, got {other:?}"),
    }

    let comp = request("chain-12", true, BackendSel::Compositional, 6_000)
        .run()
        .expect("chain-12 registered");
    assert_eq!(comp.verdict, Verdict::Safe, "{comp}");
    let stats = comp.compositional.as_ref().expect("stage counters");
    assert_eq!(stats.contracts_total, 12);
    assert_eq!(stats.pair_networks, 11);
    assert!(stats.refine_pairs > 0);

    // The baseline arm at scale: refinement fails fast, the fallback
    // falsifies — Unsafe, not a spurious Safe.
    let baseline = request("chain-12", false, BackendSel::Compositional, 6_000)
        .run()
        .expect("chain-12 registered");
    assert_eq!(baseline.verdict, Verdict::Unsafe, "{baseline}");
}

/// The full agreement matrix, chain-2..chain-8 both arms at each
/// scenario's recommended budget. Release-mode territory (the chain-8
/// proof alone is minutes in debug): `cargo test --release -p
/// pte-verify --test compositional -- --ignored`.
#[test]
#[ignore = "release-mode matrix; tier-1 covers n <= 3"]
fn full_chain_matrix_agreement() {
    for s in registry::registry() {
        let chain = s
            .name
            .strip_prefix("chain-")
            .and_then(|n| n.parse::<usize>().ok());
        if !matches!(chain, Some(n) if (2..=8).contains(&n)) {
            continue;
        }
        for leased in [true, false] {
            let budget = s.recommended_budget;
            let symbolic = request(&s.name, leased, BackendSel::Symbolic, budget)
                .run()
                .unwrap();
            let comp = request(&s.name, leased, BackendSel::Compositional, budget)
                .run()
                .unwrap();
            assert_eq!(
                comp.verdict, symbolic.verdict,
                "{} (leased={leased}):\n{comp}\n{symbolic}",
                s.name
            );
        }
    }
}

/// The registry claim itself: chain-12/16/20 close compositionally at
/// their recommended 40k budget, and the monolithic engine trips that
/// same budget on chain-12. Release-mode (the monolithic trip burns
/// ~45k settled states before giving up).
#[test]
#[ignore = "release-mode scale gate; the reduced-budget test covers tier-1"]
fn chain_12_closes_at_registry_budget() {
    let budget = registry::by_name("chain-12").unwrap().recommended_budget;
    let mono = request("chain-12", true, BackendSel::Symbolic, budget)
        .run()
        .unwrap();
    assert!(
        matches!(
            &mono.verdict,
            Verdict::Inconclusive(Inconclusive::Budget(_))
        ),
        "monolithic chain-12 must trip the registry budget: {mono}"
    );
    for name in ["chain-12", "chain-16", "chain-20"] {
        let comp = request(name, true, BackendSel::Compositional, budget)
            .run()
            .unwrap();
        assert_eq!(comp.verdict, Verdict::Safe, "{name}: {comp}");
    }
}
