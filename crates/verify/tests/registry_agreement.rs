//! Acceptance gates of the scenario registry, driven through the
//! unified [`pte_verify::api`] front door: every backend consumes the
//! same named scenarios, the symbolic engine proves the N = 4 lease
//! chain, and the backends agree wherever tier-1 time permits (the
//! full matrix — including `chain-5`/`chain-6` — is the `campaign`
//! binary's job; these tests pin the fast core of it).

use pte_tracheotomy::registry;
use pte_verify::{BackendSel, Verdict, VerificationRequest};

/// A symbolic request against a registry scenario with the test-wide
/// budget. Two workers: verdicts are bit-identical at every count (the
/// engine's determinism guarantee, pinned by
/// `crates/zones/tests/parallel.rs`), so tests may as well use both
/// vCPUs of the CI container.
fn symbolic(scenario: &str, leased: bool, max_states: usize) -> VerificationRequest {
    VerificationRequest::scenario(scenario)
        .leased(leased)
        .backend(BackendSel::Symbolic)
        .max_states(max_states)
        .workers(2)
}

/// The headline scale gate: the symbolic backend proves the 4-device
/// interlocking lease chain safe over all timings and loss fates, and
/// falsifies its lease-stripped baseline with a real counter-example
/// trace.
#[test]
fn chain_4_proved_safe_and_baseline_falsified() {
    let proof = symbolic("chain-4", true, 80_000)
        .run()
        .expect("chain-4 registered");
    assert_eq!(proof.verdict, Verdict::Safe, "chain-4 leased: {proof}");
    let stats = proof.backend("symbolic").expect("symbolic ran");
    // Pre-reduction this proof settled ≈ 56 700 states; the static
    // activity masks collapse the dead-clock interleavings of idle
    // chain devices to ≈ 2 500. The gate now pins both facts: the
    // reduced search still exercises a non-trivial state space, and
    // the collapse itself keeps delivering (a regression that disables
    // masking would shoot past the ceiling).
    assert!(stats.states > 1_500, "N=4 must exercise scale: {proof}");
    assert!(
        stats.states < 50_000,
        "activity masks should collapse idle-device interleavings: {proof}"
    );

    let baseline = symbolic("chain-4", false, 80_000).run().expect("resolves");
    assert_eq!(baseline.verdict, Verdict::Unsafe, "{baseline}");
    let ce = baseline
        .witness
        .as_deref()
        .expect("falsification carries a witness");
    assert!(
        ce.lines().count() > 2,
        "witness must be a real trace:\n{ce}"
    );
    assert!(ce.contains("zone:"), "witness zone must be rendered:\n{ce}");
}

/// Cross-backend agreement on the fast registry scenarios (N ≤ 3 plus
/// the stress variant), both arms, all through the one front door:
/// analytic c1–c7 says the leased arm is safe (Theorem 1), the
/// symbolic engine proves it, the bounded-exhaustive explorer confirms
/// it at depth 4 — and symbolic + exhaustive both falsify the baseline
/// (the analytic backend is conservative there and must report
/// inconclusive, never a verdict). `chain-4` has its own gate above;
/// `chain-5`/`chain-6` are campaign territory (25 s / 170 s
/// release-mode proofs).
#[test]
fn fast_registry_scenarios_agree_across_backends() {
    for s in registry::registry() {
        if s.n > 3 {
            continue;
        }
        for leased in [true, false] {
            let request = symbolic(&s.name, leased, 80_000);
            let analytic = request
                .clone()
                .backend(BackendSel::Analytic)
                .run()
                .unwrap_or_else(|e| panic!("{} (leased={leased}): {e}", s.name));
            if leased {
                assert_eq!(
                    analytic.verdict,
                    Verdict::Safe,
                    "{}: registry scenarios satisfy c1–c7, so Theorem 1 applies",
                    s.name
                );
            } else {
                assert!(
                    !analytic.verdict.is_conclusive(),
                    "{}: the analytic backend must not judge the baseline: {:?}",
                    s.name,
                    analytic.verdict
                );
            }

            let symbolic = request
                .run()
                .unwrap_or_else(|e| panic!("{} (leased={leased}): {e}", s.name));
            let expected = if leased {
                Verdict::Safe
            } else {
                Verdict::Unsafe
            };
            assert_eq!(
                symbolic.verdict, expected,
                "{} (leased={leased}): {symbolic}",
                s.name
            );

            let exhaustive = request
                .clone()
                .backend(BackendSel::Exhaustive)
                .depth(4)
                .run()
                .unwrap_or_else(|e| panic!("{} (leased={leased}): {e}", s.name));
            assert_eq!(
                exhaustive.verdict == Verdict::Safe,
                leased,
                "{} (leased={leased}): exhaustive disagrees: {exhaustive}",
                s.name
            );
        }
    }
}
