//! Acceptance gates of the scenario registry: every backend consumes
//! the same named scenarios, the symbolic engine proves the N = 4
//! lease chain, and the backends agree wherever tier-1 time permits
//! (the full matrix — including `chain-5`/`chain-6` — is the
//! `campaign` binary's job; these tests pin the fast core of it).

use pte_tracheotomy::registry;
use pte_verify::exhaustive::explore;
use pte_verify::{verify_symbolic_with, Limits, SymbolicOutcome};
use pte_zones::SymbolicVerdict;

fn limits(max_states: usize) -> Limits {
    Limits {
        max_states,
        // Two workers: verdicts are bit-identical at every count (the
        // engine's determinism guarantee, pinned by
        // `crates/zones/tests/parallel.rs`), so tests may as well use
        // both vCPUs of the CI container.
        max_workers: 2,
        ..Limits::default()
    }
}

/// The headline scale gate: the symbolic backend proves the 4-device
/// interlocking lease chain safe over all timings and loss fates, and
/// falsifies its lease-stripped baseline with a real counter-example
/// trace.
#[test]
fn chain_4_proved_safe_and_baseline_falsified() {
    let s = registry::by_name("chain-4").expect("chain-4 registered");
    let proof = verify_symbolic_with(&s.config, true, &limits(80_000)).expect("chain-4 lowers");
    let SymbolicVerdict::Safe(stats) = &proof else {
        panic!("chain-4 leased must be safe, got {proof}");
    };
    assert!(stats.states > 50_000, "N=4 must exercise scale: {proof}");

    let baseline = verify_symbolic_with(&s.config, false, &limits(80_000)).expect("lowers");
    let SymbolicVerdict::Unsafe(ce) = baseline else {
        panic!("chain-4 baseline must be falsified, got {baseline}");
    };
    assert!(ce.steps.len() > 1, "witness must be a real trace:\n{ce}");
    assert!(!ce.zone.is_empty(), "witness zone must be rendered");
}

/// Cross-backend agreement on the fast registry scenarios (N ≤ 3 plus
/// the stress variant), both arms: analytic c1–c7 says the leased arm
/// is safe, the symbolic engine proves it, the bounded-exhaustive
/// explorer confirms it at depth 4 — and all three flip on the
/// baseline (c1–c7 does not apply to the lease-stripped arm, but
/// symbolic + exhaustive both falsify it). `chain-4` has its own gate
/// above; `chain-5`/`chain-6` are campaign territory (25 s / 170 s
/// release-mode proofs).
#[test]
fn fast_registry_scenarios_agree_across_backends() {
    for s in registry::registry() {
        if s.n > 3 {
            continue;
        }
        let analytic_ok = pte_core::pattern::check_conditions(&s.config).is_satisfied();
        assert!(analytic_ok, "{}: registry scenarios satisfy c1–c7", s.name);

        for leased in [true, false] {
            let verdict = verify_symbolic_with(&s.config, leased, &limits(80_000))
                .unwrap_or_else(|e| panic!("{} (leased={leased}): {e}", s.name));
            let outcome = SymbolicOutcome::from(&verdict);
            let expected = if leased {
                SymbolicOutcome::Safe
            } else {
                SymbolicOutcome::Unsafe
            };
            assert_eq!(outcome, expected, "{} (leased={leased}): {verdict}", s.name);

            let exhaustive = explore(&s.config, leased, 4, false);
            assert_eq!(
                exhaustive.all_safe(),
                leased,
                "{} (leased={leased}): exhaustive disagrees: {exhaustive}",
                s.name
            );
        }
    }
}
