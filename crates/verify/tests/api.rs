//! Integration gates of the unified `pte_verify::api` front door:
//! cooperative cancellation (prompt, never a spurious verdict, at every
//! worker count), portfolio racing (the report is byte-identical to
//! the winning backend's own output — losers never leak), query
//! routing, and serde round-trips of requests and reports.

use proptest::prelude::*;
use pte_verify::api::{
    ApiError, BackendSel, Budget, Inconclusive, Query, Verdict, VerificationReport,
    VerificationRequest,
};
use pte_verify::{CancelToken, Progress, ProgressSink};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A progress sink that fires `token` once `cancel_round` is reached
/// and records the highest round it ever observed.
fn cancelling_sink(
    token: CancelToken,
    cancel_round: usize,
    max_seen: Arc<AtomicUsize>,
) -> ProgressSink {
    Arc::new(move |_backend: &str, p: &Progress| {
        max_seen.fetch_max(p.round, Ordering::Relaxed);
        if p.round >= cancel_round {
            token.cancel();
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A `CancelToken` fired mid-search stops the symbolic engine
    /// within one BFS layer — the progress stream ends at the round
    /// that fired — and the verdict is `Inconclusive(Cancelled)`,
    /// never a spurious `Safe`/`Unsafe`, at 1/2/4/8 workers alike.
    #[test]
    fn cancellation_is_prompt_and_never_a_verdict(cancel_round in 0usize..5) {
        for workers in [1usize, 2, 4, 8] {
            let token = CancelToken::new();
            let max_seen = Arc::new(AtomicUsize::new(0));
            let sink = cancelling_sink(token.clone(), cancel_round, max_seen.clone());
            let report = VerificationRequest::scenario("case-study")
                .leased(true)
                .backend(BackendSel::Symbolic)
                .workers(workers)
                .run_with(&token, Some(sink))
                .expect("case-study resolves");
            prop_assert_eq!(
                &report.verdict,
                &Verdict::Inconclusive(Inconclusive::Cancelled),
                "workers={}: {}", workers, report
            );
            prop_assert!(!report.verdict.is_conclusive());
            // Within one layer: the engine honours the token at the
            // very boundary whose snapshot fired it, so no later round
            // is ever explored (or reported).
            let seen = max_seen.load(Ordering::Relaxed);
            prop_assert_eq!(
                seen, cancel_round,
                "workers={}: cancellation at round {} must not run past it (saw {})",
                workers, cancel_round, seen
            );
            let stats = report.backend("symbolic").expect("symbolic ran");
            prop_assert!(stats.cancelled);
            prop_assert_eq!(stats.tripped.as_deref(), Some("cancellation token"));
            // A cancelled search is truncated mid-flight: its frontier
            // is still populated.
            prop_assert!(stats.frontier > 0, "workers={}", workers);
        }
    }
}

/// On every registry scenario with N ≤ 3 (both arms), the portfolio's
/// verdict and witness are byte-identical to running the winning
/// backend alone with the same budget: losers' partial output never
/// leaks into the report.
#[test]
fn portfolio_report_is_byte_identical_to_the_winner_alone() {
    for s in pte_tracheotomy::registry::registry() {
        if s.n > 3 {
            continue;
        }
        for leased in [true, false] {
            let budget = Budget {
                depth: Some(4),
                trials: Some(12),
                ..Budget::default()
            };
            let portfolio = VerificationRequest::scenario(&s.name)
                .leased(leased)
                .backend(BackendSel::Portfolio)
                .budget(budget.clone())
                .run()
                .expect("registry scenario resolves");
            assert!(
                portfolio.verdict.is_conclusive(),
                "{} (leased={leased}): portfolio must conclude: {portfolio}",
                s.name
            );
            let winner = portfolio
                .winner
                .clone()
                .expect("a conclusive portfolio names its winner");
            let solo_sel = match winner.as_str() {
                "analytic" => BackendSel::Analytic,
                "exhaustive" => BackendSel::Exhaustive,
                "montecarlo" => BackendSel::MonteCarlo,
                "symbolic" => BackendSel::Symbolic,
                other => panic!("unknown winner `{other}`"),
            };
            let solo = VerificationRequest::scenario(&s.name)
                .leased(leased)
                .backend(solo_sel)
                .budget(budget)
                .run()
                .expect("registry scenario resolves");
            assert_eq!(
                portfolio.verdict, solo.verdict,
                "{} (leased={leased}, winner={winner})",
                s.name
            );
            assert_eq!(
                portfolio.witness, solo.witness,
                "{} (leased={leased}, winner={winner}): witnesses must be byte-identical",
                s.name
            );
            // The top-level fields are the winner's alone.
            let wstats = portfolio.backend(&winner).expect("winner stats present");
            assert_eq!(portfolio.witness, wstats.witness);
            assert_eq!(portfolio.tripped, wstats.tripped);
            // The winner itself ran to completion.
            assert!(!wstats.cancelled, "{} (leased={leased})", s.name);
            // Report order is the fixed member order, not finish order.
            let order: Vec<&str> = portfolio
                .backends
                .iter()
                .map(|b| b.backend.as_str())
                .collect();
            assert_eq!(
                order,
                vec!["analytic", "exhaustive", "montecarlo", "symbolic"],
                "{} (leased={leased})",
                s.name
            );
        }
    }
}

/// Portfolio losers are cancelled: once the winner decides, every
/// other backend's progress stream stops and its stats say so.
#[test]
fn portfolio_cancels_losing_backends() {
    // The leased case study: the analytic backend wins in microseconds
    // while the symbolic proof takes tens of milliseconds — the
    // symbolic racer must be cancelled mid-search, observably.
    let report = VerificationRequest::scenario("case-study")
        .leased(true)
        .backend(BackendSel::Portfolio)
        .trials(12)
        .run()
        .expect("case-study resolves");
    assert_eq!(report.verdict, Verdict::Safe);
    assert_eq!(report.winner.as_deref(), Some("analytic"));
    let cancelled: Vec<&str> = report
        .backends
        .iter()
        .filter(|b| b.cancelled)
        .map(|b| b.backend.as_str())
        .collect();
    assert!(
        !cancelled.is_empty(),
        "at least one losing backend must observe the cancellation: {report}"
    );
    for b in &report.backends {
        if b.cancelled {
            assert_eq!(
                b.verdict,
                Verdict::Inconclusive(Inconclusive::Cancelled),
                "{}: a cancelled loser must not claim a verdict",
                b.backend
            );
        }
    }
}

/// `LocationReach` routes to the symbolic engine: a reachable target
/// yields `Unsafe` with a witness trace, an unknown automaton an
/// in-band backend error.
#[test]
fn location_reach_routes_to_the_symbolic_engine() {
    let reach = |targets: Vec<(String, String)>| {
        VerificationRequest::scenario("case-study")
            .leased(true)
            .query(Query::LocationReach { targets })
            .backend(BackendSel::Auto)
            .run()
            .expect("case-study resolves")
    };
    let hit = reach(vec![("participant1".into(), "Risky Core".into())]);
    assert_eq!(hit.verdict, Verdict::Unsafe, "{hit}");
    assert_eq!(hit.winner.as_deref(), Some("symbolic"));
    assert!(
        hit.witness.as_deref().unwrap().contains("Risky Core"),
        "{:?}",
        hit.witness
    );

    let bogus = reach(vec![("no-such-automaton".into(), "x".into())]);
    assert!(
        matches!(bogus.verdict, Verdict::Inconclusive(Inconclusive::Error(_))),
        "{:?}",
        bogus.verdict
    );
}

/// The scheduler / symmetry budget knobs reach the engine: a
/// work-stealing falsification renders the identical witness to the
/// default round-barrier run (the determinism contract surfaces at
/// the API layer), and the two requests hash to different cache keys.
#[test]
fn scheduler_and_symmetry_knobs_reach_the_engine() {
    let base = VerificationRequest::scenario("chain-2")
        .leased(false)
        .backend(BackendSel::Symbolic);
    let reference = base.clone().run().expect("chain-2 resolves");
    assert_eq!(reference.verdict, Verdict::Unsafe);
    for accelerated in [
        base.clone().work_stealing(true).workers(4),
        base.clone().symmetry(false),
        base.clone().work_stealing(true).symmetry(false).workers(2),
    ] {
        let report = accelerated.run().expect("chain-2 resolves");
        assert_eq!(report.verdict, Verdict::Unsafe);
        assert_eq!(
            report.witness, reference.witness,
            "witness must not depend on scheduler/symmetry knobs"
        );
        assert_ne!(
            accelerated.cache_key().unwrap(),
            base.cache_key().unwrap(),
            "knobs must separate cache keys"
        );
    }
}

/// Requests and reports round-trip through the vendored serde — the
/// wire contract a service layer builds on.
#[test]
fn requests_and_reports_serde_round_trip() {
    let request = VerificationRequest::scenario("chain-3")
        .leased(false)
        .backend(BackendSel::Portfolio)
        .query(Query::LocationReach {
            targets: vec![("participant1".into(), "Risky Core".into())],
        })
        .max_states(12_345)
        .workers(2)
        .depth(5)
        .trials(7)
        .max_wall_ms(9_000);
    let json = serde_json::to_string(&request).expect("request serializes");
    let back: VerificationRequest = serde_json::from_str(&json).expect("request parses");
    assert_eq!(request, back);

    let report = VerificationRequest::scenario("case-study")
        .leased(true)
        .backend(BackendSel::Analytic)
        .run()
        .expect("case-study resolves");
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: VerificationReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(report, back);

    // Errors are serializable too (they cross the same wire).
    let err = VerificationRequest::scenario("no-such").run().unwrap_err();
    let json = serde_json::to_string(&err).expect("error serializes");
    let back: ApiError = serde_json::from_str(&json).expect("error parses");
    assert_eq!(err, back);
}

/// Release-mode overhead probe (ignored in tier-1 — wall-clock
/// assertions belong on a quiet machine):
///
/// ```sh
/// cargo test --release -p pte-verify --test api -- --ignored --nocapture
/// ```
///
/// Prints portfolio-vs-symbolic wall times on the case study, both
/// arms, and asserts the acceptance bound: the portfolio — which races
/// the symbolic engine against three other backends and cancels the
/// losers — is never slower than the symbolic backend alone by more
/// than 10% (plus a 10 ms floor for thread-spawn noise on loaded CI
/// boxes).
#[test]
#[ignore]
fn portfolio_overhead_stays_within_ten_percent_of_symbolic() {
    for leased in [true, false] {
        let symbolic = VerificationRequest::scenario("case-study")
            .leased(leased)
            .backend(BackendSel::Symbolic)
            .workers(0)
            .run()
            .expect("case-study resolves");
        let portfolio = VerificationRequest::scenario("case-study")
            .leased(leased)
            .backend(BackendSel::Portfolio)
            .run()
            .expect("case-study resolves");
        assert!(portfolio.verdict.is_conclusive(), "{portfolio}");
        println!(
            "leased={leased}: symbolic {:.1} ms, portfolio {:.1} ms (winner {})",
            symbolic.wall_ms,
            portfolio.wall_ms,
            portfolio.winner.as_deref().unwrap_or("-")
        );
        for b in &portfolio.backends {
            println!(
                "    {}: {} {:.1} ms cancelled={}",
                b.backend, b.verdict, b.wall_ms, b.cancelled
            );
        }
        assert!(
            portfolio.wall_ms <= symbolic.wall_ms * 1.1 + 10.0,
            "leased={leased}: portfolio {:.1} ms vs symbolic {:.1} ms",
            portfolio.wall_ms,
            symbolic.wall_ms
        );
    }
}
