//! Plain-text table rendering for experiment outputs.
//!
//! The bench binaries print paper-style tables; this keeps the formatting
//! in one place (fixed-width columns, a header rule, row striping left to
//! the terminal).

/// A simple fixed-width table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified already).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!(" {cell:w$} |", w = *w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut rule = String::from("|");
        for w in &widths {
            rule.push_str(&"-".repeat(w + 2));
            rule.push('|');
        }
        rule.push('\n');
        out.push_str(&rule);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(vec!["Trial Mode", "E(Toff)", "#Failures"]);
        t.row(vec!["with Lease", "18", "0"]);
        t.row(vec!["without Lease", "18", "4"]);
        let s = t.render();
        assert!(s.contains("| Trial Mode    |"));
        assert!(s.contains("| with Lease    |"));
        assert!(s.lines().count() == 4);
        // All lines same width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn ragged_rows_tolerated() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }
}
