//! Targeted worst-case loss strategies.
//!
//! Random loss rarely hits the narrow windows that matter; these
//! adversaries do it on purpose, mechanizing the Section V failure
//! narratives: each strategy drops a specific *class* of event on every
//! wireless link while delivering everything else instantly. Theorem 1's
//! claim covers all of them — a condition-satisfying, leased system must
//! stay PTE-safe under **every** strategy.

use pte_core::monitor::{check_pte, PteReport};
use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{ExecError, Executor, ExecutorConfig};
use pte_sim::network::{Channel, Delivery, DropReason, Message, NetworkBridge};
use pte_sim::trace::Trace;
use std::fmt;

/// A loss adversary: which events to kill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Adversary {
    /// Drop every `Cancel` event (supervisor → remotes and initializer →
    /// supervisor).
    AllCancels,
    /// Drop every `Abort` event.
    AllAborts,
    /// Drop every `Exit` report.
    AllExits,
    /// Drop every lease approval/grant (`LeaseApprove` and the
    /// initializer's `Approve`).
    AllApprovals,
    /// Drop every `LeaseReq` and the initializer's `Req`.
    AllRequests,
    /// Drop everything.
    Everything,
    /// Drop every second wireless event (parity loss).
    Alternating,
    /// Drop nothing (control).
    Nothing,
}

impl Adversary {
    /// All strategies, for sweep-style tests.
    pub const ALL: [Adversary; 8] = [
        Adversary::AllCancels,
        Adversary::AllAborts,
        Adversary::AllExits,
        Adversary::AllApprovals,
        Adversary::AllRequests,
        Adversary::Everything,
        Adversary::Alternating,
        Adversary::Nothing,
    ];

    /// Whether this adversary kills the given event root.
    pub fn kills(&self, root: &str, counter: u64) -> bool {
        match self {
            Adversary::AllCancels => root.contains("_cancel"),
            Adversary::AllAborts => root.contains("_abort"),
            Adversary::AllExits => root.contains("_exit"),
            Adversary::AllApprovals => {
                root.contains("_lease_approve") || root.ends_with("_approve")
            }
            Adversary::AllRequests => root.contains("_lease_req") || root.ends_with("_req"),
            Adversary::Everything => true,
            Adversary::Alternating => counter % 2 == 1,
            Adversary::Nothing => false,
        }
    }
}

impl fmt::Display for Adversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Adversary::AllCancels => "drop-all-cancels",
            Adversary::AllAborts => "drop-all-aborts",
            Adversary::AllExits => "drop-all-exits",
            Adversary::AllApprovals => "drop-all-approvals",
            Adversary::AllRequests => "drop-all-requests",
            Adversary::Everything => "drop-everything",
            Adversary::Alternating => "drop-every-second",
            Adversary::Nothing => "drop-nothing",
        };
        write!(f, "{s}")
    }
}

/// A channel implementing one adversary.
struct AdversaryChannel {
    adversary: Adversary,
    counter: u64,
}

impl Channel for AdversaryChannel {
    fn transmit(&mut self, msg: &Message, now: Time) -> Delivery {
        let n = self.counter;
        self.counter += 1;
        if self.adversary.kills(msg.root.as_str(), n) {
            Delivery::Dropped {
                reason: DropReason::Scripted,
            }
        } else {
            Delivery::Delivered { at: now }
        }
    }

    fn describe(&self) -> String {
        format!("{}", self.adversary)
    }
}

/// Result of one adversarial run.
#[derive(Clone, Debug)]
pub struct AdversaryRun {
    /// The strategy used.
    pub adversary: Adversary,
    /// The monitor's verdict.
    pub report: PteReport,
    /// The full trace (for deeper inspection).
    pub trace: Trace,
}

/// Runs the N-entity pattern system under an adversary.
///
/// The driver requests at `t = t_fb0 + 1 s` and (optionally) cancels
/// mid-emission; the run lasts three full procedure bounds.
pub fn run_with_adversary(
    cfg: &LeaseConfig,
    leased: bool,
    adversary: Adversary,
    cancel_mid_emission: bool,
) -> Result<AdversaryRun, ExecError> {
    let sys = build_pattern_system(cfg, leased).expect("pattern builds");
    let mut exec = Executor::new(sys.automata, ExecutorConfig::default())?;

    let mut bridge = NetworkBridge::perfect();
    bridge.set_default(Box::new(AdversaryChannel {
        adversary,
        counter: 0,
    }));
    exec.set_bridge(bridge);

    let t_request = cfg.t_fb0_min + Time::seconds(1.0);
    let mut script = vec![(t_request, Root::new("cmd_request"))];
    if cancel_mid_emission {
        // Mid-emission for the nominal schedule: grant + enter + half run.
        let t_cancel = t_request + cfg.t_enter[cfg.n - 1] + cfg.t_run[cfg.n - 1] * 0.5;
        script.push((t_cancel, Root::new("cmd_cancel")));
    }
    exec.add_driver(Box::new(ScriptedDriver::new("driver", script)));

    let horizon = cfg.max_risky_dwelling() * 3.0 + cfg.t_fb0_min;
    let trace = exec.run_until(horizon)?;
    let report = check_pte(&trace, &cfg.pte_spec());
    Ok(AdversaryRun {
        adversary,
        report,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Theorem 1 under every adversary: the leased, condition-satisfying
    /// system stays PTE-safe no matter which event class dies.
    #[test]
    fn leased_system_safe_under_every_adversary() {
        let cfg = LeaseConfig::case_study();
        for adversary in Adversary::ALL {
            for cancel in [false, true] {
                let run = run_with_adversary(&cfg, true, adversary, cancel).unwrap();
                assert!(
                    run.report.is_safe(),
                    "adversary {adversary} (cancel={cancel}): {}",
                    run.report
                );
            }
        }
    }

    /// The unleased system breaks under the cancel-killing adversary the
    /// Section V narrative describes.
    #[test]
    fn unleased_system_breaks_under_cancel_adversary() {
        let cfg = LeaseConfig::case_study();
        // Drop all cancels; the initializer's local cancel still stops it,
        // but the participant's stop commands never arrive.
        let run = run_with_adversary(&cfg, false, Adversary::AllCancels, true).unwrap();
        assert!(!run.report.is_safe(), "{}", run.report);
    }

    /// Drop-everything with leases: nobody enters risky (the request never
    /// arrives), trivially safe — and a good control that the adversary
    /// really is total.
    #[test]
    fn everything_adversary_blocks_procedure() {
        let cfg = LeaseConfig::case_study();
        let run = run_with_adversary(&cfg, true, Adversary::Everything, false).unwrap();
        assert!(run.report.is_safe());
        let init_idx = run.trace.index_of("initializer").unwrap();
        assert!(run.trace.risky_intervals(init_idx).is_empty());
    }

    /// The approval-killing adversary leaves the participant leased but
    /// the initializer never starts; the participant's lease must expire
    /// on its own.
    #[test]
    fn approval_adversary_exercises_participant_lease() {
        let cfg = LeaseConfig::case_study();
        let run = run_with_adversary(&cfg, true, Adversary::AllApprovals, false).unwrap();
        assert!(run.report.is_safe(), "{}", run.report);
        // Participant was leased yet the initializer stayed safe…
        let init_idx = run.trace.index_of("initializer").unwrap();
        assert!(run.trace.risky_intervals(init_idx).is_empty());
        // …and the supervisor aborted after T_wait without the approval.
        assert!(!run
            .trace
            .events_with_root("evt_xi0_to_xi1_abort")
            .is_empty());
    }

    #[test]
    fn kill_classification() {
        assert!(Adversary::AllCancels.kills("evt_xi0_to_xi1_cancel", 0));
        assert!(Adversary::AllCancels.kills("evt_xi2_to_xi0_cancel", 0));
        assert!(!Adversary::AllCancels.kills("evt_xi2_to_xi0_exit", 0));
        assert!(Adversary::AllApprovals.kills("evt_xi1_to_xi0_lease_approve", 0));
        assert!(Adversary::AllApprovals.kills("evt_xi0_to_xi2_approve", 0));
        assert!(!Adversary::AllApprovals.kills("evt_xi0_to_xi1_lease_req", 0));
        assert!(Adversary::AllRequests.kills("evt_xi2_to_xi0_req", 0));
        assert!(Adversary::Alternating.kills("anything", 1));
        assert!(!Adversary::Alternating.kills("anything", 2));
        assert!(!Adversary::Nothing.kills("evt_xi0_to_xi1_cancel", 0));
    }
}
