//! Bounded-exhaustive exploration of loss decisions.
//!
//! Random and targeted loss both sample the space of failure modes; this
//! module *enumerates* it, bounded: the fates of the first `k` wireless
//! transmissions (in global transmission order) are driven through all
//! `2^k` drop/deliver assignments, with both possible defaults for the
//! tail. Every assignment of a condition-satisfying, leased pattern
//! system must be PTE-safe — a small-scope model-checking complement to
//! Theorem 1's proof.

use crossbeam::thread;
use parking_lot::Mutex;
use pte_core::monitor::check_pte;
use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_sim::network::{Channel, Delivery, DropReason, Message, NetworkBridge};
use pte_zones::{CancelToken, Progress, ProgressFn};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One counter-example (never expected for valid configurations).
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The decision bitmask (bit `i` = drop the `i`-th transmission).
    pub mask: u64,
    /// The tail default (true = drop transmissions beyond the mask).
    pub default_drop: bool,
    /// Rendered monitor report.
    pub report: String,
}

/// Result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct ExplorationResult {
    /// Number of complete runs executed.
    pub runs: usize,
    /// Effective decision depth `k` (the requested depth clamped to
    /// [`MAX_DEPTH`]).
    pub depth: usize,
    /// The depth the caller asked for. When it exceeds [`MAX_DEPTH`]
    /// the exploration is *truncated*: only the first `depth`
    /// transmissions were enumerated, and claiming full enumeration at
    /// `requested_depth` would overstate the result.
    pub requested_depth: usize,
    /// Counter-examples found (must be empty for valid configurations).
    pub violations: Vec<CounterExample>,
    /// Infrastructure failures (executor construction, run execution).
    /// Any entry poisons [`ExplorationResult::all_safe`]: a run that
    /// could not execute must never count as a safe run.
    pub errors: Vec<String>,
    /// `true` when a [`CancelToken`] ended the exploration before every
    /// assignment ran. A cancelled exploration is *partial*: any
    /// violations it did find are real, but the absence of violations
    /// proves nothing, so cancellation poisons
    /// [`ExplorationResult::all_safe`] too.
    pub cancelled: bool,
}

impl ExplorationResult {
    /// `true` if every explored assignment executed *and* satisfied the
    /// PTE rules. Infrastructure errors make this `false` — a broken
    /// build is not a verified one — and so does cancellation, because
    /// a partial enumeration is not an enumeration.
    pub fn all_safe(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty() && !self.cancelled
    }

    /// `true` when the requested depth was clamped to [`MAX_DEPTH`] and
    /// the enumeration therefore covers fewer transmissions than asked.
    pub fn truncated(&self) -> bool {
        self.requested_depth > self.depth
    }
}

impl fmt::Display for ExplorationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs at depth {}{}{}: {}",
            self.runs,
            self.depth,
            if self.truncated() {
                format!(
                    " (TRUNCATED from requested depth {}; deeper fates not enumerated)",
                    self.requested_depth
                )
            } else {
                String::new()
            },
            if self.cancelled {
                " (CANCELLED; enumeration incomplete)"
            } else {
                ""
            },
            match (self.violations.is_empty(), self.errors.is_empty()) {
                (true, true) => "all PTE-safe".to_string(),
                (false, true) => format!("{} VIOLATIONS", self.violations.len()),
                (true, false) => format!(
                    "{} EXECUTION ERRORS, exploration aborted (first: {})",
                    self.errors.len(),
                    self.errors[0]
                ),
                // Both: the falsification matters most, but the errors
                // mean coverage was incomplete — show both.
                (false, false) => format!(
                    "{} VIOLATIONS plus {} EXECUTION ERRORS (first: {})",
                    self.violations.len(),
                    self.errors.len(),
                    self.errors[0]
                ),
            }
        )
    }
}

/// A channel drawing decisions from a run-global shared script: the
/// `i`-th wireless transmission of the whole run takes decision bit `i`.
struct SharedScript {
    state: Arc<Mutex<(u64, usize)>>, // (mask, cursor)
    depth: usize,
    default_drop: bool,
}

impl Channel for SharedScript {
    fn transmit(&mut self, _msg: &Message, now: Time) -> Delivery {
        let mut guard = self.state.lock();
        let (mask, cursor) = *guard;
        let dropped = if cursor < self.depth {
            (mask >> cursor) & 1 == 1
        } else {
            self.default_drop
        };
        guard.1 = cursor + 1;
        drop(guard);
        if dropped {
            Delivery::Dropped {
                reason: DropReason::Scripted,
            }
        } else {
            Delivery::Delivered { at: now }
        }
    }

    fn describe(&self) -> String {
        format!("shared-script(depth={})", self.depth)
    }
}

/// Runs one assignment; `Ok(Some(report))` when the run violates PTE,
/// `Ok(None)` when it is safe. Infrastructure failures — the pattern
/// not building, the executor refusing the system, the run aborting —
/// are **errors**, never silently treated as safe runs: the old
/// `Executor::new(..).ok()?` here once turned a broken build into a
/// clean verification verdict.
pub(crate) fn run_assignment(
    cfg: &LeaseConfig,
    leased: bool,
    mask: u64,
    depth: usize,
    default_drop: bool,
    cancel_mid_emission: bool,
) -> Result<Option<String>, String> {
    let sys = build_pattern_system(cfg, leased)
        .map_err(|e| format!("pattern system failed to build: {e:?}"))?;
    execute_assignment(
        sys.automata,
        cfg,
        mask,
        depth,
        default_drop,
        cancel_mid_emission,
    )
}

/// [`run_assignment`] past the build step: drives an already-built
/// automata network through one loss assignment.
fn execute_assignment(
    automata: Vec<pte_hybrid::HybridAutomaton>,
    cfg: &LeaseConfig,
    mask: u64,
    depth: usize,
    default_drop: bool,
    cancel_mid_emission: bool,
) -> Result<Option<String>, String> {
    let mut exec = Executor::new(automata, ExecutorConfig::default())
        .map_err(|e| format!("executor construction failed: {e}"))?;

    let state = Arc::new(Mutex::new((mask, 0usize)));
    let mut bridge = NetworkBridge::perfect();
    bridge.set_default(Box::new(SharedScript {
        state,
        depth,
        default_drop,
    }));
    exec.set_bridge(bridge);

    let t_request = cfg.t_fb0_min + Time::seconds(1.0);
    let mut script = vec![(t_request, Root::new("cmd_request"))];
    if cancel_mid_emission {
        let t_cancel = t_request + cfg.t_enter[cfg.n - 1] + cfg.t_run[cfg.n - 1] * 0.5;
        script.push((t_cancel, Root::new("cmd_cancel")));
    }
    exec.add_driver(Box::new(ScriptedDriver::new("driver", script)));

    let horizon = cfg.max_risky_dwelling() * 3.0 + cfg.t_fb0_min;
    let trace = exec
        .run_until(horizon)
        .map_err(|e| format!("pattern run failed to execute: {e}"))?;
    let report = check_pte(&trace, &cfg.pte_spec());
    if report.is_safe() {
        Ok(None)
    } else {
        Ok(Some(format!("{report}")))
    }
}

/// Hard cap on the decision depth: `2^20 × 2` is already over two
/// million runs. Requests beyond it are clamped and reported as
/// truncated (see [`ExplorationResult::truncated`]).
pub const MAX_DEPTH: usize = 20;

/// Clamps a requested decision depth to [`MAX_DEPTH`].
fn clamp_depth(requested: usize) -> usize {
    requested.min(MAX_DEPTH)
}

/// Explores all `2^depth × 2 (tail defaults)` loss assignments of the
/// pattern system in parallel.
///
/// `depth` is capped at [`MAX_DEPTH`] to keep explorations tractable
/// (typical verification uses 8–12); a clamped request is surfaced via
/// [`ExplorationResult::requested_depth`] and its `Display`, so a
/// depth-25 request is never silently reported as fully enumerated.
pub fn explore(
    cfg: &LeaseConfig,
    leased: bool,
    depth: usize,
    cancel_mid_emission: bool,
) -> ExplorationResult {
    explore_with(cfg, leased, depth, cancel_mid_emission, None, None)
}

/// [`explore`] with cooperative cancellation and streaming progress.
///
/// * `cancel` — polled by every worker between runs: once fired, the
///   exploration stops within one assignment per worker and the result
///   comes back with [`ExplorationResult::cancelled`] set (which
///   poisons `all_safe`; violations already found are still reported).
/// * `progress` — invoked by one designated worker between its own
///   assignments: [`Progress::settled`] counts completed runs,
///   [`Progress::frontier`] the assignments still to execute.
///
/// Violations are returned in `(mask, default_drop)` order, so the
/// first entry — and hence any witness derived from it — is
/// deterministic regardless of worker scheduling.
pub fn explore_with(
    cfg: &LeaseConfig,
    leased: bool,
    depth: usize,
    cancel_mid_emission: bool,
    cancel: Option<&CancelToken>,
    progress: Option<&ProgressFn>,
) -> ExplorationResult {
    let requested_depth = depth;
    let depth = clamp_depth(requested_depth);
    let total: u64 = 1 << depth;
    let violations: Mutex<Vec<CounterExample>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let runs = AtomicUsize::new(0);
    // Set only when a worker abandons unfinished work because the token
    // fired — a token that fires after the last run completes leaves a
    // *complete* enumeration, which must not be reported as truncated.
    let stopped_early = AtomicBool::new(false);
    let started = Instant::now();

    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    thread::scope(|scope| {
        for w in 0..n_workers {
            let violations = &violations;
            let errors = &errors;
            let runs = &runs;
            let stopped_early = &stopped_early;
            scope.spawn(move |_| {
                let mut round = 0usize;
                let mut mask = w as u64;
                'masks: while mask < total {
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        stopped_early.store(true, Ordering::Release);
                        break 'masks;
                    }
                    // One designated worker streams progress; the
                    // others just run. Observational only, so the
                    // verdict stays deterministic.
                    if w == 0 {
                        if let Some(report) = progress {
                            let settled = runs.load(Ordering::Relaxed);
                            report(&Progress {
                                round,
                                settled,
                                frontier: (total as usize * 2).saturating_sub(settled),
                                elapsed: started.elapsed(),
                            });
                        }
                        round += 1;
                    }
                    for default_drop in [false, true] {
                        match run_assignment(
                            cfg,
                            leased,
                            mask,
                            depth,
                            default_drop,
                            cancel_mid_emission,
                        ) {
                            Ok(None) => {
                                runs.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Some(report)) => {
                                runs.fetch_add(1, Ordering::Relaxed);
                                violations.lock().push(CounterExample {
                                    mask,
                                    default_drop,
                                    report,
                                });
                            }
                            Err(e) => {
                                // An execution failure is systemic (it
                                // does not depend on the loss mask):
                                // record it and stop this worker rather
                                // than collect millions of copies.
                                errors.lock().push(format!(
                                    "mask {mask:#b} default_drop={default_drop}: {e}"
                                ));
                                break 'masks;
                            }
                        }
                    }
                    mask += n_workers as u64;
                }
            });
        }
    })
    .expect("worker panicked");

    let mut violations = violations.into_inner();
    violations.sort_by_key(|v| (v.mask, v.default_drop));
    ExplorationResult {
        runs: runs.into_inner(),
        depth,
        requested_depth,
        violations,
        errors: errors.into_inner(),
        cancelled: stopped_early.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scope Theorem 1: all 2^6 × 2 assignments of the first six
    /// transmissions are PTE-safe for the leased case-study configuration.
    #[test]
    fn depth6_exploration_all_safe() {
        let cfg = LeaseConfig::case_study();
        let result = explore(&cfg, true, 6, false);
        assert_eq!(result.runs, 2 * (1 << 6));
        assert!(result.all_safe(), "{result}");
    }

    /// Same depth with a mid-emission cancel command in the schedule.
    #[test]
    fn depth5_with_cancel_all_safe() {
        let cfg = LeaseConfig::case_study();
        let result = explore(&cfg, true, 5, true);
        assert!(result.all_safe(), "{result}");
    }

    /// The unleased system has at least one violating assignment within
    /// the same bound (losing the participant's stop commands).
    #[test]
    fn unleased_has_counterexample() {
        let cfg = LeaseConfig::case_study();
        let result = explore(&cfg, false, 6, true);
        assert!(
            !result.all_safe(),
            "exhaustive search must find the no-lease failure"
        );
        // Deterministic: the same exploration finds the same count.
        let again = explore(&cfg, false, 6, true);
        assert_eq!(result.violations.len(), again.violations.len());
    }

    #[test]
    fn depth_is_capped() {
        let cfg = LeaseConfig::case_study();
        // depth 0: only the two tail defaults.
        let result = explore(&cfg, true, 0, false);
        assert_eq!(result.runs, 2);
        assert!(result.all_safe());
    }

    /// The depth clamp is recorded, not hidden: requested and effective
    /// depths are both reported, and the `Display` of a truncated
    /// exploration says so explicitly.
    #[test]
    fn truncated_depth_is_surfaced() {
        assert_eq!(clamp_depth(25), MAX_DEPTH);
        assert_eq!(clamp_depth(MAX_DEPTH), MAX_DEPTH);
        assert_eq!(clamp_depth(3), 3);

        // An in-range request is reported as exactly what ran…
        let cfg = LeaseConfig::case_study();
        let result = explore(&cfg, true, 3, false);
        assert_eq!(result.depth, 3);
        assert_eq!(result.requested_depth, 3);
        assert!(!result.truncated());
        assert!(!format!("{result}").contains("TRUNCATED"), "{result}");

        // …while a clamped request advertises the truncation (shaped
        // result; actually running 2^20 × 2 simulations here would take
        // hours, and `explore` wires `requested_depth` through the same
        // struct path).
        let truncated = ExplorationResult {
            runs: 2 << MAX_DEPTH,
            depth: MAX_DEPTH,
            requested_depth: 25,
            ..ExplorationResult::default()
        };
        assert!(truncated.truncated());
        let text = format!("{truncated}");
        assert!(text.contains("TRUNCATED"), "{text}");
        assert!(text.contains("25"), "{text}");
    }

    /// An executor that cannot even be constructed is an error, not a
    /// safe run — the regression fixed here used to turn it into a
    /// clean verdict via `Executor::new(..).ok()?`.
    #[test]
    fn executor_construction_error_propagates() {
        let cfg = LeaseConfig::case_study();
        let err = execute_assignment(Vec::new(), &cfg, 0, 4, false, false)
            .expect_err("an empty network must not execute");
        assert!(
            err.contains("executor construction failed"),
            "unexpected error text: {err}"
        );
    }

    /// Any recorded error poisons `all_safe` and is visible in the
    /// rendered result.
    #[test]
    fn errors_poison_all_safe() {
        let result = ExplorationResult {
            runs: 8,
            depth: 2,
            requested_depth: 2,
            errors: vec!["mask 0b0 default_drop=false: executor construction failed".into()],
            ..ExplorationResult::default()
        };
        assert!(!result.all_safe());
        let text = format!("{result}");
        assert!(text.contains("EXECUTION ERRORS"), "{text}");
    }
}
