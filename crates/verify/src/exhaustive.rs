//! Bounded-exhaustive exploration of loss decisions.
//!
//! Random and targeted loss both sample the space of failure modes; this
//! module *enumerates* it, bounded: the fates of the first `k` wireless
//! transmissions (in global transmission order) are driven through all
//! `2^k` drop/deliver assignments, with both possible defaults for the
//! tail. Every assignment of a condition-satisfying, leased pattern
//! system must be PTE-safe — a small-scope model-checking complement to
//! Theorem 1's proof.

use crossbeam::thread;
use parking_lot::Mutex;
use pte_core::monitor::check_pte;
use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_sim::network::{Channel, Delivery, DropReason, Message, NetworkBridge};
use std::fmt;
use std::sync::Arc;

/// One counter-example (never expected for valid configurations).
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The decision bitmask (bit `i` = drop the `i`-th transmission).
    pub mask: u64,
    /// The tail default (true = drop transmissions beyond the mask).
    pub default_drop: bool,
    /// Rendered monitor report.
    pub report: String,
}

/// Result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct ExplorationResult {
    /// Number of complete runs executed.
    pub runs: usize,
    /// Decision depth `k`.
    pub depth: usize,
    /// Counter-examples found (must be empty for valid configurations).
    pub violations: Vec<CounterExample>,
}

impl ExplorationResult {
    /// `true` if every explored assignment satisfied the PTE rules.
    pub fn all_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ExplorationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs at depth {}: {}",
            self.runs,
            self.depth,
            if self.all_safe() {
                "all PTE-safe".to_string()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// A channel drawing decisions from a run-global shared script: the
/// `i`-th wireless transmission of the whole run takes decision bit `i`.
struct SharedScript {
    state: Arc<Mutex<(u64, usize)>>, // (mask, cursor)
    depth: usize,
    default_drop: bool,
}

impl Channel for SharedScript {
    fn transmit(&mut self, _msg: &Message, now: Time) -> Delivery {
        let mut guard = self.state.lock();
        let (mask, cursor) = *guard;
        let dropped = if cursor < self.depth {
            (mask >> cursor) & 1 == 1
        } else {
            self.default_drop
        };
        guard.1 = cursor + 1;
        drop(guard);
        if dropped {
            Delivery::Dropped {
                reason: DropReason::Scripted,
            }
        } else {
            Delivery::Delivered { at: now }
        }
    }

    fn describe(&self) -> String {
        format!("shared-script(depth={})", self.depth)
    }
}

/// Runs one assignment; returns the monitor report if it violates PTE.
fn run_assignment(
    cfg: &LeaseConfig,
    leased: bool,
    mask: u64,
    depth: usize,
    default_drop: bool,
    cancel_mid_emission: bool,
) -> Option<String> {
    let sys = build_pattern_system(cfg, leased).expect("pattern builds");
    let mut exec = Executor::new(sys.automata, ExecutorConfig::default()).ok()?;

    let state = Arc::new(Mutex::new((mask, 0usize)));
    let mut bridge = NetworkBridge::perfect();
    bridge.set_default(Box::new(SharedScript {
        state,
        depth,
        default_drop,
    }));
    exec.set_bridge(bridge);

    let t_request = cfg.t_fb0_min + Time::seconds(1.0);
    let mut script = vec![(t_request, Root::new("cmd_request"))];
    if cancel_mid_emission {
        let t_cancel = t_request + cfg.t_enter[cfg.n - 1] + cfg.t_run[cfg.n - 1] * 0.5;
        script.push((t_cancel, Root::new("cmd_cancel")));
    }
    exec.add_driver(Box::new(ScriptedDriver::new("driver", script)));

    let horizon = cfg.max_risky_dwelling() * 3.0 + cfg.t_fb0_min;
    let trace = exec.run_until(horizon).expect("pattern run executes");
    let report = check_pte(&trace, &cfg.pte_spec());
    if report.is_safe() {
        None
    } else {
        Some(format!("{report}"))
    }
}

/// Explores all `2^depth × 2 (tail defaults)` loss assignments of the
/// pattern system in parallel.
///
/// `depth` is capped at 20 (over a million runs) to keep explorations
/// tractable; typical verification uses 8–12.
pub fn explore(
    cfg: &LeaseConfig,
    leased: bool,
    depth: usize,
    cancel_mid_emission: bool,
) -> ExplorationResult {
    let depth = depth.min(20);
    let total: u64 = 1 << depth;
    let violations: Mutex<Vec<CounterExample>> = Mutex::new(Vec::new());
    let runs = Mutex::new(0usize);

    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    thread::scope(|scope| {
        for w in 0..n_workers {
            let violations = &violations;
            let runs = &runs;
            scope.spawn(move |_| {
                let mut local_runs = 0usize;
                let mut mask = w as u64;
                while mask < total {
                    for default_drop in [false, true] {
                        local_runs += 1;
                        if let Some(report) = run_assignment(
                            cfg,
                            leased,
                            mask,
                            depth,
                            default_drop,
                            cancel_mid_emission,
                        ) {
                            violations.lock().push(CounterExample {
                                mask,
                                default_drop,
                                report,
                            });
                        }
                    }
                    mask += n_workers as u64;
                }
                *runs.lock() += local_runs;
            });
        }
    })
    .expect("worker panicked");

    ExplorationResult {
        runs: runs.into_inner(),
        depth,
        violations: violations.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scope Theorem 1: all 2^6 × 2 assignments of the first six
    /// transmissions are PTE-safe for the leased case-study configuration.
    #[test]
    fn depth6_exploration_all_safe() {
        let cfg = LeaseConfig::case_study();
        let result = explore(&cfg, true, 6, false);
        assert_eq!(result.runs, 2 * (1 << 6));
        assert!(result.all_safe(), "{result}");
    }

    /// Same depth with a mid-emission cancel command in the schedule.
    #[test]
    fn depth5_with_cancel_all_safe() {
        let cfg = LeaseConfig::case_study();
        let result = explore(&cfg, true, 5, true);
        assert!(result.all_safe(), "{result}");
    }

    /// The unleased system has at least one violating assignment within
    /// the same bound (losing the participant's stop commands).
    #[test]
    fn unleased_has_counterexample() {
        let cfg = LeaseConfig::case_study();
        let result = explore(&cfg, false, 6, true);
        assert!(
            !result.all_safe(),
            "exhaustive search must find the no-lease failure"
        );
        // Deterministic: the same exploration finds the same count.
        let again = explore(&cfg, false, 6, true);
        assert_eq!(result.violations.len(), again.violations.len());
    }

    #[test]
    fn depth_is_capped() {
        let cfg = LeaseConfig::case_study();
        // depth 0: only the two tail defaults.
        let result = explore(&cfg, true, 0, false);
        assert_eq!(result.runs, 2);
        assert!(result.all_safe());
    }
}
