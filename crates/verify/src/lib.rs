//! # pte-verify
//!
//! Verification substrate for the lease design pattern — three
//! complementary ways of hunting PTE violations:
//!
//! * [`montecarlo`] — seeded randomized batches (parallelized with
//!   crossbeam) with Wilson confidence intervals over failure rates; the
//!   statistical check of Theorem 1 and the engine behind the loss-sweep
//!   ablation;
//! * [`exhaustive`] — bounded-exhaustive exploration: every
//!   drop/deliver assignment of the first `k` wireless transmissions is
//!   enumerated (both tail defaults), a model-checking-flavoured
//!   complement to random testing;
//! * [`adversary`] — targeted worst-case loss strategies (drop all
//!   cancels, all aborts, all exit reports, …), mechanizing the failure
//!   narratives of Section V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod exhaustive;
pub mod montecarlo;
pub mod report;

pub use adversary::{run_with_adversary, Adversary};
pub use exhaustive::{explore, ExplorationResult};
pub use montecarlo::{run_batch, BatchSummary, TrialOutcome};
