//! # pte-verify
//!
//! Verification substrate for the lease design pattern — four
//! complementary ways of hunting PTE violations:
//!
//! * [`montecarlo`] — seeded randomized batches (parallelized with
//!   crossbeam) with Wilson confidence intervals over failure rates; the
//!   statistical check of Theorem 1 and the engine behind the loss-sweep
//!   ablation;
//! * [`exhaustive`] — bounded-exhaustive exploration: every
//!   drop/deliver assignment of the first `k` wireless transmissions is
//!   enumerated (both tail defaults), a model-checking-flavoured
//!   complement to random testing;
//! * [`adversary`] — targeted worst-case loss strategies (drop all
//!   cancels, all aborts, all exit reports, …), mechanizing the failure
//!   narratives of Section V;
//! * [`symbolic`] — zone-based symbolic model checking (via
//!   [`pte_zones`]): the pattern automata are lowered to a network of
//!   timed automata and the zone graph is explored with DBMs, covering
//!   **all** real-valued timings, **all** drop/deliver fates, and every
//!   driver schedule at once. Where the first three backends sample or
//!   bound the behaviour space, this one closes it — a `Safe` verdict is
//!   a proof over the timed abstraction, and an `Unsafe` verdict comes
//!   with a symbolic counter-example trace.
//!
//! | backend        | timings covered    | loss fates covered  | verdict strength |
//! |----------------|--------------------|---------------------|------------------|
//! | `montecarlo`   | sampled            | sampled (Bernoulli) | statistical      |
//! | `exhaustive`   | one concrete run   | all `2^k` prefixes  | bounded proof    |
//! | `adversary`    | one concrete run   | targeted strategies | falsification    |
//! | `symbolic`     | all (dense time)   | all (unbounded)     | proof            |
//!
//! The [`api`] module is the one front door over all of them: a
//! [`VerificationRequest`] (scenario-or-config × query × backend
//! selection × unified budget) returns one [`VerificationReport`],
//! with portfolio racing, cooperative cancellation, and streaming
//! progress.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod api;
pub mod exhaustive;
pub mod montecarlo;
pub mod report;
pub mod symbolic;

pub use adversary::{run_with_adversary, Adversary};
pub use api::{
    unknown_contract_diagnostic, AnalysisSummary, ApiError, ArtifactIo, BackendSel, BackendStats,
    Budget, Inconclusive, ProgressSink, Query, Verdict, VerificationReport, VerificationRequest,
};
pub use exhaustive::{explore, explore_with, ExplorationResult};
pub use montecarlo::{run_batch, BatchSummary, TrialOutcome};
pub use pte_contracts::{CompositionalStats, ContractCacheStats, EnvProfile};
pub use pte_zones::{
    new_sink, ArtifactError, ArtifactSink, CancelToken, PassedArtifact, Progress, ProgressFn,
    ARTIFACT_VERSION,
};
pub use symbolic::{
    cross_check, cross_check_with, verify_symbolic, verify_symbolic_with, CrossCheck,
    Extrapolation, Limits, SymbolicOutcome, TrippedLimit,
};
