//! Seeded Monte-Carlo batches with confidence intervals.
//!
//! A batch runs one trial function across many seeds in parallel and
//! aggregates counts. The headline use is the statistical face of
//! Theorem 1: *no* seed of a condition-satisfying, lease-armed system may
//! produce a PTE violation, at any loss rate.

use crossbeam::thread;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of one seeded trial, as consumed by the aggregator.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// PTE violations observed.
    pub failures: usize,
    /// Risky procedures completed (laser emissions in the case study).
    pub emissions: usize,
    /// Lease-expiry rescues.
    pub lease_stops: usize,
    /// Empirical packet loss rate of the trial.
    pub loss_rate: f64,
}

/// Aggregate of a Monte-Carlo batch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Number of trials run.
    pub trials: usize,
    /// Trials with at least one PTE violation.
    pub failing_trials: usize,
    /// Total violations across all trials.
    pub total_failures: usize,
    /// Total emissions across all trials.
    pub total_emissions: usize,
    /// Total lease rescues across all trials.
    pub total_lease_stops: usize,
    /// Mean empirical loss rate.
    pub mean_loss_rate: f64,
    /// Wilson 95% confidence interval on the per-trial failure
    /// probability.
    pub failure_ci: (f64, f64),
}

impl BatchSummary {
    /// Point estimate of the per-trial failure probability.
    pub fn failure_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failing_trials as f64 / self.trials as f64
        }
    }
}

impl fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trials: {} failing ({:.1}%, 95% CI [{:.3}, {:.3}]), \
             {} emissions, {} lease stops, mean loss {:.1}%",
            self.trials,
            self.failing_trials,
            self.failure_rate() * 100.0,
            self.failure_ci.0,
            self.failure_ci.1,
            self.total_emissions,
            self.total_lease_stops,
            self.mean_loss_rate * 100.0
        )
    }
}

/// Wilson score interval for a binomial proportion.
pub fn wilson_ci(successes: usize, n: usize, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Runs `n_seeds` trials in parallel (seeds `base_seed .. base_seed + n`)
/// and aggregates. `trial` must be deterministic per seed.
pub fn run_batch<F>(n_seeds: usize, base_seed: u64, trial: F) -> BatchSummary
where
    F: Fn(u64) -> TrialOutcome + Sync,
{
    let results: Mutex<Vec<TrialOutcome>> = Mutex::new(Vec::with_capacity(n_seeds));
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(n_seeds.max(1));

    thread::scope(|scope| {
        for w in 0..n_workers {
            let results = &results;
            let trial = &trial;
            scope.spawn(move |_| {
                let mut local = Vec::new();
                let mut k = w;
                while k < n_seeds {
                    local.push(trial(base_seed + k as u64));
                    k += n_workers;
                }
                results.lock().extend(local);
            });
        }
    })
    .expect("worker panicked");

    let results = results.into_inner();
    let mut summary = BatchSummary {
        trials: results.len(),
        ..Default::default()
    };
    let mut loss_sum = 0.0;
    for r in &results {
        if r.failures > 0 {
            summary.failing_trials += 1;
        }
        summary.total_failures += r.failures;
        summary.total_emissions += r.emissions;
        summary.total_lease_stops += r.lease_stops;
        loss_sum += r.loss_rate;
    }
    if !results.is_empty() {
        summary.mean_loss_rate = loss_sum / results.len() as f64;
    }
    summary.failure_ci = wilson_ci(summary.failing_trials, summary.trials, 1.96);
    summary
}

/// Convenience adapter: a case-study trial as a [`TrialOutcome`].
pub fn case_study_outcome(trial: &pte_tracheotomy::emulation::TrialConfig) -> TrialOutcome {
    let r = pte_tracheotomy::emulation::run_trial(trial).expect("trial executes");
    TrialOutcome {
        failures: r.failures,
        emissions: r.emissions,
        lease_stops: r.evt_to_stop + r.vent_lease_stops,
        loss_rate: r.loss_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_hybrid::Time;
    use pte_tracheotomy::emulation::{LossEnvironment, TrialConfig};

    #[test]
    fn wilson_basics() {
        let (lo, hi) = wilson_ci(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.05, "rule of three-ish: {hi}");
        let (lo, hi) = wilson_ci(50, 100, 1.96);
        assert!(lo > 0.40 && hi < 0.60);
        let (lo, hi) = wilson_ci(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (_, hi) = wilson_ci(100, 100, 1.96);
        assert!(hi > 0.96);
    }

    #[test]
    fn batch_aggregates_deterministically() {
        let f = |seed: u64| TrialOutcome {
            failures: seed.is_multiple_of(3) as usize,
            emissions: 2,
            lease_stops: 1,
            loss_rate: 0.25,
        };
        let a = run_batch(30, 100, f);
        let b = run_batch(30, 100, f);
        assert_eq!(a.failing_trials, b.failing_trials);
        assert_eq!(a.trials, 30);
        assert_eq!(a.total_emissions, 60);
        assert_eq!(a.total_lease_stops, 30);
        assert!((a.mean_loss_rate - 0.25).abs() < 1e-12);
        // seeds 100..130, multiples of 3: 102,105,...,129 → 10.
        assert_eq!(a.failing_trials, 10);
    }

    /// Theorem 1, statistically: short leased trials under heavy loss
    /// never violate PTE.
    #[test]
    fn leased_trials_never_fail_under_heavy_loss() {
        let summary = run_batch(8, 7_000, |seed| {
            case_study_outcome(&TrialConfig {
                duration: Time::seconds(240.0),
                mean_on: Time::seconds(15.0),
                mean_off: Some(Time::seconds(8.0)),
                leased: true,
                loss: LossEnvironment::Bernoulli(0.4),
                seed,
            })
        });
        assert_eq!(summary.failing_trials, 0, "{summary}");
        assert_eq!(summary.trials, 8);
    }

    /// The comparison arm: unleased trials under the same loss do fail.
    #[test]
    fn unleased_trials_fail_under_heavy_loss() {
        let summary = run_batch(8, 7_000, |seed| {
            case_study_outcome(&TrialConfig {
                duration: Time::seconds(600.0),
                mean_on: Time::seconds(15.0),
                mean_off: Some(Time::seconds(8.0)),
                leased: false,
                loss: LossEnvironment::Bernoulli(0.4),
                seed,
            })
        });
        assert!(summary.failing_trials > 0, "{summary}");
    }
}
