//! One front door: the unified verification session layer.
//!
//! Every backend of this crate — the analytic c1–c7 check, the
//! bounded-exhaustive explorer, the Monte-Carlo sampler, and the
//! symbolic zone engine — historically exposed its own entry point,
//! verdict type, and budget knobs, and every consumer (`campaign`,
//! `zprobe`, the agreement tests) re-implemented the same dispatch and
//! verdict-mapping glue. This module replaces that glue with a single
//! query API in the style of ECDAR/Reveaal: build a
//! [`VerificationRequest`] (scenario-or-config × [`Query`] ×
//! [`BackendSel`] × [`Budget`]), call [`VerificationRequest::run`], and
//! get one [`VerificationReport`] (verdict, witness, per-backend stats,
//! tripped limits). Requests and reports are serde-serializable, so a
//! service layer can ship them over the wire unchanged.
//!
//! ## Backend conclusiveness caveats
//!
//! The backends differ in what their verdicts *mean* — the report
//! records which backend produced the verdict precisely because the
//! strength differs:
//!
//! * **analytic** ([`pte_core::pattern::check_conditions`]) is
//!   *conservative*: c1–c7 are sufficient, not necessary, and Theorem 1
//!   covers the leased arm only. It can conclude [`Verdict::Safe`]
//!   (leased arm, conditions satisfied) in microseconds but can never
//!   falsify — a violated condition yields
//!   [`Inconclusive::Unknown`], not `Unsafe`.
//! * **exhaustive** ([`crate::exhaustive::explore`]) enumerates all
//!   `2^depth × 2` loss fates of one driver script. Its `Unsafe` is a
//!   real, replayable counter-example; its `Safe` is a *bounded* proof
//!   — the recorded [`BackendStats::depth`] says how bounded.
//! * **montecarlo** samples random loss assignments. It can only
//!   falsify: zero observed violations yield
//!   [`Inconclusive::Unknown`] with a Wilson confidence interval,
//!   never `Safe`.
//! * **symbolic** ([`crate::symbolic::verify_symbolic_with`]) covers
//!   all real-valued timings and all loss fates at once: both `Safe`
//!   and `Unsafe` are proof-grade over the timed abstraction.
//! * **compositional** ([`pte_contracts::check_compositional`])
//!   verifies each device against a small contract automaton and the
//!   safety property on abstract per-pair networks; when the argument
//!   closes, its `Safe` is proof-grade like the symbolic engine's, at
//!   a fraction of the state count (linear instead of exponential in
//!   `N`). When it does not close it *falls back to the monolithic
//!   symbolic engine* under the same limits, so it is never spuriously
//!   safe — and never reports `Unsafe` from the abstraction alone.
//!   Explicit-only (never chosen by `Auto`/`Portfolio`).
//!
//! ## Portfolio racing and cancellation
//!
//! [`BackendSel::Portfolio`] races every backend applicable to the
//! query and returns the **first conclusive** verdict
//! ([`Verdict::Safe`] or [`Verdict::Unsafe`]), firing a cooperative
//! [`CancelToken`] at the losers — the symbolic engine stops within one
//! BFS layer, the exhaustive explorer and the sampler within one run
//! per worker. Racers are admitted through `available_parallelism - 1`
//! slots in expected-cost order (analytic → symbolic → exhaustive →
//! Monte-Carlo), so a narrow machine tries the cheap proof-grade
//! backends first instead of drowning them in simulator threads, and a
//! wide machine races everything at once; a racer cancelled before its
//! slot opens never runs at all. Losing backends surface in
//! [`VerificationReport::backends`] as `Inconclusive(Cancelled)` with
//! whatever stats they had accumulated; the report's top-level verdict
//! and witness come from the winner alone, so partial loser output
//! never leaks into the result. [`BackendSel::Auto`] and `Portfolio`
//! requests default to `max_workers = 0` (one symbolic worker per CPU)
//! so the front door is fast out of the box; an explicit
//! [`Budget::max_workers`] always wins.
//!
//! ## Example
//!
//! ```
//! use pte_verify::api::{BackendSel, VerificationRequest, Verdict};
//!
//! let report = VerificationRequest::scenario("case-study")
//!     .leased(true)
//!     .backend(BackendSel::Symbolic)
//!     .max_states(60_000)
//!     .run()
//!     .expect("case-study is a registry scenario");
//! assert_eq!(report.verdict, Verdict::Safe);
//! assert!(report.winner.as_deref() == Some("symbolic"));
//! ```

use crate::exhaustive;
use crate::montecarlo::wilson_ci;
use pte_contracts::{
    check_compositional, CompositionalLimits, CompositionalStats, CompositionalVerdict, EnvProfile,
    RefineLimits, PROFILE_NAMES,
};
use pte_core::pattern::{build_pattern_system, check_conditions, LeaseConfig};
use pte_tracheotomy::registry;
use pte_zones::{
    analyze_lease_pattern, check_monitored, lower_network, ArtifactSink, CancelToken, Limits,
    LocationReachMonitor, ModelAnalysis, PassedArtifact, Progress, ProgressFn, Scheduler,
    SymbolicVerdict, TrippedLimit, ZonesError,
};
use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bounded-exhaustive decision depth when [`Budget::depth`] is
/// unset (the `campaign` default: `2^6 × 2 = 128` runs).
pub const DEFAULT_DEPTH: usize = 6;

/// Default Monte-Carlo trial count when [`Budget::trials`] is unset.
pub const DEFAULT_TRIALS: usize = 64;

/// Loss-decision depth of one Monte-Carlo trial: each trial drives a
/// random assignment of the first `MC_MASK_DEPTH` wireless
/// transmissions (plus a random tail default) through the simulator.
pub const MC_MASK_DEPTH: usize = 16;

/// What to check.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// The paper's PTE safety rules (Rule 1 bounded dwelling plus
    /// per-pair proper temporal embedding) — every backend applies.
    PteSafety,
    /// Plain location reachability: is any `(automaton, location
    /// name-prefix)` target reachable? Symbolic-only (the zone engine
    /// composes a [`LocationReachMonitor`]); `Verdict::Unsafe` means
    /// *reachable* (with a witness trace), `Verdict::Safe` means
    /// unreachable over all timings and loss fates.
    LocationReach {
        /// `(automaton name, location name-prefix)` targets.
        targets: Vec<(String, String)>,
    },
    /// The analytic c1–c7 feasibility check alone (arm-independent:
    /// conditions constrain the configuration, not the lease arm).
    /// `Verdict::Safe` means every condition holds.
    ConditionCheck,
}

impl Query {
    /// Short name used in error messages.
    fn name(&self) -> &'static str {
        match self {
            Query::PteSafety => "pte-safety",
            Query::LocationReach { .. } => "location-reach",
            Query::ConditionCheck => "condition-check",
        }
    }
}

/// Which backend(s) to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendSel {
    /// The analytic c1–c7 check (conservative; see the module docs).
    Analytic,
    /// The bounded-exhaustive loss-fate explorer.
    Exhaustive,
    /// The Monte-Carlo loss-fate sampler (falsification only).
    MonteCarlo,
    /// The symbolic zone engine (proof-grade both ways).
    Symbolic,
    /// Compositional assume-guarantee verification
    /// ([`pte_contracts::check_compositional`]): per-device contract
    /// refinement plus small abstract pair checks, falling back to the
    /// monolithic symbolic engine whenever the argument has a gap — so
    /// its `Safe` is proof-grade and it can never be *spuriously* safe.
    /// Explicit-only: `Auto`/`Portfolio` never select it.
    Compositional,
    /// Pick one backend for the query: `ConditionCheck` → analytic,
    /// everything else → symbolic, with `max_workers` defaulting to `0`
    /// (auto).
    Auto,
    /// Race every applicable backend on threads; first conclusive
    /// verdict wins, losers are cancelled cooperatively.
    Portfolio,
}

/// Unified resource budget across all backends. Every field is
/// optional; unset fields resolve to per-backend defaults (documented
/// per field). The struct is plain data — serializable, clonable,
/// reusable across requests.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Symbolic state budget. Unset: the scenario's
    /// [`registry::Scenario::recommended_budget`] when the request
    /// names a registry scenario, otherwise the engine default
    /// ([`Limits::default`]).
    pub max_states: Option<usize>,
    /// Wall-clock budget in milliseconds. Applied natively by the
    /// symbolic engine (checked at BFS round boundaries) and as a
    /// global deadline by `Portfolio` (all racers are cancelled when it
    /// expires). Stand-alone exhaustive / Monte-Carlo runs are bounded
    /// by their enumeration counts (`depth`, `trials`) instead.
    pub max_wall_ms: Option<u64>,
    /// Symbolic worker threads (`0` = one per CPU). Unset: `0` for
    /// [`BackendSel::Auto`] / [`BackendSel::Portfolio`] requests, `1`
    /// (the reproducible library default) otherwise.
    pub max_workers: Option<usize>,
    /// Bounded-exhaustive decision depth. Unset: [`DEFAULT_DEPTH`].
    pub depth: Option<usize>,
    /// Monte-Carlo trial count. Unset: [`DEFAULT_TRIALS`].
    pub trials: Option<usize>,
    /// Monte-Carlo base seed (trials use `seed..seed + trials`).
    pub seed: u64,
    /// Symbolic symmetry quotient ([`Limits::symmetry`]). Unset: the
    /// engine default (on — and self-gating, so asymmetric models are
    /// unaffected either way).
    pub symmetry: Option<bool>,
    /// Run the symbolic search under the work-stealing frontier
    /// scheduler ([`pte_zones::Scheduler::WorkStealing`]) instead of
    /// the default round barrier. Verdicts and counter-example text
    /// are identical; per-round statistics are not bit-stable, which
    /// is why the knob is opt-in. Unset: round barrier.
    pub work_stealing: Option<bool>,
    /// Seed the symbolic search from a prior run's passed-list
    /// artifact when the scheduler supplies one (see
    /// [`VerificationRequest::parent_key`] and
    /// [`VerificationRequest::run_with_artifacts`]). Warm starts are
    /// verdict-preserving by construction — the engine transfers a
    /// proof only when it re-validates against the new model, and
    /// falls back to a cold search otherwise — so the knob exists to
    /// *opt out* (`Some(false)` forces cold even when an artifact is
    /// available) and to separate warm rows in the report-cache key.
    /// Unset: warm when an artifact is supplied.
    pub warm_start: Option<bool>,
    /// Compositional refinement budget: state-**pair** cap per
    /// `Device ⊑ Contract` check
    /// ([`pte_contracts::RefineLimits::max_pairs`]). Unset: the
    /// refinement checker's default. Other backends ignore it.
    pub refine_pairs: Option<usize>,
}

/// A verification request: *what system* (registry scenario or inline
/// configuration) × *which arm* × *what property* ([`Query`]) × *which
/// backend(s)* ([`BackendSel`]) × *how much work* ([`Budget`]).
///
/// Build one with [`VerificationRequest::scenario`] or
/// [`VerificationRequest::config`] and the chained setters, then call
/// [`VerificationRequest::run`] (or
/// [`VerificationRequest::run_with`] for cancellation and streaming
/// progress).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerificationRequest {
    /// Registry scenario name (mutually exclusive with `config`).
    pub scenario: Option<String>,
    /// Inline lease configuration (mutually exclusive with `scenario`).
    pub config: Option<LeaseConfig>,
    /// `true` checks the leased arm, `false` the lease-stripped
    /// baseline.
    pub leased: bool,
    /// The property to check.
    pub query: Query,
    /// The backend selection.
    pub backend: BackendSel,
    /// The resource budget.
    pub budget: Budget,
    /// [`VerificationRequest::cache_key`] of a prior request whose
    /// passed-list artifact this run should warm-start from. Purely a
    /// scheduler hint: the API layer never resolves keys to artifacts
    /// itself (a daemon looks the key up in its persistent cache and
    /// passes the artifact through
    /// [`VerificationRequest::run_with_artifacts`]), but the key is
    /// folded into this request's own cache key so warm and cold runs
    /// of the same configuration never share a cached report. Elided
    /// (`null`) on the wire when unset, so pre-existing serialized
    /// requests still deserialize.
    pub parent_key: Option<String>,
    /// Environment-contract profile for [`BackendSel::Compositional`]
    /// (one of [`pte_contracts::PROFILE_NAMES`]): how devices *outside*
    /// the safeguard pair under scrutiny are abstracted — `"top"`
    /// (default; untimed chatter contracts) or `"lease-client"` (timed
    /// lease contracts everywhere). Other backends ignore it; unknown
    /// names fail the request with [`ApiError::UnknownContract`].
    /// Elided (`null`) on the wire when unset.
    pub contract: Option<String>,
}

/// Why a backend (or the whole request) failed to reach a verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Inconclusive {
    /// A [`CancelToken`] ended the search (portfolio loser, caller
    /// cancellation, or an expired portfolio deadline).
    Cancelled,
    /// A resource limit tripped before the search finished; the string
    /// names the limit (e.g. `"state budget (max_states = 10)"`).
    Budget(String),
    /// The backend failed to execute (build/lowering/simulation
    /// infrastructure error) — never conflated with a verdict.
    Error(String),
    /// The backend does not support the query (e.g. Monte-Carlo asked
    /// for `LocationReach`).
    Unsupported(String),
    /// The backend ran to completion but its method cannot decide this
    /// instance (analytic conservatism, Monte-Carlo found nothing).
    Unknown(String),
}

impl fmt::Display for Inconclusive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inconclusive::Cancelled => write!(f, "cancelled"),
            Inconclusive::Budget(s) => write!(f, "budget exhausted: {s}"),
            Inconclusive::Error(s) => write!(f, "backend error: {s}"),
            Inconclusive::Unsupported(s) => write!(f, "unsupported: {s}"),
            Inconclusive::Unknown(s) => write!(f, "undecided: {s}"),
        }
    }
}

/// The unified three-valued verdict. What `Safe`/`Unsafe` *prove*
/// depends on the backend that produced them — see the module docs'
/// conclusiveness table; [`VerificationReport::winner`] records which
/// backend it was.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The property holds (to the producing backend's strength: a
    /// symbolic proof, a bounded-exhaustive sweep, or analytic
    /// sufficiency).
    Safe,
    /// The property is violated; [`VerificationReport::witness`] (and
    /// the per-backend [`BackendStats::witness`]) carries the
    /// counter-example.
    Unsafe,
    /// No verdict — the reason says why. Never conflated with `Safe`:
    /// a cancelled or budget-starved search cannot certify anything.
    Inconclusive(Inconclusive),
}

impl Verdict {
    /// `true` for `Safe` / `Unsafe` (what a portfolio race accepts as a
    /// win).
    pub fn is_conclusive(&self) -> bool {
        matches!(self, Verdict::Safe | Verdict::Unsafe)
    }

    /// Four-way status label (`"safe"` / `"unsafe"` / `"error"` /
    /// `"inconclusive"`), the vocabulary the campaign table and JSON
    /// use.
    pub fn status(&self) -> &'static str {
        match self {
            Verdict::Safe => "safe",
            Verdict::Unsafe => "unsafe",
            Verdict::Inconclusive(Inconclusive::Error(_)) => "error",
            Verdict::Inconclusive(_) => "inconclusive",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe => write!(f, "safe"),
            Verdict::Unsafe => write!(f, "unsafe"),
            Verdict::Inconclusive(r) => write!(f, "inconclusive ({r})"),
        }
    }
}

/// One backend's contribution to a report: its verdict, its native
/// rendered verdict text, and its resource/stat counters. Fields that a
/// backend does not populate stay at their zero defaults (e.g.
/// `states` for the exhaustive explorer).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BackendStats {
    /// Backend name: `"analytic"`, `"exhaustive"`, `"montecarlo"`, or
    /// `"symbolic"`.
    pub backend: String,
    /// The backend's verdict (see the module docs for per-backend
    /// strength).
    pub verdict: Verdict,
    /// The backend's native rendered verdict — exactly what its own
    /// `Display` prints (`zprobe` echoes this verbatim).
    pub rendered: String,
    /// Counter-example / witness text, for `Unsafe` verdicts.
    pub witness: Option<String>,
    /// Wall time of this backend's run, milliseconds.
    pub wall_ms: f64,
    /// Symbolic: settled states.
    pub states: usize,
    /// Symbolic: discrete transitions fired.
    pub transitions: usize,
    /// Symbolic: unexplored frontier at truncation (0 when complete).
    pub frontier: usize,
    /// Symbolic: peak passed-list bytes (minimal constraint form).
    pub peak_passed_bytes: usize,
    /// Symbolic: the same zones as full matrices (compression
    /// denominator).
    pub peak_passed_bytes_full: usize,
    /// Symbolic: passed-list entries transferred from a prior run's
    /// artifact instead of being re-explored. `0` on every cold run;
    /// equal to `states` when a warm start fully transferred the proof.
    pub warm_seeded: usize,
    /// Exhaustive: completed runs. Monte-Carlo: completed trials.
    pub runs: usize,
    /// Exhaustive: effective decision depth.
    pub depth: usize,
    /// Exhaustive / Monte-Carlo: violating runs found.
    pub violations: usize,
    /// Exhaustive / Monte-Carlo: infrastructure errors.
    pub errors: usize,
    /// The tripped limit, rendered, when a budget ended the search.
    pub tripped: Option<String>,
    /// Build / execution error text, when the backend failed to run.
    pub error: Option<String>,
    /// `true` when a [`CancelToken`] stopped this backend (portfolio
    /// losers report their final progress snapshot here and then go
    /// quiet).
    pub cancelled: bool,
    /// Compositional: per-stage counters (refinement pairs explored,
    /// contracts deduplicated/cached, abstract pair-network states).
    /// Populated even when the run fell back to the monolithic engine —
    /// the counters then describe the attempt that triggered the
    /// fallback. `None` for every other backend.
    pub compositional: Option<CompositionalStats>,
}

impl Default for Verdict {
    fn default() -> Verdict {
        Verdict::Inconclusive(Inconclusive::Unknown("not run".into()))
    }
}

/// What the [static model analysis](pte_zones::analysis) found about
/// the verified network — clock reduction results and lint counts,
/// attached to every report whose system lowers (`pte-lint` renders the
/// full diagnostics; the report carries the summary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisSummary {
    /// Network clocks before the global clock reduction.
    pub clocks_before: usize,
    /// Network clocks after dropping unread and merging equivalent ones.
    pub clocks_after: usize,
    /// Clocks dropped (never read by a reachable guard or invariant).
    pub clocks_dropped: usize,
    /// Clocks merged into an equivalent representative.
    pub clocks_merged: usize,
    /// Discretely unreachable locations across all automata.
    pub locations_unreachable: usize,
    /// Lint diagnostics at `error` severity.
    pub errors: usize,
    /// Lint diagnostics at `warning` severity.
    pub warnings: usize,
    /// Lint diagnostics at `info` severity.
    pub infos: usize,
}

impl From<&ModelAnalysis> for AnalysisSummary {
    fn from(a: &ModelAnalysis) -> AnalysisSummary {
        let s = a.stats();
        AnalysisSummary {
            clocks_before: s.clocks_before,
            clocks_after: s.clocks_after,
            clocks_dropped: s.clocks_dropped,
            clocks_merged: s.clocks_merged,
            locations_unreachable: s.locations_unreachable,
            errors: s.errors,
            warnings: s.warnings,
            infos: s.infos,
        }
    }
}

/// The unified verification report: one top-level verdict (+ witness)
/// plus per-backend stats. Serializable as-is.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// The registry scenario name, when the request used one.
    pub scenario: Option<String>,
    /// Which arm was checked.
    pub leased: bool,
    /// The top-level verdict — for portfolio requests, the winner's
    /// verdict verbatim.
    pub verdict: Verdict,
    /// Counter-example / witness of the deciding backend (byte-for-byte
    /// the winner's own witness; losers never contribute).
    pub witness: Option<String>,
    /// Name of the backend that produced [`VerificationReport::verdict`]
    /// (`None` when no backend reached a conclusive verdict).
    pub winner: Option<String>,
    /// The deciding backend's tripped limit, when inconclusive on
    /// budget.
    pub tripped: Option<String>,
    /// Every backend that ran, in a fixed backend order (analytic,
    /// exhaustive, montecarlo, symbolic) independent of finish order.
    pub backends: Vec<BackendStats>,
    /// Static model analysis of the checked arm (`None` only when the
    /// system does not lower to the clock-like fragment).
    pub analysis: Option<AnalysisSummary>,
    /// The compositional backend's per-stage counters, when it ran
    /// (mirrors [`BackendStats::compositional`] for convenient
    /// top-level access).
    pub compositional: Option<CompositionalStats>,
    /// End-to-end wall time of the request, milliseconds.
    pub wall_ms: f64,
}

impl VerificationReport {
    /// The stats of a backend by name, if it ran.
    pub fn backend(&self, name: &str) -> Option<&BackendStats> {
        self.backends.iter().find(|b| b.backend == name)
    }

    /// The deciding backend's stats: the winner's when there is one,
    /// otherwise the first backend that ran.
    ///
    /// # Panics
    ///
    /// Panics on an empty report (cannot happen for reports produced by
    /// [`VerificationRequest::run`]).
    pub fn primary(&self) -> &BackendStats {
        if let Some(w) = &self.winner {
            if let Some(b) = self.backend(w) {
                return b;
            }
        }
        &self.backends[0]
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verdict: {}", self.verdict)?;
        if let Some(w) = &self.winner {
            write!(f, " (by {w})")?;
        }
        writeln!(f, " in {:.1} ms", self.wall_ms)?;
        for b in &self.backends {
            writeln!(
                f,
                "  {:<10} {} ({:.1} ms){}",
                b.backend,
                b.verdict,
                b.wall_ms,
                if b.cancelled { " [cancelled]" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Request-level failures: the request itself is malformed (the
/// backends never ran). Backend-level failures are reported in-band as
/// [`Inconclusive::Error`] instead.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ApiError {
    /// The named scenario is not in the registry; `listing` is the
    /// one-line-per-scenario catalogue.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
        /// [`registry::listing`] at the time of the request.
        listing: String,
    },
    /// Neither `scenario` nor `config` was provided.
    NoSystem,
    /// Both `scenario` and `config` were provided.
    AmbiguousSystem,
    /// [`VerificationRequest::contract`] names no known environment
    /// profile (see [`pte_contracts::PROFILE_NAMES`]).
    UnknownContract {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::UnknownScenario { name, listing } => {
                write!(
                    f,
                    "{}",
                    registry::unknown_scenario_diagnostic(name, listing)
                )
            }
            ApiError::NoSystem => {
                write!(f, "request names no system: set `scenario` or `config`")
            }
            ApiError::AmbiguousSystem => write!(
                f,
                "request names two systems: set `scenario` or `config`, not both"
            ),
            ApiError::UnknownContract { name } => {
                write!(f, "{}", unknown_contract_diagnostic(name))
            }
        }
    }
}

/// The canonical unknown-contract diagnostic (shared with the daemon's
/// `Error` frame and `pte-verify-client`, like
/// [`registry::unknown_scenario_diagnostic`] is for scenarios): a
/// "did you mean" near-miss suggestion over the environment-profile
/// names, plus the available set.
pub fn unknown_contract_diagnostic(name: &str) -> String {
    let suggestion = registry::nearest_of(name, PROFILE_NAMES)
        .map(|n| format!("; did you mean `{n}`?"))
        .unwrap_or_default();
    format!(
        "unknown contract profile `{name}`{suggestion}; available profiles: {}",
        PROFILE_NAMES.join(", ")
    )
}

impl std::error::Error for ApiError {}

/// Caller-facing progress sink: `(backend name, snapshot)`. Portfolio
/// requests stream every racer's snapshots through one sink — watching
/// a loser's snapshots stop is how cancellation is observable from the
/// outside.
pub type ProgressSink = Arc<dyn Fn(&str, &Progress) + Send + Sync>;

/// Passed-list artifact plumbing for one run, threaded by schedulers
/// (like `pte-verifyd`) through
/// [`VerificationRequest::run_with_artifacts`]. Artifacts are runtime
/// objects, not request data: they never ride the serialized request
/// (a daemon resolves [`VerificationRequest::parent_key`] against its
/// own cache and hands the artifact in here), so this struct is not
/// serde-serializable by design.
#[derive(Clone, Default)]
pub struct ArtifactIo {
    /// A prior run's artifact to warm-start the symbolic engine from.
    /// Ignored when [`Budget::warm_start`] is `Some(false)`; the
    /// engine additionally re-validates it against the new model and
    /// silently runs cold when any gate fails — supplying a stale or
    /// foreign artifact can never flip a verdict.
    pub warm: Option<Arc<PassedArtifact>>,
    /// Sink that receives the passed-list artifact of this run (the
    /// transferred proof when it warm-started, the freshly captured
    /// passed list when a PTE-safety search concluded `Safe`).
    pub capture: Option<ArtifactSink>,
}

/// Schema version folded into every [`VerificationRequest::cache_key`]
/// digest. Bump it whenever the serialized shape of [`LeaseConfig`],
/// [`Query`], [`BackendSel`], or the normalized budget changes, so a
/// persisted report cache can never serve a report produced under a
/// different request schema.
pub const CACHE_KEY_VERSION: u64 = 3;

/// FNV-1a, 64-bit: the dependency-free stable hash behind
/// [`VerificationRequest::cache_key`]. Not cryptographic — the cache it
/// keys is a performance artifact, not a security boundary.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonicalizes a serialized [`Value`] tree for hashing: object
/// entries are sorted by key (so the digest is independent of field
/// order — both in wire JSON and in future struct-declaration
/// reorderings) and `null` entries are dropped (so an elided optional
/// field hashes identically to an explicit `null`). Arrays keep their
/// order: element order is data (e.g. per-entity timing vectors).
fn canonical_value(v: &Value) -> Value {
    match v {
        Value::Obj(entries) => {
            let mut entries: Vec<(String, Value)> = entries
                .iter()
                .filter(|(_, v)| !matches!(v, Value::Null))
                .map(|(k, v)| (k.clone(), canonical_value(v)))
                .collect();
            entries.sort_by(|(a, _), (b, _)| a.cmp(b));
            Value::Obj(entries)
        }
        Value::Arr(items) => Value::Arr(items.iter().map(canonical_value).collect()),
        other => other.clone(),
    }
}

/// The concrete (non-meta) backends, in report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Concrete {
    Analytic,
    Exhaustive,
    MonteCarlo,
    Symbolic,
    Compositional,
}

impl Concrete {
    fn name(self) -> &'static str {
        match self {
            Concrete::Analytic => "analytic",
            Concrete::Exhaustive => "exhaustive",
            Concrete::MonteCarlo => "montecarlo",
            Concrete::Symbolic => "symbolic",
            Concrete::Compositional => "compositional",
        }
    }
}

impl VerificationRequest {
    /// Starts a request against a named registry scenario (leased arm,
    /// [`Query::PteSafety`], [`BackendSel::Auto`], default budget).
    pub fn scenario(name: impl Into<String>) -> VerificationRequest {
        VerificationRequest {
            scenario: Some(name.into()),
            config: None,
            leased: true,
            query: Query::PteSafety,
            backend: BackendSel::Auto,
            budget: Budget::default(),
            parent_key: None,
            contract: None,
        }
    }

    /// Starts a request against an inline [`LeaseConfig`] (leased arm,
    /// [`Query::PteSafety`], [`BackendSel::Auto`], default budget).
    pub fn config(cfg: LeaseConfig) -> VerificationRequest {
        VerificationRequest {
            scenario: None,
            config: Some(cfg),
            leased: true,
            query: Query::PteSafety,
            backend: BackendSel::Auto,
            budget: Budget::default(),
            parent_key: None,
            contract: None,
        }
    }

    /// Selects the arm: `true` = leased, `false` = baseline.
    pub fn leased(mut self, leased: bool) -> Self {
        self.leased = leased;
        self
    }

    /// Sets the property to check.
    pub fn query(mut self, query: Query) -> Self {
        self.query = query;
        self
    }

    /// Sets the backend selection.
    pub fn backend(mut self, backend: BackendSel) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the whole budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the symbolic state budget.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.budget.max_states = Some(max_states);
        self
    }

    /// Sets the symbolic worker count (`0` = one per CPU).
    pub fn workers(mut self, workers: usize) -> Self {
        self.budget.max_workers = Some(workers);
        self
    }

    /// Sets the bounded-exhaustive decision depth.
    pub fn depth(mut self, depth: usize) -> Self {
        self.budget.depth = Some(depth);
        self
    }

    /// Sets the Monte-Carlo trial count.
    pub fn trials(mut self, trials: usize) -> Self {
        self.budget.trials = Some(trials);
        self
    }

    /// Sets the wall-clock budget in milliseconds (see
    /// [`Budget::max_wall_ms`] for which backends honour it).
    pub fn max_wall_ms(mut self, ms: u64) -> Self {
        self.budget.max_wall_ms = Some(ms);
        self
    }

    /// Enables or disables the symbolic symmetry quotient (see
    /// [`Budget::symmetry`]).
    pub fn symmetry(mut self, on: bool) -> Self {
        self.budget.symmetry = Some(on);
        self
    }

    /// Selects the work-stealing frontier scheduler (see
    /// [`Budget::work_stealing`]).
    pub fn work_stealing(mut self, on: bool) -> Self {
        self.budget.work_stealing = Some(on);
        self
    }

    /// Enables or disables warm-starting (see [`Budget::warm_start`]).
    pub fn warm_start(mut self, on: bool) -> Self {
        self.budget.warm_start = Some(on);
        self
    }

    /// Names the prior request (by cache key) whose passed-list
    /// artifact this run should warm-start from (see
    /// [`VerificationRequest::parent_key`]).
    pub fn warm_from(mut self, key: impl Into<String>) -> Self {
        self.parent_key = Some(key.into());
        self
    }

    /// Sets the compositional environment-contract profile (see
    /// [`VerificationRequest::contract`]).
    pub fn contract(mut self, profile: impl Into<String>) -> Self {
        self.contract = Some(profile.into());
        self
    }

    /// Sets the compositional refinement state-pair budget (see
    /// [`Budget::refine_pairs`]).
    pub fn refine_pairs(mut self, pairs: usize) -> Self {
        self.budget.refine_pairs = Some(pairs);
        self
    }

    /// Runs the request to completion.
    pub fn run(&self) -> Result<VerificationReport, ApiError> {
        self.run_with(&CancelToken::new(), None)
    }

    /// [`VerificationRequest::run`] with cooperative cancellation and
    /// streaming progress: firing `cancel` stops every running backend
    /// within one BFS layer / one run per worker and yields
    /// `Inconclusive(Cancelled)`; `progress` receives every backend's
    /// round-boundary snapshots, labelled by backend name.
    pub fn run_with(
        &self,
        cancel: &CancelToken,
        progress: Option<ProgressSink>,
    ) -> Result<VerificationReport, ApiError> {
        self.dispatch(cancel, progress, None, &ArtifactIo::default())
    }

    /// Scheduler hook: [`VerificationRequest::run_with`] with a hard cap
    /// of `slots` worker threads (clamped to ≥ 1), for callers — like
    /// `pte-verifyd` — that admit requests through a **shared** worker
    /// budget and must keep N concurrent requests from oversubscribing
    /// the machine. The cap bounds both the portfolio's racer-admission
    /// slots (replacing the per-request `available_parallelism - 1`
    /// default) and the symbolic engine's worker pool (`max_workers = 0`
    /// resolves to `slots` instead of one-per-CPU; an explicit worker
    /// count is clamped to `slots`). Verdicts and witnesses are
    /// unaffected — the engine is worker-count-deterministic — only the
    /// degree of parallelism is.
    pub fn run_with_slots(
        &self,
        cancel: &CancelToken,
        progress: Option<ProgressSink>,
        slots: usize,
    ) -> Result<VerificationReport, ApiError> {
        self.dispatch(cancel, progress, Some(slots.max(1)), &ArtifactIo::default())
    }

    /// [`VerificationRequest::run_with_slots`] plus passed-list
    /// artifact plumbing ([`ArtifactIo`]): `io.warm` seeds the
    /// symbolic engine from a prior run's proof (subject to the
    /// engine's soundness gates — an inadmissible artifact silently
    /// runs cold), `io.capture` receives this run's artifact for
    /// persistence. `slots = None` means uncapped, like
    /// [`VerificationRequest::run_with`]. Only the symbolic backend
    /// consumes either side; the other backends ignore both.
    pub fn run_with_artifacts(
        &self,
        cancel: &CancelToken,
        progress: Option<ProgressSink>,
        slots: Option<usize>,
        io: &ArtifactIo,
    ) -> Result<VerificationReport, ApiError> {
        self.dispatch(cancel, progress, slots.map(|s| s.max(1)), io)
    }

    /// Shared driver behind [`VerificationRequest::run_with`] (no cap)
    /// and [`VerificationRequest::run_with_slots`] (capped).
    fn dispatch(
        &self,
        cancel: &CancelToken,
        progress: Option<ProgressSink>,
        cap: Option<usize>,
        io: &ArtifactIo,
    ) -> Result<VerificationReport, ApiError> {
        let (cfg, scenario_name, recommended) = self.resolve()?;
        self.resolved_profile()?;
        let started = Instant::now();
        let members = self.members();
        let mut report = match self.backend {
            BackendSel::Portfolio => {
                self.run_portfolio(&cfg, recommended, &members, cancel, progress, cap, io)
            }
            _ => {
                let only = members[0];
                let stats =
                    self.run_one(only, &cfg, recommended, cancel, progress.as_ref(), cap, io);
                let conclusive = stats.verdict.is_conclusive();
                VerificationReport {
                    scenario: None,
                    leased: self.leased,
                    verdict: stats.verdict.clone(),
                    witness: stats.witness.clone(),
                    winner: conclusive.then(|| stats.backend.clone()),
                    tripped: stats.tripped.clone(),
                    backends: vec![stats],
                    analysis: None,
                    compositional: None,
                    wall_ms: 0.0,
                }
            }
        };
        report.scenario = scenario_name;
        report.compositional = report.backends.iter().find_map(|b| b.compositional.clone());
        // Attach the static analysis summary: purely static (no state
        // exploration), so it is cheap enough to compute per report and
        // deterministic per (config, arm).
        report.analysis = analyze_lease_pattern(&cfg, self.leased)
            .ok()
            .map(|a| AnalysisSummary::from(&a));
        report.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok(report)
    }

    /// Resolves the scenario-or-config pair into a configuration, the
    /// echoed scenario name, and the registry's recommended budget.
    fn resolve(&self) -> Result<(LeaseConfig, Option<String>, Option<usize>), ApiError> {
        match (&self.scenario, &self.config) {
            (Some(name), None) => {
                let s = registry::by_name(name).ok_or_else(|| ApiError::UnknownScenario {
                    name: name.clone(),
                    listing: registry::listing(),
                })?;
                Ok((s.config, Some(s.name), Some(s.recommended_budget)))
            }
            (None, Some(cfg)) => Ok((cfg.clone(), None, None)),
            (None, None) => Err(ApiError::NoSystem),
            (Some(_), Some(_)) => Err(ApiError::AmbiguousSystem),
        }
    }

    /// The concrete backends this request runs, in report order.
    fn members(&self) -> Vec<Concrete> {
        let applicable: &[Concrete] = match self.query {
            Query::PteSafety => &[
                Concrete::Analytic,
                Concrete::Exhaustive,
                Concrete::MonteCarlo,
                Concrete::Symbolic,
            ],
            Query::LocationReach { .. } => &[Concrete::Symbolic],
            Query::ConditionCheck => &[Concrete::Analytic],
        };
        match self.backend {
            BackendSel::Analytic => vec![Concrete::Analytic],
            BackendSel::Exhaustive => vec![Concrete::Exhaustive],
            BackendSel::MonteCarlo => vec![Concrete::MonteCarlo],
            BackendSel::Symbolic => vec![Concrete::Symbolic],
            // Explicit-only: the compositional route is never chosen by
            // `Auto` and never races in a `Portfolio` (its fallback
            // already *is* the monolithic symbolic engine, so racing it
            // against `Symbolic` would only duplicate work).
            BackendSel::Compositional => vec![Concrete::Compositional],
            BackendSel::Auto => vec![match self.query {
                Query::ConditionCheck => Concrete::Analytic,
                _ => Concrete::Symbolic,
            }],
            BackendSel::Portfolio => applicable.to_vec(),
        }
    }

    /// The effective symbolic worker count: an explicit
    /// [`Budget::max_workers`] wins; otherwise `Auto`/`Portfolio`
    /// default to `0` (one worker per CPU) and the explicit single
    /// backends to the engine's reproducible default of `1`. Public so
    /// schedulers can account for a request before running it (`0`
    /// means "as wide as allowed" — see
    /// [`VerificationRequest::worker_cost`] for the machine-resolved
    /// slot count).
    pub fn resolved_workers(&self) -> usize {
        self.budget.max_workers.unwrap_or(match self.backend {
            BackendSel::Auto | BackendSel::Portfolio => 0,
            _ => 1,
        })
    }

    /// The number of worker slots this request occupies on *this*
    /// machine when run uncapped — what a shared-budget scheduler
    /// should reserve before calling
    /// [`VerificationRequest::run_with_slots`] with the grant. A
    /// portfolio costs its racer-admission slots
    /// (`min(available_parallelism - 1, members)`); a symbolic request
    /// its resolved worker count (`0` → one per CPU); the
    /// simulation-fan-out backends (exhaustive, Monte-Carlo) reserve
    /// the whole machine because their internal worker pools are
    /// machine-wide; the analytic check is one slot.
    pub fn worker_cost(&self) -> usize {
        let ap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        let members = self.members();
        match self.backend {
            BackendSel::Portfolio => ap.saturating_sub(1).max(1).min(members.len()),
            _ => match members[0] {
                Concrete::Analytic => 1,
                Concrete::Symbolic | Concrete::Compositional => match self.resolved_workers() {
                    0 => ap,
                    w => w,
                },
                Concrete::Exhaustive | Concrete::MonteCarlo => ap,
            },
        }
    }

    /// The canonical report-cache key of this request: a 16-hex-digit
    /// FNV-1a digest of the **resolved, normalized** request —
    /// `(CACHE_KEY_VERSION, resolved LeaseConfig, leased arm, query,
    /// backend selection, normalized budget)` — so two requests that
    /// run the same search hash identically no matter how they were
    /// spelled:
    ///
    /// * field order never matters (object keys are sorted before
    ///   hashing, and `null`/elided optional fields are dropped);
    /// * a registry-scenario request and the equivalent inline-config
    ///   request collide (the scenario resolves to its config, and its
    ///   recommended state budget is folded into the normalized
    ///   budget);
    /// * unset budget fields hash as their resolved defaults
    ///   ([`DEFAULT_DEPTH`], [`DEFAULT_TRIALS`], the engine's default
    ///   state budget, the backend policy's worker default).
    ///
    /// **Stability caveats.** The digest is pinned by unit tests and
    /// stable across processes and machines *for one schema version*:
    /// it hashes the serde encoding of the request, so renaming or
    /// reordering-with-different-names a field, changing a float's
    /// shortest-round-trip `Display`, or changing budget defaults all
    /// change digests — bump [`CACHE_KEY_VERSION`] when they do. It is
    /// **not** collision-resistant against adversaries (FNV-1a); use it
    /// for caching, not authentication. `max_workers` is part of the
    /// key out of conservatism even though verdicts are
    /// worker-count-deterministic, so differently-parallel runs never
    /// share a (timing-bearing) cached report.
    ///
    /// Fails like [`VerificationRequest::run`] does when the request
    /// names no system, two systems, or an unknown scenario.
    pub fn cache_key(&self) -> Result<String, ApiError> {
        let (cfg, _, recommended) = self.resolve()?;
        let profile = self.resolved_profile()?;
        let num = |u: u64| Value::Num(Number::U(u));
        let mut budget = vec![
            (
                "max_states".to_string(),
                num(self
                    .budget
                    .max_states
                    .or(recommended)
                    .unwrap_or(Limits::default().max_states) as u64),
            ),
            (
                "max_workers".to_string(),
                num(self.resolved_workers() as u64),
            ),
            (
                "depth".to_string(),
                num(self.budget.depth.unwrap_or(DEFAULT_DEPTH) as u64),
            ),
            (
                "trials".to_string(),
                num(self.budget.trials.unwrap_or(DEFAULT_TRIALS) as u64),
            ),
            ("seed".to_string(), num(self.budget.seed)),
            (
                "symmetry".to_string(),
                Value::Bool(self.resolved_symmetry()),
            ),
            (
                "work_stealing".to_string(),
                Value::Bool(self.resolved_scheduler() == Scheduler::WorkStealing),
            ),
            (
                "refine_pairs".to_string(),
                num(self
                    .budget
                    .refine_pairs
                    .unwrap_or(RefineLimits::default().max_pairs) as u64),
            ),
        ];
        if let Some(wall) = self.budget.max_wall_ms {
            budget.push(("max_wall_ms".to_string(), num(wall)));
        }
        if let Some(warm) = self.budget.warm_start {
            budget.push(("warm_start".to_string(), Value::Bool(warm)));
        }
        // The parent key separates a warm re-verification from a cold
        // run of the same request: their verdicts agree but their stats
        // (states, wall time, warm_seeded) do not, so they must never
        // share a cached report. `Value::Null` for the common unset
        // case is dropped by canonicalization, pinning pre-warm-start
        // digests.
        let parent = match &self.parent_key {
            Some(k) => Value::Str(k.clone()),
            None => Value::Null,
        };
        let tuple = Value::Obj(vec![
            ("v".to_string(), num(CACHE_KEY_VERSION)),
            ("config".to_string(), cfg.to_value()),
            ("leased".to_string(), Value::Bool(self.leased)),
            ("query".to_string(), self.query.to_value()),
            ("backend".to_string(), self.backend.to_value()),
            ("budget".to_string(), Value::Obj(budget)),
            ("parent".to_string(), parent),
            // Resolved, not raw: an elided `contract` and an explicit
            // `"top"` name the same run, so they share a cached report.
            (
                "contract".to_string(),
                Value::Str(profile.name().to_string()),
            ),
        ]);
        let json = serde_json::to_string(&canonical_value(&tuple))
            .expect("canonical request value serializes");
        Ok(format!("{:016x}", fnv1a64(json.as_bytes())))
    }

    /// Builds the symbolic engine limits for this request. `cap` is the
    /// scheduler grant from [`VerificationRequest::run_with_slots`]:
    /// it resolves an auto (`0`) worker count and clamps an explicit
    /// one.
    fn limits(
        &self,
        recommended: Option<usize>,
        cancel: CancelToken,
        progress: Option<ProgressFn>,
        cap: Option<usize>,
        io: &ArtifactIo,
    ) -> Limits {
        let workers = match (self.resolved_workers(), cap) {
            (w, None) => w,
            (0, Some(c)) => c,
            (w, Some(c)) => w.min(c),
        };
        Limits {
            max_states: self
                .budget
                .max_states
                .or(recommended)
                .unwrap_or(Limits::default().max_states),
            max_workers: workers,
            max_wall: self.budget.max_wall_ms.map(Duration::from_millis),
            cancel: Some(cancel),
            progress,
            symmetry: self.resolved_symmetry(),
            scheduler: self.resolved_scheduler(),
            warm_start: if self.budget.warm_start.unwrap_or(true) {
                io.warm.clone()
            } else {
                None
            },
            capture: io.capture.clone(),
            ..Limits::default()
        }
    }

    /// The symmetry knob with its default applied (the engine default:
    /// on).
    fn resolved_symmetry(&self) -> bool {
        self.budget.symmetry.unwrap_or(Limits::default().symmetry)
    }

    /// The environment-contract profile with its default applied
    /// (`"top"`), or [`ApiError::UnknownContract`] for an
    /// unrecognized name — validated for *every* request (not only
    /// compositional ones) so a typo surfaces immediately instead of
    /// silently riding along unused.
    fn resolved_profile(&self) -> Result<EnvProfile, ApiError> {
        match &self.contract {
            None => Ok(EnvProfile::default()),
            Some(name) => {
                EnvProfile::parse(name).map_err(|name| ApiError::UnknownContract { name })
            }
        }
    }

    /// The scheduler the request resolves to (default: round barrier).
    fn resolved_scheduler(&self) -> Scheduler {
        if self.budget.work_stealing.unwrap_or(false) {
            Scheduler::WorkStealing
        } else {
            Scheduler::RoundBarrier
        }
    }

    /// Runs one concrete backend to completion (or cancellation).
    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        backend: Concrete,
        cfg: &LeaseConfig,
        recommended: Option<usize>,
        cancel: &CancelToken,
        progress: Option<&ProgressSink>,
        cap: Option<usize>,
        io: &ArtifactIo,
    ) -> BackendStats {
        let labelled: Option<ProgressFn> = progress.map(|sink| {
            let sink = sink.clone();
            let name = backend.name();
            Arc::new(move |p: &Progress| sink(name, p)) as ProgressFn
        });
        match backend {
            Concrete::Analytic => self.run_analytic(cfg),
            Concrete::Exhaustive => self.run_exhaustive(cfg, cancel, labelled.as_ref()),
            Concrete::MonteCarlo => self.run_montecarlo(cfg, cancel, labelled.as_ref()),
            Concrete::Symbolic => self.run_symbolic(cfg, recommended, cancel, labelled, cap, io),
            Concrete::Compositional => {
                self.run_compositional(cfg, recommended, cancel, labelled, cap, io)
            }
        }
    }

    /// The analytic backend: microsecond-fast, conservative (see the
    /// module docs).
    fn run_analytic(&self, cfg: &LeaseConfig) -> BackendStats {
        let t = Instant::now();
        let mut stats = BackendStats {
            backend: "analytic".into(),
            ..BackendStats::default()
        };
        match &self.query {
            Query::LocationReach { .. } => {
                stats.verdict = Verdict::Inconclusive(Inconclusive::Unsupported(
                    "the analytic backend checks c1–c7 only".into(),
                ));
                stats.rendered = "unsupported query".into();
            }
            Query::PteSafety | Query::ConditionCheck => {
                let report = check_conditions(cfg);
                let satisfied = report.is_satisfied();
                stats.rendered = format!("{report}");
                stats.verdict = match (&self.query, satisfied, self.leased) {
                    (Query::ConditionCheck, true, _) => Verdict::Safe,
                    (Query::PteSafety, true, true) => Verdict::Safe,
                    (Query::PteSafety, true, false) => Verdict::Inconclusive(
                        Inconclusive::Unknown("Theorem 1 covers the leased arm only".into()),
                    ),
                    _ => Verdict::Inconclusive(Inconclusive::Unknown(
                        "c1–c7 violated; the analytic check is sufficient, not necessary".into(),
                    )),
                };
            }
        }
        stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
        stats
    }

    /// The symbolic backend: [`Query::PteSafety`] through
    /// [`crate::symbolic::verify_symbolic_with`],
    /// [`Query::LocationReach`] through a composed
    /// [`LocationReachMonitor`].
    fn run_symbolic(
        &self,
        cfg: &LeaseConfig,
        recommended: Option<usize>,
        cancel: &CancelToken,
        progress: Option<ProgressFn>,
        cap: Option<usize>,
        io: &ArtifactIo,
    ) -> BackendStats {
        let t = Instant::now();
        let limits = self.limits(recommended, cancel.clone(), progress, cap, io);
        let mut stats = BackendStats {
            backend: "symbolic".into(),
            ..BackendStats::default()
        };
        let outcome: Result<SymbolicVerdict, String> = match &self.query {
            Query::PteSafety => crate::symbolic::verify_symbolic_with(cfg, self.leased, &limits)
                .map_err(|e: ZonesError| e.to_string()),
            Query::LocationReach { targets } => {
                symbolic_location_reach(cfg, self.leased, targets, &limits)
            }
            Query::ConditionCheck => {
                stats.verdict = Verdict::Inconclusive(Inconclusive::Unsupported(
                    "the symbolic backend does not evaluate c1–c7".into(),
                ));
                stats.rendered = "unsupported query".into();
                stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
                return stats;
            }
        };
        match outcome {
            Ok(verdict) => {
                stats.rendered = format!("{verdict}");
                if let Some(s) = verdict.stats() {
                    stats.states = s.states;
                    stats.transitions = s.transitions;
                    stats.frontier = s.frontier;
                    stats.peak_passed_bytes = s.peak_passed_bytes;
                    stats.peak_passed_bytes_full = s.peak_passed_bytes_full;
                    stats.warm_seeded = s.warm_seeded;
                }
                stats.verdict = match verdict {
                    SymbolicVerdict::Safe(_) => Verdict::Safe,
                    SymbolicVerdict::Unsafe(ce) => {
                        stats.witness = Some(format!("{ce}"));
                        Verdict::Unsafe
                    }
                    SymbolicVerdict::OutOfBudget { tripped, .. } => {
                        stats.tripped = Some(tripped.to_string());
                        if tripped == TrippedLimit::Cancelled {
                            stats.cancelled = true;
                            Verdict::Inconclusive(Inconclusive::Cancelled)
                        } else {
                            Verdict::Inconclusive(Inconclusive::Budget(tripped.to_string()))
                        }
                    }
                };
            }
            Err(e) => {
                stats.rendered = format!("error: {e}");
                stats.error = Some(e.clone());
                stats.verdict = Verdict::Inconclusive(Inconclusive::Error(e));
            }
        }
        stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
        stats
    }

    /// The compositional assume-guarantee backend
    /// ([`pte_contracts::check_compositional`]): `N` contract
    /// refinement checks plus `N−1` abstract pair checks. A closed
    /// argument yields a proof-grade `Safe`; any gap (failed
    /// refinement, abstract violation, tripped pair budget) falls back
    /// to the monolithic symbolic engine *under the same limits*, and
    /// the verdict is then the monolithic one verbatim — the
    /// compositional route can be slower than monolithic on a bad day,
    /// but never wrong.
    fn run_compositional(
        &self,
        cfg: &LeaseConfig,
        recommended: Option<usize>,
        cancel: &CancelToken,
        progress: Option<ProgressFn>,
        cap: Option<usize>,
        io: &ArtifactIo,
    ) -> BackendStats {
        let t = Instant::now();
        let mut stats = BackendStats {
            backend: "compositional".into(),
            ..BackendStats::default()
        };
        if !matches!(self.query, Query::PteSafety) {
            stats.verdict = Verdict::Inconclusive(Inconclusive::Unsupported(format!(
                "the compositional backend checks PTE safety only, not {}",
                self.query.name()
            )));
            stats.rendered = "unsupported query".into();
            stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
            return stats;
        }
        let profile = self
            .resolved_profile()
            .expect("contract profile validated at dispatch");
        let limits = self.limits(recommended, cancel.clone(), progress, cap, io);
        let climits = CompositionalLimits {
            // Warm-start artifacts describe the *monolithic* zone graph
            // and must not leak into the abstract pair searches; the
            // fallback path below still gets them.
            search: Limits {
                warm_start: None,
                capture: None,
                ..limits.clone()
            },
            refine: RefineLimits {
                max_pairs: self
                    .budget
                    .refine_pairs
                    .unwrap_or(RefineLimits::default().max_pairs),
                workers: match limits.max_workers {
                    0 => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    w => w,
                },
            },
        };
        match check_compositional(cfg, self.leased, profile, &climits) {
            Err(e) => {
                stats.rendered = format!("error: {e}");
                stats.error = Some(e.clone());
                stats.verdict = Verdict::Inconclusive(Inconclusive::Error(e));
            }
            Ok(out) => {
                stats.compositional = Some(out.stats.clone());
                match out.verdict {
                    CompositionalVerdict::Safe => {
                        let s = &out.stats;
                        stats.states = s.abstract_states;
                        stats.transitions = s.abstract_transitions;
                        stats.rendered = format!(
                            "SAFE (compositional, profile {}): {} device contracts hold \
                             ({} refined, {} deduplicated, {} cached; {} refinement pairs) \
                             and all {} abstract pair networks are safe \
                             ({} abstract states)",
                            profile.name(),
                            s.contracts_total,
                            s.contracts_checked,
                            s.contracts_deduped,
                            s.contracts_cached,
                            s.refine_pairs,
                            s.pair_networks,
                            s.abstract_states,
                        );
                        stats.verdict = Verdict::Safe;
                    }
                    CompositionalVerdict::Fallback {
                        reason,
                        counter_example,
                    } => {
                        // Soundness by construction: the compositional
                        // argument did not close, so the verdict comes
                        // from the monolithic engine under the same
                        // limits. The fallback reason (and refinement
                        // counter-example, if any) is preserved in the
                        // rendered text.
                        let mono: Result<SymbolicVerdict, String> =
                            crate::symbolic::verify_symbolic_with(cfg, self.leased, &limits)
                                .map_err(|e: ZonesError| e.to_string());
                        let mut rendered =
                            format!("compositional argument fell back to monolithic: {reason}\n");
                        if let Some(ce) = &counter_example {
                            rendered.push_str(ce);
                            rendered.push('\n');
                        }
                        match mono {
                            Ok(verdict) => {
                                rendered.push_str(&format!("{verdict}"));
                                if let Some(s) = verdict.stats() {
                                    stats.states = s.states;
                                    stats.transitions = s.transitions;
                                    stats.frontier = s.frontier;
                                    stats.peak_passed_bytes = s.peak_passed_bytes;
                                    stats.peak_passed_bytes_full = s.peak_passed_bytes_full;
                                    stats.warm_seeded = s.warm_seeded;
                                }
                                stats.verdict = match verdict {
                                    SymbolicVerdict::Safe(_) => Verdict::Safe,
                                    SymbolicVerdict::Unsafe(ce) => {
                                        stats.witness = Some(format!("{ce}"));
                                        Verdict::Unsafe
                                    }
                                    SymbolicVerdict::OutOfBudget { tripped, .. } => {
                                        stats.tripped = Some(tripped.to_string());
                                        if tripped == TrippedLimit::Cancelled {
                                            stats.cancelled = true;
                                            Verdict::Inconclusive(Inconclusive::Cancelled)
                                        } else {
                                            Verdict::Inconclusive(Inconclusive::Budget(
                                                tripped.to_string(),
                                            ))
                                        }
                                    }
                                };
                            }
                            Err(e) => {
                                rendered.push_str(&format!("error: {e}"));
                                stats.error = Some(e.clone());
                                stats.verdict = Verdict::Inconclusive(Inconclusive::Error(e));
                            }
                        }
                        stats.rendered = rendered;
                    }
                }
            }
        }
        stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
        stats
    }

    /// The bounded-exhaustive backend.
    fn run_exhaustive(
        &self,
        cfg: &LeaseConfig,
        cancel: &CancelToken,
        progress: Option<&ProgressFn>,
    ) -> BackendStats {
        let t = Instant::now();
        let mut stats = BackendStats {
            backend: "exhaustive".into(),
            ..BackendStats::default()
        };
        if !matches!(self.query, Query::PteSafety) {
            stats.verdict = Verdict::Inconclusive(Inconclusive::Unsupported(format!(
                "the exhaustive backend checks PTE safety only, not {}",
                self.query.name()
            )));
            stats.rendered = "unsupported query".into();
            stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
            return stats;
        }
        let depth = self.budget.depth.unwrap_or(DEFAULT_DEPTH);
        let result =
            exhaustive::explore_with(cfg, self.leased, depth, false, Some(cancel), progress);
        stats.rendered = format!("{result}");
        stats.runs = result.runs;
        stats.depth = result.depth;
        stats.violations = result.violations.len();
        stats.errors = result.errors.len();
        stats.cancelled = result.cancelled;
        stats.verdict = if let Some(v) = result.violations.first() {
            // Violations come back in (mask, default_drop) order, so
            // this witness is deterministic for completed explorations.
            stats.witness = Some(format!(
                "mask {:#b} default_drop={}: {}",
                v.mask, v.default_drop, v.report
            ));
            Verdict::Unsafe
        } else if result.cancelled {
            stats.tripped = Some("cancellation token".into());
            Verdict::Inconclusive(Inconclusive::Cancelled)
        } else if let Some(e) = result.errors.first() {
            stats.error = Some(e.clone());
            Verdict::Inconclusive(Inconclusive::Error(e.clone()))
        } else {
            Verdict::Safe
        };
        stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
        stats
    }

    /// The Monte-Carlo backend: `trials` random loss assignments
    /// (seeded, deterministic per seed), falsification only.
    fn run_montecarlo(
        &self,
        cfg: &LeaseConfig,
        cancel: &CancelToken,
        progress: Option<&ProgressFn>,
    ) -> BackendStats {
        let t = Instant::now();
        let mut stats = BackendStats {
            backend: "montecarlo".into(),
            ..BackendStats::default()
        };
        if !matches!(self.query, Query::PteSafety) {
            stats.verdict = Verdict::Inconclusive(Inconclusive::Unsupported(format!(
                "the Monte-Carlo backend checks PTE safety only, not {}",
                self.query.name()
            )));
            stats.rendered = "unsupported query".into();
            stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
            return stats;
        }
        let trials = self.budget.trials.unwrap_or(DEFAULT_TRIALS);
        let outcome =
            sample_loss_fates(cfg, self.leased, trials, self.budget.seed, cancel, progress);
        stats.runs = outcome.completed;
        stats.violations = outcome.violations.len();
        stats.errors = outcome.errors.len();
        stats.cancelled = outcome.cancelled;
        let ci = wilson_ci(outcome.violations.len(), outcome.completed.max(1), 1.96);
        stats.rendered = format!(
            "{} of {} sampled loss assignments violate PTE \
             (95% CI on the violation rate [{:.3}, {:.3}]){}",
            outcome.violations.len(),
            outcome.completed,
            ci.0,
            ci.1,
            if outcome.cancelled {
                " (CANCELLED)"
            } else {
                ""
            }
        );
        stats.verdict = if let Some((seed, report)) = outcome.violations.first() {
            stats.witness = Some(format!("seed {seed}: {report}"));
            Verdict::Unsafe
        } else if outcome.cancelled {
            stats.tripped = Some("cancellation token".into());
            Verdict::Inconclusive(Inconclusive::Cancelled)
        } else if let Some(e) = outcome.errors.first() {
            stats.error = Some(e.clone());
            Verdict::Inconclusive(Inconclusive::Error(e.clone()))
        } else {
            Verdict::Inconclusive(Inconclusive::Unknown(format!(
                "Monte-Carlo sampling can only falsify; 0 violations in {} trials",
                outcome.completed
            )))
        };
        stats.wall_ms = t.elapsed().as_secs_f64() * 1e3;
        stats
    }

    /// Races `members` on threads; the first conclusive verdict wins
    /// and the losers' tokens are fired. The report lists backends in
    /// member order (never finish order), and its verdict/witness are
    /// the winner's alone.
    ///
    /// Racers are admitted through `available_parallelism() - 1` slots
    /// in expected-cost order (analytic, then symbolic, then the
    /// simulation-heavy exhaustive/Monte-Carlo backends): on a wide
    /// machine every backend races at once, while on a 2-core box the
    /// cheap proof-grade backends are not starved by a wall of
    /// simulator threads — which is what keeps the portfolio within a
    /// few percent of the symbolic backend alone. A racer whose token
    /// fires before its slot opens is reported as cancelled without
    /// ever running. A scheduler `cap`
    /// ([`VerificationRequest::run_with_slots`]) replaces the
    /// `available_parallelism - 1` default outright.
    #[allow(clippy::too_many_arguments)]
    fn run_portfolio(
        &self,
        cfg: &LeaseConfig,
        recommended: Option<usize>,
        members: &[Concrete],
        cancel: &CancelToken,
        progress: Option<ProgressSink>,
        cap: Option<usize>,
        io: &ArtifactIo,
    ) -> VerificationReport {
        let started = Instant::now();
        let tokens: Vec<CancelToken> = members.iter().map(|_| CancelToken::new()).collect();
        // Propagate a caller cancellation that fired before we started.
        if cancel.is_cancelled() {
            for t in &tokens {
                t.cancel();
            }
        }
        // Expected-cost start order: indices into `members`, cheapest
        // route to a conclusive verdict first.
        let cost = |m: Concrete| match m {
            Concrete::Analytic => 0,
            // Compositional never races (see `members`), but the match
            // stays exhaustive; cost it like the symbolic engine.
            Concrete::Symbolic | Concrete::Compositional => 1,
            Concrete::Exhaustive => 2,
            Concrete::MonteCarlo => 3,
        };
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by_key(|&i| cost(members[i]));
        let slots = cap.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .saturating_sub(1)
                .max(1)
        });

        let (tx, rx) = mpsc::channel::<(usize, BackendStats)>();
        let deadline = self.budget.max_wall_ms.map(Duration::from_millis);
        let mut collected: Vec<Option<BackendStats>> = members.iter().map(|_| None).collect();
        let mut winner: Option<usize> = None;
        crossbeam::thread::scope(|scope| {
            let mut next = 0usize;
            let mut running = 0usize;
            let mut remaining = members.len();
            // Admits queued racers into free slots; a racer cancelled
            // before its slot opens is settled in place, without a
            // thread.
            let admit = |running: &mut usize,
                         next: &mut usize,
                         remaining: &mut usize,
                         collected: &mut Vec<Option<BackendStats>>| {
                while *running < slots && *next < order.len() {
                    let i = order[*next];
                    *next += 1;
                    if tokens[i].is_cancelled() {
                        collected[i] = Some(BackendStats {
                            backend: members[i].name().into(),
                            verdict: Verdict::Inconclusive(Inconclusive::Cancelled),
                            rendered: "cancelled before start".into(),
                            tripped: Some("cancellation token".into()),
                            cancelled: true,
                            ..BackendStats::default()
                        });
                        *remaining -= 1;
                        continue;
                    }
                    let tx = tx.clone();
                    let token = tokens[i].clone();
                    let progress = progress.clone();
                    let m = members[i];
                    scope.spawn(move |_| {
                        // Every racer must send exactly once, or the
                        // coordinator waits forever: a panicking backend
                        // becomes an in-band error, never a hang.
                        let stats = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.run_one(m, cfg, recommended, &token, progress.as_ref(), cap, io)
                        }))
                        .unwrap_or_else(|_| BackendStats {
                            backend: m.name().into(),
                            verdict: Verdict::Inconclusive(Inconclusive::Error(
                                "backend panicked".into(),
                            )),
                            rendered: "backend panicked".into(),
                            error: Some("backend panicked".into()),
                            ..BackendStats::default()
                        });
                        let _ = tx.send((i, stats));
                    });
                    *running += 1;
                }
            };
            admit(&mut running, &mut next, &mut remaining, &mut collected);
            while remaining > 0 {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok((i, stats)) => {
                        remaining -= 1;
                        running -= 1;
                        if winner.is_none() && stats.verdict.is_conclusive() {
                            winner = Some(i);
                            for (j, t) in tokens.iter().enumerate() {
                                if j != i {
                                    t.cancel();
                                }
                            }
                        }
                        collected[i] = Some(stats);
                        admit(&mut running, &mut next, &mut remaining, &mut collected);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        let out_of_time = deadline.is_some_and(|d| started.elapsed() > d);
                        if cancel.is_cancelled() || out_of_time {
                            for t in &tokens {
                                t.cancel();
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        })
        .expect("portfolio racer panicked");

        let backends: Vec<BackendStats> = collected
            .into_iter()
            .map(|s| s.expect("every racer reports"))
            .collect();
        let (verdict, witness, tripped, winner_name) = match winner {
            Some(i) => {
                let w = &backends[i];
                (
                    w.verdict.clone(),
                    w.witness.clone(),
                    w.tripped.clone(),
                    Some(w.backend.clone()),
                )
            }
            None => {
                // No conclusive verdict anywhere. Prefer the most
                // actionable reason, in member order: a tripped budget
                // (raise it), then an error, then cancellation, then
                // inherent undecidedness.
                let pick = |f: &dyn Fn(&BackendStats) -> bool| {
                    backends.iter().find(|b| f(b)).map(|b| b.verdict.clone())
                };
                let verdict =
                    pick(&|b| matches!(b.verdict, Verdict::Inconclusive(Inconclusive::Budget(_))))
                        .or_else(|| {
                            pick(&|b| {
                                matches!(b.verdict, Verdict::Inconclusive(Inconclusive::Error(_)))
                            })
                        })
                        .or_else(|| {
                            pick(&|b| {
                                matches!(b.verdict, Verdict::Inconclusive(Inconclusive::Cancelled))
                            })
                        })
                        .unwrap_or_else(|| {
                            Verdict::Inconclusive(Inconclusive::Unknown(
                                "no backend reached a conclusive verdict".into(),
                            ))
                        });
                let tripped = backends.iter().find_map(|b| b.tripped.clone());
                (verdict, None, tripped, None)
            }
        };
        VerificationReport {
            scenario: None,
            leased: self.leased,
            verdict,
            witness,
            winner: winner_name,
            tripped,
            backends,
            analysis: None,
            compositional: None,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// Location reachability through the symbolic engine: build, lower,
/// compose a [`LocationReachMonitor`], explore.
fn symbolic_location_reach(
    cfg: &LeaseConfig,
    leased: bool,
    targets: &[(String, String)],
    limits: &Limits,
) -> Result<SymbolicVerdict, String> {
    let sys =
        build_pattern_system(cfg, leased).map_err(|e| format!("pattern build failed: {e:?}"))?;
    let net = lower_network(&sys.automata).map_err(|e| format!("lowering failed: {e}"))?;
    let queries: Vec<(&str, &str)> = targets
        .iter()
        .map(|(a, l)| (a.as_str(), l.as_str()))
        .collect();
    let monitor = LocationReachMonitor::new(&net, &queries)?;
    check_monitored(&net, &monitor, limits)
}

/// Outcome of a Monte-Carlo sampling pass.
struct SampleOutcome {
    completed: usize,
    /// `(trial seed, rendered report)` of every violating trial, in
    /// seed order (deterministic witness for completed passes).
    violations: Vec<(u64, String)>,
    errors: Vec<String>,
    cancelled: bool,
}

/// SplitMix64: the seed-to-assignment scrambler (deterministic,
/// dependency-free).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs `trials` random loss assignments in parallel: trial `k` drives
/// the assignment derived from `splitmix64(seed + k)` — a
/// [`MC_MASK_DEPTH`]-bit drop mask plus a tail default — through the
/// simulator and checks the trace against the PTE rules.
fn sample_loss_fates(
    cfg: &LeaseConfig,
    leased: bool,
    trials: usize,
    seed: u64,
    cancel: &CancelToken,
    progress: Option<&ProgressFn>,
) -> SampleOutcome {
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let violations: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let completed = AtomicUsize::new(0);
    // Set only when a worker abandons unfinished trials on
    // cancellation — a token that fires after the last trial leaves a
    // complete (and reportable) sampling pass.
    let stopped_early = std::sync::atomic::AtomicBool::new(false);
    let started = Instant::now();
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(trials.max(1));
    crossbeam::thread::scope(|scope| {
        for w in 0..n_workers {
            let violations = &violations;
            let errors = &errors;
            let completed = &completed;
            let stopped_early = &stopped_early;
            scope.spawn(move |_| {
                let mut k = w;
                let mut round = 0usize;
                while k < trials {
                    if cancel.is_cancelled() {
                        stopped_early.store(true, Ordering::Release);
                        break;
                    }
                    if w == 0 {
                        if let Some(report) = progress {
                            let done = completed.load(Ordering::Relaxed);
                            report(&Progress {
                                round,
                                settled: done,
                                frontier: trials - done,
                                elapsed: started.elapsed(),
                            });
                        }
                        round += 1;
                    }
                    let trial_seed = seed.wrapping_add(k as u64);
                    let bits = splitmix64(trial_seed);
                    let mask = bits & ((1u64 << MC_MASK_DEPTH) - 1);
                    let default_drop = (bits >> MC_MASK_DEPTH) & 1 == 1;
                    match exhaustive::run_assignment(
                        cfg,
                        leased,
                        mask,
                        MC_MASK_DEPTH,
                        default_drop,
                        false,
                    ) {
                        Ok(None) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Some(report)) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            violations.lock().push((trial_seed, report));
                        }
                        Err(e) => {
                            errors.lock().push(format!("seed {trial_seed}: {e}"));
                            break;
                        }
                    }
                    k += n_workers;
                }
            });
        }
    })
    .expect("sampler worker panicked");
    let mut violations = violations.into_inner();
    violations.sort_by_key(|(seed, _)| *seed);
    SampleOutcome {
        completed: completed.into_inner(),
        violations,
        errors: errors.into_inner(),
        cancelled: stopped_early.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_and_portfolio_default_to_auto_workers() {
        let base = VerificationRequest::scenario("case-study");
        assert_eq!(base.clone().backend(BackendSel::Auto).resolved_workers(), 0);
        assert_eq!(
            base.clone()
                .backend(BackendSel::Portfolio)
                .resolved_workers(),
            0
        );
        assert_eq!(
            base.clone()
                .backend(BackendSel::Symbolic)
                .resolved_workers(),
            1
        );
        // An explicit worker count always wins over the defaults.
        assert_eq!(
            base.backend(BackendSel::Portfolio)
                .workers(3)
                .resolved_workers(),
            3
        );
    }

    #[test]
    fn scenario_budget_defaults_to_registry_recommendation() {
        let req = VerificationRequest::scenario("chain-4").backend(BackendSel::Symbolic);
        let (_, name, recommended) = req.resolve().unwrap();
        assert_eq!(name.as_deref(), Some("chain-4"));
        let limits = req.limits(
            recommended,
            CancelToken::new(),
            None,
            None,
            &ArtifactIo::default(),
        );
        assert_eq!(
            limits.max_states,
            registry::by_name("chain-4").unwrap().recommended_budget
        );
        // An explicit budget wins.
        let req = req.max_states(123);
        assert_eq!(
            req.limits(
                recommended,
                CancelToken::new(),
                None,
                None,
                &ArtifactIo::default()
            )
            .max_states,
            123
        );
    }

    /// A scheduler cap resolves auto workers to the grant and clamps an
    /// explicit worker count; without a cap nothing changes.
    #[test]
    fn slot_cap_resolves_and_clamps_workers() {
        let auto = VerificationRequest::scenario("case-study").backend(BackendSel::Auto);
        assert_eq!(
            auto.limits(None, CancelToken::new(), None, None, &ArtifactIo::default())
                .max_workers,
            0
        );
        assert_eq!(
            auto.limits(
                None,
                CancelToken::new(),
                None,
                Some(3),
                &ArtifactIo::default()
            )
            .max_workers,
            3
        );
        let explicit = VerificationRequest::scenario("case-study")
            .backend(BackendSel::Symbolic)
            .workers(8);
        assert_eq!(
            explicit
                .limits(
                    None,
                    CancelToken::new(),
                    None,
                    Some(2),
                    &ArtifactIo::default()
                )
                .max_workers,
            2
        );
        assert_eq!(
            explicit
                .limits(
                    None,
                    CancelToken::new(),
                    None,
                    Some(16),
                    &ArtifactIo::default()
                )
                .max_workers,
            8
        );
    }

    /// Worker-cost accounting: analytic is one slot, an explicit
    /// symbolic worker count is itself, auto and the simulation
    /// backends scale with the machine, and a portfolio costs its
    /// admission slots.
    #[test]
    fn worker_cost_accounts_for_backend_shape() {
        let ap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        let base = VerificationRequest::scenario("case-study");
        assert_eq!(base.clone().backend(BackendSel::Analytic).worker_cost(), 1);
        assert_eq!(
            base.clone()
                .backend(BackendSel::Symbolic)
                .workers(3)
                .worker_cost(),
            3
        );
        assert_eq!(base.clone().backend(BackendSel::Auto).worker_cost(), ap);
        assert_eq!(
            base.clone().backend(BackendSel::Exhaustive).worker_cost(),
            ap
        );
        let portfolio = base.backend(BackendSel::Portfolio).worker_cost();
        assert!((1..=4).contains(&portfolio), "{portfolio}");
    }

    /// The canonical cache key is invariant across request *spellings*:
    /// scenario-vs-inline-config, elided-vs-explicit defaults, and wire
    /// JSON field order all hash identically, while every semantic
    /// field separates the digest.
    #[test]
    fn cache_key_is_canonical() {
        let by_name = VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic);
        let key = by_name.cache_key().unwrap();

        // Scenario and the equivalent inline config collide — the
        // scenario's recommended budget is folded into the key.
        let by_config = VerificationRequest::config(LeaseConfig::case_study())
            .backend(BackendSel::Symbolic)
            .max_states(registry::by_name("case-study").unwrap().recommended_budget);
        assert_eq!(by_config.cache_key().unwrap(), key);

        // Spelling the resolved defaults explicitly changes nothing.
        let explicit = by_name
            .clone()
            .workers(1)
            .depth(DEFAULT_DEPTH)
            .trials(DEFAULT_TRIALS)
            .symmetry(true)
            .work_stealing(false)
            .contract("top")
            .refine_pairs(RefineLimits::default().max_pairs);
        assert_eq!(explicit.cache_key().unwrap(), key);

        // Wire JSON field order is irrelevant: a reordered request
        // parses to the same key.
        let json = serde_json::to_string(&by_name).unwrap();
        let reordered: VerificationRequest = serde_json::from_str(
            r#"{"budget":{"seed":0},"backend":"Symbolic","query":"PteSafety","leased":true,"scenario":"case-study"}"#,
        )
        .unwrap();
        assert_eq!(reordered.cache_key().unwrap(), key, "original: {json}");

        // Every semantic field separates digests.
        for other in [
            by_name.clone().leased(false),
            by_name.clone().backend(BackendSel::Portfolio),
            by_name.clone().query(Query::ConditionCheck),
            by_name.clone().max_states(99),
            by_name.clone().workers(2),
            by_name.clone().max_wall_ms(1000),
            by_name.clone().symmetry(false),
            by_name.clone().work_stealing(true),
            by_name.clone().warm_start(true),
            by_name.clone().warm_start(false),
            by_name.clone().warm_from("024ff959927ea2b6"),
            by_name.clone().backend(BackendSel::Compositional),
            by_name.clone().contract("lease-client"),
            by_name.clone().refine_pairs(17),
        ] {
            assert_ne!(other.cache_key().unwrap(), key, "{other:?}");
        }
        // Two different parents separate too — a warm chain never
        // aliases across ancestors.
        assert_ne!(
            by_name.clone().warm_from("a").cache_key().unwrap(),
            by_name.clone().warm_from("b").cache_key().unwrap()
        );
        let mut seeded = by_name.clone();
        seeded.budget.seed = 7;
        assert_ne!(seeded.cache_key().unwrap(), key);

        // Unknown scenarios fail like `run` does.
        assert!(matches!(
            VerificationRequest::scenario("no-such").cache_key(),
            Err(ApiError::UnknownScenario { .. })
        ));
    }

    /// Pins the digests themselves: a silent change to the canonical
    /// encoding (field sorting, null dropping, float rendering, budget
    /// normalization, FNV seed) is a cache-compatibility break and must
    /// show up here — bump [`CACHE_KEY_VERSION`] when one is intended.
    #[test]
    fn cache_key_digests_are_pinned() {
        let case = VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic);
        let baseline = case.clone().leased(false);
        let chain = VerificationRequest::scenario("chain-3");
        insta_eq(case.cache_key().unwrap(), "57fd3531a771a455");
        insta_eq(baseline.cache_key().unwrap(), "51fc2235f7c01bf0");
        insta_eq(chain.cache_key().unwrap(), "7e03d298c2daebd4");
    }

    /// Tiny pinned-value helper so the expected digests live in one
    /// visually-diffable place.
    fn insta_eq(actual: String, expected: &str) {
        assert_eq!(actual, expected);
    }

    #[test]
    fn request_validation_errors() {
        let unknown = VerificationRequest::scenario("no-such").run();
        let Err(ApiError::UnknownScenario { name, listing }) = unknown else {
            panic!("unknown scenario must fail: {unknown:?}");
        };
        assert_eq!(name, "no-such");
        assert!(listing.contains("case-study"));

        let mut none = VerificationRequest::scenario("case-study");
        none.scenario = None;
        assert_eq!(none.run().unwrap_err(), ApiError::NoSystem);

        let mut both = VerificationRequest::scenario("case-study");
        both.config = Some(LeaseConfig::case_study());
        assert_eq!(both.run().unwrap_err(), ApiError::AmbiguousSystem);

        // Unknown contract profiles fail every entry point — `run`,
        // `cache_key` — with a did-you-mean diagnostic, exactly like
        // unknown scenarios do.
        let typo = VerificationRequest::scenario("case-study")
            .backend(BackendSel::Compositional)
            .contract("leese-client");
        let err = typo.run().unwrap_err();
        assert_eq!(
            err,
            ApiError::UnknownContract {
                name: "leese-client".into()
            }
        );
        assert!(
            err.to_string().contains("did you mean `lease-client`?"),
            "{err}"
        );
        assert!(err.to_string().contains("top"), "{err}");
        assert!(matches!(
            typo.cache_key(),
            Err(ApiError::UnknownContract { .. })
        ));
        // A distant name gets the listing but no suggestion.
        let err = VerificationRequest::scenario("case-study")
            .contract("zzzzzz")
            .run()
            .unwrap_err();
        assert!(!err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn member_selection_follows_query_applicability() {
        let req = VerificationRequest::scenario("case-study").backend(BackendSel::Portfolio);
        assert_eq!(req.members().len(), 4);
        let req = req.query(Query::LocationReach { targets: vec![] });
        assert_eq!(req.members(), vec![Concrete::Symbolic]);
        let req = req.query(Query::ConditionCheck);
        assert_eq!(req.members(), vec![Concrete::Analytic]);
        // Auto picks one backend per query.
        let auto = VerificationRequest::scenario("case-study").backend(BackendSel::Auto);
        assert_eq!(auto.members(), vec![Concrete::Symbolic]);
        assert_eq!(
            auto.query(Query::ConditionCheck).members(),
            vec![Concrete::Analytic]
        );
    }

    #[test]
    fn analytic_condition_check_is_arm_independent() {
        for leased in [true, false] {
            let report = VerificationRequest::config(LeaseConfig::case_study())
                .leased(leased)
                .query(Query::ConditionCheck)
                .backend(BackendSel::Analytic)
                .run()
                .unwrap();
            assert_eq!(report.verdict, Verdict::Safe, "leased={leased}");
            assert_eq!(report.winner.as_deref(), Some("analytic"));
        }
        // On PteSafety the same backend only concludes for the leased arm.
        let baseline = VerificationRequest::config(LeaseConfig::case_study())
            .leased(false)
            .backend(BackendSel::Analytic)
            .run()
            .unwrap();
        assert!(!baseline.verdict.is_conclusive(), "{:?}", baseline.verdict);
    }

    #[test]
    fn montecarlo_can_only_falsify() {
        // The unleased case study violates PTE under sampled loss…
        let baseline = VerificationRequest::config(LeaseConfig::case_study())
            .leased(false)
            .backend(BackendSel::MonteCarlo)
            .trials(24)
            .run()
            .unwrap();
        assert_eq!(baseline.verdict, Verdict::Unsafe, "{baseline}");
        assert!(baseline.witness.as_deref().unwrap().starts_with("seed "));
        // …and the same sampler on the leased arm stays inconclusive:
        // zero violations are evidence, not proof.
        let leased = VerificationRequest::config(LeaseConfig::case_study())
            .leased(true)
            .backend(BackendSel::MonteCarlo)
            .trials(8)
            .run()
            .unwrap();
        assert!(
            matches!(
                leased.verdict,
                Verdict::Inconclusive(Inconclusive::Unknown(_))
            ),
            "{:?}",
            leased.verdict
        );
    }

    #[test]
    fn verdict_status_vocabulary() {
        assert_eq!(Verdict::Safe.status(), "safe");
        assert_eq!(Verdict::Unsafe.status(), "unsafe");
        assert_eq!(
            Verdict::Inconclusive(Inconclusive::Error("x".into())).status(),
            "error"
        );
        assert_eq!(
            Verdict::Inconclusive(Inconclusive::Cancelled).status(),
            "inconclusive"
        );
        assert_eq!(
            Verdict::Inconclusive(Inconclusive::Budget("b".into())).status(),
            "inconclusive"
        );
    }
}
