//! The symbolic (zone-based) verification backend.
//!
//! Thin integration of [`pte_zones`] into the verify API: where
//! [`crate::montecarlo`] samples timings and [`crate::exhaustive`]
//! enumerates the `2^k` loss fates of a prefix, the symbolic backend
//! covers *every* real-valued timing and *every* drop/deliver assignment
//! at once by exploring the zone graph of the lowered timed-automata
//! network. A `Safe` verdict is a proof over the timed abstraction; an
//! `Unsafe` verdict carries a symbolic counter-example trace.

use pte_core::pattern::LeaseConfig;
use pte_zones::{check_lease_pattern_with, SymbolicVerdict, ZonesError};
pub use pte_zones::{Extrapolation, Limits, SearchStats, TrippedLimit};
use std::fmt;

/// Runs the symbolic backend on a lease configuration with the default
/// exploration budget.
///
/// Builds the pattern system (leased or baseline), lowers it, and
/// checks PTE reachability over all timings and loss fates.
pub fn verify_symbolic(cfg: &LeaseConfig, leased: bool) -> Result<SymbolicVerdict, ZonesError> {
    check_lease_pattern_with(cfg, leased, &Limits::default())
}

/// [`verify_symbolic`] with explicit engine knobs: state / wall-clock
/// budgets, worker count (the verdict is identical for every worker
/// count), and extrapolation operator.
pub fn verify_symbolic_with(
    cfg: &LeaseConfig,
    leased: bool,
    limits: &Limits,
) -> Result<SymbolicVerdict, ZonesError> {
    check_lease_pattern_with(cfg, leased, limits)
}

/// Three-valued summary of a symbolic verdict: a truncated search is
/// *inconclusive*, which must never be conflated with a falsification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolicOutcome {
    /// Proof: no violating zone reachable.
    Safe,
    /// Falsification: a symbolic counter-example exists.
    Unsafe,
    /// Budget exhausted before the search finished — no verdict.
    Inconclusive,
}

impl From<&SymbolicVerdict> for SymbolicOutcome {
    fn from(v: &SymbolicVerdict) -> SymbolicOutcome {
        match v {
            SymbolicVerdict::Safe(_) => SymbolicOutcome::Safe,
            SymbolicVerdict::Unsafe(_) => SymbolicOutcome::Unsafe,
            SymbolicVerdict::OutOfBudget { .. } => SymbolicOutcome::Inconclusive,
        }
    }
}

/// Agreement record between the symbolic and bounded-exhaustive
/// backends on one configuration.
#[derive(Clone, Debug)]
pub struct CrossCheck {
    /// Symbolic outcome (proof-grade over the timed abstraction when
    /// conclusive).
    pub symbolic: SymbolicOutcome,
    /// Bounded-exhaustive verdict at the queried depth.
    pub exhaustive_safe: bool,
    /// Runs executed by the exhaustive backend.
    pub exhaustive_runs: usize,
    /// Symbolic states explored.
    pub symbolic_states: usize,
}

impl CrossCheck {
    /// `true` when the symbolic search proved safety.
    pub fn symbolic_safe(&self) -> bool {
        self.symbolic == SymbolicOutcome::Safe
    }

    /// `true` when both backends reached a conclusive, matching verdict.
    /// An inconclusive symbolic search never "agrees". (Disagreement
    /// with `Unsafe` can still be legitimate — the exhaustive backend
    /// only covers a bounded prefix of loss fates and a single driver
    /// script — but for the lease pattern's standard configurations the
    /// two coincide.)
    pub fn agree(&self) -> bool {
        match self.symbolic {
            SymbolicOutcome::Safe => self.exhaustive_safe,
            SymbolicOutcome::Unsafe => !self.exhaustive_safe,
            SymbolicOutcome::Inconclusive => false,
        }
    }
}

impl fmt::Display for CrossCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let symbolic = match self.symbolic {
            SymbolicOutcome::Safe => "safe",
            SymbolicOutcome::Unsafe => "UNSAFE",
            SymbolicOutcome::Inconclusive => "inconclusive",
        };
        write!(
            f,
            "symbolic: {} ({} states) | exhaustive: {} ({} runs) => {}",
            symbolic,
            self.symbolic_states,
            if self.exhaustive_safe {
                "safe"
            } else {
                "UNSAFE"
            },
            self.exhaustive_runs,
            if self.agree() { "agree" } else { "DISAGREE" },
        )
    }
}

/// Cross-checks the symbolic verdict against [`crate::exhaustive::explore`]
/// on the same configuration, with the default symbolic budget.
pub fn cross_check(
    cfg: &LeaseConfig,
    leased: bool,
    depth: usize,
    cancel_mid_emission: bool,
) -> Result<CrossCheck, ZonesError> {
    cross_check_with(cfg, leased, depth, cancel_mid_emission, &Limits::default())
}

/// [`cross_check`] with an explicit symbolic exploration budget.
pub fn cross_check_with(
    cfg: &LeaseConfig,
    leased: bool,
    depth: usize,
    cancel_mid_emission: bool,
    limits: &Limits,
) -> Result<CrossCheck, ZonesError> {
    let symbolic = check_lease_pattern_with(cfg, leased, limits)?;
    let symbolic_states = symbolic.stats().map_or(0, |s| s.states);
    let exhaustive = crate::exhaustive::explore(cfg, leased, depth, cancel_mid_emission);
    Ok(CrossCheck {
        symbolic: SymbolicOutcome::from(&symbolic),
        exhaustive_safe: exhaustive.all_safe(),
        exhaustive_runs: exhaustive.runs,
        symbolic_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The case-study lease configuration is provably safe, and the
    /// baseline provably unsafe, through the verify-facing API.
    #[test]
    fn case_study_verdicts() {
        let cfg = LeaseConfig::case_study();
        assert!(verify_symbolic(&cfg, true).unwrap().is_safe());
        let baseline = verify_symbolic(&cfg, false).unwrap();
        assert!(baseline.is_unsafe());
        if let SymbolicVerdict::Unsafe(ce) = baseline {
            // The witness is a real trace, not an empty stub.
            assert!(ce.steps.len() > 1, "{ce}");
        }
    }

    /// The verify facade surfaces the engine's passed-list memory
    /// accounting: peak bytes are reported and the minimal constraint
    /// form undercuts the full-matrix equivalent.
    #[test]
    fn search_stats_report_compressed_passed_list() {
        let cfg = LeaseConfig::case_study();
        let verdict = verify_symbolic(&cfg, true).unwrap();
        let stats = verdict.stats().expect("safe verdict carries stats");
        assert!(stats.peak_passed_bytes > 0);
        assert!(
            stats.peak_passed_bytes < stats.peak_passed_bytes_full,
            "compressed storage must undercut full matrices ({} vs {})",
            stats.peak_passed_bytes,
            stats.peak_passed_bytes_full
        );
    }

    /// A starved budget reports Inconclusive and never "agrees" — the
    /// sharp edge that once produced phantom disagreements.
    #[test]
    fn starved_budget_is_inconclusive_not_unsafe() {
        let cfg = LeaseConfig::case_study();
        let limits = Limits {
            max_states: 10,
            ..Limits::default()
        };
        let cc = cross_check_with(&cfg, true, 0, false, &limits).unwrap();
        assert_eq!(cc.symbolic, SymbolicOutcome::Inconclusive);
        assert!(!cc.symbolic_safe());
        assert!(!cc.agree());
        assert!(format!("{cc}").contains("inconclusive"), "{cc}");
    }

    /// A starved budget names the limit that tripped and the frontier
    /// left unexplored — the diagnosability fix for `Inconclusive`
    /// cross-checks.
    #[test]
    fn out_of_budget_reports_frontier_and_tripped_limit() {
        let cfg = LeaseConfig::case_study();
        let limits = Limits {
            max_states: 10,
            ..Limits::default()
        };
        let verdict = verify_symbolic_with(&cfg, true, &limits).unwrap();
        let SymbolicVerdict::OutOfBudget { stats, tripped } = &verdict else {
            panic!("10-state budget must be exhausted, got {verdict}");
        };
        assert_eq!(*tripped, TrippedLimit::MaxStates(10));
        assert!(stats.frontier > 0, "a truncated search has a frontier");
        let text = format!("{verdict}");
        assert!(text.contains("max_states = 10"), "{text}");
        assert!(text.contains("frontier"), "{text}");
    }
}
