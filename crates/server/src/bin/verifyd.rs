//! `pte-verifyd` — the verification daemon.
//!
//! ```text
//! pte-verifyd [--socket PATH] [--tcp ADDR] [--workers N] [--cache N]
//!             [--cache-dir PATH] [--cache-bytes N] [--cache-mem-bytes N]
//!
//!   --socket PATH        Unix-domain socket to listen on
//!                        (default: /tmp/pte-verifyd.sock; ignored if --tcp given)
//!   --tcp ADDR           listen on TCP host:port instead (port 0 = OS-assigned,
//!                        printed at startup)
//!   --workers N          global worker budget shared by all clients
//!                        (default 0 = available_parallelism - 1)
//!   --cache N            report-cache capacity in entries (default 64; 0 disables)
//!   --cache-dir PATH     persistent cache directory: conclusive reports and
//!                        passed-list artifacts survive restarts, and requests
//!                        with a parent key warm-start from its artifact
//!                        (default: memory-only, no warm starts)
//!   --cache-bytes N      disk-tier byte bound, evicted oldest-first
//!                        (default 0 = unbounded)
//!   --cache-mem-bytes N  in-memory report-tier byte bound (default 0 = unbounded)
//! ```
//!
//! SIGTERM / SIGINT (and the `Shutdown` protocol frame) trigger a
//! graceful drain: in-flight searches are cancelled within one BFS
//! round, their `Inconclusive(Cancelled)` reports are still delivered,
//! and the socket file is removed. Exit status 0 on a clean drain, 2
//! on a usage error, 1 on a bind failure.

use pte_server::daemon::{Daemon, DaemonConfig};
use pte_server::signal;
use pte_server::transport::Endpoint;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pte-verifyd [--socket PATH] [--tcp ADDR] [--workers N] [--cache N]\n\
         \x20                  [--cache-dir PATH] [--cache-bytes N] [--cache-mem-bytes N]\n\
         see `cargo doc -p pte-server` for the protocol"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut socket = PathBuf::from("/tmp/pte-verifyd.sock");
    let mut tcp: Option<String> = None;
    let mut workers = 0usize;
    let mut cache = 64usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_bytes = 0u64;
    let mut cache_mem_bytes = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_missing(flag));
        match arg.as_str() {
            "--socket" => socket = PathBuf::from(value("--socket")),
            "--tcp" => tcp = Some(value("--tcp")),
            "--workers" => workers = parse_num(&value("--workers"), "--workers"),
            "--cache" => cache = parse_num(&value("--cache"), "--cache"),
            "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--cache-bytes" => {
                cache_bytes = parse_num(&value("--cache-bytes"), "--cache-bytes") as u64
            }
            "--cache-mem-bytes" => {
                cache_mem_bytes = parse_num(&value("--cache-mem-bytes"), "--cache-mem-bytes")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let endpoint = match tcp {
        Some(addr) => Endpoint::Tcp(addr),
        None => Endpoint::Unix(socket),
    };
    let config = DaemonConfig {
        endpoint: endpoint.clone(),
        workers,
        cache_capacity: cache,
        cache_mem_bytes,
        cache_dir: cache_dir.clone(),
        cache_disk_bytes: cache_bytes,
    };
    let daemon = match Daemon::bind(&config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pte-verifyd: cannot bind {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    signal::install();
    let disk = match &cache_dir {
        Some(dir) => format!(", cache-dir = {}", dir.display()),
        None => String::new(),
    };
    if let Some(addr) = daemon.tcp_addr() {
        eprintln!(
            "pte-verifyd: listening on tcp:{addr} (workers = {}, cache = {cache}{disk})",
            config.resolved_workers()
        );
    } else {
        eprintln!(
            "pte-verifyd: listening on {endpoint} (workers = {}, cache = {cache}{disk})",
            config.resolved_workers()
        );
    }
    match daemon.run() {
        Ok(()) => {
            eprintln!("pte-verifyd: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pte-verifyd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("{flag} needs a value");
    usage();
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an unsigned integer, got `{s}`");
        usage();
    })
}
