//! The daemon proper: accept loop, per-connection protocol loop, job
//! execution, and the graceful-shutdown drain.
//!
//! ## Threading model
//!
//! One non-blocking accept loop ([`Daemon::run`]) spawns a thread per
//! connection; each connection thread reads [`ClientFrame`]s with a
//! short read timeout (so it can poll shutdown) and spawns a thread
//! per admitted job. Writes to a connection — `Accepted`, throttled
//! `Progress`, the terminal `Report`, errors — all go through one
//! `Mutex<BufWriter>` per connection, so frames never interleave
//! mid-line regardless of which thread produced them.
//!
//! ## Cancellation & shutdown
//!
//! Every job owns a [`CancelToken`]; the connection registers it under
//! the submit id (for `Cancel` frames) and the daemon registers it
//! globally (for shutdown). The token is honoured in **both** wait
//! states a job can be in: [`WorkerBudget::acquire`] polls it while
//! queued, and the engine polls it at every BFS round boundary while
//! running — so "cancel everything" converges within one round no
//! matter where each job is. A cancelled search yields
//! `Inconclusive(Cancelled)`, never `Safe`, and inconclusive reports
//! are never cached, so cancellation cannot corrupt anything — it only
//! discards work.
//!
//! Shutdown (SIGTERM, SIGINT, or a `Shutdown` frame) runs the same
//! drain: stop accepting, fire every registered token, wait for the
//! in-flight reports to flush to their clients, join the connection
//! threads, unlink the socket.

use crate::cache::{DiskCache, ReportCache};
use crate::protocol::{read_frame_buffered, write_frame, ClientFrame, DaemonStats, ServerFrame};
use crate::scheduler::WorkerBudget;
use crate::signal;
use crate::transport::{Endpoint, Listener, Stream};
use parking_lot::Mutex;
use pte_tracheotomy::registry;
use pte_verify::api::{ArtifactIo, Inconclusive, Verdict, VerificationReport, VerificationRequest};
use pte_verify::{new_sink, CancelToken, PassedArtifact, ProgressSink};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How often a blocked connection reader rechecks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// Accept-loop sleep when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Minimum interval between `Progress` frames per job (round-boundary
/// snapshots can arrive every few microseconds on small scenarios).
const PROGRESS_INTERVAL: Duration = Duration::from_millis(25);
/// How long the shutdown drain waits for cancelled jobs to flush their
/// reports before giving up and exiting anyway.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Daemon configuration (the `pte-verifyd` CLI maps flags onto this).
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Global worker budget; `0` = auto (`available_parallelism - 1`,
    /// minimum 1 — one core is left for the daemon's own accept /
    /// reader / writer threads).
    pub workers: usize,
    /// Report-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// In-memory report-cache byte bound (`0` = unbounded).
    pub cache_mem_bytes: usize,
    /// Persistent cache directory. `None` runs memory-only: reports
    /// die with the daemon and warm starts have no artifact source.
    pub cache_dir: Option<PathBuf>,
    /// Disk-tier byte bound (`0` = unbounded), enforced oldest-first
    /// after every store.
    pub cache_disk_bytes: u64,
}

impl DaemonConfig {
    /// The resolved worker budget (applies the `0` = auto rule).
    pub fn resolved_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(1)
            .max(1)
    }
}

/// State shared by the accept loop, every connection, and every job.
struct Shared {
    budget: WorkerBudget,
    cache: ReportCache,
    /// The persistent tier, when the daemon was given `--cache-dir`.
    disk: Option<DiskCache>,
    /// Daemon-local shutdown flag (`Shutdown` frame, [`DaemonHandle`]).
    shutdown: AtomicBool,
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    active: AtomicUsize,
    /// Every in-flight job's token, keyed by a process-unique job id —
    /// the shutdown drain fires them all.
    jobs: Mutex<HashMap<u64, CancelToken>>,
    next_job: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn stats(&self) -> DaemonStats {
        let b = self.budget.stats();
        let c = self.cache.stats();
        let d = self.disk.as_ref().map(|d| d.stats()).unwrap_or_default();
        // The refinement verdict cache is process-global (the
        // compositional backend shares it across requests), so the
        // daemon polls rather than owns it.
        let r = pte_contracts::cache_stats();
        DaemonStats {
            worker_budget: b.total,
            workers_in_use: b.in_use,
            peak_workers_in_use: b.peak_in_use,
            queued: b.queued,
            admitted: b.admitted,
            active: self.active.load(Ordering::SeqCst),
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            cancelled: self.cancelled.load(Ordering::SeqCst),
            cache_hits: c.hits,
            cache_misses: c.misses,
            cache_entries: c.entries,
            cache_evictions: c.evictions,
            cache_bytes: c.bytes,
            cache_capacity: c.capacity,
            cache_max_bytes: c.max_bytes,
            disk_hits: d.hits,
            disk_misses: d.misses,
            disk_artifact_hits: d.artifact_hits,
            disk_artifact_misses: d.artifact_misses,
            disk_corrupt: d.corrupt,
            disk_stores: d.stores,
            disk_evictions: d.evictions,
            disk_bytes: d.bytes,
            disk_files: d.files,
            disk_max_bytes: d.max_bytes,
            refine_cache_hits: r.hits,
            refine_cache_misses: r.misses,
            refine_cache_entries: r.entries as usize,
            contracts_deduped: r.deduped,
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// A clonable remote control for a running daemon (tests and the
/// binary's signal path use it; clients use the `Shutdown` frame).
#[derive(Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
}

impl DaemonHandle {
    /// Requests a graceful shutdown: equivalent to a `Shutdown` frame.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Current daemon statistics.
    pub fn stats(&self) -> DaemonStats {
        self.shared.stats()
    }
}

/// A bound-but-not-yet-running daemon. [`Daemon::run`] consumes it and
/// blocks until shutdown.
pub struct Daemon {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds the endpoint and prepares shared state. Fails fast if the
    /// endpoint is taken (another daemon on the socket / port).
    pub fn bind(config: &DaemonConfig) -> io::Result<Daemon> {
        let listener = Listener::bind(&config.endpoint)?;
        let disk = match &config.cache_dir {
            Some(dir) => Some(DiskCache::open(dir, config.cache_disk_bytes)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            budget: WorkerBudget::new(config.resolved_workers()),
            cache: ReportCache::bounded(config.cache_capacity, config.cache_mem_bytes),
            disk,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
        });
        Ok(Daemon { listener, shared })
    }

    /// The locally-bound TCP address, for `host:0` binds.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.listener.tcp_addr()
    }

    /// A remote control for this daemon (clone before calling
    /// [`Daemon::run`]).
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until shutdown is requested (signal, handle, or
    /// `Shutdown` frame), then drains: fires every in-flight job's
    /// token, waits for the cancelled reports to flush, joins
    /// connection threads, and removes the socket file.
    pub fn run(self) -> io::Result<()> {
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.shared.shutting_down() {
            match self.listener.accept() {
                Ok(Some(stream)) => {
                    let shared = Arc::clone(&self.shared);
                    connections.push(thread::spawn(move || serve_connection(stream, shared)));
                }
                Ok(None) => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
            connections.retain(|h| !h.is_finished());
        }
        // Drain: cancel everything in flight...
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for token in self.shared.jobs.lock().values() {
            token.cancel();
        }
        // ...wait for the cancelled reports to flush to their clients
        // (connection threads exit once their own jobs are done)...
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        for conn in connections {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break; // give up; process exit reaps the rest
            }
            join_with_timeout(conn, remaining);
        }
        // ...and clean the socket file up.
        self.listener.cleanup();
        Ok(())
    }
}

/// Joins `handle` but gives up after `timeout` (std has no native
/// join-with-timeout; polling `is_finished` is the portable form).
fn join_with_timeout(handle: thread::JoinHandle<()>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            return;
        }
        thread::sleep(Duration::from_millis(5));
    }
    let _ = handle.join();
}

/// Everything one connection's threads share.
struct Conn {
    shared: Arc<Shared>,
    /// The single serialized writer for this connection.
    writer: Mutex<BufWriter<Stream>>,
    /// This connection's in-flight jobs: submit id → (global job id,
    /// token). `Cancel` frames and disconnect teardown resolve here.
    inflight: Mutex<HashMap<u64, (u64, CancelToken)>>,
}

impl Conn {
    fn send(&self, frame: &ServerFrame) -> io::Result<()> {
        write_frame(&mut *self.writer.lock(), frame)
    }
}

/// The per-connection protocol loop.
fn serve_connection(stream: Stream, shared: Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let conn = Arc::new(Conn {
        shared: Arc::clone(&shared),
        writer: Mutex::new(BufWriter::new(stream)),
        inflight: Mutex::new(HashMap::new()),
    });
    let hello = ServerFrame::Hello {
        protocol: crate::protocol::PROTOCOL_VERSION,
        worker_budget: shared.budget.total(),
    };
    if conn.send(&hello).is_err() {
        return;
    }
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut jobs: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut client_requested_shutdown = false;
    loop {
        if shared.shutting_down() {
            break;
        }
        match read_frame_buffered::<ClientFrame>(&mut reader, &mut line) {
            Ok(Some(frame)) => {
                if handle_frame(&conn, frame, &mut jobs) {
                    client_requested_shutdown = true;
                    break;
                }
            }
            Ok(None) => {
                // Client disconnected: its in-flight work is orphaned —
                // cancel it so the budget frees up within one round.
                for (_, (_, token)) in conn.inflight.lock().iter() {
                    token.cancel();
                }
                break;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = conn.send(&ServerFrame::Error {
                    id: None,
                    message: format!("malformed frame: {e}"),
                });
            }
            Err(_) => break,
        }
        jobs.retain(|h| !h.is_finished());
    }
    if shared.shutting_down() {
        // Daemon-wide drain: this connection's jobs are being cancelled
        // globally; make sure the client still gets its reports.
        for (_, (_, token)) in conn.inflight.lock().iter() {
            token.cancel();
        }
    }
    for job in jobs {
        let _ = job.join();
    }
    if client_requested_shutdown {
        let _ = conn.send(&ServerFrame::ShuttingDown);
    }
    let _ = conn.writer.lock().flush();
}

/// Dispatches one client frame. Returns `true` when the frame was
/// `Shutdown` (the connection loop then drains and exits).
fn handle_frame(
    conn: &Arc<Conn>,
    frame: ClientFrame,
    jobs: &mut Vec<thread::JoinHandle<()>>,
) -> bool {
    match frame {
        ClientFrame::Submit {
            id,
            request,
            no_cache,
        } => {
            submit(conn, id, request, no_cache.unwrap_or(false), jobs);
            false
        }
        ClientFrame::Cancel { id } => {
            if let Some((_, token)) = conn.inflight.lock().get(&id) {
                token.cancel();
            }
            false
        }
        ClientFrame::ListScenarios => {
            let _ = conn.send(&ServerFrame::Scenarios {
                scenarios: registry::registry(),
            });
            false
        }
        ClientFrame::Stats => {
            let _ = conn.send(&ServerFrame::Stats {
                stats: conn.shared.stats(),
            });
            false
        }
        ClientFrame::Shutdown => {
            conn.shared.shutdown.store(true, Ordering::SeqCst);
            true
        }
    }
}

/// Handles a `Submit`: validates and keys the request, answers from
/// the memory tier, then the disk tier (promoting the report into
/// memory), otherwise resolves the warm-start artifact and spawns the
/// job thread. `no_cache` skips both lookups *and* both stores.
fn submit(
    conn: &Arc<Conn>,
    id: u64,
    request: VerificationRequest,
    no_cache: bool,
    jobs: &mut Vec<thread::JoinHandle<()>>,
) {
    // `cache_key` resolves the scenario, so every malformed-request
    // error (unknown scenario incl. the did-you-mean suggestion, no
    // system, ambiguous system) surfaces here, before any scheduling.
    let key = match request.cache_key() {
        Ok(k) => k,
        Err(e) => {
            let _ = conn.send(&ServerFrame::Error {
                id: Some(id),
                message: e.to_string(),
            });
            return;
        }
    };
    conn.shared.submitted.fetch_add(1, Ordering::SeqCst);
    if !no_cache {
        let hit = conn.shared.cache.get(&key).or_else(|| {
            // Disk tier: a hit is promoted into memory, so a restarted
            // daemon pays the file read once per key.
            let report = conn.shared.disk.as_ref()?.get_report(&key)?;
            conn.shared.cache.insert(&key, &report);
            Some(report)
        });
        if let Some(report) = hit {
            let _ = conn.send(&ServerFrame::Accepted {
                id,
                key: key.clone(),
                cached: true,
            });
            let _ = conn.send(&ServerFrame::Report {
                id,
                key,
                cached: true,
                report,
            });
            conn.shared.completed.fetch_add(1, Ordering::SeqCst);
            return;
        }
    }
    // Warm start: the parent key names a prior run whose artifact
    // lives in the disk tier (memory holds reports only — artifacts
    // exist to survive restarts). Missing or inadmissible artifacts
    // degrade to a cold run; they can never flip a verdict.
    let warm: Option<Arc<PassedArtifact>> = match (&request.parent_key, &conn.shared.disk) {
        (Some(parent), Some(disk)) if request.budget.warm_start != Some(false) => {
            disk.get_artifact(parent).map(Arc::new)
        }
        _ => None,
    };
    let _ = conn.send(&ServerFrame::Accepted {
        id,
        key: key.clone(),
        cached: false,
    });
    let token = CancelToken::new();
    let job_id = conn.shared.next_job.fetch_add(1, Ordering::SeqCst);
    conn.inflight.lock().insert(id, (job_id, token.clone()));
    conn.shared.jobs.lock().insert(job_id, token.clone());
    let conn = Arc::clone(conn);
    jobs.push(thread::spawn(move || {
        run_job(&conn, id, job_id, key, request, warm, no_cache, token);
    }));
}

/// Executes one admitted request on the job thread: waits for worker
/// slots, runs capped to the grant (warm-seeded when an admissible
/// parent artifact was resolved), streams throttled progress, sends
/// the terminal report, persists conclusive results and captured
/// passed-list artifacts to the disk tier, and maintains every
/// registry and counter.
#[allow(clippy::too_many_arguments)]
fn run_job(
    conn: &Arc<Conn>,
    id: u64,
    job_id: u64,
    key: String,
    request: VerificationRequest,
    warm: Option<Arc<PassedArtifact>>,
    no_cache: bool,
    token: CancelToken,
) {
    let started = Instant::now();
    let outcome = match conn.shared.budget.acquire(request.worker_cost(), &token) {
        None => {
            // Cancelled while queued: the search never started, so
            // synthesize the same inconclusive shape a cancelled run
            // reports (no backends ran — none were admitted).
            Ok(VerificationReport {
                scenario: request.scenario.clone(),
                leased: request.leased,
                verdict: Verdict::Inconclusive(Inconclusive::Cancelled),
                witness: None,
                winner: None,
                tripped: None,
                backends: Vec::new(),
                analysis: None,
                compositional: None,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
            })
        }
        Some(permit) => {
            conn.shared.active.fetch_add(1, Ordering::SeqCst);
            let sink: ProgressSink = {
                let conn = Arc::clone(conn);
                let last = Mutex::new(
                    Instant::now()
                        .checked_sub(PROGRESS_INTERVAL)
                        .unwrap_or_else(Instant::now),
                );
                Arc::new(move |backend: &str, p: &pte_verify::Progress| {
                    let mut last = last.lock();
                    if last.elapsed() < PROGRESS_INTERVAL {
                        return;
                    }
                    *last = Instant::now();
                    let _ = conn.send(&ServerFrame::Progress {
                        id,
                        backend: backend.to_string(),
                        round: p.round,
                        settled: p.settled,
                        frontier: p.frontier,
                        elapsed_ms: p.elapsed.as_secs_f64() * 1e3,
                    });
                })
            };
            // Capture the passed list only when there is a disk tier
            // to persist it into — memory holds reports, not proofs.
            let capture = conn.shared.disk.as_ref().map(|_| new_sink());
            let io = ArtifactIo {
                warm,
                capture: capture.clone(),
            };
            let r = request.run_with_artifacts(&token, Some(sink), Some(permit.slots()), &io);
            conn.shared.active.fetch_sub(1, Ordering::SeqCst);
            drop(permit);
            if let (Ok(report), Some(sink)) = (&r, capture) {
                if !no_cache && report.verdict == Verdict::Safe {
                    if let (Some(disk), Some(artifact)) =
                        (conn.shared.disk.as_ref(), sink.lock().take())
                    {
                        disk.put_artifact(&key, &artifact);
                    }
                }
            }
            r
        }
    };
    conn.shared.jobs.lock().remove(&job_id);
    conn.inflight.lock().remove(&id);
    match outcome {
        Ok(report) => {
            if matches!(
                report.verdict,
                Verdict::Inconclusive(Inconclusive::Cancelled)
            ) {
                conn.shared.cancelled.fetch_add(1, Ordering::SeqCst);
            }
            if !no_cache {
                conn.shared.cache.insert(&key, &report);
                if let Some(disk) = conn.shared.disk.as_ref() {
                    disk.put_report(&key, &report);
                }
            }
            conn.shared.completed.fetch_add(1, Ordering::SeqCst);
            let _ = conn.send(&ServerFrame::Report {
                id,
                key,
                cached: false,
                report,
            });
        }
        Err(e) => {
            let _ = conn.send(&ServerFrame::Error {
                id: Some(id),
                message: e.to_string(),
            });
        }
    }
}
