//! Minimal SIGTERM/SIGINT handling without a `libc` dependency.
//!
//! The build environment vendors no `libc` crate, so the handler is
//! installed through a direct `extern "C"` declaration of POSIX
//! `signal(2)`. The handler does the only async-signal-safe thing
//! worth doing: it sets a static flag, which the daemon's accept loop
//! polls every pass (the loop already wakes every few milliseconds for
//! non-blocking accepts, so delivery-to-shutdown latency is one poll
//! interval).
//!
//! The flag is process-global — exactly right for a signal, which is
//! process-global too. The `Shutdown` protocol frame deliberately does
//! *not* funnel through here: it sets the owning [`crate::Daemon`]'s
//! own flag, so test binaries running several daemons in one process
//! can shut one down without killing the rest.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `SIGINT` (POSIX-mandated value).
const SIGINT: i32 = 2;
/// `SIGTERM` (POSIX-mandated value).
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the flag-setting handler for `SIGTERM` and `SIGINT`.
/// Idempotent; the `pte-verifyd` binary calls it once at start (the
/// library never installs handlers behind an embedder's back).
pub fn install() {
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// `true` once a handled signal has been delivered.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}
