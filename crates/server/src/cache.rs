//! The two-tier report cache: canonical request key → completed
//! [`VerificationReport`], with an optional persistent disk tier that
//! also stores passed-list artifacts for warm starts.
//!
//! Keys come from [`VerificationRequest::cache_key`]
//! (`pte_verify::api`), which hashes the *semantics* of a request —
//! resolved configuration, arm, query, backend selection, normalized
//! budget, warm-start parentage — so a scenario-by-name submit and the
//! equivalent inline config submit share an entry, and wire-level
//! field order cannot split the cache.
//!
//! Soundness rule: **only conclusive reports are cached.** A
//! `Safe`/`Unsafe` verdict means the search ran to completion, so
//! replaying it for an identical request is exact. An inconclusive
//! report (cancelled, budget-tripped, backend error) is circumstantial
//! — a retry might conclude — so it is never stored, and in particular
//! a cancelled search can never poison the cache.
//!
//! A cache hit returns the stored report verbatim: byte-identical to
//! the cold run that produced it, *including* its timing fields (the
//! daemon does not re-time hits; clients that diff reports should
//! ignore `wall_ms`, which is exactly what the integration tests do).
//!
//! ## Tiers
//!
//! * [`ReportCache`] — in-memory, FIFO, bounded in **entries and
//!   bytes** (serialized-report size).
//! * [`DiskCache`] — a directory of self-validating files that
//!   survives daemon restarts: `<key>.report.json` (a one-line
//!   checksummed header followed by the raw report JSON) and
//!   `<key>.artifact.bin` (a [`PassedArtifact`] in its own versioned,
//!   checksummed wire format). Every write goes to a temp file in the
//!   same directory and is published with an atomic `rename`, so
//!   concurrent writers and a daemon killed mid-write can never leave
//!   a torn entry — only a complete old file or a complete new one.
//!   Corrupt, truncated, or stale-version files are **deleted and
//!   treated as misses**; the tier is size-bounded in bytes with
//!   oldest-file-first eviction.

use parking_lot::Mutex;
use pte_verify::api::{VerificationReport, VerificationRequest};
use pte_zones::PassedArtifact;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Memory-tier counters (feed [`crate::protocol::DaemonStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a report.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Reports currently stored.
    pub entries: usize,
    /// Reports evicted (FIFO) since construction.
    pub evictions: u64,
    /// Serialized bytes of the stored reports.
    pub bytes: usize,
    /// The entry bound (`0` = caching disabled).
    pub capacity: usize,
    /// The byte bound (`0` = unbounded).
    pub max_bytes: usize,
}

struct Inner {
    map: HashMap<String, (VerificationReport, usize)>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    capacity: usize,
    /// Byte bound over the serialized sizes (`0` = unbounded).
    max_bytes: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Inner {
    /// Drops oldest-first until both bounds hold. May evict the entry
    /// that was just inserted (a single report larger than the byte
    /// bound is not storable — the bound is a bound, not a hint).
    fn evict_to_bounds(&mut self) {
        while self.order.len() > self.capacity
            || (self.max_bytes != 0 && self.bytes > self.max_bytes)
        {
            let Some(old) = self.order.pop_front() else {
                return;
            };
            if let Some((_, size)) = self.map.remove(&old) {
                self.bytes -= size;
                self.evictions += 1;
            }
        }
    }
}

/// The bounded in-memory report cache. Clone-free: the daemon holds
/// one behind an `Arc`.
pub struct ReportCache {
    inner: Mutex<Inner>,
}

impl ReportCache {
    /// A cache holding at most `capacity` reports (0 disables caching
    /// — every lookup misses, nothing is stored), unbounded in bytes.
    pub fn new(capacity: usize) -> ReportCache {
        ReportCache::bounded(capacity, 0)
    }

    /// [`ReportCache::new`] with an additional byte bound over the
    /// serialized report sizes (`0` = unbounded). Whichever bound
    /// trips first evicts oldest-first.
    pub fn bounded(capacity: usize, max_bytes: usize) -> ReportCache {
        ReportCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity,
                max_bytes,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks `key` up, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<VerificationReport> {
        let mut inner = self.inner.lock();
        match inner.map.get(key) {
            Some((r, _)) => {
                let r = r.clone();
                inner.hits += 1;
                Some(r)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `report` under `key` if it is conclusive (and the cache
    /// has capacity); evicts oldest-first when either bound trips.
    /// Returns whether the report is stored on exit (a report larger
    /// than the whole byte bound is rejected).
    pub fn insert(&self, key: &str, report: &VerificationReport) -> bool {
        if !report.verdict.is_conclusive() {
            return false;
        }
        let size = serde_json::to_string(report).map(|j| j.len()).unwrap_or(0);
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return false;
        }
        if let Some((_, old)) = inner.map.insert(key.to_string(), (report.clone(), size)) {
            inner.bytes -= old;
        } else {
            inner.order.push_back(key.to_string());
        }
        inner.bytes += size;
        inner.evict_to_bounds();
        inner.map.contains_key(key)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            evictions: inner.evictions,
            bytes: inner.bytes,
            capacity: inner.capacity,
            max_bytes: inner.max_bytes,
        }
    }
}

/// Version tag of the on-disk report envelope. Bumped when the header
/// or body framing changes; files with any other version are deleted
/// and treated as misses (never reinterpreted).
pub const DISK_FORMAT_VERSION: u32 = 1;

/// FNV-1a/64 over the raw report JSON — the disk tier's integrity
/// check (same dependency-free hash the cache keys use; corruption
/// detection, not authentication).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The one-line JSON header preceding the report body in a
/// `<key>.report.json` file.
#[derive(Serialize, Deserialize)]
struct DiskHeader {
    v: u32,
    crc: String,
}

/// Disk-tier counters (feed [`crate::protocol::DaemonStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Report lookups served from disk.
    pub hits: u64,
    /// Report lookups that missed (absent file included).
    pub misses: u64,
    /// Artifact lookups served from disk.
    pub artifact_hits: u64,
    /// Artifact lookups that missed.
    pub artifact_misses: u64,
    /// Corrupt, truncated, or stale-version files discarded (each also
    /// counts as a miss).
    pub corrupt: u64,
    /// Files written (reports + artifacts).
    pub stores: u64,
    /// Files evicted by the byte bound.
    pub evictions: u64,
    /// Bytes currently on disk (reports + artifacts).
    pub bytes: u64,
    /// Files currently on disk.
    pub files: usize,
    /// The byte bound (`0` = unbounded).
    pub max_bytes: u64,
}

#[derive(Default)]
struct DiskCounters {
    hits: u64,
    misses: u64,
    artifact_hits: u64,
    artifact_misses: u64,
    corrupt: u64,
    stores: u64,
    evictions: u64,
}

/// The persistent tier: a directory of atomically-published,
/// self-validating report and artifact files (see the module docs for
/// the format and the corruption/staleness rules). Safe for concurrent
/// use from many threads — and many *processes*: writes are
/// temp-file + `rename`, reads validate checksums, so the worst a race
/// can produce is serving the older of two complete files.
pub struct DiskCache {
    dir: PathBuf,
    /// Byte bound over the directory (`0` = unbounded).
    max_bytes: u64,
    counters: Mutex<DiskCounters>,
    /// Distinguishes concurrent writers' temp files within one process
    /// (the pid distinguishes processes).
    tmp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a disk cache rooted at `dir`,
    /// byte-bounded by `max_bytes` (`0` = unbounded). Leftover temp
    /// files from a previous crash are swept.
    pub fn open(dir: impl Into<PathBuf>, max_bytes: u64) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let cache = DiskCache {
            dir,
            max_bytes,
            counters: Mutex::new(DiskCounters::default()),
            tmp_seq: AtomicU64::new(0),
        };
        for (path, _, _) in cache.scan() {
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"))
            {
                let _ = fs::remove_file(path);
            }
        }
        Ok(cache)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Keys are 16 lowercase hex digits ([`VerificationRequest::cache_key`]).
    /// Anything else — in particular a client-supplied `parent_key`
    /// trying to traverse paths — resolves to no file.
    fn key_path(&self, key: &str, suffix: &str) -> Option<PathBuf> {
        let valid = key.len() == 16
            && key
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
        valid.then(|| self.dir.join(format!("{key}{suffix}")))
    }

    /// Looks a report up. Corrupt/stale/truncated files are deleted
    /// and counted, then reported as a miss.
    pub fn get_report(&self, key: &str) -> Option<VerificationReport> {
        let report = self
            .key_path(key, ".report.json")
            .and_then(|p| self.read_report(&p));
        let mut c = self.counters.lock();
        match report {
            Some(r) => {
                c.hits += 1;
                Some(r)
            }
            None => {
                c.misses += 1;
                None
            }
        }
    }

    fn read_report(&self, path: &Path) -> Option<VerificationReport> {
        // A missing file is a plain miss; anything unreadable past
        // that point — including invalid UTF-8 — is corruption.
        let raw = fs::read(path).ok()?;
        let parsed = (|| {
            let raw = std::str::from_utf8(&raw).ok()?;
            let (header, body) = raw.split_once('\n')?;
            let header: DiskHeader = serde_json::from_str(header).ok()?;
            if header.v != DISK_FORMAT_VERSION {
                return None;
            }
            if header.crc != format!("{:016x}", fnv1a64(body.as_bytes())) {
                return None;
            }
            serde_json::from_str::<VerificationReport>(body).ok()
        })();
        if parsed.is_none() {
            // The file exists but does not validate: delete it so it
            // cannot poison every future lookup, and count it.
            let _ = fs::remove_file(path);
            self.counters.lock().corrupt += 1;
        }
        parsed
    }

    /// Persists a conclusive report under `key` (inconclusive reports
    /// are never stored — same soundness rule as the memory tier).
    /// Returns whether a file was published.
    pub fn put_report(&self, key: &str, report: &VerificationReport) -> bool {
        if !report.verdict.is_conclusive() {
            return false;
        }
        let Some(path) = self.key_path(key, ".report.json") else {
            return false;
        };
        let Ok(body) = serde_json::to_string(report) else {
            return false;
        };
        let header = serde_json::to_string(&DiskHeader {
            v: DISK_FORMAT_VERSION,
            crc: format!("{:016x}", fnv1a64(body.as_bytes())),
        })
        .expect("header serializes");
        let mut bytes = Vec::with_capacity(header.len() + 1 + body.len());
        bytes.extend_from_slice(header.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(body.as_bytes());
        self.publish(&path, &bytes)
    }

    /// Looks a passed-list artifact up. The artifact format carries
    /// its own magic, version, and checksum
    /// ([`PassedArtifact::from_bytes`]); any decode failure deletes
    /// the file and reports a miss.
    pub fn get_artifact(&self, key: &str) -> Option<PassedArtifact> {
        let artifact = self.key_path(key, ".artifact.bin").and_then(|p| {
            let bytes = fs::read(&p).ok()?;
            match PassedArtifact::from_bytes(&bytes) {
                Ok(a) => Some(a),
                Err(_) => {
                    let _ = fs::remove_file(&p);
                    self.counters.lock().corrupt += 1;
                    None
                }
            }
        });
        let mut c = self.counters.lock();
        match artifact {
            Some(a) => {
                c.artifact_hits += 1;
                Some(a)
            }
            None => {
                c.artifact_misses += 1;
                None
            }
        }
    }

    /// Persists a passed-list artifact under `key`.
    pub fn put_artifact(&self, key: &str, artifact: &PassedArtifact) -> bool {
        let Some(path) = self.key_path(key, ".artifact.bin") else {
            return false;
        };
        self.publish(&path, &artifact.to_bytes())
    }

    /// Write-to-temp + atomic rename, then re-enforce the byte bound.
    fn publish(&self, path: &Path, bytes: &[u8]) -> bool {
        let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let tmp = self.dir.join(format!(
            ".tmp-{file}-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let ok = fs::write(&tmp, bytes).is_ok() && fs::rename(&tmp, path).is_ok();
        if !ok {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        self.counters.lock().stores += 1;
        self.evict_to_bound();
        true
    }

    /// Every cache file: `(path, len, mtime)`, temp files included
    /// (callers filter).
    fn scan(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                if !meta.is_file() {
                    return None;
                }
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                Some((e.path(), meta.len(), mtime))
            })
            .collect()
    }

    /// Deletes oldest-mtime-first until the directory fits the byte
    /// bound. A report and its artifact age together (written by the
    /// same job), so pairs leave the cache around the same time — but
    /// the bound is per-file, and a half-evicted pair is harmless: a
    /// missing artifact only means a cold start, a missing report only
    /// a re-run.
    fn evict_to_bound(&self) {
        if self.max_bytes == 0 {
            return;
        }
        let mut files: Vec<_> = self
            .scan()
            .into_iter()
            .filter(|(p, _, _)| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.starts_with(".tmp-"))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, len, _)| *len).sum();
        if total <= self.max_bytes {
            return;
        }
        files.sort_by_key(|(_, _, mtime)| *mtime);
        let mut evicted = 0u64;
        for (path, len, _) in files {
            if total <= self.max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                evicted += 1;
            }
        }
        self.counters.lock().evictions += evicted;
    }

    /// Current counters plus a directory scan for bytes/files.
    pub fn stats(&self) -> DiskStats {
        let files = self.scan();
        let c = self.counters.lock();
        DiskStats {
            hits: c.hits,
            misses: c.misses,
            artifact_hits: c.artifact_hits,
            artifact_misses: c.artifact_misses,
            corrupt: c.corrupt,
            stores: c.stores,
            evictions: c.evictions,
            bytes: files.iter().map(|(_, len, _)| *len).sum(),
            files: files.len(),
            max_bytes: self.max_bytes,
        }
    }
}

/// Zeroes every timing field of a report (top-level and per-backend
/// `wall_ms`), the comparison form for "cache hits equal cold runs
/// modulo timing". Everything else — verdicts, witnesses, state
/// counts, byte counts — must match exactly.
pub fn strip_timing(report: &VerificationReport) -> VerificationReport {
    let mut r = report.clone();
    r.wall_ms = 0.0;
    for b in &mut r.backends {
        b.wall_ms = 0.0;
    }
    r
}

/// Convenience: [`VerificationRequest::cache_key`] unwrapped for
/// requests already validated by resolution (daemon-internal use,
/// after `Submit` has been accepted).
pub fn key_of(request: &VerificationRequest) -> Option<String> {
    request.cache_key().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_verify::api::{Inconclusive, Verdict};

    fn report(verdict: Verdict, wall_ms: f64) -> VerificationReport {
        VerificationReport {
            scenario: Some("case-study".into()),
            leased: true,
            verdict,
            witness: None,
            winner: Some("symbolic".into()),
            tripped: None,
            backends: Vec::new(),
            analysis: None,
            compositional: None,
            wall_ms,
        }
    }

    #[test]
    fn hit_returns_the_stored_report_verbatim() {
        let c = ReportCache::new(4);
        let r = report(Verdict::Safe, 12.5);
        assert!(c.insert("k1", &r));
        assert_eq!(c.get("k1"), Some(r));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 0, 1));
    }

    #[test]
    fn inconclusive_reports_are_never_cached() {
        let c = ReportCache::new(4);
        for v in [
            Verdict::Inconclusive(Inconclusive::Cancelled),
            Verdict::Inconclusive(Inconclusive::Budget("max_states".into())),
            Verdict::Inconclusive(Inconclusive::Error("boom".into())),
        ] {
            assert!(!c.insert("k", &report(v, 1.0)));
        }
        assert_eq!(c.get("k"), None);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        let c = ReportCache::new(2);
        c.insert("a", &report(Verdict::Safe, 1.0));
        c.insert("b", &report(Verdict::Unsafe, 2.0));
        c.insert("c", &report(Verdict::Safe, 3.0));
        assert_eq!(c.get("a"), None, "oldest entry must be evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let c = ReportCache::new(2);
        c.insert("a", &report(Verdict::Safe, 1.0));
        c.insert("b", &report(Verdict::Safe, 2.0));
        c.insert("a", &report(Verdict::Unsafe, 9.0));
        assert_eq!(c.get("a").unwrap().verdict, Verdict::Unsafe);
        assert!(c.get("b").is_some());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ReportCache::new(0);
        assert!(!c.insert("a", &report(Verdict::Safe, 1.0)));
        assert_eq!(c.get("a"), None);
    }

    #[test]
    fn memory_tier_is_byte_bounded() {
        let one = serde_json::to_string(&report(Verdict::Safe, 1.0))
            .unwrap()
            .len();
        // Room for two reports, not three.
        let c = ReportCache::bounded(16, 2 * one + one / 2);
        assert!(c.insert("a", &report(Verdict::Safe, 1.0)));
        assert!(c.insert("b", &report(Verdict::Safe, 2.0)));
        assert!(c.insert("c", &report(Verdict::Safe, 3.0)));
        assert_eq!(c.get("a"), None, "byte bound evicts oldest-first");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.max_bytes, "{s:?}");
        assert_eq!(s.capacity, 16);

        // A single report larger than the whole bound is rejected.
        let tiny = ReportCache::bounded(16, 8);
        assert!(!tiny.insert("a", &report(Verdict::Safe, 1.0)));
        assert_eq!(tiny.stats().bytes, 0);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pte-diskcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const KEY: &str = "00d14e3326706fa9";

    #[test]
    fn disk_reports_survive_reopen_and_corruption_is_a_miss() {
        let dir = tmpdir("reports");
        let r = report(Verdict::Safe, 12.5);
        {
            let disk = DiskCache::open(&dir, 0).unwrap();
            assert!(disk.put_report(KEY, &r));
            assert_eq!(disk.get_report(KEY), Some(r.clone()));
        }
        // A fresh handle (a restarted daemon) still serves it, verbatim.
        let disk = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(disk.get_report(KEY), Some(r.clone()));

        // Flip one byte of the body: checksum miss, file deleted.
        let path = dir.join(format!("{KEY}.report.json"));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(disk.get_report(KEY), None);
        assert!(!path.exists(), "corrupt files are deleted, not retried");
        let s = disk.stats();
        assert_eq!((s.hits, s.misses, s.corrupt), (1, 1, 1));

        // A stale format version is likewise discarded.
        assert!(disk.put_report(KEY, &r));
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, raw.replacen("{\"v\":1", "{\"v\":99", 1)).unwrap();
        assert_eq!(disk.get_report(KEY), None);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_rejects_inconclusive_reports_and_bad_keys() {
        let dir = tmpdir("reject");
        let disk = DiskCache::open(&dir, 0).unwrap();
        assert!(!disk.put_report(
            KEY,
            &report(Verdict::Inconclusive(Inconclusive::Cancelled), 1.0)
        ));
        // Path traversal in a client-supplied key resolves to nothing.
        assert!(!disk.put_report("../escape0000000", &report(Verdict::Safe, 1.0)));
        assert_eq!(disk.get_report("../../etc/passwd"), None);
        assert_eq!(
            disk.get_artifact("ABCDEF0123456789"),
            None,
            "uppercase is not a key"
        );
        assert_eq!(disk.stats().files, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_eviction_is_byte_bounded_oldest_first() {
        let dir = tmpdir("evict");
        let r = report(Verdict::Safe, 1.0);
        let one = {
            let probe = DiskCache::open(&dir, 0).unwrap();
            probe.put_report(KEY, &r);
            let n = probe.stats().bytes;
            std::fs::remove_file(dir.join(format!("{KEY}.report.json"))).unwrap();
            n
        };
        let disk = DiskCache::open(&dir, 2 * one + one / 2).unwrap();
        let keys = ["1111111111111111", "2222222222222222", "3333333333333333"];
        for (i, k) in keys.iter().enumerate() {
            disk.put_report(k, &r);
            // mtime granularity can be coarse; order the files beyond
            // doubt without sleeping: backdate nothing, rely on write
            // order only when distinct. Re-publish to refresh newer
            // files if the fs clock ties.
            let _ = i;
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let s = disk.stats();
        assert!(s.bytes <= s.max_bytes, "{s:?}");
        assert_eq!(s.evictions, 1);
        assert_eq!(disk.get_report(keys[0]), None, "oldest file evicted");
        assert!(disk.get_report(keys[2]).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_writes_leave_no_temp_files() {
        let dir = tmpdir("tmpfiles");
        let disk = DiskCache::open(&dir, 0).unwrap();
        for k in ["4444444444444444", "5555555555555555"] {
            disk.put_report(k, &report(Verdict::Safe, 1.0));
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // A crashed writer's leftover temp file is swept on open.
        std::fs::write(dir.join(".tmp-stale-1-1"), b"half a report").unwrap();
        let _ = DiskCache::open(&dir, 0).unwrap();
        assert!(!dir.join(".tmp-stale-1-1").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strip_timing_zeroes_only_wall_clocks() {
        let mut r = report(Verdict::Safe, 42.0);
        r.backends.push(pte_verify::api::BackendStats {
            backend: "symbolic".into(),
            wall_ms: 17.0,
            states: 123,
            ..Default::default()
        });
        let s = strip_timing(&r);
        assert_eq!(s.wall_ms, 0.0);
        assert_eq!(s.backends[0].wall_ms, 0.0);
        assert_eq!(s.backends[0].states, 123);
        assert_eq!(s.verdict, r.verdict);
    }
}
