//! The report cache: canonical request key → completed
//! [`VerificationReport`], FIFO-bounded.
//!
//! Keys come from [`VerificationRequest::cache_key`]
//! (`pte_verify::api`), which hashes the *semantics* of a request —
//! resolved configuration, arm, query, backend selection, normalized
//! budget — so a scenario-by-name submit and the equivalent inline
//! config submit share an entry, and wire-level field order cannot
//! split the cache.
//!
//! Soundness rule: **only conclusive reports are cached.** A
//! `Safe`/`Unsafe` verdict means the search ran to completion, so
//! replaying it for an identical request is exact. An inconclusive
//! report (cancelled, budget-tripped, backend error) is circumstantial
//! — a retry might conclude — so it is never stored, and in particular
//! a cancelled search can never poison the cache.
//!
//! A cache hit returns the stored report verbatim: byte-identical to
//! the cold run that produced it, *including* its timing fields (the
//! daemon does not re-time hits; clients that diff reports should
//! ignore `wall_ms`, which is exactly what the integration tests do).

use parking_lot::Mutex;
use pte_verify::api::{VerificationReport, VerificationRequest};
use std::collections::{HashMap, VecDeque};

/// Cache counters (feed [`crate::protocol::DaemonStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a report.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Reports currently stored.
    pub entries: usize,
    /// Reports evicted (FIFO) since construction.
    pub evictions: u64,
}

struct Inner {
    map: HashMap<String, VerificationReport>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The bounded report cache. Clone-free: the daemon holds one behind
/// an `Arc`.
pub struct ReportCache {
    inner: Mutex<Inner>,
}

impl ReportCache {
    /// A cache holding at most `capacity` reports (0 disables caching
    /// — every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> ReportCache {
        ReportCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks `key` up, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<VerificationReport> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(r) => {
                inner.hits += 1;
                Some(r)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `report` under `key` if it is conclusive (and the cache
    /// has capacity); evicts the oldest entry when full. Returns
    /// whether the report was stored.
    pub fn insert(&self, key: &str, report: &VerificationReport) -> bool {
        if !report.verdict.is_conclusive() {
            return false;
        }
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return false;
        }
        if !inner.map.contains_key(key) {
            while inner.order.len() >= inner.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                    inner.evictions += 1;
                }
            }
            inner.order.push_back(key.to_string());
        }
        inner.map.insert(key.to_string(), report.clone());
        true
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            evictions: inner.evictions,
        }
    }
}

/// Zeroes every timing field of a report (top-level and per-backend
/// `wall_ms`), the comparison form for "cache hits equal cold runs
/// modulo timing". Everything else — verdicts, witnesses, state
/// counts, byte counts — must match exactly.
pub fn strip_timing(report: &VerificationReport) -> VerificationReport {
    let mut r = report.clone();
    r.wall_ms = 0.0;
    for b in &mut r.backends {
        b.wall_ms = 0.0;
    }
    r
}

/// Convenience: [`VerificationRequest::cache_key`] unwrapped for
/// requests already validated by resolution (daemon-internal use,
/// after `Submit` has been accepted).
pub fn key_of(request: &VerificationRequest) -> Option<String> {
    request.cache_key().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_verify::api::{Inconclusive, Verdict};

    fn report(verdict: Verdict, wall_ms: f64) -> VerificationReport {
        VerificationReport {
            scenario: Some("case-study".into()),
            leased: true,
            verdict,
            witness: None,
            winner: Some("symbolic".into()),
            tripped: None,
            backends: Vec::new(),
            analysis: None,
            wall_ms,
        }
    }

    #[test]
    fn hit_returns_the_stored_report_verbatim() {
        let c = ReportCache::new(4);
        let r = report(Verdict::Safe, 12.5);
        assert!(c.insert("k1", &r));
        assert_eq!(c.get("k1"), Some(r));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 0, 1));
    }

    #[test]
    fn inconclusive_reports_are_never_cached() {
        let c = ReportCache::new(4);
        for v in [
            Verdict::Inconclusive(Inconclusive::Cancelled),
            Verdict::Inconclusive(Inconclusive::Budget("max_states".into())),
            Verdict::Inconclusive(Inconclusive::Error("boom".into())),
        ] {
            assert!(!c.insert("k", &report(v, 1.0)));
        }
        assert_eq!(c.get("k"), None);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        let c = ReportCache::new(2);
        c.insert("a", &report(Verdict::Safe, 1.0));
        c.insert("b", &report(Verdict::Unsafe, 2.0));
        c.insert("c", &report(Verdict::Safe, 3.0));
        assert_eq!(c.get("a"), None, "oldest entry must be evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let c = ReportCache::new(2);
        c.insert("a", &report(Verdict::Safe, 1.0));
        c.insert("b", &report(Verdict::Safe, 2.0));
        c.insert("a", &report(Verdict::Unsafe, 9.0));
        assert_eq!(c.get("a").unwrap().verdict, Verdict::Unsafe);
        assert!(c.get("b").is_some());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ReportCache::new(0);
        assert!(!c.insert("a", &report(Verdict::Safe, 1.0)));
        assert_eq!(c.get("a"), None);
    }

    #[test]
    fn strip_timing_zeroes_only_wall_clocks() {
        let mut r = report(Verdict::Safe, 42.0);
        r.backends.push(pte_verify::api::BackendStats {
            backend: "symbolic".into(),
            wall_ms: 17.0,
            states: 123,
            ..Default::default()
        });
        let s = strip_timing(&r);
        assert_eq!(s.wall_ms, 0.0);
        assert_eq!(s.backends[0].wall_ms, 0.0);
        assert_eq!(s.backends[0].states, 123);
        assert_eq!(s.verdict, r.verdict);
    }
}
