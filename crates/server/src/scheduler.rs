//! The global worker budget: one counting semaphore shared by every
//! connection, generalizing `pte_verify::api`'s *per-request*
//! `available_parallelism - 1` admission policy to the whole daemon.
//!
//! A single in-process `run()` may grab the machine because it is the
//! only tenant. A daemon serving N clients must not let N requests each
//! make that assumption — that is the oversubscription the ISSUE calls
//! out. Here every request must [`WorkerBudget::acquire`] its
//! [`pte_verify::api::VerificationRequest::worker_cost`] before it
//! runs, and runs via `run_with_slots(.., granted)` so the search's
//! actual thread fan-out matches its reservation.
//!
//! Admission is strict FIFO: a wide request (e.g. a portfolio wanting
//! the whole machine) at the head of the queue blocks later narrow
//! ones rather than being starved by a stream of them. Fairness over
//! packing — a verification daemon's worst failure mode is a big proof
//! that never gets scheduled.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! stand-in has no condvar) with a 10 ms wait timeout so a queued
//! request notices its [`CancelToken`] firing without a wakeup.

use pte_verify::CancelToken;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Snapshot of the scheduler's counters (feeds
/// [`crate::protocol::DaemonStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetStats {
    /// Total slots.
    pub total: usize,
    /// Slots currently held.
    pub in_use: usize,
    /// High-water mark of `in_use` — never exceeds `total` by
    /// construction (the admission invariant the integration tests
    /// assert).
    pub peak_in_use: usize,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Requests admitted since construction.
    pub admitted: u64,
}

struct State {
    in_use: usize,
    peak_in_use: usize,
    admitted: u64,
    /// FIFO admission queue of ticket ids; only the head may admit.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

struct Inner {
    total: usize,
    state: Mutex<State>,
    cv: Condvar,
}

/// The shared worker-slot semaphore. Clone-cheap (`Arc` inside).
#[derive(Clone)]
pub struct WorkerBudget {
    inner: Arc<Inner>,
}

impl WorkerBudget {
    /// A budget of `total` slots (clamped to ≥ 1).
    pub fn new(total: usize) -> WorkerBudget {
        WorkerBudget {
            inner: Arc::new(Inner {
                total: total.max(1),
                state: Mutex::new(State {
                    in_use: 0,
                    peak_in_use: 0,
                    admitted: 0,
                    queue: VecDeque::new(),
                    next_ticket: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Total slots.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Blocks until `want` slots (clamped to `[1, total]` — a request
    /// wider than the machine is admitted at full width rather than
    /// deadlocking) are granted, or `cancel` fires while waiting.
    /// Returns the permit, or `None` on cancellation; the permit
    /// releases its slots on drop.
    pub fn acquire(&self, want: usize, cancel: &CancelToken) -> Option<WorkerPermit> {
        let want = want.clamp(1, self.inner.total);
        let mut st = self.inner.state.lock().unwrap();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        loop {
            let at_head = st.queue.front() == Some(&ticket);
            if at_head && st.in_use + want <= self.inner.total {
                st.queue.pop_front();
                st.in_use += want;
                st.peak_in_use = st.peak_in_use.max(st.in_use);
                st.admitted += 1;
                // A wide grant may still leave room for the new head.
                self.inner.cv.notify_all();
                return Some(WorkerPermit {
                    budget: self.clone(),
                    slots: want,
                });
            }
            if cancel.is_cancelled() {
                st.queue.retain(|&t| t != ticket);
                self.inner.cv.notify_all();
                return None;
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(st, Duration::from_millis(10))
                .unwrap();
            st = guard;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BudgetStats {
        let st = self.inner.state.lock().unwrap();
        BudgetStats {
            total: self.inner.total,
            in_use: st.in_use,
            peak_in_use: st.peak_in_use,
            queued: st.queue.len(),
            admitted: st.admitted,
        }
    }

    fn release(&self, slots: usize) {
        let mut st = self.inner.state.lock().unwrap();
        st.in_use = st.in_use.saturating_sub(slots);
        self.inner.cv.notify_all();
    }
}

/// A granted reservation; dropping it returns the slots to the budget.
pub struct WorkerPermit {
    budget: WorkerBudget,
    slots: usize,
}

impl WorkerPermit {
    /// How many slots this permit holds — the `slots` value to pass to
    /// `run_with_slots`.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl Drop for WorkerPermit {
    fn drop(&mut self) {
        self.budget.release(self.slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn grants_clamp_to_the_budget() {
        let b = WorkerBudget::new(3);
        let p = b.acquire(64, &CancelToken::new()).unwrap();
        assert_eq!(p.slots(), 3);
        assert_eq!(b.stats().in_use, 3);
        drop(p);
        assert_eq!(b.stats().in_use, 0);
        assert_eq!(b.stats().peak_in_use, 3);
        assert_eq!(b.stats().admitted, 1);
    }

    #[test]
    fn concurrent_holders_never_exceed_the_budget() {
        let b = WorkerBudget::new(4);
        let peak_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let b = b.clone();
                let peak = Arc::clone(&peak_seen);
                thread::spawn(move || {
                    let want = 1 + (i % 4);
                    let p = b.acquire(want, &CancelToken::new()).unwrap();
                    let now = b.stats().in_use;
                    peak.fetch_max(now, Ordering::SeqCst);
                    assert!(now <= 4, "budget exceeded: {now}");
                    thread::sleep(Duration::from_millis(2));
                    drop(p);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = b.stats();
        assert_eq!(s.in_use, 0);
        assert_eq!(s.queued, 0);
        assert_eq!(s.admitted, 16);
        assert!(s.peak_in_use <= 4, "peak {} > budget", s.peak_in_use);
        assert!(peak_seen.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn queued_acquire_honours_cancellation() {
        let b = WorkerBudget::new(1);
        let held = b.acquire(1, &CancelToken::new()).unwrap();
        let cancel = CancelToken::new();
        let waiter = {
            let b = b.clone();
            let cancel = cancel.clone();
            thread::spawn(move || b.acquire(1, &cancel))
        };
        // Let the waiter enqueue, then cancel it while it waits.
        thread::sleep(Duration::from_millis(30));
        assert_eq!(b.stats().queued, 1);
        cancel.cancel();
        assert!(waiter.join().unwrap().is_none());
        assert_eq!(b.stats().queued, 0);
        drop(held);
    }

    #[test]
    fn admission_is_fifo_a_wide_request_is_not_starved() {
        let b = WorkerBudget::new(2);
        let first = b.acquire(1, &CancelToken::new()).unwrap();
        // A wide request queues behind the running narrow one...
        let wide = {
            let b = b.clone();
            thread::spawn(move || {
                let p = b.acquire(2, &CancelToken::new()).unwrap();
                thread::sleep(Duration::from_millis(10));
                drop(p);
            })
        };
        thread::sleep(Duration::from_millis(20));
        // ...and a later narrow request must not jump it, even though a
        // slot is free right now.
        let narrow = {
            let b = b.clone();
            thread::spawn(move || {
                let p = b.acquire(1, &CancelToken::new()).unwrap();
                drop(p);
            })
        };
        thread::sleep(Duration::from_millis(20));
        assert_eq!(b.stats().queued, 2, "narrow must queue behind wide");
        drop(first);
        wide.join().unwrap();
        narrow.join().unwrap();
        assert!(b.stats().peak_in_use <= 2);
    }
}
