//! The `pte-verifyd` wire protocol: JSON-lines framing over a typed
//! frame enum pair.
//!
//! Every frame is one line of compact JSON — the externally-tagged
//! serde encoding of [`ClientFrame`] (client → daemon) or
//! [`ServerFrame`] (daemon → client) — terminated by `\n`. The payload
//! types are the *existing* serde types of the verification stack
//! ([`VerificationRequest`], [`VerificationReport`],
//! [`pte_tracheotomy::registry::Scenario`]); the protocol adds only
//! correlation ids, cache metadata, and scheduler statistics, so a
//! report read off the wire is the same artifact `run()` returns in
//! process.
//!
//! Multiplexing: a client may keep any number of requests in flight on
//! one connection; it correlates [`ServerFrame::Progress`] /
//! [`ServerFrame::Report`] frames by the `id` it chose at
//! [`ClientFrame::Submit`] time. Ids are client-scoped — two
//! connections may both use id `1`.
//!
//! ## Example transcript
//!
//! ```text
//! C: {"Submit":{"id":1,"request":{"scenario":"case-study","config":null,"leased":true,"query":"PteSafety","backend":"Symbolic","budget":{"seed":0}}}}
//! S: {"Accepted":{"id":1,"key":"00d14e3326706fa9","cached":false}}
//! S: {"Progress":{"id":1,"backend":"symbolic","round":12,"settled":310,"frontier":55,"elapsed_ms":4.1}}
//! S: {"Report":{"id":1,"key":"00d14e3326706fa9","cached":false,"report":{...,"verdict":"Safe",...}}}
//! C: {"Submit":{"id":2,"request":{...same...}}}
//! S: {"Accepted":{"id":2,"key":"00d14e3326706fa9","cached":true}}
//! S: {"Report":{"id":2,"key":"00d14e3326706fa9","cached":true,"report":{...}}}
//! ```

use pte_tracheotomy::registry::Scenario;
use pte_verify::api::{VerificationReport, VerificationRequest};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Protocol revision carried in [`ServerFrame::Hello`]. Bumped on any
/// frame-shape change; clients refuse to talk to a daemon speaking a
/// different revision.
pub const PROTOCOL_VERSION: u32 = 1;

/// Client → daemon frames.
///
/// `Submit` dwarfs the other variants, but frames are transient (one
/// decode per line, consumed immediately) so indirection would buy
/// nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Submit a verification request under a client-chosen correlation
    /// id. The daemon answers with [`ServerFrame::Accepted`] (or
    /// [`ServerFrame::Error`]), then zero or more
    /// [`ServerFrame::Progress`], then exactly one
    /// [`ServerFrame::Report`].
    Submit {
        /// Correlation id, echoed on every frame about this request.
        id: u64,
        /// The request, verbatim `pte_verify::api` data.
        request: VerificationRequest,
        /// `Some(true)` bypasses **both** cache tiers: the lookup is
        /// skipped (the search always runs) and the resulting report
        /// and artifact are not stored. Elided/`null`/`Some(false)`
        /// mean normal caching, so pre-existing clients are
        /// unaffected.
        no_cache: Option<bool>,
    },
    /// Cooperatively cancel an in-flight request. The search stops
    /// within one BFS round and its [`ServerFrame::Report`] carries
    /// `Inconclusive(Cancelled)` — never `Safe`. Unknown or
    /// already-completed ids are ignored.
    Cancel {
        /// The id given at submit time.
        id: u64,
    },
    /// Ask for the scenario registry ([`ServerFrame::Scenarios`]).
    ListScenarios,
    /// Ask for scheduler/cache statistics ([`ServerFrame::Stats`]).
    Stats,
    /// Ask the daemon to shut down gracefully: it stops accepting,
    /// fires every in-flight request's [`pte_verify::CancelToken`],
    /// waits for the cancelled reports to flush, and exits.
    Shutdown,
}

/// Daemon → client frames.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// First frame on every connection: protocol revision and the
    /// daemon's global worker budget.
    Hello {
        /// [`PROTOCOL_VERSION`] of the daemon.
        protocol: u32,
        /// Total worker slots shared by all clients.
        worker_budget: usize,
    },
    /// A [`ClientFrame::Submit`] was accepted and keyed.
    Accepted {
        /// The submit id.
        id: u64,
        /// [`VerificationRequest::cache_key`] of the request.
        key: String,
        /// `true` when the report is served from cache (the
        /// [`ServerFrame::Report`] follows immediately, no search
        /// runs).
        cached: bool,
    },
    /// Round-boundary progress snapshot of an in-flight request
    /// (throttled; the final state arrives in the report itself).
    Progress {
        /// The submit id.
        id: u64,
        /// Which backend produced the snapshot (`"symbolic"`,
        /// `"exhaustive"`, …) — portfolio requests interleave several.
        backend: String,
        /// BFS round / reporting tick.
        round: usize,
        /// Settled states (zone engine) or completed runs.
        settled: usize,
        /// Frontier states / runs still queued.
        frontier: usize,
        /// Wall time since the search started, milliseconds.
        elapsed_ms: f64,
    },
    /// Terminal frame of a submitted request.
    Report {
        /// The submit id.
        id: u64,
        /// The request's cache key.
        key: String,
        /// `true` when served from cache — the report is byte-identical
        /// to the cold run that populated it (its timing fields are the
        /// cold run's; the daemon does not re-time cache hits).
        cached: bool,
        /// The unified report, verbatim.
        report: VerificationReport,
    },
    /// A frame-level failure: malformed JSON, unknown scenario, an
    /// invalid request. Carries the submit id when one was parsable.
    Error {
        /// The offending submit id, if known.
        id: Option<u64>,
        /// Human-readable diagnostic (for unknown scenarios this is the
        /// registry's full "did you mean" listing).
        message: String,
    },
    /// The scenario registry, verbatim ([`ClientFrame::ListScenarios`]).
    Scenarios {
        /// Every registered scenario, configs and recommended budgets
        /// included.
        scenarios: Vec<Scenario>,
    },
    /// Scheduler and cache statistics ([`ClientFrame::Stats`]).
    Stats {
        /// The daemon-wide counters.
        stats: DaemonStats,
    },
    /// Acknowledges [`ClientFrame::Shutdown`]; the daemon exits once
    /// in-flight reports have flushed.
    ShuttingDown,
}

/// Daemon-wide counters, the observable face of the scheduler and the
/// report cache (this is what the acceptance tests assert the worker
/// budget against).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// Total worker slots shared by every client.
    pub worker_budget: usize,
    /// Worker slots held by running requests right now.
    pub workers_in_use: usize,
    /// High-water mark of `workers_in_use` since start — by
    /// construction never exceeds `worker_budget`.
    pub peak_workers_in_use: usize,
    /// Requests currently queued for worker slots.
    pub queued: usize,
    /// Requests admitted to workers since start.
    pub admitted: u64,
    /// Requests currently executing (admitted, report not yet sent).
    pub active: usize,
    /// Submit frames accepted since start (cache hits included).
    pub submitted: u64,
    /// Reports delivered since start (cache hits included).
    pub completed: u64,
    /// Requests that ended cancelled (client frame, disconnect, or
    /// daemon shutdown).
    pub cancelled: u64,
    /// Reports served straight from the in-memory cache.
    pub cache_hits: u64,
    /// Submits the memory tier could not answer.
    pub cache_misses: u64,
    /// Reports currently cached in memory.
    pub cache_entries: usize,
    /// Reports evicted (FIFO) from the memory tier since start.
    pub cache_evictions: u64,
    /// Serialized bytes held by the memory tier.
    pub cache_bytes: usize,
    /// Memory-tier entry bound (`0` = caching disabled).
    pub cache_capacity: usize,
    /// Memory-tier byte bound (`0` = unbounded).
    pub cache_max_bytes: usize,
    /// Reports served from the disk tier (all zero when the daemon
    /// runs without `--cache-dir`).
    pub disk_hits: u64,
    /// Disk-tier report lookups that missed.
    pub disk_misses: u64,
    /// Warm-start artifacts served from the disk tier.
    pub disk_artifact_hits: u64,
    /// Disk-tier artifact lookups that missed.
    pub disk_artifact_misses: u64,
    /// Corrupt / truncated / stale-version files discarded.
    pub disk_corrupt: u64,
    /// Files written to the disk tier (reports + artifacts).
    pub disk_stores: u64,
    /// Files evicted by the disk byte bound.
    pub disk_evictions: u64,
    /// Bytes currently in the disk tier.
    pub disk_bytes: u64,
    /// Files currently in the disk tier.
    pub disk_files: usize,
    /// Disk-tier byte bound (`0` = unbounded).
    pub disk_max_bytes: u64,
    /// Compositional refinement checks answered from the process-global
    /// verdict cache ([`pte_contracts::cache_stats`]) — all four
    /// refinement counters are zero until a
    /// `--backend compositional` request runs.
    pub refine_cache_hits: u64,
    /// Compositional refinement checks that had to explore.
    pub refine_cache_misses: u64,
    /// Refinement verdicts currently cached in-process.
    pub refine_cache_entries: usize,
    /// Refinement obligations skipped because a structurally identical
    /// device was already checked in the same run.
    pub contracts_deduped: u64,
    /// Daemon uptime, milliseconds.
    pub uptime_ms: f64,
}

/// Writes one frame as a JSON line (with trailing `\n`) and flushes —
/// a frame is only "sent" once the client can parse it.
pub fn write_frame<T: Serialize>(w: &mut impl Write, frame: &T) -> io::Result<()> {
    let json = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one JSON line and parses it as a `T`. Returns `Ok(None)` on a
/// clean EOF, `Err` with [`io::ErrorKind::InvalidData`] on a parse
/// failure (the connection survives — line framing makes the next
/// frame independently parsable), and passes timeouts through
/// (`WouldBlock` / `TimedOut`) so pollers can distinguish "no frame
/// yet" from "connection gone".
pub fn read_frame<T: Deserialize>(r: &mut impl BufRead) -> io::Result<Option<T>> {
    let mut line = String::new();
    read_frame_buffered(r, &mut line)
}

/// [`read_frame`] with a caller-owned line buffer, for readers that
/// poll with a read timeout: `read_line` appends whatever bytes
/// arrived before the timeout to `line` and *keeps* them there across
/// the `WouldBlock`/`TimedOut` error, so a frame split across poll
/// intervals reassembles instead of being truncated. Pass the same
/// buffer on every call; it is drained only when a full line parses
/// (or fails to).
pub fn read_frame_buffered<T: Deserialize>(
    r: &mut impl BufRead,
    line: &mut String,
) -> io::Result<Option<T>> {
    match r.read_line(line) {
        Ok(0) if line.trim().is_empty() => Ok(None),
        Ok(_) => {
            let frame = {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    // Tolerate blank keep-alive lines.
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "blank line"))
                } else {
                    serde_json::from_str::<T>(trimmed)
                        .map(Some)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                }
            };
            line.clear();
            frame
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_verify::api::BackendSel;

    #[test]
    fn frames_round_trip_through_json_lines() {
        let frames = vec![
            ClientFrame::Submit {
                id: 7,
                request: VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic),
                no_cache: None,
            },
            ClientFrame::Submit {
                id: 8,
                request: VerificationRequest::scenario("chain-3").warm_from("00d14e3326706fa9"),
                no_cache: Some(true),
            },
            ClientFrame::Cancel { id: 7 },
            ClientFrame::ListScenarios,
            ClientFrame::Stats,
            ClientFrame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = io::BufReader::new(&wire[..]);
        for f in &frames {
            let back: ClientFrame = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&back, f);
        }
        assert!(read_frame::<ClientFrame>(&mut r).unwrap().is_none());
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = vec![
            ServerFrame::Hello {
                protocol: PROTOCOL_VERSION,
                worker_budget: 3,
            },
            ServerFrame::Accepted {
                id: 1,
                key: "00d14e3326706fa9".into(),
                cached: false,
            },
            ServerFrame::Progress {
                id: 1,
                backend: "symbolic".into(),
                round: 4,
                settled: 100,
                frontier: 20,
                elapsed_ms: 1.25,
            },
            ServerFrame::Error {
                id: Some(2),
                message: "unknown scenario `chain4`; did you mean `chain-4`?".into(),
            },
            ServerFrame::Scenarios {
                scenarios: pte_tracheotomy::registry::registry(),
            },
            ServerFrame::Stats {
                stats: DaemonStats {
                    worker_budget: 3,
                    peak_workers_in_use: 3,
                    refine_cache_hits: 5,
                    refine_cache_misses: 2,
                    refine_cache_entries: 2,
                    contracts_deduped: 9,
                    ..DaemonStats::default()
                },
            },
            ServerFrame::ShuttingDown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = io::BufReader::new(&wire[..]);
        for f in &frames {
            let back: ServerFrame = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&back, f);
        }
    }

    #[test]
    fn malformed_lines_fail_without_poisoning_the_stream() {
        let wire = b"{\"garbage\n\"Stats\"\n";
        let mut r = io::BufReader::new(&wire[..]);
        let err = read_frame::<ClientFrame>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let ok: ClientFrame = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(ok, ClientFrame::Stats);
    }
}
