//! Transport layer: one daemon, two socket families.
//!
//! `pte-verifyd` listens on a Unix-domain socket (the default — private
//! to the machine, access-controlled by file permissions) and/or a TCP
//! socket (for cross-host clients and CI containers). Everything above
//! this module is transport-agnostic: a [`Stream`] is "something
//! bidirectional that carries JSON lines", nothing more.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens / a client connects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP address, `host:port` (port `0` lets the OS pick — the bound
    /// address is reported by [`crate::Daemon::tcp_addr`]).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A connected byte stream of either family.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `endpoint`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Stream> {
        match endpoint {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
        }
    }

    /// Clones the underlying descriptor (independent read/write halves
    /// for the reader-thread / writer-mutex split).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Sets the read timeout — the poll interval at which a blocked
    /// reader rechecks the shutdown flag.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound, non-blocking listener of either family.
pub enum Listener {
    /// Unix-domain listener (remembers its path so shutdown can unlink
    /// it).
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `endpoint` in non-blocking mode (the accept loop polls, so
    /// a shutdown request is honoured within one poll interval). An
    /// existing Unix socket file is an error unless nothing is
    /// listening behind it (a stale file from a killed daemon is
    /// silently replaced).
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("a daemon is already listening on {}", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// Accepts one pending connection, if any. The returned stream is
    /// switched back to blocking mode (per-connection readers use read
    /// timeouts instead).
    pub fn accept(&self) -> io::Result<Option<Stream>> {
        let stream = match self {
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Stream::Unix(s)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Stream::Tcp(s)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        Ok(Some(stream))
    }

    /// The locally-bound TCP address (for `port 0` binds); `None` for
    /// Unix listeners.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match self {
            Listener::Unix(..) => None,
            Listener::Tcp(l) => l.local_addr().ok(),
        }
    }

    /// Removes the socket file of a Unix listener (shutdown cleanup).
    pub fn cleanup(&self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}
