//! A thin synchronous client for `pte-verifyd` — the library behind
//! the `pte-verify-client` CLI and the integration tests.
//!
//! One [`Client`] is one connection. Reads are blocking (the daemon
//! always answers), writes are line-at-a-time; the caller drives the
//! frame stream with [`Client::recv`] or lets [`Client::wait_report`]
//! collect a request's terminal report while forwarding its progress
//! frames to a callback.

use crate::protocol::{
    read_frame, write_frame, ClientFrame, DaemonStats, ServerFrame, PROTOCOL_VERSION,
};
use crate::transport::{Endpoint, Stream};
use pte_tracheotomy::registry::Scenario;
use pte_verify::api::{VerificationReport, VerificationRequest};
use std::io::{self, BufReader, BufWriter};

/// The terminal outcome of one submitted request, as observed on the
/// wire.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// The daemon's canonical cache key for the request.
    pub key: String,
    /// Whether the report came from the daemon's cache.
    pub cached: bool,
    /// The report itself, verbatim.
    pub report: VerificationReport,
}

/// A connected client.
pub struct Client {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
    /// The daemon's advertised global worker budget (from `Hello`).
    worker_budget: usize,
    next_id: u64,
}

impl Client {
    /// Connects and consumes the `Hello` frame, verifying the protocol
    /// revision.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            worker_budget: 0,
            next_id: 1,
        };
        match client.recv()? {
            ServerFrame::Hello {
                protocol,
                worker_budget,
            } if protocol == PROTOCOL_VERSION => {
                client.worker_budget = worker_budget;
                Ok(client)
            }
            ServerFrame::Hello { protocol, .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("daemon speaks protocol {protocol}, this client {PROTOCOL_VERSION}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Hello, got {other:?}"),
            )),
        }
    }

    /// The daemon's global worker budget, as advertised at connect.
    pub fn worker_budget(&self) -> usize {
        self.worker_budget
    }

    /// Submits a request and returns the correlation id assigned to it.
    pub fn submit(&mut self, request: &VerificationRequest) -> io::Result<u64> {
        self.submit_with(request, false)
    }

    /// Submits a request with an explicit cache policy: `no_cache`
    /// bypasses both cache tiers for the lookup *and* the store.
    pub fn submit_with(
        &mut self,
        request: &VerificationRequest,
        no_cache: bool,
    ) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &ClientFrame::Submit {
                id,
                request: request.clone(),
                no_cache: no_cache.then_some(true),
            },
        )?;
        Ok(id)
    }

    /// Sends a cancel for an in-flight request.
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.send(&ClientFrame::Cancel { id })
    }

    /// Sends a raw frame without reading a reply — the escape hatch
    /// for callers (tests, mostly) that drive the frame stream
    /// manually with [`Client::recv`].
    pub fn send(&mut self, frame: &ClientFrame) -> io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    /// Reads the next server frame (blocking).
    pub fn recv(&mut self) -> io::Result<ServerFrame> {
        read_frame::<ServerFrame>(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }

    /// Drives the frame stream until request `id`'s terminal frame
    /// arrives, forwarding its `Progress` frames to `on_progress`.
    /// Frames about other in-flight ids are skipped (single-request
    /// callers never see any). An `Error` frame for `id` (or an
    /// unkeyed one) becomes an `io::Error`.
    pub fn wait_report(
        &mut self,
        id: u64,
        mut on_progress: impl FnMut(&ServerFrame),
    ) -> io::Result<SubmitOutcome> {
        loop {
            match self.recv()? {
                ServerFrame::Report {
                    id: rid,
                    key,
                    cached,
                    report,
                } if rid == id => {
                    return Ok(SubmitOutcome {
                        key,
                        cached,
                        report,
                    })
                }
                f @ ServerFrame::Progress { .. } => {
                    if matches!(f, ServerFrame::Progress { id: pid, .. } if pid == id) {
                        on_progress(&f);
                    }
                }
                ServerFrame::Error { id: eid, message } if eid == Some(id) || eid.is_none() => {
                    return Err(io::Error::new(io::ErrorKind::InvalidInput, message));
                }
                _ => {}
            }
        }
    }

    /// Convenience: submit + wait, ignoring progress.
    pub fn verify(&mut self, request: &VerificationRequest) -> io::Result<SubmitOutcome> {
        let id = self.submit(request)?;
        self.wait_report(id, |_| {})
    }

    /// Convenience: submit with an explicit cache policy + wait,
    /// ignoring progress.
    pub fn verify_with(
        &mut self,
        request: &VerificationRequest,
        no_cache: bool,
    ) -> io::Result<SubmitOutcome> {
        let id = self.submit_with(request, no_cache)?;
        self.wait_report(id, |_| {})
    }

    /// Fetches the scenario registry.
    pub fn list_scenarios(&mut self) -> io::Result<Vec<Scenario>> {
        write_frame(&mut self.writer, &ClientFrame::ListScenarios)?;
        loop {
            match self.recv()? {
                ServerFrame::Scenarios { scenarios } => return Ok(scenarios),
                ServerFrame::Error { message, .. } => {
                    return Err(io::Error::new(io::ErrorKind::InvalidInput, message))
                }
                _ => {}
            }
        }
    }

    /// Fetches daemon statistics.
    pub fn stats(&mut self) -> io::Result<DaemonStats> {
        write_frame(&mut self.writer, &ClientFrame::Stats)?;
        loop {
            match self.recv()? {
                ServerFrame::Stats { stats } => return Ok(stats),
                ServerFrame::Error { message, .. } => {
                    return Err(io::Error::new(io::ErrorKind::InvalidInput, message))
                }
                _ => {}
            }
        }
    }

    /// Asks the daemon to shut down gracefully; returns once the
    /// daemon acknowledges with `ShuttingDown` (in-flight requests on
    /// this connection have flushed their reports by then).
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&ClientFrame::Shutdown)?;
        loop {
            match self.recv() {
                Ok(ServerFrame::ShuttingDown) => return Ok(()),
                Ok(_) => continue,
                // The daemon may close the connection right after (or
                // instead of) the ack under a racing signal shutdown.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}
