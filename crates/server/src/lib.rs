//! # pte-server
//!
//! `pte-verifyd`: verification-as-a-service over the unified
//! [`pte_verify::api`].
//!
//! PR 5 gave the repo one front door for in-process verification — a
//! [`VerificationRequest`](pte_verify::api::VerificationRequest) with
//! portfolio racing, cancellation, and streamed progress. This crate
//! puts that front door on a socket: a persistent daemon that accepts
//! concurrent requests as JSON lines over a Unix-domain or TCP socket
//! and returns the same [`VerificationReport`](
//! pte_verify::api::VerificationReport) artifacts, with three things a
//! one-shot CLI cannot provide:
//!
//! * **a global worker budget** ([`scheduler`]) — in-process callers
//!   each assume `available_parallelism - 1` is theirs; N concurrent
//!   clients making that assumption oversubscribe the machine N-fold.
//!   The daemon admits every request through one shared FIFO
//!   semaphore, reserving
//!   [`worker_cost`](pte_verify::api::VerificationRequest::worker_cost)
//!   slots and running capped via
//!   [`run_with_slots`](pte_verify::api::VerificationRequest::run_with_slots),
//!   so the fleet-wide thread fan-out never exceeds the budget (the
//!   `peak_workers_in_use` stat proves it);
//! * **a report cache** ([`cache`]) — keyed by the canonical
//!   [`cache_key`](pte_verify::api::VerificationRequest::cache_key)
//!   digest, so re-verifying an unchanged scenario is a lookup, not a
//!   zone-graph exploration. Only conclusive reports are cached, and a
//!   hit is the stored report verbatim (identical to the cold run
//!   modulo its recorded timings);
//! * **lifecycle discipline** ([`daemon`], [`signal`]) — streamed
//!   progress per request, `Cancel` frames, cancel-on-disconnect, and
//!   a graceful drain on SIGTERM / `Shutdown` that stops every
//!   in-flight search within one BFS round and still delivers each
//!   client its (`Inconclusive(Cancelled)`, never `Safe`) report.
//!
//! The wire protocol ([`protocol`]) is a typed frame pair serialized
//! as JSON lines; [`client`] is the thin synchronous driver the
//! `pte-verify-client` CLI and the integration tests use.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod protocol;
pub mod scheduler;
pub mod signal;
pub mod transport;

pub use cache::{strip_timing, CacheStats, DiskCache, DiskStats, ReportCache};
pub use client::{Client, SubmitOutcome};
pub use daemon::{Daemon, DaemonConfig, DaemonHandle};
pub use protocol::{ClientFrame, DaemonStats, ServerFrame, PROTOCOL_VERSION};
pub use scheduler::{WorkerBudget, WorkerPermit};
pub use transport::Endpoint;
