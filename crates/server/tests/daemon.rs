//! End-to-end daemon tests: real sockets, real clients, real zone
//! searches — the acceptance criteria of the service layer.
//!
//! Each test boots its own daemon on a unique Unix socket under the
//! system temp dir, so the tests are independent and parallelizable.

use pte_server::client::Client;
use pte_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use pte_server::protocol::{ClientFrame, ServerFrame};
use pte_server::strip_timing;
use pte_server::transport::Endpoint;
use pte_verify::api::{BackendSel, Inconclusive, Verdict, VerificationRequest};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// A unique socket path per test (process id + counter keeps parallel
/// test binaries and parallel tests within one binary apart).
fn socket_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("pte-verifyd-test-{}-{n}.sock", std::process::id()))
}

/// Boots a daemon with the given worker budget; returns the endpoint,
/// a handle, and the serving thread (joined by `stop`).
fn boot(workers: usize) -> (Endpoint, DaemonHandle, thread::JoinHandle<()>) {
    let endpoint = Endpoint::Unix(socket_path());
    let daemon = Daemon::bind(&DaemonConfig {
        endpoint: endpoint.clone(),
        workers,
        cache_capacity: 16,
        cache_mem_bytes: 0,
        cache_dir: None,
        cache_disk_bytes: 0,
    })
    .expect("bind");
    let handle = daemon.handle();
    let serving = thread::spawn(move || daemon.run().expect("daemon run"));
    (endpoint, handle, serving)
}

fn stop(handle: &DaemonHandle, serving: thread::JoinHandle<()>) {
    handle.shutdown();
    serving.join().expect("daemon thread");
}

/// A fast conclusive request (case-study proves Safe in well under a
/// second even unoptimized).
fn fast_request() -> VerificationRequest {
    VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic)
}

/// A request big enough that cancellation always lands while the
/// search is still running (chain-6 explores ~477k states; the tests
/// cancel it within milliseconds of admission).
fn slow_request() -> VerificationRequest {
    VerificationRequest::scenario("chain-6").backend(BackendSel::Symbolic)
}

#[test]
fn cold_then_cached_reports_agree_modulo_timing() {
    let (endpoint, handle, serving) = boot(2);

    let mut first = Client::connect(&endpoint).expect("connect");
    let cold = first.verify(&fast_request()).expect("cold verify");
    assert!(!cold.cached, "first submit must miss the cache");
    assert_eq!(cold.report.verdict, Verdict::Safe);

    // A *different* client hits the daemon-wide cache.
    let mut second = Client::connect(&endpoint).expect("connect");
    let hit = second.verify(&fast_request()).expect("cached verify");
    assert!(hit.cached, "second submit must hit the cache");
    assert_eq!(hit.key, cold.key, "same request, same canonical key");

    // Identical modulo wall-clock fields (in fact verbatim: the cached
    // report carries the cold run's timings, so even the full structs
    // agree — but the contract is "modulo timing", so that is what the
    // assertion pins).
    let cold_flat = serde_json::to_string(&strip_timing(&cold.report)).unwrap();
    let hit_flat = serde_json::to_string(&strip_timing(&hit.report)).unwrap();
    assert_eq!(cold_flat, hit_flat);
    assert_eq!(hit.report.backends.len(), cold.report.backends.len());

    // The scenario-by-name spelling and the equivalent inline-config
    // spelling share a cache entry (canonical keys, not wire bytes).
    let scenario = pte_tracheotomy::registry::by_name("case-study").unwrap();
    let inline = VerificationRequest::config(scenario.config)
        .max_states(scenario.recommended_budget)
        .backend(BackendSel::Symbolic);
    let inline_hit = second.verify(&inline).expect("inline verify");
    assert!(inline_hit.cached, "inline spelling must share the entry");
    assert_eq!(inline_hit.key, cold.key);

    let stats = second.stats().expect("stats");
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_entries, 1);
    stop(&handle, serving);
}

#[test]
fn four_concurrent_clients_never_exceed_the_worker_budget() {
    const BUDGET: usize = 2;
    let (endpoint, handle, serving) = boot(BUDGET);

    // Four clients, four *distinct* requests (different scenarios /
    // arms), all submitted at once against a 2-slot budget.
    let requests = vec![
        VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic),
        VerificationRequest::scenario("case-study")
            .backend(BackendSel::Symbolic)
            .leased(false),
        VerificationRequest::scenario("chain-2").backend(BackendSel::Symbolic),
        VerificationRequest::scenario("stress-lossy").backend(BackendSel::Symbolic),
    ];
    let expected: Vec<Verdict> = vec![
        Verdict::Safe,
        Verdict::Unsafe, // the lease-stripped baseline is falsified
        Verdict::Safe,
        Verdict::Safe,
    ];
    let workers: Vec<_> = requests
        .into_iter()
        .map(|req| {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&endpoint).expect("connect");
                assert_eq!(c.worker_budget(), BUDGET);
                c.verify(&req).expect("verify")
            })
        })
        .collect();
    for (w, expected) in workers.into_iter().zip(expected) {
        let outcome = w.join().expect("client thread");
        assert!(!outcome.cached);
        assert_eq!(outcome.report.verdict, expected);
    }

    let stats = handle.stats();
    assert_eq!(stats.worker_budget, BUDGET);
    assert!(
        stats.peak_workers_in_use <= BUDGET,
        "budget oversubscribed: peak {} > {BUDGET}",
        stats.peak_workers_in_use
    );
    assert!(stats.peak_workers_in_use >= 1);
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.cache_misses, 4);
    assert_eq!(stats.workers_in_use, 0, "all slots returned");
    stop(&handle, serving);
}

#[test]
fn cancel_frame_yields_cancelled_never_safe() {
    let (endpoint, handle, serving) = boot(2);
    let mut c = Client::connect(&endpoint).expect("connect");
    let id = c.submit(&slow_request()).expect("submit");
    match c.recv().expect("accepted") {
        ServerFrame::Accepted { cached, .. } => assert!(!cached),
        other => panic!("expected Accepted, got {other:?}"),
    }
    c.cancel(id).expect("cancel");
    let outcome = c.wait_report(id, |_| {}).expect("report");
    assert_eq!(
        outcome.report.verdict,
        Verdict::Inconclusive(Inconclusive::Cancelled),
        "a cancelled search must never report Safe"
    );

    // And the inconclusive report must not have poisoned the cache: a
    // resubmit runs cold (and this time completes... no, chain-6 is
    // too big to wait for — assert via stats instead).
    let stats = c.stats().expect("stats");
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.cache_entries, 0, "cancelled reports are not cached");
    assert_eq!(stats.workers_in_use, 0);
    stop(&handle, serving);
}

#[test]
fn client_disconnect_cancels_in_flight_work() {
    let (endpoint, handle, serving) = boot(2);
    {
        let mut doomed = Client::connect(&endpoint).expect("connect");
        doomed.submit(&slow_request()).expect("submit");
        match doomed.recv().expect("accepted") {
            ServerFrame::Accepted { .. } => {}
            other => panic!("expected Accepted, got {other:?}"),
        }
        // Dropping the client closes the socket with the search still
        // running.
    }
    // The daemon notices the disconnect and cancels the orphaned job;
    // its worker slot returns to the budget within one BFS round.
    let mut observer = Client::connect(&endpoint).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = observer.stats().expect("stats");
        if stats.cancelled >= 1 && stats.workers_in_use == 0 && stats.active == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect did not cancel the in-flight job: {stats:?}"
        );
        thread::sleep(Duration::from_millis(20));
    }
    stop(&handle, serving);
}

#[test]
fn shutdown_frame_drains_in_flight_reports_before_exit() {
    let (endpoint, handle, serving) = boot(2);
    let mut c = Client::connect(&endpoint).expect("connect");
    let id = c.submit(&slow_request()).expect("submit");
    match c.recv().expect("accepted") {
        ServerFrame::Accepted { .. } => {}
        other => panic!("expected Accepted, got {other:?}"),
    }
    c.send(&ClientFrame::Shutdown).expect("shutdown frame");
    // The drain contract: the in-flight request's report is still
    // delivered (cancelled, never Safe), *then* the shutdown ack.
    let mut saw_report = false;
    loop {
        match c.recv().expect("drain frame") {
            ServerFrame::Report {
                id: rid, report, ..
            } => {
                assert_eq!(rid, id);
                assert_eq!(
                    report.verdict,
                    Verdict::Inconclusive(Inconclusive::Cancelled)
                );
                saw_report = true;
            }
            ServerFrame::ShuttingDown => break,
            ServerFrame::Progress { .. } => {}
            other => panic!("unexpected drain frame {other:?}"),
        }
    }
    assert!(saw_report, "the cancelled report must precede the ack");
    serving.join().expect("daemon thread");
    // The socket file is gone after a clean drain.
    if let Endpoint::Unix(path) = &endpoint {
        assert!(!path.exists(), "socket file must be unlinked");
    }
    let _ = handle;
}

#[test]
fn unknown_scenario_errors_carry_the_suggestion_over_the_wire() {
    let (endpoint, handle, serving) = boot(1);
    let mut c = Client::connect(&endpoint).expect("connect");
    let err = c
        .verify(&VerificationRequest::scenario("chain4").backend(BackendSel::Symbolic))
        .expect_err("unknown scenario must fail");
    let msg = err.to_string();
    assert!(msg.contains("unknown scenario `chain4`"), "{msg}");
    assert!(msg.contains("did you mean `chain-4`?"), "{msg}");
    assert!(msg.contains("case-study"), "listing included: {msg}");

    // The registry also ships whole over the wire.
    let scenarios = c.list_scenarios().expect("list");
    assert_eq!(scenarios, pte_tracheotomy::registry::registry());
    stop(&handle, serving);
}

#[test]
fn progress_frames_stream_for_long_requests() {
    let (endpoint, handle, serving) = boot(2);
    let mut c = Client::connect(&endpoint).expect("connect");
    // chain-4 is big enough (~57k states) to outlast several progress
    // intervals even if the machine is fast.
    let req = VerificationRequest::scenario("chain-4").backend(BackendSel::Symbolic);
    let id = c.submit(&req).expect("submit");
    let mut progress_frames = 0usize;
    let outcome = c
        .wait_report(id, |frame| {
            if let ServerFrame::Progress {
                id: pid, backend, ..
            } = frame
            {
                assert_eq!(*pid, id);
                assert_eq!(backend, "symbolic");
                progress_frames += 1;
            }
        })
        .expect("report");
    assert_eq!(outcome.report.verdict, Verdict::Safe);
    assert!(
        progress_frames >= 1,
        "a multi-second search must stream at least one snapshot"
    );
    stop(&handle, serving);
}
