//! The persistent tier end-to-end: reports and passed-list artifacts
//! survive daemon restarts, warm starts engage through the wire
//! protocol, concurrent submits and mid-flight shutdowns never publish
//! a torn file, and corruption degrades to a cold run — never a wrong
//! answer.
//!
//! Each test boots its own daemon on a unique Unix socket and its own
//! cache directory under the system temp dir.

use pte_core::rules::PairSpec;
use pte_hybrid::Time;
use pte_server::client::Client;
use pte_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use pte_server::strip_timing;
use pte_server::transport::Endpoint;
use pte_server::DiskCache;
use pte_verify::api::{BackendSel, Verdict, VerificationRequest};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// A unique temp path per call (process id + counter keeps parallel
/// tests apart).
fn unique_path(kind: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "pte-persist-test-{}-{n}.{kind}",
        std::process::id()
    ))
}

/// Boots a daemon with a persistent tier rooted at `cache_dir`.
fn boot(cache_dir: &Path) -> (Endpoint, DaemonHandle, thread::JoinHandle<()>) {
    let endpoint = Endpoint::Unix(unique_path("sock"));
    let daemon = Daemon::bind(&DaemonConfig {
        endpoint: endpoint.clone(),
        workers: 2,
        cache_capacity: 16,
        cache_mem_bytes: 0,
        cache_dir: Some(cache_dir.to_path_buf()),
        cache_disk_bytes: 0,
    })
    .expect("bind");
    let handle = daemon.handle();
    let serving = thread::spawn(move || daemon.run().expect("daemon run"));
    (endpoint, handle, serving)
}

fn stop(handle: &DaemonHandle, serving: thread::JoinHandle<()>) {
    handle.shutdown();
    serving.join().expect("daemon thread");
}

fn fast_request() -> VerificationRequest {
    VerificationRequest::scenario("case-study").backend(BackendSel::Symbolic)
}

/// A weakened-monitor variant of a registry chain: same network,
/// smaller safeguard minima — the warm-start-admissible delta.
fn relaxed_chain(name: &str) -> VerificationRequest {
    let scenario = pte_tracheotomy::registry::by_name(name).expect("registry scenario");
    let mut config = scenario.config;
    config.safeguards =
        vec![PairSpec::new(Time::seconds(0.5), Time::seconds(0.25)); config.safeguards.len()];
    VerificationRequest::config(config)
        .max_states(scenario.recommended_budget)
        .backend(BackendSel::Symbolic)
}

#[test]
fn restarted_daemon_serves_the_report_from_disk_without_rerunning() {
    let dir = unique_path("cache");

    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    let cold = client.verify(&fast_request()).expect("cold verify");
    assert!(!cold.cached);
    assert_eq!(cold.report.verdict, Verdict::Safe);
    stop(&handle, serving);

    // A brand-new daemon process (fresh memory tier) on the same
    // directory answers from disk: cached, byte-identical modulo the
    // timing fields (in fact verbatim — the stored report carries the
    // cold run's timings).
    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    let hit = client.verify(&fast_request()).expect("disk-hit verify");
    assert!(hit.cached, "the restarted daemon must answer from disk");
    assert_eq!(hit.key, cold.key);
    assert_eq!(
        serde_json::to_string(&strip_timing(&hit.report)).unwrap(),
        serde_json::to_string(&strip_timing(&cold.report)).unwrap()
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.disk_corrupt, 0);
    // The promoted entry now also serves from memory.
    let again = client.verify(&fast_request()).expect("mem-hit verify");
    assert!(again.cached);
    assert_eq!(client.stats().expect("stats").disk_hits, 1);
    stop(&handle, serving);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_engages_over_the_wire_and_survives_a_restart() {
    let dir = unique_path("cache");

    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    let parent = client
        .verify(&VerificationRequest::scenario("chain-2").backend(BackendSel::Symbolic))
        .expect("parent proof");
    assert_eq!(parent.report.verdict, Verdict::Safe);
    let parent_states = parent.report.backend("symbolic").expect("symbolic").states;
    stop(&handle, serving);

    // Restart: the artifact must come off disk, not daemon memory.
    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    let child = relaxed_chain("chain-2").warm_from(parent.key.clone());
    let warm = client.verify(&child).expect("warm verify");
    assert!(!warm.cached, "a new key never hits the report cache");
    assert_eq!(warm.report.verdict, Verdict::Safe);
    assert_eq!(
        warm.report
            .backend("symbolic")
            .expect("symbolic")
            .warm_seeded,
        parent_states,
        "the whole parent proof must transfer"
    );

    // The cold run of the same relaxed config (no parent) agrees.
    let cold = client
        .verify_with(&relaxed_chain("chain-2"), true)
        .expect("cold verify");
    assert_eq!(cold.report.verdict, warm.report.verdict);
    assert_eq!(cold.report.witness, warm.report.witness);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.disk_artifact_hits, 1);

    // A bogus parent key degrades to a cold run, not an error.
    let orphan = relaxed_chain("chain-2")
        .workers(2)
        .warm_from("ffffffffffffffff");
    let outcome = client.verify(&orphan).expect("orphan verify");
    assert_eq!(outcome.report.verdict, Verdict::Safe);
    assert_eq!(
        outcome
            .report
            .backend("symbolic")
            .expect("symbolic")
            .warm_seeded,
        0,
        "a missing artifact must fall back to cold"
    );
    stop(&handle, serving);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_on_one_key_never_publish_a_torn_file() {
    let dir = unique_path("cache");
    let (endpoint, handle, serving) = boot(&dir);

    // Four clients race the same request: some run, some hit the
    // cache mid-flight — every report must be Safe and keyed alike.
    let outcomes: Vec<_> = (0..4)
        .map(|_| {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&endpoint).expect("connect");
                c.verify(&fast_request()).expect("verify")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let key = outcomes[0].key.clone();
    for o in &outcomes {
        assert_eq!(o.key, key);
        assert_eq!(o.report.verdict, Verdict::Safe);
    }
    stop(&handle, serving);

    // Whatever interleaving happened, the published files are whole:
    // a fresh DiskCache reads both back without a corruption event,
    // and no write-ahead temp files survived.
    let disk = DiskCache::open(&dir, 0).expect("reopen");
    assert!(disk.get_report(&key).is_some(), "report file is readable");
    assert!(
        disk.get_artifact(&key).is_some(),
        "artifact file is readable"
    );
    assert_eq!(disk.stats().corrupt, 0);
    for entry in std::fs::read_dir(&dir).expect("read cache dir") {
        let name = entry.expect("dir entry").file_name();
        assert!(
            !name.to_string_lossy().starts_with(".tmp-"),
            "temp file leaked: {name:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_mid_search_leaves_the_cache_clean() {
    let dir = unique_path("cache");
    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    // chain-6 outlives the shutdown by orders of magnitude; the drain
    // cancels it, and a cancelled (inconclusive) run must persist
    // nothing.
    let id = client
        .submit(&VerificationRequest::scenario("chain-6").backend(BackendSel::Symbolic))
        .expect("submit");
    stop(&handle, serving);
    let _ = id;

    let disk = DiskCache::open(&dir, 0).expect("reopen");
    let stats = disk.stats();
    assert_eq!(stats.files, 0, "an interrupted run must persist nothing");
    assert_eq!(stats.corrupt, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_bypasses_lookup_and_store_on_both_tiers() {
    let dir = unique_path("cache");
    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");

    let first = client.verify_with(&fast_request(), true).expect("verify");
    let second = client.verify_with(&fast_request(), true).expect("verify");
    assert!(!first.cached && !second.cached, "no-cache runs never hit");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_entries, 0, "no-cache runs never store");
    assert_eq!(stats.disk_stores, 0);

    // A normal submit still runs cold (nothing was stored) and then
    // populates both tiers.
    let cold = client.verify(&fast_request()).expect("verify");
    assert!(!cold.cached);
    let hit = client.verify(&fast_request()).expect("verify");
    assert!(hit.cached);
    assert!(client.stats().expect("stats").disk_stores >= 1);
    stop(&handle, serving);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_files_degrade_to_a_cold_run() {
    let dir = unique_path("cache");

    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    let cold = client.verify(&fast_request()).expect("cold verify");
    stop(&handle, serving);

    // Flip a byte in every cache file.
    for entry in std::fs::read_dir(&dir).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("read cache file");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt cache file");
    }

    let (endpoint, handle, serving) = boot(&dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    // The report is detected as corrupt and the search re-runs cold —
    // same verdict, no torn data served.
    let rerun = client.verify(&fast_request()).expect("re-verify");
    assert!(!rerun.cached, "a corrupt file must be a miss");
    assert_eq!(rerun.report.verdict, cold.report.verdict);
    // The corrupt artifact is rejected by its checksum: a warm request
    // naming it falls back to cold.
    let warm = client
        .verify(&relaxed_chain("chain-2").warm_from(cold.key.clone()))
        .expect("warm verify");
    assert_eq!(warm.report.verdict, Verdict::Safe);
    let stats = client.stats().expect("stats");
    assert!(
        stats.disk_corrupt >= 1,
        "corruption must be detected and counted: {stats:?}"
    );
    stop(&handle, serving);
    let _ = std::fs::remove_dir_all(&dir);
}
