//! # pte-ode
//!
//! ODE integration substrate for hybrid automaton flows.
//!
//! Each location `v` of a hybrid automaton defines a flow map
//! `ẋ = f_v(x)`; trajectories between discrete transitions are solutions
//! of those differential equations. This crate provides the numerical
//! machinery the executor uses:
//!
//! * [`solver`] — fixed-step [Euler](solver::euler_step) and
//!   [RK4](solver::rk4_step) steps, an adaptive
//!   [RKF45](solver::Rkf45) driver, and the [`solver::Solver`] enum the
//!   executor selects from;
//! * [`events`] — zero-crossing localization by bisection, used to pin
//!   guard/invariant boundary crossings (e.g. `Hvent = 0`) to within a
//!   configurable tolerance.
//!
//! The right-hand side is any `Fn(&[f64], &mut [f64])` writing derivatives;
//! the executor adapts per-location flow expressions to this signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod solver;

pub use events::{bisect_crossing, Crossing};
pub use solver::{euler_step, rk4_step, Rkf45, Solver};
