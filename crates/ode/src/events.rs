//! Zero-crossing (event) localization.
//!
//! Discrete transitions of a hybrid automaton are gated by guards and
//! invariants over continuous states. When a boundary such as `Hvent = 0`
//! is crossed *inside* an integration step, the executor must locate the
//! crossing instant precisely — otherwise guard semantics would depend on
//! the step size. [`bisect_crossing`] refines the crossing over a step
//! given a boolean event function, assuming the event function changes
//! value at most once within the step (guaranteed for small enough steps).

/// A localized crossing within a step.
#[derive(Clone, Debug, PartialEq)]
pub struct Crossing {
    /// Offset from the step start at which the event function first
    /// reports `true`, accurate to the requested tolerance.
    pub offset: f64,
    /// The state at the crossing (event function `true`).
    pub state: Vec<f64>,
}

/// Localizes the earliest switch of `event` from `false` to `true` within
/// a step of length `h` starting at `state`.
///
/// `advance(state, dt) -> Vec<f64>` must integrate the state forward by
/// `dt` from the step start (the caller re-integrates from the saved start
/// state, which keeps localization independent of solver internals).
///
/// Requires `event(advance(state, h))` to be `true` and
/// `event(state)` to be `false`; returns the earliest `true` point within
/// tolerance `tol` (in time units).
///
/// # Panics
///
/// Panics (debug) if the bracketing precondition is violated.
pub fn bisect_crossing<A, E>(state: &[f64], h: f64, tol: f64, advance: A, event: E) -> Crossing
where
    A: Fn(&[f64], f64) -> Vec<f64>,
    E: Fn(&[f64]) -> bool,
{
    debug_assert!(!event(state), "event must be false at step start");
    debug_assert!(h > 0.0 && tol > 0.0);

    let mut lo = 0.0f64; // event false at lo
    let mut hi = h; // event true at hi
    let mut hi_state = advance(state, hi);
    debug_assert!(event(&hi_state), "event must be true at step end");

    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let mid_state = advance(state, mid);
        if event(&mid_state) {
            hi = mid;
            hi_state = mid_state;
        } else {
            lo = mid;
        }
    }

    Crossing {
        offset: hi,
        state: hi_state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear fall: x(t) = 1 - 2t; event x <= 0 crosses at t = 0.5.
    fn advance_linear(s: &[f64], dt: f64) -> Vec<f64> {
        vec![s[0] - 2.0 * dt]
    }

    #[test]
    fn localizes_linear_crossing() {
        let state = vec![1.0];
        let c = bisect_crossing(&state, 1.0, 1e-9, advance_linear, |s| s[0] <= 0.0);
        assert!((c.offset - 0.5).abs() < 1e-8, "offset {}", c.offset);
        assert!(c.state[0] <= 0.0);
        assert!(c.state[0] > -1e-7, "state barely past boundary");
    }

    #[test]
    fn localizes_near_step_end() {
        let state = vec![1.0];
        // Crossing at t = 0.5 of a step of 0.5001.
        let c = bisect_crossing(&state, 0.5001, 1e-9, advance_linear, |s| s[0] <= 0.0);
        assert!((c.offset - 0.5).abs() < 1e-7);
    }

    #[test]
    fn localizes_near_step_start() {
        let state = vec![1e-6];
        let c = bisect_crossing(&state, 1.0, 1e-12, advance_linear, |s| s[0] <= 0.0);
        assert!((c.offset - 5e-7).abs() < 1e-9);
    }

    #[test]
    fn quadratic_crossing() {
        // x(t) = 1 - t^2, event at t = 1.
        let advance = |s: &[f64], dt: f64| vec![s[0] - dt * dt];
        let state = vec![1.0];
        let c = bisect_crossing(&state, 1.5, 1e-10, advance, |s| s[0] <= 0.0);
        assert!((c.offset - 1.0).abs() < 1e-8);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "event must be false")]
    fn rejects_already_true() {
        let state = vec![-1.0];
        let _ = bisect_crossing(&state, 1.0, 1e-9, advance_linear, |s| s[0] <= 0.0);
    }
}
