//! Numerical integrators for `ẋ = f(x)`.
//!
//! The executor integrates autonomous systems (time enters only through
//! clock variables with slope 1, which are part of the state), so all
//! drivers take a time-independent right-hand side `f(x, &mut dx)`.

/// Advances `state` by one explicit-Euler step of size `h`.
///
/// First-order accurate; exact for the constant-slope flows (clocks,
/// constant pump rates) that dominate the design-pattern automata.
pub fn euler_step<F>(f: &F, state: &mut [f64], h: f64, scratch: &mut Scratch)
where
    F: Fn(&[f64], &mut [f64]),
{
    scratch.resize(state.len());
    let k1 = &mut scratch.k1;
    f(state, k1);
    for (x, k) in state.iter_mut().zip(k1.iter()) {
        *x += h * k;
    }
}

/// Advances `state` by one classic Runge–Kutta 4 step of size `h`.
pub fn rk4_step<F>(f: &F, state: &mut [f64], h: f64, scratch: &mut Scratch)
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = state.len();
    scratch.resize(n);
    let Scratch {
        k1,
        k2,
        k3,
        k4,
        tmp,
        ..
    } = scratch;

    f(state, k1);
    for i in 0..n {
        tmp[i] = state[i] + 0.5 * h * k1[i];
    }
    f(tmp, k2);
    for i in 0..n {
        tmp[i] = state[i] + 0.5 * h * k2[i];
    }
    f(tmp, k3);
    for i in 0..n {
        tmp[i] = state[i] + h * k3[i];
    }
    f(tmp, k4);
    for i in 0..n {
        state[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Reusable work buffers for the steppers (avoids per-step allocation in
/// the executor's inner loop).
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    k5: Vec<f64>,
    k6: Vec<f64>,
    tmp: Vec<f64>,
}

impl Scratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    fn resize(&mut self, n: usize) {
        for buf in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.k5,
            &mut self.k6,
            &mut self.tmp,
        ] {
            buf.resize(n, 0.0);
        }
    }
}

/// Integrator selection for the executor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Solver {
    /// Explicit Euler (exact for the piecewise-constant flows of the
    /// design pattern; cheapest).
    Euler,
    /// Classic RK4 (default; 4th order for smooth physical models such as
    /// the SpO2 dynamics).
    #[default]
    Rk4,
}

impl Solver {
    /// Advances `state` by one step of size `h`.
    pub fn step<F>(self, f: &F, state: &mut [f64], h: f64, scratch: &mut Scratch)
    where
        F: Fn(&[f64], &mut [f64]),
    {
        match self {
            Solver::Euler => euler_step(f, state, h, scratch),
            Solver::Rk4 => rk4_step(f, state, h, scratch),
        }
    }
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) driver.
///
/// Used by the patient physiological model where the SpO2 dynamics are
/// stiff near saturation; the driver subdivides a requested span until the
/// embedded 4th/5th-order error estimate falls under `tol`.
#[derive(Clone, Debug)]
pub struct Rkf45 {
    /// Absolute local error tolerance per step.
    pub tol: f64,
    /// Smallest step the driver will attempt before giving up refining.
    pub min_step: f64,
    /// Largest step the driver will take.
    pub max_step: f64,
    scratch: Scratch,
}

impl Rkf45 {
    /// Creates a driver with the given tolerance and step bounds.
    pub fn new(tol: f64, min_step: f64, max_step: f64) -> Rkf45 {
        assert!(tol > 0.0 && min_step > 0.0 && max_step >= min_step);
        Rkf45 {
            tol,
            min_step,
            max_step,
            scratch: Scratch::new(),
        }
    }

    /// Integrates `state` forward over `span`, adapting internal steps.
    ///
    /// Returns the number of accepted internal steps.
    pub fn integrate<F>(&mut self, f: &F, state: &mut [f64], span: f64) -> usize
    where
        F: Fn(&[f64], &mut [f64]),
    {
        assert!(span >= 0.0, "span must be non-negative");
        let n = state.len();
        self.scratch.resize(n);
        let mut remaining = span;
        let mut h = span.min(self.max_step);
        let mut steps = 0usize;
        let mut candidate = vec![0.0; n];

        while remaining > 1e-15 {
            h = h.min(remaining).max(self.min_step.min(remaining));
            let err = self.try_step(f, state, h, &mut candidate);
            if err <= self.tol || h <= self.min_step {
                state.copy_from_slice(&candidate);
                remaining -= h;
                steps += 1;
                // Grow the step when comfortably under tolerance.
                if err < self.tol / 10.0 {
                    h = (h * 2.0).min(self.max_step);
                }
            } else {
                h = (h * 0.5).max(self.min_step);
            }
        }
        steps
    }

    /// One trial RKF45 step of size `h` into `out`; returns the local error
    /// estimate (max-norm of the 4th/5th order difference).
    fn try_step<F>(&mut self, f: &F, state: &[f64], h: f64, out: &mut [f64]) -> f64
    where
        F: Fn(&[f64], &mut [f64]),
    {
        let n = state.len();
        let s = &mut self.scratch;
        let (k1, k2, k3, k4, k5, k6, tmp) = (
            &mut s.k1, &mut s.k2, &mut s.k3, &mut s.k4, &mut s.k5, &mut s.k6, &mut s.tmp,
        );

        f(state, k1);
        for i in 0..n {
            tmp[i] = state[i] + h * 0.25 * k1[i];
        }
        f(tmp, k2);
        for i in 0..n {
            tmp[i] = state[i] + h * (3.0 / 32.0 * k1[i] + 9.0 / 32.0 * k2[i]);
        }
        f(tmp, k3);
        for i in 0..n {
            tmp[i] = state[i]
                + h * (1932.0 / 2197.0 * k1[i] - 7200.0 / 2197.0 * k2[i] + 7296.0 / 2197.0 * k3[i]);
        }
        f(tmp, k4);
        for i in 0..n {
            tmp[i] = state[i]
                + h * (439.0 / 216.0 * k1[i] - 8.0 * k2[i] + 3680.0 / 513.0 * k3[i]
                    - 845.0 / 4104.0 * k4[i]);
        }
        f(tmp, k5);
        for i in 0..n {
            tmp[i] = state[i]
                + h * (-8.0 / 27.0 * k1[i] + 2.0 * k2[i] - 3544.0 / 2565.0 * k3[i]
                    + 1859.0 / 4104.0 * k4[i]
                    - 11.0 / 40.0 * k5[i]);
        }
        f(tmp, k6);

        let mut err: f64 = 0.0;
        for i in 0..n {
            let x4 = state[i]
                + h * (25.0 / 216.0 * k1[i] + 1408.0 / 2565.0 * k3[i] + 2197.0 / 4104.0 * k4[i]
                    - 0.2 * k5[i]);
            let x5 = state[i]
                + h * (16.0 / 135.0 * k1[i] + 6656.0 / 12825.0 * k3[i] + 28561.0 / 56430.0 * k4[i]
                    - 9.0 / 50.0 * k5[i]
                    + 2.0 / 55.0 * k6[i]);
            out[i] = x5;
            err = err.max((x5 - x4).abs());
        }
        err
    }
}

impl Default for Rkf45 {
    fn default() -> Rkf45 {
        Rkf45::new(1e-8, 1e-9, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// dx/dt = -x; solution x(t) = x0 e^{-t}.
    fn decay(x: &[f64], dx: &mut [f64]) {
        dx[0] = -x[0];
    }

    /// Harmonic oscillator: x'' = -x as a 2-d system; conserves x² + v².
    fn oscillator(x: &[f64], dx: &mut [f64]) {
        dx[0] = x[1];
        dx[1] = -x[0];
    }

    #[test]
    fn euler_exact_for_constant_slope() {
        let f = |_: &[f64], dx: &mut [f64]| {
            dx[0] = 2.0;
            dx[1] = -0.1;
        };
        let mut state = vec![0.0, 0.3];
        let mut s = Scratch::new();
        euler_step(&f, &mut state, 0.5, &mut s);
        assert!((state[0] - 1.0).abs() < 1e-12);
        assert!((state[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rk4_decay_accuracy() {
        let mut state = vec![1.0];
        let mut s = Scratch::new();
        let h = 0.01;
        for _ in 0..100 {
            rk4_step(&decay, &mut state, h, &mut s);
        }
        let exact = (-1.0f64).exp();
        assert!(
            (state[0] - exact).abs() < 1e-9,
            "rk4 error {}",
            (state[0] - exact).abs()
        );
    }

    #[test]
    fn euler_decay_first_order() {
        let mut state = vec![1.0];
        let mut s = Scratch::new();
        let h = 0.001;
        for _ in 0..1000 {
            euler_step(&decay, &mut state, h, &mut s);
        }
        let exact = (-1.0f64).exp();
        assert!((state[0] - exact).abs() < 1e-3);
    }

    #[test]
    fn rk4_oscillator_conserves_energy() {
        let mut state = vec![1.0, 0.0];
        let mut s = Scratch::new();
        for _ in 0..10_000 {
            rk4_step(&oscillator, &mut state, 0.001, &mut s);
        }
        let energy = state[0] * state[0] + state[1] * state[1];
        assert!((energy - 1.0).abs() < 1e-9, "energy drift {energy}");
    }

    #[test]
    fn rkf45_decay_matches_exact() {
        let mut drv = Rkf45::new(1e-10, 1e-12, 0.5);
        let mut state = vec![1.0];
        let steps = drv.integrate(&decay, &mut state, 3.0);
        let exact = (-3.0f64).exp();
        assert!((state[0] - exact).abs() < 1e-7, "err {}", state[0] - exact);
        assert!(steps > 0);
    }

    #[test]
    fn rkf45_zero_span_is_noop() {
        let mut drv = Rkf45::default();
        let mut state = vec![42.0];
        let steps = drv.integrate(&decay, &mut state, 0.0);
        assert_eq!(steps, 0);
        assert_eq!(state[0], 42.0);
    }

    #[test]
    fn solver_enum_dispatch() {
        let f = |_: &[f64], dx: &mut [f64]| dx[0] = 1.0;
        let mut s = Scratch::new();
        for solver in [Solver::Euler, Solver::Rk4] {
            let mut state = vec![0.0];
            solver.step(&f, &mut state, 0.25, &mut s);
            assert!((state[0] - 0.25).abs() < 1e-12);
        }
    }

    proptest! {
        /// Clock variables (slope 1) integrate exactly under either solver.
        #[test]
        fn clocks_integrate_exactly(h in 1e-6f64..1.0, x0 in -100.0f64..100.0) {
            let f = |_: &[f64], dx: &mut [f64]| dx[0] = 1.0;
            let mut s = Scratch::new();
            for solver in [Solver::Euler, Solver::Rk4] {
                let mut state = vec![x0];
                solver.step(&f, &mut state, h, &mut s);
                prop_assert!((state[0] - (x0 + h)).abs() < 1e-9);
            }
        }

        /// RK4 on linear decay stays within theoretical accuracy.
        #[test]
        fn rk4_decay_bounded_error(x0 in 0.1f64..10.0) {
            let mut state = vec![x0];
            let mut s = Scratch::new();
            for _ in 0..100 {
                rk4_step(&decay, &mut state, 0.01, &mut s);
            }
            let exact = x0 * (-1.0f64).exp();
            prop_assert!((state[0] - exact).abs() < 1e-8 * x0.max(1.0));
        }
    }
}
