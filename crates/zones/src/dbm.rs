//! Difference Bound Matrices — the canonical constraint representation for
//! zones of clock valuations.
//!
//! A zone over clocks `x1 … xn` is a conjunction of constraints
//! `xi - xj ≺ m` with `≺ ∈ {<, ≤}`; adding the reference "clock" `x0 ≡ 0`
//! makes single-clock bounds (`xi ≤ 5`, `xi > 2`) differences too. A DBM
//! stores the tightest such bound for every ordered pair in an
//! `(n+1) × (n+1)` matrix; Floyd–Warshall shortest paths bring it to
//! *canonical form*, on which emptiness, inclusion and hashing are
//! syntactic checks (Bengtsson & Yi, *Timed Automata: Semantics,
//! Algorithms and Tools*, Lect. Notes 3098).
//!
//! Bounds are kept in integer **ticks** (this crate scales seconds by
//! [`crate::SCALE`] = 1 µs/tick), which keeps canonicalization exact —
//! floating-point DBMs lose confluence of the closure operation.

use std::fmt;

/// One bound `≺ m`: either `(<, m)`, `(≤, m)`, or `∞` (unconstrained).
///
/// Encoded in a single `i64` as `2m + 1` for `≤ m` and `2m` for `< m`,
/// so the natural integer order is exactly bound tightness:
/// `(<, m) < (≤, m) < (<, m+1)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bound(i64);

/// Sentinel for `∞`, chosen so additions cannot overflow.
const INF_RAW: i64 = i64::MAX / 4;

impl Bound {
    /// The unconstrained bound `∞`.
    pub const INF: Bound = Bound(INF_RAW);

    /// `≤ 0`, the bound tying a freshly reset clock to the reference.
    pub const LE_ZERO: Bound = Bound(1);

    /// `< 0`, an unsatisfiable self-bound (used to mark empty DBMs).
    pub const LT_ZERO: Bound = Bound(0);

    /// The non-strict bound `≤ m`.
    pub fn le(m: i64) -> Bound {
        Bound(2 * m + 1)
    }

    /// The strict bound `< m`.
    pub fn lt(m: i64) -> Bound {
        Bound(2 * m)
    }

    /// `true` if this is `∞`.
    pub fn is_inf(self) -> bool {
        self.0 >= INF_RAW
    }

    /// The numeric bound `m` (meaningless for `∞`).
    pub fn value(self) -> i64 {
        self.0 >> 1
    }

    /// `true` for `≤`, `false` for `<` (meaningless for `∞`).
    pub fn is_weak(self) -> bool {
        self.0 & 1 == 1
    }

    /// The raw `2m + weakness` encoding — the serialization unit of the
    /// passed-list artifact. `∞` is a reserved sentinel; the encoding is stable
    /// (the natural integer order *is* bound tightness), so persisting
    /// raw values round-trips exactly.
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Rebuilds a bound from its [`Bound::raw`] encoding. Values at or
    /// above the `∞` sentinel normalize to [`Bound::INF`].
    pub fn from_raw(raw: i64) -> Bound {
        if raw >= INF_RAW {
            Bound::INF
        } else {
            Bound(raw)
        }
    }
}

impl std::ops::Add for Bound {
    type Output = Bound;

    /// Bound addition (path concatenation): values add, strictness is
    /// inherited from either strict operand; `∞` absorbs.
    fn add(self, other: Bound) -> Bound {
        if self.is_inf() || other.is_inf() {
            Bound::INF
        } else {
            // Values add; the result is weak (`≤`) only if both operands
            // are weak: raw sum carries w1 + w2 in the parity bits, so
            // subtracting (w1 | w2) leaves w1 & w2.
            Bound(self.0 + other.0 - ((self.0 | other.0) & 1))
        }
    }
}

impl fmt::Debug for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inf() {
            write!(f, "<inf")
        } else if self.is_weak() {
            write!(f, "<={}", self.value())
        } else {
            write!(f, "<{}", self.value())
        }
    }
}

/// A zone as a difference bound matrix over `dim - 1` real clocks plus
/// the reference clock `0`.
///
/// Entry `(i, j)` bounds `xi - xj`. Mutating operations leave the matrix
/// non-canonical; call [`Dbm::canonicalize`] (or use the `*_canon`
/// helpers) before emptiness/inclusion tests. All public predicates
/// (`is_empty`, `includes`, `satisfies`) assume canonical inputs.
///
/// The derived `Ord` is a *syntactic* lexicographic order over the
/// bound matrix — unrelated to zone inclusion — provided so engines can
/// sort zones into a deterministic processing order.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dbm {
    dim: usize,
    m: Vec<Bound>,
}

impl Dbm {
    /// The zone `{0}` — every clock exactly zero (`clocks` real clocks).
    pub fn zero(clocks: usize) -> Dbm {
        let dim = clocks + 1;
        Dbm {
            dim,
            m: vec![Bound::LE_ZERO; dim * dim],
        }
    }

    /// The universal zone: all clock valuations `≥ 0`.
    pub fn universe(clocks: usize) -> Dbm {
        let dim = clocks + 1;
        let mut m = vec![Bound::INF; dim * dim];
        for i in 0..dim {
            m[i * dim + i] = Bound::LE_ZERO;
            // x0 - xi <= 0 (clocks are non-negative).
            m[i] = Bound::LE_ZERO;
        }
        Dbm { dim, m }
    }

    /// Number of real clocks (matrix dimension minus the reference).
    pub fn clocks(&self) -> usize {
        self.dim - 1
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.dim + j
    }

    /// The bound on `xi - xj`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Bound {
        self.m[self.idx(i, j)]
    }

    /// Sets the bound on `xi - xj` (no tightening check, no closure).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, b: Bound) {
        let k = self.idx(i, j);
        self.m[k] = b;
    }

    /// Floyd–Warshall all-pairs tightening to canonical form.
    ///
    /// This is the O(n³) *construction-time* closure: the engine only
    /// needs it when a zone is built from scratch (lowering, tests) or
    /// loosened wholesale (extrapolation). Successor computation uses
    /// the O(n²) incremental [`Dbm::close1`] path instead.
    pub fn canonicalize(&mut self) {
        let d = self.dim;
        for k in 0..d {
            for i in 0..d {
                let ik = self.m[i * d + k];
                if ik.is_inf() {
                    continue;
                }
                for j in 0..d {
                    let through = ik + self.m[k * d + j];
                    if through < self.m[i * d + j] {
                        self.m[i * d + j] = through;
                    }
                }
            }
        }
    }

    /// Incremental re-closure after tightening the single entry `(i, j)`
    /// of an otherwise-canonical matrix — O(n²) instead of the full
    /// O(n³) Floyd–Warshall.
    ///
    /// Every path that got shorter must use the new edge `i → j` (and,
    /// absent negative cycles, uses it exactly once), so it decomposes
    /// as `p → i → j → q` with both halves already closed. Pass 1 folds
    /// the new edge into column `j` (`p → i → j`); pass 2 extends those
    /// through the old rows (`p → j → q`).
    ///
    /// Precondition: the matrix was canonical before `(i, j)` was
    /// tightened, and the tightening does not empty the zone (check
    /// `get(j, i) + b ≥ ≤0` first — [`Dbm::constrain_and_close`] does).
    pub fn close1(&mut self, i: usize, j: usize) {
        let d = self.dim;
        let b = self.m[i * d + j];
        if b.is_inf() {
            return;
        }
        // Track which `(p, j)` entries pass 1 actually tightens (plus
        // row `i`, whose `(i, j)` entry the caller tightened): a row
        // whose shortest path to `j` did not improve cannot improve
        // anywhere through the new edge, so pass 2 only walks the
        // touched rows — O(n + changed·n) in practice. One u64 word per
        // 64 rows; the engine's dimensions fit the first word.
        let words = d.div_ceil(64);
        let mut touched = [0u64; 4];
        let mut touched_vec;
        let touched: &mut [u64] = if words <= 4 {
            &mut touched[..words]
        } else {
            touched_vec = vec![0u64; words];
            &mut touched_vec
        };
        touched[i / 64] |= 1 << (i % 64);
        for p in 0..d {
            let pi = self.m[p * d + i];
            if pi.is_inf() {
                continue;
            }
            let through = pi + b;
            if through < self.m[p * d + j] {
                self.m[p * d + j] = through;
                touched[p / 64] |= 1 << (p % 64);
            }
        }
        for (w, &word) in touched.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let p = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let pj = self.m[p * d + j];
                if pj.is_inf() {
                    continue;
                }
                for q in 0..d {
                    let through = pj + self.m[j * d + q];
                    if through < self.m[p * d + q] {
                        self.m[p * d + q] = through;
                    }
                }
            }
        }
    }

    /// Conjoins `xi - xj ≺ b` onto a **canonical** matrix and restores
    /// canonical form incrementally ([`Dbm::close1`], O(n²)). Returns
    /// `false` — and marks the zone empty — when the constraint is
    /// inconsistent with the current zone; on `true` the matrix is
    /// canonical and non-empty, so no separate
    /// [`Dbm::canonicalize`]/[`Dbm::is_empty`] round is needed.
    pub fn constrain_and_close(&mut self, i: usize, j: usize, b: Bound) -> bool {
        debug_assert!(
            self.closed_through_zero(),
            "constrain_and_close requires a canonical matrix"
        );
        // On a canonical matrix the consistency pre-check is exact: the
        // constraint empties the zone iff it closes a negative cycle
        // with the tightest reverse path.
        if self.get(j, i) + b < Bound::LE_ZERO {
            let k = self.idx(0, 0);
            self.m[k] = Bound::LT_ZERO;
            return false;
        }
        if b < self.get(i, j) {
            let k = self.idx(i, j);
            self.m[k] = b;
            self.close1(i, j);
        }
        true
    }

    /// `true` if the matrix is a Floyd–Warshall fixpoint (fully closed):
    /// no triangle `i → k → j` is shorter than the stored `(i, j)`
    /// bound. O(n³) — meant for debug assertions and law tests, not the
    /// hot path.
    pub fn is_closed(&self) -> bool {
        let d = self.dim;
        for k in 0..d {
            for i in 0..d {
                let ik = self.m[i * d + k];
                if ik.is_inf() {
                    continue;
                }
                for j in 0..d {
                    if ik + self.m[k * d + j] < self.m[i * d + j] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Cheap necessary condition for canonical form — closure through
    /// the reference clock only (O(n²)) plus non-negative diagonal.
    /// Used as the `debug_assert!` precondition on the hot incremental
    /// path, where the full [`Dbm::is_closed`] sweep would dominate
    /// debug-build runtimes; full closure is law-tested in the crate's
    /// proptests instead.
    pub fn closed_through_zero(&self) -> bool {
        let d = self.dim;
        for i in 0..d {
            if self.m[i * d + i] < Bound::LE_ZERO {
                return false;
            }
            let i0 = self.m[i * d];
            if i0.is_inf() {
                continue;
            }
            for j in 0..d {
                if i0 + self.m[j] < self.m[i * d + j] {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if the zone is empty: some diagonal entry became negative.
    ///
    /// Precondition (debug-asserted): the matrix is canonical, or was
    /// explicitly marked empty by a failed
    /// [`Dbm::constrain`]/[`Dbm::constrain_and_close`] — on arbitrary
    /// non-canonical matrices the diagonal test is meaningless.
    pub fn is_empty(&self) -> bool {
        let marked = (0..self.dim).any(|i| self.get(i, i) < Bound::LE_ZERO);
        debug_assert!(
            marked || self.closed_through_zero(),
            "is_empty requires a canonical (or explicitly empty-marked) matrix"
        );
        marked
    }

    /// Delay (future) operator `up`: removes upper bounds on every clock,
    /// letting arbitrary time elapse. Preserves canonical form.
    pub fn up(&mut self) {
        for i in 1..self.dim {
            let k = self.idx(i, 0);
            self.m[k] = Bound::INF;
        }
    }

    /// Past operator `down`: lets time flow backwards to the zone's
    /// origins (clamped at zero). Preserves canonical form.
    pub fn down(&mut self) {
        let d = self.dim;
        for i in 1..d {
            self.m[i] = Bound::LE_ZERO;
            for j in 1..d {
                let ji = self.m[j * d + i];
                if ji < self.m[i] {
                    self.m[i] = ji;
                }
            }
        }
    }

    /// Frees clock `x` (1-based): removes every constraint on it.
    /// Leaves the matrix canonical if it was canonical.
    pub fn free(&mut self, x: usize) {
        debug_assert!(x >= 1 && x < self.dim);
        for i in 0..self.dim {
            if i != x {
                let a = self.idx(x, i);
                self.m[a] = Bound::INF;
                let b0 = self.get(i, 0);
                let b = self.idx(i, x);
                self.m[b] = b0;
            }
        }
    }

    /// Projects/permutes the zone through a clock index map: entry
    /// `(i, j)` of the result is entry `(from[i], from[j])` of `self`,
    /// where `from[r]` names the old index of new index `r` (`from[0]`
    /// must be `0` — the reference clock stays put).
    ///
    /// With `from` a permutation of `0..dim` this renames clocks; with a
    /// strict subset it projects dropped clocks away (existentially
    /// quantifying them, which on a **canonical** matrix is exactly
    /// "take the sub-matrix"). The result of remapping a canonical
    /// matrix is canonical: any tightening path through a dropped index
    /// was already folded into the kept entries by closure. For a
    /// permutation `p`, `z.remap(p).remap(p⁻¹) == z` — the identity the
    /// analysis proptests pin down.
    pub fn remap(&self, from: &[usize]) -> Dbm {
        assert!(!from.is_empty() && from[0] == 0, "reference clock moves");
        assert!(
            from.iter().all(|&o| o < self.dim),
            "clock map names an index beyond the matrix dimension"
        );
        let dim = from.len();
        let mut m = Vec::with_capacity(dim * dim);
        for &i in from {
            for &j in from {
                m.push(self.get(i, j));
            }
        }
        Dbm { dim, m }
    }

    /// Resets clock `x` (1-based) to the constant `v` ticks. Preserves
    /// canonical form.
    pub fn reset(&mut self, x: usize, v: i64) {
        debug_assert!(x >= 1 && x < self.dim);
        for i in 0..self.dim {
            if i == x {
                continue;
            }
            let zero_i = self.get(0, i);
            let i_zero = self.get(i, 0);
            let a = self.idx(x, i);
            self.m[a] = Bound::le(v) + zero_i;
            let b = self.idx(i, x);
            self.m[b] = i_zero + Bound::le(-v);
        }
    }

    /// Conjoins the constraint `xi - xj ≺ b`, tightening in place.
    /// Returns `false` immediately if the constraint is trivially
    /// inconsistent with the current matrix (fast pre-check); a full
    /// [`Dbm::canonicalize`] is still needed before further queries.
    pub fn constrain(&mut self, i: usize, j: usize, b: Bound) -> bool {
        // Inconsistent with the reverse path ⇒ empty.
        if self.get(j, i) + b < Bound::LE_ZERO {
            let k = self.idx(0, 0);
            self.m[k] = Bound::LT_ZERO;
            return false;
        }
        if b < self.get(i, j) {
            let k = self.idx(i, j);
            self.m[k] = b;
        }
        true
    }

    /// Pointwise intersection with `other`; call
    /// [`Dbm::canonicalize`] afterwards.
    pub fn intersect(&mut self, other: &Dbm) {
        debug_assert_eq!(self.dim, other.dim);
        for k in 0..self.m.len() {
            if other.m[k] < self.m[k] {
                self.m[k] = other.m[k];
            }
        }
    }

    /// `true` if `self` ⊇ `other` (both canonical, neither empty):
    /// every bound of `self` is at least as loose.
    pub fn includes(&self, other: &Dbm) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        debug_assert!(
            self.closed_through_zero() && other.closed_through_zero(),
            "includes requires canonical non-empty operands"
        );
        self.m
            .iter()
            .zip(other.m.iter())
            .all(|(mine, theirs)| theirs <= mine)
    }

    /// `true` if the (canonical, non-empty) zone intersects
    /// `xi - xj ≺ b`.
    pub fn satisfies(&self, i: usize, j: usize, b: Bound) -> bool {
        debug_assert!(
            self.closed_through_zero(),
            "satisfies requires a canonical non-empty zone"
        );
        self.get(j, i) + b >= Bound::LE_ZERO
    }

    /// Overwrites `self` with `other`'s contents, reusing the existing
    /// bound-matrix allocation when the dimensions match — the pool
    /// path that keeps successor computation allocation-free.
    pub fn copy_from(&mut self, other: &Dbm) {
        self.dim = other.dim;
        self.m.clear();
        self.m.extend_from_slice(&other.m);
    }

    /// Classical maximal-constant extrapolation `Extra_M` (k-normalization):
    /// bounds looser than `k[x]` are widened to `∞`, lower bounds tighter
    /// than `-k[x]` are clamped, guaranteeing finitely many zones per
    /// location. `k` is indexed by clock (entry 0 is the reference and
    /// ignored). Sound for diagonal-free timed automata; re-canonicalizes.
    ///
    /// `Extra_M` is exactly [`Dbm::extrapolate_lu`] with `L = U = M`.
    pub fn extrapolate(&mut self, k: &[i64]) {
        self.extrapolate_lu(k, k);
    }

    /// Lower/upper-bound extrapolation `Extra_LU` (Behrmann, Bouyer,
    /// Larsen & Pelánek, *Lower and Upper Bounds in Zone Based
    /// Abstractions of Timed Automata*):
    ///
    /// * an upper bound on `x_i` looser than `L(x_i)` is widened to `∞`
    ///   — no *lower-bound* guard (`x > c`, `x ≥ c`, `c ≤ L(x_i)`) can
    ///   distinguish values above `L(x_i)`;
    /// * a lower bound on `x_j` tighter than `-U(x_j)` is clamped to
    ///   `< -U(x_j)` — no *upper-bound* guard can distinguish values
    ///   above `U(x_j)`.
    ///
    /// With `L ≤ M` and `U ≤ M` this abstracts at least as coarsely as
    /// `Extra_M` (strictly coarser whenever some clock is only ever
    /// compared in one direction), so the zone graph settles *fewer*
    /// states while preserving reachability of every diagonal-free
    /// property. Both vectors are indexed like `k` in
    /// [`Dbm::extrapolate`] (entry 0 = reference, ignored).
    /// Re-canonicalizes when anything changed.
    pub fn extrapolate_lu(&mut self, lower: &[i64], upper: &[i64]) {
        debug_assert_eq!(lower.len(), self.dim);
        debug_assert_eq!(upper.len(), self.dim);
        let d = self.dim;
        let mut changed = false;
        for (i, &li) in lower.iter().enumerate() {
            for (j, &uj) in upper.iter().enumerate().take(d) {
                if i == j {
                    continue;
                }
                let idx = i * d + j;
                let b = self.m[idx];
                if b.is_inf() {
                    continue;
                }
                if i != 0 && b > Bound::le(li) {
                    self.m[idx] = Bound::INF;
                    changed = true;
                } else if j != 0 && b < Bound::lt(-uj) {
                    self.m[idx] = Bound::lt(-uj);
                    changed = true;
                }
            }
        }
        if changed {
            self.canonicalize();
        }
    }

    /// Zone-position-based LU extrapolation `Extra⁺_LU` (ibid., the
    /// operator UPPAAL applies): in addition to [`Dbm::extrapolate_lu`]'s
    /// per-entry rules, whole rows and columns are widened based on
    /// where the *zone* sits relative to the bounds —
    ///
    /// * row `i` is widened when the zone already implies
    ///   `x_i > L(x_i)` (no lower-bound guard can tell its values apart);
    /// * column `j` (and, on the reference row, the lower bound of
    ///   `x_j`, clamped to `> U(x_j)`) is widened when the zone implies
    ///   `x_j > U(x_j)` (no upper-bound guard can tell its values
    ///   apart), which erases the diagonal correlations `x - x_j` that
    ///   keep otherwise-equivalent zones distinct.
    ///
    /// Strictly coarser than `Extra_LU` (hence than `Extra_M`), and
    /// sound for diagonal-free timed automata whose lower-/upper-bound
    /// guard constants are covered by `L`/`U`. Unlike the per-entry
    /// operators it is **not** idempotent in general: widening plus
    /// re-canonicalization can expose further widening opportunities.
    /// Each zone passes through it once per settle, so the engine only
    /// needs soundness and the (preserved) finite-range guarantee, not
    /// idempotence.
    pub fn extrapolate_lu_plus(&mut self, lower: &[i64], upper: &[i64]) {
        debug_assert_eq!(lower.len(), self.dim);
        debug_assert_eq!(upper.len(), self.dim);
        let d = self.dim;
        let mut changed = false;
        // The rules read the zone's pre-extrapolation lower bounds (the
        // reference row `c_0x`); processing rows `i ≥ 1` first and the
        // reference row last keeps those reads on the original values
        // without snapshotting the row (`i ≥ 1` writes never alias row
        // 0, and the row-0 clamp reads each entry before writing it).
        for (i, &li) in lower.iter().enumerate().take(d).skip(1) {
            // `m[0][x] < le(-k)` encodes "the zone implies x > k".
            let row_free = self.m[i] < Bound::le(-li);
            for (j, &uj) in upper.iter().enumerate().take(d) {
                if i == j {
                    continue;
                }
                let idx = i * d + j;
                let b = self.m[idx];
                if b.is_inf() {
                    continue;
                }
                if b > Bound::le(li) || row_free || (j != 0 && self.m[j] < Bound::le(-uj)) {
                    self.m[idx] = Bound::INF;
                    changed = true;
                }
            }
        }
        for (j, &uj) in upper.iter().enumerate().take(d).skip(1) {
            // `b < lt(-uj)` subsumes the zone-position test
            // `b < le(-uj)` — `lt` is the strictly tighter encoding.
            let b = self.m[j];
            if !b.is_inf() && b < Bound::lt(-uj) {
                self.m[j] = Bound::lt(-uj);
                changed = true;
            }
        }
        if changed {
            self.canonicalize();
        }
    }

    /// Reduces a **canonical, non-empty** zone to its minimal constraint
    /// form — the smallest constraint set whose closure reproduces this
    /// matrix (Larsen–Larsson–Pettersson–Yi's compact passed-list
    /// representation, as presented in Bengtsson & Yi §4):
    ///
    /// 1. clocks are partitioned into *zero-equivalence* classes
    ///    (`i ≡ j` iff `m[i][j] + m[j][i] = ≤0`, i.e. the zone pins
    ///    their difference exactly); each class of size ≥ 2 contributes
    ///    one constraint cycle through its members in index order;
    /// 2. between class representatives, an entry is dropped iff some
    ///    third representative lies on an equally short path —
    ///    simultaneous removal is sound because the representative
    ///    graph has no zero-length cycles.
    ///
    /// `∞` entries are never stored; everything else is recovered by
    /// closure ([`MinimalDbm::restore`] is the inverse, law-tested in
    /// the crate proptests).
    pub fn reduce(&self) -> MinimalDbm {
        debug_assert!(
            !self.is_empty() && self.is_closed(),
            "reduce requires a canonical non-empty zone"
        );
        debug_assert!(self.dim <= u8::MAX as usize, "dim fits u8 indices");
        let d = self.dim;
        // 1. Zero-equivalence classes; rep[i] = least member of i's class.
        let mut rep = vec![0u8; d];
        for i in 0..d {
            rep[i] = i as u8;
            for j in 0..i {
                if rep[j] as usize == j && self.get(i, j) + self.get(j, i) == Bound::LE_ZERO {
                    rep[i] = j as u8;
                    break;
                }
            }
        }
        let mut cons: Vec<MinCon> = Vec::new();
        // Class cycles: members in index order, closing back to the head.
        for head in 0..d {
            if rep[head] as usize != head {
                continue;
            }
            let members: Vec<usize> = (head..d).filter(|&i| rep[i] as usize == head).collect();
            if members.len() < 2 {
                continue;
            }
            for w in 0..members.len() {
                let a = members[w];
                let b = members[(w + 1) % members.len()];
                cons.push(MinCon {
                    i: a as u8,
                    j: b as u8,
                    b: self.get(a, b),
                });
            }
        }
        // Representative graph: keep (i, j) unless a third representative
        // lies on an equally tight path.
        for i in 0..d {
            if rep[i] as usize != i {
                continue;
            }
            for j in 0..d {
                if i == j || rep[j] as usize != j {
                    continue;
                }
                let b = self.get(i, j);
                if b.is_inf() {
                    continue;
                }
                let redundant = (0..d).any(|k| {
                    k != i
                        && k != j
                        && rep[k] as usize == k
                        && !self.get(i, k).is_inf()
                        && self.get(i, k) + self.get(k, j) <= b
                });
                if !redundant {
                    cons.push(MinCon {
                        i: i as u8,
                        j: j as u8,
                        b,
                    });
                }
            }
        }
        MinimalDbm {
            dim: d as u8,
            cons: cons.into_boxed_slice(),
        }
    }

    /// Renders the non-trivial constraints (canonical form assumed),
    /// `names[i]` naming clock `i+1`, in ticks.
    pub fn render(&self, names: &[String]) -> String {
        let mut parts = Vec::new();
        let name = |i: usize| -> String {
            if i == 0 {
                "0".to_string()
            } else {
                names.get(i - 1).cloned().unwrap_or_else(|| format!("x{i}"))
            }
        };
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.get(i, j);
                if b.is_inf() {
                    continue;
                }
                // Skip the implicit non-negativity bounds to keep output
                // readable.
                if i == 0 && b == Bound::LE_ZERO {
                    continue;
                }
                let op = if b.is_weak() { "<=" } else { "<" };
                if i == 0 {
                    parts.push(format!("{} {} {}", -b.value(), op, name(j)));
                } else if j == 0 {
                    parts.push(format!("{} {} {}", name(i), op, b.value()));
                } else {
                    parts.push(format!("{} - {} {} {}", name(i), name(j), op, b.value()));
                }
            }
        }
        if parts.is_empty() {
            "true".to_string()
        } else {
            parts.join(" ∧ ")
        }
    }
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dbm[{}]", self.dim)?;
        for i in 0..self.dim {
            for j in 0..self.dim {
                write!(f, "{:?}\t", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One stored constraint `xi - xj ≺ b` of a [`MinimalDbm`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MinCon {
    /// Row (minuend) clock index.
    pub i: u8,
    /// Column (subtrahend) clock index.
    pub j: u8,
    /// The bound.
    pub b: Bound,
}

/// A zone in minimal constraint form: the irredundant constraint set
/// produced by [`Dbm::reduce`], typically O(n) entries instead of the
/// full `(n+1)²` matrix. This is the passed-list storage format —
/// inclusion against a full canonical DBM needs only the stored
/// constraints, and [`MinimalDbm::restore`] recovers the exact matrix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MinimalDbm {
    dim: u8,
    cons: Box<[MinCon]>,
}

impl MinimalDbm {
    /// Number of stored constraints.
    pub fn len(&self) -> usize {
        self.cons.len()
    }

    /// The DBM dimension (`clocks + 1` including the reference clock).
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// The stored constraints, in [`Dbm::reduce`] emission order.
    pub fn constraints(&self) -> &[MinCon] {
        &self.cons
    }

    /// Reassembles a zone from serialized parts ([`MinimalDbm::dim`] +
    /// [`MinimalDbm::constraints`]). The parts are trusted to describe
    /// a canonical non-empty zone's minimal form — artifact loaders
    /// re-validate by checking [`MinimalDbm::restore`] is non-empty
    /// before admitting the zone anywhere.
    pub fn from_parts(dim: u8, cons: Vec<MinCon>) -> MinimalDbm {
        MinimalDbm {
            dim,
            cons: cons.into_boxed_slice(),
        }
    }

    /// `true` when no constraint is stored (the delay-closed universe).
    pub fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }

    /// Heap bytes held by the constraint list — the passed-list memory
    /// accounting unit reported in `SearchStats`.
    pub fn heap_bytes(&self) -> usize {
        self.cons.len() * std::mem::size_of::<MinCon>()
    }

    /// Heap bytes the same zone would occupy as a full bound matrix
    /// (the PR 2 storage format this form replaces).
    pub fn full_matrix_bytes(&self) -> usize {
        let d = self.dim as usize;
        d * d * std::mem::size_of::<Bound>()
    }

    /// `true` if this zone ⊇ `other` (a canonical, non-empty full DBM
    /// of the same dimension).
    ///
    /// Sound and complete without restoring the matrix: every point of
    /// `other` satisfies `p_i - p_j ≤ other[i][j] ≤ b` for each stored
    /// constraint, hence lies in this zone; conversely a violated
    /// stored constraint exhibits a point of `other` outside it
    /// (`other` is canonical, so its bounds are tight).
    pub fn includes(&self, other: &Dbm) -> bool {
        debug_assert_eq!(self.dim as usize, other.clocks() + 1);
        self.cons
            .iter()
            .all(|c| other.get(c.i as usize, c.j as usize) <= c.b)
    }

    /// Rebuilds the full canonical DBM: start unconstrained, apply the
    /// stored constraints, close. Inverse of [`Dbm::reduce`] on
    /// canonical non-empty zones.
    pub fn restore(&self) -> Dbm {
        let mut z = Dbm {
            dim: 0,
            m: Vec::new(),
        };
        self.restore_into(&mut z);
        z
    }

    /// [`MinimalDbm::restore`] into a caller-owned scratch matrix —
    /// the artifact-validation hot path restores thousands of zones
    /// back-to-back, and this form both reuses the allocation and
    /// restricts the Floyd–Warshall closure to constraint endpoints:
    /// a finite path can only *leave* a node with an outgoing stored
    /// constraint, so rows (and pivots) without one are final from the
    /// start. On activity-reduced zones most clocks are free in most
    /// states, which makes the restricted closure several times
    /// cheaper than the dense one while producing the identical
    /// canonical matrix (negative cycles still surface on a pivot's
    /// diagonal, so [`Dbm::is_empty`] works unchanged).
    pub fn restore_into(&self, z: &mut Dbm) {
        let d = self.dim as usize;
        z.dim = d;
        z.m.clear();
        z.m.resize(d * d, Bound::INF);
        for i in 0..d {
            z.m[i * d + i] = Bound::LE_ZERO;
        }
        // `dim` is a u8, so 4×64 bits cover every index.
        let mut out = [0u64; 4];
        let mut inn = [0u64; 4];
        for c in self.cons.iter() {
            z.m[c.i as usize * d + c.j as usize] = c.b;
            out[(c.i >> 6) as usize] |= 1 << (c.i & 63);
            inn[(c.j >> 6) as usize] |= 1 << (c.j & 63);
        }
        let bit = |mask: &[u64; 4], v: usize| mask[v >> 6] & (1u64 << (v & 63)) != 0;
        for k in 0..d {
            if !bit(&out, k) || !bit(&inn, k) {
                continue;
            }
            for i in 0..d {
                if !bit(&out, i) {
                    continue;
                }
                let ik = z.m[i * d + k];
                if ik.is_inf() {
                    continue;
                }
                for j in 0..d {
                    let through = ik + z.m[k * d + j];
                    if through < z.m[i * d + j] {
                        z.m[i * d + j] = through;
                    }
                }
            }
        }
    }
}

/// A free-list of [`Dbm`] allocations: successor computation clones
/// zones constantly, and recycling the bound-matrix `Vec`s through a
/// per-worker pool removes that allocation traffic from the hot path
/// (workers never share a pool, so no synchronization is involved).
#[derive(Default)]
pub struct DbmPool {
    free: Vec<Dbm>,
}

impl DbmPool {
    /// An empty pool.
    pub fn new() -> DbmPool {
        DbmPool::default()
    }

    /// Clones `src`, reusing a pooled allocation when available.
    pub fn clone_dbm(&mut self, src: &Dbm) -> Dbm {
        match self.free.pop() {
            Some(mut z) => {
                z.copy_from(src);
                z
            }
            None => src.clone(),
        }
    }

    /// Returns a no-longer-needed zone's allocation to the pool.
    ///
    /// Capped: bulk refills (the engine recycles whole expanded
    /// frontiers, thousands of zones on real runs) would otherwise pin
    /// peak-frontier memory in one worker's free list for the rest of
    /// the search; beyond the cap the allocation is simply dropped.
    pub fn recycle(&mut self, z: Dbm) {
        const MAX_POOLED: usize = 256;
        if self.free.len() < MAX_POOLED {
            self.free.push(z);
        }
    }
}
