//! Difference Bound Matrices — the canonical constraint representation for
//! zones of clock valuations.
//!
//! A zone over clocks `x1 … xn` is a conjunction of constraints
//! `xi - xj ≺ m` with `≺ ∈ {<, ≤}`; adding the reference "clock" `x0 ≡ 0`
//! makes single-clock bounds (`xi ≤ 5`, `xi > 2`) differences too. A DBM
//! stores the tightest such bound for every ordered pair in an
//! `(n+1) × (n+1)` matrix; Floyd–Warshall shortest paths bring it to
//! *canonical form*, on which emptiness, inclusion and hashing are
//! syntactic checks (Bengtsson & Yi, *Timed Automata: Semantics,
//! Algorithms and Tools*, Lect. Notes 3098).
//!
//! Bounds are kept in integer **ticks** (this crate scales seconds by
//! [`crate::SCALE`] = 1 µs/tick), which keeps canonicalization exact —
//! floating-point DBMs lose confluence of the closure operation.

use std::fmt;

/// One bound `≺ m`: either `(<, m)`, `(≤, m)`, or `∞` (unconstrained).
///
/// Encoded in a single `i64` as `2m + 1` for `≤ m` and `2m` for `< m`,
/// so the natural integer order is exactly bound tightness:
/// `(<, m) < (≤, m) < (<, m+1)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bound(i64);

/// Sentinel for `∞`, chosen so additions cannot overflow.
const INF_RAW: i64 = i64::MAX / 4;

impl Bound {
    /// The unconstrained bound `∞`.
    pub const INF: Bound = Bound(INF_RAW);

    /// `≤ 0`, the bound tying a freshly reset clock to the reference.
    pub const LE_ZERO: Bound = Bound(1);

    /// `< 0`, an unsatisfiable self-bound (used to mark empty DBMs).
    pub const LT_ZERO: Bound = Bound(0);

    /// The non-strict bound `≤ m`.
    pub fn le(m: i64) -> Bound {
        Bound(2 * m + 1)
    }

    /// The strict bound `< m`.
    pub fn lt(m: i64) -> Bound {
        Bound(2 * m)
    }

    /// `true` if this is `∞`.
    pub fn is_inf(self) -> bool {
        self.0 >= INF_RAW
    }

    /// The numeric bound `m` (meaningless for `∞`).
    pub fn value(self) -> i64 {
        self.0 >> 1
    }

    /// `true` for `≤`, `false` for `<` (meaningless for `∞`).
    pub fn is_weak(self) -> bool {
        self.0 & 1 == 1
    }
}

impl std::ops::Add for Bound {
    type Output = Bound;

    /// Bound addition (path concatenation): values add, strictness is
    /// inherited from either strict operand; `∞` absorbs.
    fn add(self, other: Bound) -> Bound {
        if self.is_inf() || other.is_inf() {
            Bound::INF
        } else {
            // Values add; the result is weak (`≤`) only if both operands
            // are weak: raw sum carries w1 + w2 in the parity bits, so
            // subtracting (w1 | w2) leaves w1 & w2.
            Bound(self.0 + other.0 - ((self.0 | other.0) & 1))
        }
    }
}

impl fmt::Debug for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inf() {
            write!(f, "<inf")
        } else if self.is_weak() {
            write!(f, "<={}", self.value())
        } else {
            write!(f, "<{}", self.value())
        }
    }
}

/// A zone as a difference bound matrix over `dim - 1` real clocks plus
/// the reference clock `0`.
///
/// Entry `(i, j)` bounds `xi - xj`. Mutating operations leave the matrix
/// non-canonical; call [`Dbm::canonicalize`] (or use the `*_canon`
/// helpers) before emptiness/inclusion tests. All public predicates
/// (`is_empty`, `includes`, `satisfies`) assume canonical inputs.
///
/// The derived `Ord` is a *syntactic* lexicographic order over the
/// bound matrix — unrelated to zone inclusion — provided so engines can
/// sort zones into a deterministic processing order.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dbm {
    dim: usize,
    m: Vec<Bound>,
}

impl Dbm {
    /// The zone `{0}` — every clock exactly zero (`clocks` real clocks).
    pub fn zero(clocks: usize) -> Dbm {
        let dim = clocks + 1;
        Dbm {
            dim,
            m: vec![Bound::LE_ZERO; dim * dim],
        }
    }

    /// The universal zone: all clock valuations `≥ 0`.
    pub fn universe(clocks: usize) -> Dbm {
        let dim = clocks + 1;
        let mut m = vec![Bound::INF; dim * dim];
        for i in 0..dim {
            m[i * dim + i] = Bound::LE_ZERO;
            // x0 - xi <= 0 (clocks are non-negative).
            m[i] = Bound::LE_ZERO;
        }
        Dbm { dim, m }
    }

    /// Number of real clocks (matrix dimension minus the reference).
    pub fn clocks(&self) -> usize {
        self.dim - 1
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.dim + j
    }

    /// The bound on `xi - xj`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Bound {
        self.m[self.idx(i, j)]
    }

    /// Sets the bound on `xi - xj` (no tightening check, no closure).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, b: Bound) {
        let k = self.idx(i, j);
        self.m[k] = b;
    }

    /// Floyd–Warshall all-pairs tightening to canonical form.
    pub fn canonicalize(&mut self) {
        let d = self.dim;
        for k in 0..d {
            for i in 0..d {
                let ik = self.m[i * d + k];
                if ik.is_inf() {
                    continue;
                }
                for j in 0..d {
                    let through = ik + self.m[k * d + j];
                    if through < self.m[i * d + j] {
                        self.m[i * d + j] = through;
                    }
                }
            }
        }
    }

    /// `true` if the zone is empty (canonical form required): some
    /// diagonal entry became negative.
    pub fn is_empty(&self) -> bool {
        (0..self.dim).any(|i| self.get(i, i) < Bound::LE_ZERO)
    }

    /// Delay (future) operator `up`: removes upper bounds on every clock,
    /// letting arbitrary time elapse. Preserves canonical form.
    pub fn up(&mut self) {
        for i in 1..self.dim {
            let k = self.idx(i, 0);
            self.m[k] = Bound::INF;
        }
    }

    /// Past operator `down`: lets time flow backwards to the zone's
    /// origins (clamped at zero). Preserves canonical form.
    pub fn down(&mut self) {
        let d = self.dim;
        for i in 1..d {
            self.m[i] = Bound::LE_ZERO;
            for j in 1..d {
                let ji = self.m[j * d + i];
                if ji < self.m[i] {
                    self.m[i] = ji;
                }
            }
        }
    }

    /// Frees clock `x` (1-based): removes every constraint on it.
    /// Leaves the matrix canonical if it was canonical.
    pub fn free(&mut self, x: usize) {
        debug_assert!(x >= 1 && x < self.dim);
        for i in 0..self.dim {
            if i != x {
                let a = self.idx(x, i);
                self.m[a] = Bound::INF;
                let b0 = self.get(i, 0);
                let b = self.idx(i, x);
                self.m[b] = b0;
            }
        }
    }

    /// Resets clock `x` (1-based) to the constant `v` ticks. Preserves
    /// canonical form.
    pub fn reset(&mut self, x: usize, v: i64) {
        debug_assert!(x >= 1 && x < self.dim);
        for i in 0..self.dim {
            if i == x {
                continue;
            }
            let zero_i = self.get(0, i);
            let i_zero = self.get(i, 0);
            let a = self.idx(x, i);
            self.m[a] = Bound::le(v) + zero_i;
            let b = self.idx(i, x);
            self.m[b] = i_zero + Bound::le(-v);
        }
    }

    /// Conjoins the constraint `xi - xj ≺ b`, tightening in place.
    /// Returns `false` immediately if the constraint is trivially
    /// inconsistent with the current matrix (fast pre-check); a full
    /// [`Dbm::canonicalize`] is still needed before further queries.
    pub fn constrain(&mut self, i: usize, j: usize, b: Bound) -> bool {
        // Inconsistent with the reverse path ⇒ empty.
        if self.get(j, i) + b < Bound::LE_ZERO {
            let k = self.idx(0, 0);
            self.m[k] = Bound::LT_ZERO;
            return false;
        }
        if b < self.get(i, j) {
            let k = self.idx(i, j);
            self.m[k] = b;
        }
        true
    }

    /// Pointwise intersection with `other`; call
    /// [`Dbm::canonicalize`] afterwards.
    pub fn intersect(&mut self, other: &Dbm) {
        debug_assert_eq!(self.dim, other.dim);
        for k in 0..self.m.len() {
            if other.m[k] < self.m[k] {
                self.m[k] = other.m[k];
            }
        }
    }

    /// `true` if `self` ⊇ `other` (both canonical, neither empty):
    /// every bound of `self` is at least as loose.
    pub fn includes(&self, other: &Dbm) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        self.m
            .iter()
            .zip(other.m.iter())
            .all(|(mine, theirs)| theirs <= mine)
    }

    /// `true` if the (canonical, non-empty) zone intersects
    /// `xi - xj ≺ b`.
    pub fn satisfies(&self, i: usize, j: usize, b: Bound) -> bool {
        self.get(j, i) + b >= Bound::LE_ZERO
    }

    /// Classical maximal-constant extrapolation `Extra_M` (k-normalization):
    /// bounds looser than `k[x]` are widened to `∞`, lower bounds tighter
    /// than `-k[x]` are clamped, guaranteeing finitely many zones per
    /// location. `k` is indexed by clock (entry 0 is the reference and
    /// ignored). Sound for diagonal-free timed automata; re-canonicalizes.
    ///
    /// `Extra_M` is exactly [`Dbm::extrapolate_lu`] with `L = U = M`.
    pub fn extrapolate(&mut self, k: &[i64]) {
        self.extrapolate_lu(k, k);
    }

    /// Lower/upper-bound extrapolation `Extra_LU` (Behrmann, Bouyer,
    /// Larsen & Pelánek, *Lower and Upper Bounds in Zone Based
    /// Abstractions of Timed Automata*):
    ///
    /// * an upper bound on `x_i` looser than `L(x_i)` is widened to `∞`
    ///   — no *lower-bound* guard (`x > c`, `x ≥ c`, `c ≤ L(x_i)`) can
    ///   distinguish values above `L(x_i)`;
    /// * a lower bound on `x_j` tighter than `-U(x_j)` is clamped to
    ///   `< -U(x_j)` — no *upper-bound* guard can distinguish values
    ///   above `U(x_j)`.
    ///
    /// With `L ≤ M` and `U ≤ M` this abstracts at least as coarsely as
    /// `Extra_M` (strictly coarser whenever some clock is only ever
    /// compared in one direction), so the zone graph settles *fewer*
    /// states while preserving reachability of every diagonal-free
    /// property. Both vectors are indexed like `k` in
    /// [`Dbm::extrapolate`] (entry 0 = reference, ignored).
    /// Re-canonicalizes when anything changed.
    pub fn extrapolate_lu(&mut self, lower: &[i64], upper: &[i64]) {
        debug_assert_eq!(lower.len(), self.dim);
        debug_assert_eq!(upper.len(), self.dim);
        let d = self.dim;
        let mut changed = false;
        for (i, &li) in lower.iter().enumerate() {
            for (j, &uj) in upper.iter().enumerate().take(d) {
                if i == j {
                    continue;
                }
                let idx = i * d + j;
                let b = self.m[idx];
                if b.is_inf() {
                    continue;
                }
                if i != 0 && b > Bound::le(li) {
                    self.m[idx] = Bound::INF;
                    changed = true;
                } else if j != 0 && b < Bound::lt(-uj) {
                    self.m[idx] = Bound::lt(-uj);
                    changed = true;
                }
            }
        }
        if changed {
            self.canonicalize();
        }
    }

    /// Zone-position-based LU extrapolation `Extra⁺_LU` (ibid., the
    /// operator UPPAAL applies): in addition to [`Dbm::extrapolate_lu`]'s
    /// per-entry rules, whole rows and columns are widened based on
    /// where the *zone* sits relative to the bounds —
    ///
    /// * row `i` is widened when the zone already implies
    ///   `x_i > L(x_i)` (no lower-bound guard can tell its values apart);
    /// * column `j` (and, on the reference row, the lower bound of
    ///   `x_j`, clamped to `> U(x_j)`) is widened when the zone implies
    ///   `x_j > U(x_j)` (no upper-bound guard can tell its values
    ///   apart), which erases the diagonal correlations `x - x_j` that
    ///   keep otherwise-equivalent zones distinct.
    ///
    /// Strictly coarser than `Extra_LU` (hence than `Extra_M`), and
    /// sound for diagonal-free timed automata whose lower-/upper-bound
    /// guard constants are covered by `L`/`U`. Unlike the per-entry
    /// operators it is **not** idempotent in general: widening plus
    /// re-canonicalization can expose further widening opportunities.
    /// Each zone passes through it once per settle, so the engine only
    /// needs soundness and the (preserved) finite-range guarantee, not
    /// idempotence.
    pub fn extrapolate_lu_plus(&mut self, lower: &[i64], upper: &[i64]) {
        debug_assert_eq!(lower.len(), self.dim);
        debug_assert_eq!(upper.len(), self.dim);
        let d = self.dim;
        let mut changed = false;
        // The rules read the zone's pre-extrapolation lower bounds
        // (reference row `c_0x`), so snapshot them first.
        let c0: Vec<Bound> = self.m[0..d].to_vec();
        for (i, &li) in lower.iter().enumerate() {
            for (j, &uj) in upper.iter().enumerate().take(d) {
                if i == j {
                    continue;
                }
                let idx = i * d + j;
                let b = self.m[idx];
                if b.is_inf() {
                    continue;
                }
                // `c0[x] < le(-k)` encodes "the zone implies x > k".
                let widen = i != 0
                    && (b > Bound::le(li)
                        || c0[i] < Bound::le(-li)
                        || (j != 0 && c0[j] < Bound::le(-uj)));
                if widen {
                    self.m[idx] = Bound::INF;
                    changed = true;
                } else if i == 0 && c0[j] < Bound::le(-uj) && b < Bound::lt(-uj) {
                    self.m[idx] = Bound::lt(-uj);
                    changed = true;
                }
            }
        }
        if changed {
            self.canonicalize();
        }
    }

    /// Renders the non-trivial constraints (canonical form assumed),
    /// `names[i]` naming clock `i+1`, in ticks.
    pub fn render(&self, names: &[String]) -> String {
        let mut parts = Vec::new();
        let name = |i: usize| -> String {
            if i == 0 {
                "0".to_string()
            } else {
                names.get(i - 1).cloned().unwrap_or_else(|| format!("x{i}"))
            }
        };
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.get(i, j);
                if b.is_inf() {
                    continue;
                }
                // Skip the implicit non-negativity bounds to keep output
                // readable.
                if i == 0 && b == Bound::LE_ZERO {
                    continue;
                }
                let op = if b.is_weak() { "<=" } else { "<" };
                if i == 0 {
                    parts.push(format!("{} {} {}", -b.value(), op, name(j)));
                } else if j == 0 {
                    parts.push(format!("{} {} {}", name(i), op, b.value()));
                } else {
                    parts.push(format!("{} - {} {} {}", name(i), name(j), op, b.value()));
                }
            }
        }
        if parts.is_empty() {
            "true".to_string()
        } else {
            parts.join(" ∧ ")
        }
    }
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dbm[{}]", self.dim)?;
        for i in 0..self.dim {
            for j in 0..self.dim {
                write!(f, "{:?}\t", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
