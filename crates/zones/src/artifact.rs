//! Passed-list artifacts: a completed search's proof, serialized.
//!
//! UPPAAL-lineage engines treat the passed list as *the* proof object —
//! every settled `(location vector, observer state, zone)` triple is a
//! certificate that the behaviours it covers are violation-free. This
//! module makes that object durable: [`PassedArtifact`] captures the
//! interned discrete keys plus the [`MinimalDbm`] zones of a `Safe`
//! search together with everything that scopes the proof's validity
//! (clock count, extrapolation operator, a structural digest of the
//! lowered network, its timing constants, the activity-mask digest, and
//! the monitor's [`WarmProfile`]), and serializes it into a versioned,
//! checksummed binary blob ([`PassedArtifact::to_bytes`] /
//! [`PassedArtifact::from_bytes`] — lossless round-trip, property-tested
//! below).
//!
//! ## Warm-start validity
//!
//! An artifact may *warm-start* a later verification
//! ([`crate::Limits::warm_start`]) only when the new model provably has
//! no more behaviours-to-refute than the proved one:
//!
//! 1. **Identical lowered network** — same structural digest
//!    ([`net_structure_digest`]: names, locations, edges, syncs, emits,
//!    resets *including values*, frozen/risky/urgent flags, and the
//!    shape of every guard/invariant atom) **and** the same timing
//!    constants ([`atom_ticks`], compared elementwise). A network
//!    timing delta always falls back to a cold search — the engine
//!    never guesses which zone-graph edits a constant change induces.
//! 2. **Weaker-or-equal monitor** — same monitor structure and every
//!    monitor constant moved only in the direction that makes the
//!    property *harder to violate* ([`WarmProfile::admits`]). Then the
//!    old proof's "no violation anywhere" transfers verbatim: the new
//!    violation predicates are subsets of the old ones.
//! 3. **Same search configuration** — clock count, extrapolation
//!    operator, and activity-mask digest all equal, so the stored zones
//!    mean the same thing they meant at capture time.
//!
//! Anything that fails a gate is a cold start; a warm start can
//! therefore never flip a verdict (it only ever *returns* `Safe`, and
//! only when the transfer argument holds — enforced by the cold-vs-warm
//! bit-identity tests in `pte-verify`).

use crate::analysis::ActivityMasks;
use crate::dbm::{Bound, MinCon, MinimalDbm};
use crate::monitor::MonitorState;
use crate::reach::Extrapolation;
use crate::ta::TaNetwork;
use std::fmt;
use std::sync::Arc;

/// Artifact schema version ([`PassedArtifact::to_bytes`] embeds it;
/// [`PassedArtifact::from_bytes`] rejects any other value). Bump on any
/// encoding change — persisted artifacts of older versions then read as
/// stale and the daemon's disk tier treats them as misses.
pub const ARTIFACT_VERSION: u32 = 1;

/// File magic, so a disk-cache file of the wrong kind fails fast.
const MAGIC: [u8; 4] = *b"PTEA";

/// Streaming FNV-1a/64 — the digest used for the artifact checksum and
/// the structural digests. Deterministic across processes and
/// platforms (unlike `std`'s `RandomState`), which is the whole point:
/// digests are persisted and compared across daemon restarts.
#[derive(Clone, Copy, Debug)]
pub struct Digest(u64);

impl Digest {
    /// A fresh digest (FNV offset basis).
    pub fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a length-prefixed string (prefixing prevents boundary
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// The digest value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

/// FNV-1a/64 of a byte slice (the artifact payload checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.write_bytes(bytes);
    d.finish()
}

/// The monitor's contribution to warm-start validity: a structural
/// digest (which property, over which entities/targets) plus the
/// monitor's constants split by *weakening direction* — see
/// [`WarmProfile::admits`]. Built by
/// [`crate::Monitor::warm_profile`]; a monitor that returns `None`
/// neither captures artifacts nor warm-starts from them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmProfile {
    /// Digest of everything about the monitor except its constants.
    pub structure: u64,
    /// Constants where a **larger** new value makes the property harder
    /// to violate (e.g. the PTE Rule-1 dwelling bounds: the violation
    /// predicate is `r > bound`).
    pub weaken_lower: Vec<i64>,
    /// Constants where a **smaller** new value makes the property
    /// harder to violate (e.g. the PTE `T^min_risky` / `T^min_safe`
    /// margins: the violation predicates are `r < margin`).
    pub weaken_upper: Vec<i64>,
}

impl WarmProfile {
    /// `true` when a proof under `self` (the *captured* profile) is
    /// still a proof under `new`: identical structure, and every
    /// constant moved only in its weakening direction. The order is
    /// transitive, so chained warm starts stay sound even though each
    /// capture passes the original artifact through unchanged.
    pub fn admits(&self, new: &WarmProfile) -> bool {
        self.structure == new.structure
            && self.weaken_lower.len() == new.weaken_lower.len()
            && self.weaken_upper.len() == new.weaken_upper.len()
            && self
                .weaken_lower
                .iter()
                .zip(&new.weaken_lower)
                .all(|(old, new)| new >= old)
            && self
                .weaken_upper
                .iter()
                .zip(&new.weaken_upper)
                .all(|(old, new)| new <= old)
    }
}

/// One settled passed-list entry: the discrete key (location vector +
/// observer state) and the zone in minimal constraint form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassedEntry {
    /// Network location vector.
    pub locs: Vec<u32>,
    /// Monitor observer state.
    pub mon: MonitorState,
    /// The settled (delay-closed, extrapolated) zone.
    pub zone: MinimalDbm,
}

/// A completed `Safe` search's passed list plus the metadata that
/// scopes its validity (see the module docs for the warm-start gates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassedArtifact {
    /// Total clock count (network + observer clocks); every entry's
    /// zone has dimension `nclocks + 1`.
    pub nclocks: usize,
    /// Extrapolation operator the search ran with.
    pub extrapolation: Extrapolation,
    /// `true` when the capture run had the static clock reduction on
    /// (informational — the digests below are what gate reuse).
    pub reduce_clocks: bool,
    /// `true` when the symmetry quotient was active: entries are then
    /// orbit *representatives*. Still sound to warm from (admission is
    /// gated on the monitor's permutation invariance), and
    /// informational for diagnostics.
    pub symmetry: bool,
    /// `true` when the capture run used the work-stealing scheduler
    /// (informational; the passed set is scheduling-independent only
    /// under the round barrier, but any settled set is a valid proof).
    pub work_stealing: bool,
    /// Structural digest of the lowered network, constants excluded
    /// ([`net_structure_digest`]).
    pub net_digest: u64,
    /// Every guard/invariant constant of the network, in canonical
    /// traversal order ([`atom_ticks`]). Compared elementwise — a warm
    /// start requires them identical.
    pub atom_ticks: Vec<i64>,
    /// Digest of the activity masks the search freed dead clocks with
    /// ([`masks_digest`]).
    pub masks_digest: u64,
    /// The capturing monitor's [`WarmProfile`].
    pub profile: WarmProfile,
    /// The passed list, in deterministic shard/intern order.
    pub entries: Vec<PassedEntry>,
}

/// Where a capture run deposits its artifact
/// ([`crate::Limits::capture`]): shared slot, filled at most once per
/// search, readable after the verdict returns.
pub type ArtifactSink = Arc<parking_lot::Mutex<Option<PassedArtifact>>>;

/// A fresh, empty [`ArtifactSink`].
pub fn new_sink() -> ArtifactSink {
    Arc::new(parking_lot::Mutex::new(None))
}

/// Everything that can be wrong with a serialized artifact. Loaders
/// treat *any* of these as a cache miss — never as an error worth
/// failing a verification over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// Fewer bytes than the header or a declared length requires.
    Truncated,
    /// The magic bytes are not `PTEA`.
    BadMagic,
    /// Schema version mismatch (carries the stored version).
    StaleVersion(u32),
    /// Payload checksum mismatch — bit rot or a torn write.
    BadChecksum,
    /// Structurally invalid payload (impossible lengths, bad tags).
    Malformed(&'static str),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::BadMagic => write!(f, "not a passed-list artifact (bad magic)"),
            ArtifactError::StaleVersion(v) => {
                write!(
                    f,
                    "artifact version {v} (this build reads {ARTIFACT_VERSION})"
                )
            }
            ArtifactError::BadChecksum => write!(f, "artifact checksum mismatch"),
            ArtifactError::Malformed(what) => write!(f, "malformed artifact: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl Extrapolation {
    /// Serialization tag.
    fn tag(self) -> u8 {
        match self {
            Extrapolation::ExtraM => 0,
            Extrapolation::ExtraLu => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Extrapolation, ArtifactError> {
        match tag {
            0 => Ok(Extrapolation::ExtraM),
            1 => Ok(Extrapolation::ExtraLu),
            _ => Err(ArtifactError::Malformed("extrapolation tag")),
        }
    }
}

/// Structural digest of a lowered network, **excluding** every
/// guard/invariant constant (those live in [`atom_ticks`] and are
/// compared elementwise instead, so a pure timing delta is
/// distinguishable from a topology change). Covers clock names,
/// automaton names and initial locations, location names +
/// frozen/risky flags + invariant atom shapes (clock index and
/// relation), and edge endpoints, guard shapes, resets *with* values,
/// synchronization kind + root, emissions, and urgency.
pub fn net_structure_digest(net: &TaNetwork) -> u64 {
    use crate::ta::{Rel, Sync};
    let mut d = Digest::new();
    d.write_u64(net.clocks.len() as u64);
    for c in &net.clocks {
        d.write_str(c);
    }
    d.write_u64(net.automata.len() as u64);
    let rel_tag = |r: Rel| -> u8 {
        match r {
            Rel::Le => 0,
            Rel::Lt => 1,
            Rel::Ge => 2,
            Rel::Gt => 3,
        }
    };
    for aut in &net.automata {
        d.write_str(&aut.name);
        d.write_u64(aut.initial as u64);
        d.write_u64(aut.locations.len() as u64);
        for loc in &aut.locations {
            d.write_str(&loc.name);
            d.write_u8(u8::from(loc.frozen) | (u8::from(loc.risky) << 1));
            d.write_u64(loc.invariant.len() as u64);
            for a in &loc.invariant {
                d.write_u64(a.clock as u64);
                d.write_u8(rel_tag(a.rel));
            }
        }
        d.write_u64(aut.edges.len() as u64);
        for e in &aut.edges {
            d.write_u64(e.src as u64);
            d.write_u64(e.dst as u64);
            d.write_u8(u8::from(e.urgent));
            d.write_u64(e.guard.len() as u64);
            for a in &e.guard {
                d.write_u64(a.clock as u64);
                d.write_u8(rel_tag(a.rel));
            }
            d.write_u64(e.resets.len() as u64);
            for &(c, v) in &e.resets {
                d.write_u64(c as u64);
                d.write_i64(v);
            }
            match &e.sync {
                Sync::None => d.write_u8(0),
                Sync::External(r) => {
                    d.write_u8(1);
                    d.write_str(r.as_str());
                }
                Sync::Reliable(r) => {
                    d.write_u8(2);
                    d.write_str(r.as_str());
                }
                Sync::Lossy(r) => {
                    d.write_u8(3);
                    d.write_str(r.as_str());
                }
            }
            d.write_u64(e.emits.len() as u64);
            for r in &e.emits {
                d.write_str(r.as_str());
            }
        }
    }
    d.finish()
}

/// Every guard/invariant constant of the network in a canonical
/// traversal order (per automaton: each location's invariant atoms,
/// then each edge's guard atoms). Together with
/// [`net_structure_digest`] this pins the lowered network exactly: two
/// networks with equal digest and equal tick vectors are the same
/// model.
pub fn atom_ticks(net: &TaNetwork) -> Vec<i64> {
    let mut ticks = Vec::new();
    for aut in &net.automata {
        for loc in &aut.locations {
            for a in &loc.invariant {
                ticks.push(a.ticks);
            }
        }
        for e in &aut.edges {
            for a in &e.guard {
                ticks.push(a.ticks);
            }
        }
    }
    ticks
}

/// Digest of the activity masks a search freed dead clocks with
/// (`None` when masking was off or trivial). Stored zones reflect the
/// freeing, so reuse requires the same masks.
pub fn masks_digest(masks: Option<&ActivityMasks>) -> u64 {
    let mut d = Digest::new();
    match masks {
        None => d.write_u8(0),
        Some(m) => {
            d.write_u8(1);
            d.write_u64(m.clocks as u64);
            d.write_u64(m.shared as u64);
            d.write_u64(m.dead.len() as u64);
            for locs in &m.dead {
                d.write_u64(locs.len() as u64);
                for &mask in locs {
                    d.write_u64(mask);
                }
            }
        }
    }
    d.finish()
}

/// Little-endian payload writer (fixed-width ints only — no varints, so
/// the format is trivially auditable).
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self.pos.checked_add(n).ok_or(ArtifactError::Truncated)?;
        if end > self.buf.len() {
            return Err(ArtifactError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ArtifactError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A declared element count, sanity-bounded by the bytes actually
    /// remaining (each element costs ≥ `min_elem_bytes`), so a corrupt
    /// length cannot drive a pre-allocation of gigabytes.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, ArtifactError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(ArtifactError::Truncated);
        }
        Ok(n)
    }
}

impl PassedArtifact {
    /// Serializes into the versioned, checksummed binary format:
    /// `magic · version · fnv1a64(payload) · payload`, everything
    /// little-endian and fixed-width.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer {
            buf: Vec::with_capacity(64 + self.entries.len() * 64),
        };
        w.u32(self.nclocks as u32);
        w.u8(self.extrapolation.tag());
        w.u8(u8::from(self.reduce_clocks)
            | (u8::from(self.symmetry) << 1)
            | (u8::from(self.work_stealing) << 2));
        w.u64(self.net_digest);
        w.u64(self.masks_digest);
        w.u32(self.atom_ticks.len() as u32);
        for &t in &self.atom_ticks {
            w.i64(t);
        }
        w.u64(self.profile.structure);
        w.u32(self.profile.weaken_lower.len() as u32);
        for &c in &self.profile.weaken_lower {
            w.i64(c);
        }
        w.u32(self.profile.weaken_upper.len() as u32);
        for &c in &self.profile.weaken_upper {
            w.i64(c);
        }
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u32(e.locs.len() as u32);
            for &l in &e.locs {
                w.u32(l);
            }
            w.u32(e.mon.len() as u32);
            w.buf.extend_from_slice(&e.mon);
            w.u8(e.zone.dim());
            w.u32(e.zone.len() as u32);
            for c in e.zone.constraints() {
                w.u8(c.i);
                w.u8(c.j);
                w.i64(c.b.raw());
            }
        }
        let payload = w.buf;
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and validates a serialized artifact. Any defect — bad
    /// magic, stale version, checksum mismatch, truncation, malformed
    /// structure — is an [`ArtifactError`]; callers treat them all as
    /// cache misses.
    pub fn from_bytes(bytes: &[u8]) -> Result<PassedArtifact, ArtifactError> {
        if bytes.len() < 16 {
            return Err(ArtifactError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::StaleVersion(version));
        }
        let checksum = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let payload = &bytes[16..];
        if fnv1a64(payload) != checksum {
            return Err(ArtifactError::BadChecksum);
        }
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let nclocks = r.u32()? as usize;
        let extrapolation = Extrapolation::from_tag(r.u8()?)?;
        let flags = r.u8()?;
        if flags & !0b111 != 0 {
            return Err(ArtifactError::Malformed("flag bits"));
        }
        let net_digest = r.u64()?;
        let masks_digest = r.u64()?;
        let n_ticks = r.len(8)?;
        let mut ticks = Vec::with_capacity(n_ticks);
        for _ in 0..n_ticks {
            ticks.push(r.i64()?);
        }
        let structure = r.u64()?;
        let n_lower = r.len(8)?;
        let mut weaken_lower = Vec::with_capacity(n_lower);
        for _ in 0..n_lower {
            weaken_lower.push(r.i64()?);
        }
        let n_upper = r.len(8)?;
        let mut weaken_upper = Vec::with_capacity(n_upper);
        for _ in 0..n_upper {
            weaken_upper.push(r.i64()?);
        }
        let n_entries = r.len(10)?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let n_locs = r.len(4)?;
            let mut locs = Vec::with_capacity(n_locs);
            for _ in 0..n_locs {
                locs.push(r.u32()?);
            }
            let n_mon = r.len(1)?;
            let mon = r.take(n_mon)?.to_vec();
            let dim = r.u8()?;
            if usize::from(dim) != nclocks + 1 {
                return Err(ArtifactError::Malformed("zone dimension"));
            }
            let n_cons = r.len(10)?;
            let mut cons = Vec::with_capacity(n_cons);
            for _ in 0..n_cons {
                let i = r.u8()?;
                let j = r.u8()?;
                if i >= dim || j >= dim {
                    return Err(ArtifactError::Malformed("constraint clock index"));
                }
                cons.push(MinCon {
                    i,
                    j,
                    b: Bound::from_raw(r.i64()?),
                });
            }
            entries.push(PassedEntry {
                locs,
                mon,
                zone: MinimalDbm::from_parts(dim, cons),
            });
        }
        if r.pos != payload.len() {
            return Err(ArtifactError::Malformed("trailing bytes"));
        }
        Ok(PassedArtifact {
            nclocks,
            extrapolation,
            reduce_clocks: flags & 1 != 0,
            symmetry: flags & 2 != 0,
            work_stealing: flags & 4 != 0,
            net_digest,
            atom_ticks: ticks,
            masks_digest,
            profile: WarmProfile {
                structure,
                weaken_lower,
                weaken_upper,
            },
            entries,
        })
    }

    /// Serialized size in bytes (header included) without building the
    /// buffer — the disk cache's eviction accounting unit.
    pub fn encoded_len(&self) -> usize {
        let mut n = 16 + 4 + 1 + 1 + 8 + 8; // header + fixed fields
        n += 4 + 8 * self.atom_ticks.len();
        n += 8 + 4 + 8 * self.profile.weaken_lower.len() + 4 + 8 * self.profile.weaken_upper.len();
        n += 4;
        for e in &self.entries {
            n += 4 + 4 * e.locs.len() + 4 + e.mon.len() + 1 + 4 + 10 * e.zone.len();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbm::Dbm;

    /// SplitMix64 — the deterministic generator driving the
    /// round-trip property test (no external proptest dependency).
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A random canonical non-empty zone over `clocks` clocks, reduced
    /// to minimal constraint form (the only way real artifacts acquire
    /// zones, so the generated population matches production shapes).
    fn random_zone(rng: &mut u64, clocks: usize) -> MinimalDbm {
        let mut z = Dbm::zero(clocks);
        z.up();
        for c in 1..=clocks {
            if splitmix64(rng).is_multiple_of(2) {
                let m = (splitmix64(rng) % 1_000_000) as i64;
                z.constrain(c, 0, Bound::le(m));
            }
        }
        z.canonicalize();
        debug_assert!(!z.is_empty());
        z.reduce()
    }

    fn random_artifact(seed: u64) -> PassedArtifact {
        let mut rng = seed;
        let clocks = 1 + (splitmix64(&mut rng) % 6) as usize;
        let n_entries = (splitmix64(&mut rng) % 20) as usize;
        let entries = (0..n_entries)
            .map(|_| PassedEntry {
                locs: (0..3).map(|_| (splitmix64(&mut rng) % 7) as u32).collect(),
                mon: (0..2).map(|_| (splitmix64(&mut rng) % 4) as u8).collect(),
                zone: random_zone(&mut rng, clocks),
            })
            .collect();
        PassedArtifact {
            nclocks: clocks,
            extrapolation: if splitmix64(&mut rng).is_multiple_of(2) {
                Extrapolation::ExtraM
            } else {
                Extrapolation::ExtraLu
            },
            reduce_clocks: splitmix64(&mut rng).is_multiple_of(2),
            symmetry: splitmix64(&mut rng).is_multiple_of(2),
            work_stealing: splitmix64(&mut rng).is_multiple_of(2),
            net_digest: splitmix64(&mut rng),
            atom_ticks: (0..(splitmix64(&mut rng) % 12))
                .map(|_| splitmix64(&mut rng) as i64 % 1_000_000)
                .collect(),
            masks_digest: splitmix64(&mut rng),
            profile: WarmProfile {
                structure: splitmix64(&mut rng),
                weaken_lower: (0..(splitmix64(&mut rng) % 5))
                    .map(|_| (splitmix64(&mut rng) % 1_000_000) as i64)
                    .collect(),
                weaken_upper: (0..(splitmix64(&mut rng) % 5))
                    .map(|_| (splitmix64(&mut rng) % 1_000_000) as i64)
                    .collect(),
            },
            entries,
        }
    }

    /// Generative round-trip: 64 seeded random artifacts, each
    /// serialize → parse → compare losslessly (and the size accounting
    /// matches the real encoding).
    #[test]
    fn round_trip_is_lossless() {
        for seed in 0..64u64 {
            let art = random_artifact(seed);
            let bytes = art.to_bytes();
            assert_eq!(bytes.len(), art.encoded_len(), "seed {seed}");
            let back = PassedArtifact::from_bytes(&bytes).unwrap_or_else(|e| {
                panic!("seed {seed}: round-trip parse failed: {e}");
            });
            assert_eq!(art, back, "seed {seed}");
        }
    }

    /// Every single-byte corruption of a serialized artifact is
    /// detected (checksum, magic, version, or structural validation) —
    /// a torn or bit-rotted cache file can never parse as a different
    /// valid proof.
    #[test]
    fn corruption_is_detected() {
        let art = random_artifact(7);
        let bytes = art.to_bytes();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x41;
            match PassedArtifact::from_bytes(&bad) {
                Err(_) => {}
                Ok(parsed) => assert_eq!(
                    parsed, art,
                    "byte {pos}: corruption parsed as a different artifact"
                ),
            }
        }
    }

    #[test]
    fn truncation_and_version_are_rejected() {
        let art = random_artifact(3);
        let bytes = art.to_bytes();
        for cut in [0, 3, 8, 15, bytes.len() - 1] {
            assert!(matches!(
                PassedArtifact::from_bytes(&bytes[..cut]),
                Err(ArtifactError::Truncated | ArtifactError::BadChecksum)
            ));
        }
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            PassedArtifact::from_bytes(&wrong_magic),
            Err(ArtifactError::BadMagic)
        );
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&(ARTIFACT_VERSION + 1).to_le_bytes());
        assert_eq!(
            PassedArtifact::from_bytes(&future),
            Err(ArtifactError::StaleVersion(ARTIFACT_VERSION + 1))
        );
    }

    #[test]
    fn warm_profile_admission_is_directional() {
        let base = WarmProfile {
            structure: 42,
            weaken_lower: vec![100],
            weaken_upper: vec![50, 80],
        };
        assert!(base.admits(&base), "reflexive");
        // Larger lower-direction and smaller upper-direction constants
        // weaken the property: admitted.
        let weaker = WarmProfile {
            structure: 42,
            weaken_lower: vec![150],
            weaken_upper: vec![40, 80],
        };
        assert!(base.admits(&weaker));
        // Any constant moved in the strengthening direction: rejected.
        let tighter_lower = WarmProfile {
            weaken_lower: vec![99],
            ..base.clone()
        };
        assert!(!base.admits(&tighter_lower));
        let tighter_upper = WarmProfile {
            weaken_upper: vec![50, 81],
            ..base.clone()
        };
        assert!(!base.admits(&tighter_upper));
        // Different structure or arity: rejected.
        assert!(!base.admits(&WarmProfile {
            structure: 43,
            ..base.clone()
        }));
        assert!(!base.admits(&WarmProfile {
            weaken_upper: vec![50],
            ..base.clone()
        }));
        // Transitivity spot check: base admits weaker admits weakest
        // implies base admits weakest.
        let weakest = WarmProfile {
            structure: 42,
            weaken_lower: vec![200],
            weaken_upper: vec![0, 0],
        };
        assert!(weaker.admits(&weakest) && base.admits(&weakest));
    }
}
