//! # pte-zones
//!
//! Symbolic zone-based reachability for the lease design pattern — the
//! fourth verification backend of the PTE workspace.
//!
//! `pte-verify`'s other backends *sample* the system's behaviours:
//! Monte-Carlo draws concrete clock valuations, the bounded-exhaustive
//! explorer enumerates the `2^k` drop/deliver fates of the first `k`
//! transmissions, and the adversaries play fixed worst-case loss
//! strategies. This crate instead covers **all real-valued timings and
//! all loss fates at once**, in the style of timed-automata model
//! checkers (UPPAAL, ECDAR):
//!
//! 1. [`dbm`] — Difference Bound Matrices over integer ticks:
//!    construction-time canonicalization (Floyd–Warshall) plus the
//!    **incremental** O(n²) re-closure [`Dbm::close1`] /
//!    [`Dbm::constrain_and_close`] the engine's hot path runs on,
//!    `up`/`down`/`free`/`reset` (all closure-preserving, law-tested),
//!    inclusion, emptiness, two extrapolation operators for
//!    termination (maximal-constant `Extra_M` and the coarser LU-bound
//!    `Extra⁺_LU`), the **minimal constraint form** ([`Dbm::reduce`] /
//!    [`MinimalDbm`]) that compresses the passed list by a measured
//!    ~3.6×, and a [`DbmPool`] free-list for allocation-free successor
//!    computation;
//! 2. [`lower`] — a timed abstraction of the `pte-core` pattern
//!    automata: their continuous dynamics are clock-like by construction
//!    (rate-1 lease/dwell timers, rate-0 registers such as the
//!    Supervisor's approval flag), so the hybrid network lowers exactly
//!    into a network of timed automata ([`ta`]) with invariants, guards,
//!    resets and the reliable/lossy synchronization labels;
//! 3. [`monitor`] — the property layer: safety properties are
//!    [`Monitor`]s composed with the network (observer clocks,
//!    discrete observer state in every passed-list key, guard
//!    constants folded into the extrapolation bounds), in the
//!    component/observer style of ECDAR — [`PteMonitor`] encodes the
//!    paper's PTE rules for any entity count, and
//!    [`LocationReachMonitor`] turns the engine into a plain
//!    reachability checker;
//! 4. [`reach`] — a parallel, property-agnostic zone-graph
//!    reachability engine: the passed list is sharded by
//!    discrete-state hash with per-shard key interning ([`intern`]),
//!    scoped workers expand the frontier in deterministic BFS layers
//!    ([`Limits::max_workers`]; the verdict and counter-example are
//!    identical for every worker count) moving fixed-size action codes
//!    and pooled zones instead of strings and fresh allocations,
//!    candidates are probed against the passed list *before*
//!    extrapolation, and any monitor violation is reported as a
//!    symbolic counter-example trace ([`SearchStats`] includes peak
//!    passed-list bytes on the safe side). Case-study proof: ≈ 51 ms /
//!    ≈ 69 000 states/s on a 2-vCPU container; the `chain-N` registry
//!    scenarios scale the same engine to ≈ 477 000 settled states at
//!    `N = 6` (see `bench/benches/zones.rs` and its
//!    `BENCH_zones.json`).
//!
//! ## Quickstart
//!
//! ```
//! use pte_core::pattern::LeaseConfig;
//! use pte_zones::check_lease_pattern;
//!
//! // The paper's laser-tracheotomy configuration is symbolically safe…
//! let verdict = check_lease_pattern(&LeaseConfig::case_study(), true).unwrap();
//! assert!(verdict.is_safe());
//! // …and the without-lease baseline is provably not.
//! let verdict = check_lease_pattern(&LeaseConfig::case_study(), false).unwrap();
//! assert!(verdict.is_unsafe());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod artifact;
pub mod dbm;
pub mod intern;
pub mod lower;
pub mod monitor;
pub mod reach;
pub mod symmetry;
pub mod ta;

pub use analysis::{
    analyze, apply_allowlist, pattern_allowlist, ActivityMasks, AllowRule, AnalysisStats,
    ClockReduction, Diagnostic, ModelAnalysis, Severity,
};
pub use artifact::{
    new_sink, ArtifactError, ArtifactSink, PassedArtifact, PassedEntry, WarmProfile,
    ARTIFACT_VERSION,
};
pub use dbm::{Bound, Dbm, DbmPool, MinCon, MinimalDbm};
pub use lower::{lower_network, LowerError};
pub use monitor::{
    LocationReachMonitor, Monitor, MonitorState, MonitorViolation, ObserverSpec, PairBounds,
    PteMonitor, TransitionCtx, ViolationKind,
};
pub use reach::{
    check, check_monitored, CancelToken, Extrapolation, Limits, Progress, ProgressFn, Scheduler,
    SearchStats, SymbolicCounterExample, SymbolicVerdict, TrippedLimit,
};
pub use symmetry::{demo_fleet, detect as detect_symmetry, SymGroup, Symmetry};
pub use ta::LuBounds;

use pte_core::pattern::{build_pattern_system, LeaseConfig};
use std::fmt;

/// Ticks per second: constants are scaled to integer microseconds, the
/// exactness condition for DBM canonicalization.
pub const SCALE: f64 = 1_000_000.0;

/// Scales seconds to integer ticks (nearest-microsecond rounding; the
/// pattern's configuration constants are all microsecond-exact).
pub fn to_ticks(secs: f64) -> i64 {
    (secs * SCALE).round() as i64
}

/// [`to_ticks`], but `None` when the constant is not microsecond-exact
/// (beyond float representation noise): rounding such a constant would
/// silently verify a *different* model, so the lowering rejects it.
pub fn try_to_ticks(secs: f64) -> Option<i64> {
    let scaled = secs * SCALE;
    let rounded = scaled.round();
    // 1e-3 ticks = 1 ns of slack absorbs binary-representation error of
    // decimal constants (0.1 s etc.) without admitting real sub-µs data.
    if (scaled - rounded).abs() <= 1e-3 {
        Some(rounded as i64)
    } else {
        None
    }
}

/// Everything that can go wrong between a [`LeaseConfig`] and a verdict.
#[derive(Clone, Debug)]
pub enum ZonesError {
    /// The pattern system failed to build.
    Build(String),
    /// The hybrid network is outside the clock-like fragment.
    Lower(LowerError),
    /// The observer spec names an unknown entity.
    Spec(String),
}

impl fmt::Display for ZonesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZonesError::Build(m) => write!(f, "pattern build failed: {m}"),
            ZonesError::Lower(e) => write!(f, "lowering failed: {e}"),
            ZonesError::Spec(m) => write!(f, "bad observer spec: {m}"),
        }
    }
}

impl std::error::Error for ZonesError {}

impl From<LowerError> for ZonesError {
    fn from(e: LowerError) -> ZonesError {
        ZonesError::Lower(e)
    }
}

/// Builds the `N`-entity lease-pattern system for `cfg`, lowers it to a
/// timed-automata network, and symbolically checks the PTE rules of
/// `cfg.pte_spec()` over every timing and loss fate.
pub fn check_lease_pattern(cfg: &LeaseConfig, leased: bool) -> Result<SymbolicVerdict, ZonesError> {
    check_lease_pattern_with(cfg, leased, &Limits::default())
}

/// [`check_lease_pattern`] with explicit exploration limits.
pub fn check_lease_pattern_with(
    cfg: &LeaseConfig,
    leased: bool,
    limits: &Limits,
) -> Result<SymbolicVerdict, ZonesError> {
    let sys = build_pattern_system(cfg, leased).map_err(|e| ZonesError::Build(format!("{e:?}")))?;
    let net = lower_network(&sys.automata)?;
    // The spec is moved (not re-cloned) into tick units, and `check`
    // borrows both the network and the spec — nothing on this path
    // clones an automaton.
    let spec = ObserverSpec::from(cfg.pte_spec());
    check(&net, &spec, limits).map_err(ZonesError::Spec)
}

/// Builds and lowers one arm of the `N`-entity lease-pattern system
/// for `cfg` and runs the [static model analysis](analysis) over it —
/// the entry point `pte-lint` and the verification report's `analysis`
/// stats use. Purely static: no state-space exploration happens.
pub fn analyze_lease_pattern(cfg: &LeaseConfig, leased: bool) -> Result<ModelAnalysis, ZonesError> {
    let sys = build_pattern_system(cfg, leased).map_err(|e| ZonesError::Build(format!("{e:?}")))?;
    let net = lower_network(&sys.automata)?;
    Ok(analyze(&net))
}

#[cfg(test)]
mod tests {
    use super::dbm::{Bound, Dbm};
    use super::*;

    #[test]
    fn tick_scaling_is_exact_for_pattern_constants() {
        assert_eq!(to_ticks(1.5), 1_500_000);
        assert_eq!(to_ticks(0.0), 0);
        assert_eq!(to_ticks(13.0), 13_000_000);
        assert_eq!(to_ticks(0.15), 150_000);
    }

    #[test]
    fn bound_encoding_orders_by_tightness() {
        assert!(Bound::lt(5) < Bound::le(5));
        assert!(Bound::le(5) < Bound::lt(6));
        assert!(Bound::le(5) < Bound::INF);
        assert_eq!(Bound::le(2) + Bound::lt(3), Bound::lt(5));
        assert_eq!(Bound::le(2) + Bound::le(3), Bound::le(5));
        assert!((Bound::INF + Bound::le(-10)).is_inf());
    }

    #[test]
    fn zero_zone_delays_into_the_diagonal() {
        let mut z = Dbm::zero(2);
        z.up();
        // x1 - x2 == 0 along the diagonal.
        assert_eq!(z.get(1, 2), Bound::LE_ZERO);
        assert_eq!(z.get(2, 1), Bound::LE_ZERO);
        assert!(z.get(1, 0).is_inf());
        // Constrain x1 <= 5 and recanonicalize: x2 <= 5 follows.
        z.constrain(1, 0, Bound::le(5));
        z.canonicalize();
        assert_eq!(z.get(2, 0), Bound::le(5));
        assert!(!z.is_empty());
    }

    #[test]
    fn contradictory_constraints_empty_the_zone() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(1, 0, Bound::le(3));
        z.constrain(0, 1, Bound::le(-5)); // x1 >= 5
        z.canonicalize();
        assert!(z.is_empty());
    }

    #[test]
    fn reset_pins_a_clock() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain(1, 0, Bound::le(10));
        z.canonicalize();
        z.reset(2, 7);
        assert_eq!(z.get(2, 0), Bound::le(7));
        assert_eq!(z.get(0, 2), Bound::le(-7));
        assert!(!z.is_empty());
    }

    #[test]
    fn inclusion_is_a_partial_order() {
        let mut small = Dbm::zero(1);
        small.up();
        small.constrain(1, 0, Bound::le(2));
        small.canonicalize();
        let mut big = Dbm::zero(1);
        big.up();
        big.constrain(1, 0, Bound::le(5));
        big.canonicalize();
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
        assert!(big.includes(&big));
    }

    #[test]
    fn extrapolation_widens_beyond_the_max_constant() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain(0, 1, Bound::le(-50)); // x1 >= 50
        z.constrain(1, 0, Bound::le(80));
        z.canonicalize();
        z.extrapolate(&[0, 10]);
        // Upper bound 80 > 10 widens away; lower bound 50 clamps to > 10.
        assert!(z.get(1, 0).is_inf());
        assert_eq!(z.get(0, 1), Bound::lt(-10));
    }
}
