//! Interning of discrete state keys.
//!
//! The zone engine's passed list is keyed by the *discrete* part of a
//! symbolic state (location vector + observer pair states). Hashing and
//! cloning those vectors for every passed-list touch is pure overhead:
//! each shard of the engine therefore interns the keys it owns into
//! dense `u32` ids — the sharded concurrent interner is the collection
//! of per-shard [`Interner`]s, with the engine's content-defined shard
//! hash routing each key to its owning shard (so no cross-shard
//! coordination is ever needed, mirroring the passed list itself).
//!
//! Determinism: ids are handed out in first-intern order, and the
//! engine only interns during its content-ordered admission phase, so
//! the id assignment — like everything else about the search — is
//! identical for every worker count. Nothing orders on ids anyway;
//! they are addresses, not keys.

use std::collections::HashMap;
use std::hash::Hash;

/// One shard's key interner: a `key → u32` table where the key is
/// stored exactly once and ids are handed out densely in first-intern
/// order (so callers can index parallel side tables — the engine's
/// per-key subsumption buckets — by id).
pub struct Interner<K> {
    index: HashMap<K, u32>,
}

impl<K: Clone + Eq + Hash> Interner<K> {
    /// An empty interner.
    pub fn new() -> Interner<K> {
        Interner {
            index: HashMap::new(),
        }
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The id of `key` if it is already interned (no clone, no insert).
    pub fn get(&self, key: &K) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// Interns `key`, cloning it only on first sight, and returns
    /// `(id, freshly_inserted)`.
    pub fn intern(&mut self, key: &K) -> (u32, bool) {
        if let Some(&id) = self.index.get(key) {
            return (id, false);
        }
        let id = self.index.len() as u32;
        self.index.insert(key.clone(), id);
        (id, true)
    }

    /// Every interned `(key, id)` pair, in arbitrary (hash-map) order.
    /// Callers that need determinism — the passed-list artifact capture
    /// — sort the pairs by id, which is first-intern order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u32)> {
        self.index.iter().map(|(k, &id)| (k, id))
    }
}

impl<K: Clone + Eq + Hash> Default for Interner<K> {
    fn default() -> Interner<K> {
        Interner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i: Interner<Vec<u32>> = Interner::new();
        assert!(i.is_empty());
        let (a, fresh_a) = i.intern(&vec![1, 2]);
        let (b, fresh_b) = i.intern(&vec![3]);
        let (a2, fresh_a2) = i.intern(&vec![1, 2]);
        assert_eq!((a, fresh_a), (0, true));
        assert_eq!((b, fresh_b), (1, true));
        assert_eq!((a2, fresh_a2), (0, false));
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(&vec![3]), Some(1));
        assert_eq!(i.get(&vec![9]), None);
    }
}
