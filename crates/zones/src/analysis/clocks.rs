//! Global clock reduction: unused-clock dropping and duplicate-clock
//! merging, in the style of Reveaal's clock-reduction pass.
//!
//! Two sound rules, both evaluated over the *live* structure only
//! (reads in unreachable locations or on dead edges do not count — see
//! [`NetReachability`]):
//!
//! * **Unused**: a clock no reachable guard or invariant reads can be
//!   dropped outright; its resets are no-ops on observable behaviour.
//! * **Duplicate**: two clocks reset by exactly the same live edges to
//!   the same values (and both starting at 0) hold the same value in
//!   every reachable configuration, forever — one DBM dimension
//!   suffices for the whole equivalence class. In particular, clocks
//!   that are never reset are all equal to global time and collapse to
//!   one.
//!
//! The result is a clock map for [`TaNetwork::apply_clock_map`] plus a
//! `Dbm`-shaped index vector for [`crate::dbm::Dbm::remap`].

use super::reachable::NetReachability;
use crate::ta::TaNetwork;

/// A computed clock reduction: which clocks survive and where they go.
#[derive(Clone, Debug)]
pub struct ClockReduction {
    /// Old 1-based clock index → new 1-based index (`None` = dropped).
    /// Entry 0 is the DBM reference and always maps to 0. Feed to
    /// [`TaNetwork::apply_clock_map`].
    pub map: Vec<Option<usize>>,
    /// `kept[r - 1]` — the old index whose name new clock `r` keeps
    /// (the lowest-indexed member of its equivalence class).
    pub kept: Vec<usize>,
    /// Old indices dropped as never-read.
    pub dropped: Vec<usize>,
    /// `(duplicate, representative)` old-index pairs merged.
    pub merged: Vec<(usize, usize)>,
}

impl ClockReduction {
    /// Computes the reduction for `net` under `reach`.
    pub fn compute(net: &TaNetwork, reach: &NetReachability) -> ClockReduction {
        let n = net.clock_count();
        // Read sites over live structure.
        let mut read = vec![false; n + 1];
        for (ai, aut) in net.automata.iter().enumerate() {
            for (li, loc) in aut.locations.iter().enumerate() {
                if reach.reachable[ai][li] {
                    for a in &loc.invariant {
                        read[a.clock] = true;
                    }
                }
            }
            for (_, e) in reach.live_edges(net, ai) {
                for a in &e.guard {
                    read[a.clock] = true;
                }
            }
        }

        // Reset signature per clock: the sorted list of live reset
        // sites `(automaton, edge, value)`. Clocks with identical
        // signatures are reset together to equal values and never
        // diverge (all clocks start at 0).
        let mut sig: Vec<Vec<(usize, usize, i64)>> = vec![Vec::new(); n + 1];
        for (ai, _) in net.automata.iter().enumerate() {
            for (eid, e) in reach.live_edges(net, ai) {
                for &(c, v) in &e.resets {
                    sig[c].push((ai, eid, v));
                }
            }
        }
        for s in &mut sig {
            s.sort_unstable();
        }

        let mut map: Vec<Option<usize>> = vec![None; n + 1];
        map[0] = Some(0);
        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        let mut merged = Vec::new();
        for c in 1..=n {
            if !read[c] {
                dropped.push(c);
                continue;
            }
            // Lowest-indexed read clock with the same signature is the
            // representative of c's class.
            match (1..c).find(|&r| read[r] && sig[r] == sig[c]) {
                Some(rep) => {
                    merged.push((c, rep));
                    map[c] = map[rep];
                }
                None => {
                    kept.push(c);
                    map[c] = Some(kept.len());
                }
            }
        }

        ClockReduction {
            map,
            kept,
            dropped,
            merged,
        }
    }

    /// `true` when the reduction changes nothing (every clock kept,
    /// none merged).
    pub fn is_identity(&self) -> bool {
        self.dropped.is_empty() && self.merged.is_empty()
    }

    /// Applies the reduction, producing the network the engine
    /// explores. A no-op clone when [`ClockReduction::is_identity`].
    pub fn apply(&self, net: &TaNetwork) -> TaNetwork {
        net.apply_clock_map(&self.map)
    }

    /// The `from` vector for [`crate::dbm::Dbm::remap`]: maps a
    /// reduced-space DBM index to the original-space index it reads
    /// (`[0, kept...]`). Remapping a full-space zone through this
    /// projects it into the reduced clock space.
    pub fn dbm_from(&self) -> Vec<usize> {
        std::iter::once(0)
            .chain(self.kept.iter().copied())
            .collect()
    }
}
