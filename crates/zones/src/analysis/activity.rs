//! Per-location clock activity masks (UPPAAL-style active-clock
//! reduction), generalizing the observer-clock freeing the engine
//! already does via [`crate::monitor::Monitor::reduce_activity`] to
//! the network's own clocks.
//!
//! A clock is **live** at a location if some run from there reaches a
//! read of it (guard or invariant) with no intervening reset; dead
//! otherwise. The backward dataflow is per automaton: lowered clocks
//! are automaton-local (each hybrid automaton reads and resets only
//! its own clocks), which the computation *verifies* rather than
//! assumes — a clock touched by more than one automaton is
//! conservatively owned by none and never masked.
//!
//! Freeing a dead clock ([`crate::dbm::Dbm::free`]) never changes the
//! value any future guard, invariant, or observer constraint sees: the
//! clock is reset before its next read, and `free` only relaxes the
//! freed row/column of a canonical DBM, leaving the live-clock and
//! observer projections untouched. That is the whole soundness
//! argument for verdict preservation, and it is what lets zones that
//! differ only in dead-clock history collapse in the passed list.

use super::reachable::NetReachability;
use crate::ta::TaNetwork;

/// Per-(automaton, location) dead-clock bitmasks over a network's
/// clock space (the **reduced** space when computed from a reduced
/// network).
#[derive(Clone, Debug)]
pub struct ActivityMasks {
    /// `dead[ai][loc]` — bit `c - 1` set ⇔ clock `c` (1-based) is
    /// owned by automaton `ai` and dead at `loc`. Masks of the
    /// automata a state occupies OR together into the state's full
    /// dead set.
    pub dead: Vec<Vec<u64>>,
    /// Clock count the masks cover. `0` disables masking (more than 64
    /// clocks, which the lowering never produces).
    pub clocks: usize,
    /// Clocks owned by no single automaton (never masked).
    pub shared: usize,
}

impl ActivityMasks {
    /// Computes masks for `net` under `reach`. Unreachable locations
    /// keep an all-zero mask (they are never occupied).
    pub fn compute(net: &TaNetwork, reach: &NetReachability) -> ActivityMasks {
        let n = net.clock_count();
        if n > 64 {
            return ActivityMasks {
                dead: net
                    .automata
                    .iter()
                    .map(|a| vec![0; a.locations.len()])
                    .collect(),
                clocks: 0,
                shared: n,
            };
        }

        // Ownership: the unique automaton that reads or resets the
        // clock anywhere (live or dead structure — dead sites still
        // witness which component the clock belongs to).
        let mut owner: Vec<Option<usize>> = vec![None; n + 1];
        let mut shared = vec![false; n + 1];
        let mut touch = |c: usize, ai: usize, owner: &mut Vec<Option<usize>>| match owner[c] {
            None => owner[c] = Some(ai),
            Some(o) if o != ai => shared[c] = true,
            _ => {}
        };
        for (ai, aut) in net.automata.iter().enumerate() {
            for loc in &aut.locations {
                for a in &loc.invariant {
                    touch(a.clock, ai, &mut owner);
                }
            }
            for e in &aut.edges {
                for a in &e.guard {
                    touch(a.clock, ai, &mut owner);
                }
                for &(c, _) in &e.resets {
                    touch(c, ai, &mut owner);
                }
            }
        }
        let owned_bit = |c: usize, ai: usize| -> u64 {
            (owner[c] == Some(ai) && !shared[c]) as u64 * (1u64 << (c - 1))
        };

        // Backward liveness per automaton over the live structure:
        //   live(L) = reads(inv L) ∪ ⋃_{e: L→M live} reads(guard e) ∪ (live(M) \ resets(e))
        // iterated to fixpoint (the graphs are tiny).
        let mut dead = Vec::with_capacity(net.automata.len());
        for (ai, aut) in net.automata.iter().enumerate() {
            let mut live = vec![0u64; aut.locations.len()];
            let mut owned_here = 0u64;
            for c in 1..=n {
                owned_here |= owned_bit(c, ai);
            }
            loop {
                let mut changed = false;
                for (li, loc) in aut.locations.iter().enumerate() {
                    if !reach.reachable[ai][li] {
                        continue;
                    }
                    let mut l = live[li];
                    for a in &loc.invariant {
                        l |= owned_bit(a.clock, ai);
                    }
                    for (eid, e) in aut.edges_from(li) {
                        if reach.dead_edge[ai][eid] {
                            continue;
                        }
                        for a in &e.guard {
                            l |= owned_bit(a.clock, ai);
                        }
                        let mut succ = live[e.dst];
                        for &(c, _) in &e.resets {
                            succ &= !owned_bit(c, ai);
                        }
                        l |= succ;
                    }
                    if l != live[li] {
                        live[li] = l;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            dead.push(
                aut.locations
                    .iter()
                    .enumerate()
                    .map(|(li, _)| {
                        if reach.reachable[ai][li] {
                            owned_here & !live[li]
                        } else {
                            0
                        }
                    })
                    .collect(),
            );
        }

        ActivityMasks {
            dead,
            clocks: n,
            shared: shared.iter().filter(|s| **s).count(),
        }
    }

    /// `true` if no location ever has a dead owned clock (masking would
    /// be a no-op).
    pub fn is_trivial(&self) -> bool {
        self.dead.iter().all(|locs| locs.iter().all(|m| *m == 0))
    }

    /// The dead-clock mask of a product state occupying `locs`
    /// (`locs[ai]` is automaton `ai`'s location index).
    pub fn dead_mask(&self, locs: &[u32]) -> u64 {
        locs.iter()
            .enumerate()
            .map(|(ai, &l)| self.dead[ai][l as usize])
            .fold(0, |acc, m| acc | m)
    }
}
