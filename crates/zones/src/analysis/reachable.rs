//! Discrete-graph reachability with event support.
//!
//! The clock reduction and the lint pass both need to know which
//! locations and edges can ever participate in a run. This module
//! computes a sound **over-approximation** of per-automaton
//! reachability: an edge is assumed fireable whenever its guard is
//! statically satisfiable and its trigger can occur — spontaneous and
//! external edges always can; reliable/lossy receives only if some
//! live edge in the network emits the event. "Unreachable" verdicts
//! from an over-approximation are definitive, which is what both
//! consumers require (a clock read in an unreachable location really
//! is unread; an unreachable location really is dead model text).

use crate::ta::{Atom, Rel, Sync, TaNetwork};
use pte_hybrid::Root;
use std::collections::HashSet;

/// Per-automaton discrete reachability and dead-edge classification.
#[derive(Clone, Debug)]
pub struct NetReachability {
    /// `reachable[ai][loc]` — location may be entered in some run.
    pub reachable: Vec<Vec<bool>>,
    /// `unsat_guard[ai][eid]` — the edge's guard is statically
    /// unsatisfiable (self-contradictory constant bounds, or
    /// contradicting the source invariant it must fire under).
    pub unsat_guard: Vec<Vec<bool>>,
    /// `dead_edge[ai][eid]` — the edge can never fire: unsatisfiable
    /// guard, unreachable source, or a receive of an event no live
    /// edge emits.
    pub dead_edge: Vec<Vec<bool>>,
    /// Event roots emitted by at least one live (non-dead) edge.
    pub emitted: HashSet<Root>,
}

/// Folds conjunctive atoms over one clock into a `(lower, upper)`
/// bound pair and reports whether the conjunction has a satisfying
/// value. Bounds are `(ticks, strict)`.
#[derive(Clone, Copy)]
struct Interval {
    lo: (i64, bool),
    hi: Option<(i64, bool)>,
}

impl Interval {
    fn new() -> Interval {
        // Clocks are non-negative: implicit `x ≥ 0`.
        Interval {
            lo: (0, false),
            hi: None,
        }
    }

    fn add(&mut self, a: &Atom) {
        match a.rel {
            Rel::Ge => self.lo = self.lo.max((a.ticks, false)),
            Rel::Gt => self.lo = self.lo.max((a.ticks, true)),
            Rel::Le => {
                let b = (a.ticks, false);
                self.hi = Some(self.hi.map_or(b, |h| h.min(b)));
            }
            Rel::Lt => {
                // A strict upper `< c` is tighter than `≤ c`: order by
                // (ticks, !strict) so `< c` sorts below `≤ c`.
                let b = (a.ticks, true);
                self.hi = Some(
                    self.hi
                        .map_or(b, |h| if (b.0, !b.1) < (h.0, !h.1) { b } else { h }),
                );
            }
        }
    }

    fn is_empty(&self) -> bool {
        match self.hi {
            None => false,
            Some((hi, hi_strict)) => {
                let (lo, lo_strict) = self.lo;
                hi < lo || (hi == lo && (hi_strict || lo_strict))
            }
        }
    }
}

/// `true` if the conjunction of `sets` of atoms admits some valuation —
/// checked clock-by-clock (conjunctive constant bounds have no
/// cross-clock interaction).
pub(crate) fn atoms_satisfiable(sets: &[&[Atom]]) -> bool {
    let mut clocks: Vec<usize> = sets
        .iter()
        .flat_map(|s| s.iter().map(|a| a.clock))
        .collect();
    clocks.sort_unstable();
    clocks.dedup();
    for c in clocks {
        let mut iv = Interval::new();
        for s in sets {
            for a in s.iter().filter(|a| a.clock == c) {
                iv.add(a);
            }
        }
        if iv.is_empty() {
            return false;
        }
    }
    true
}

impl NetReachability {
    /// Computes reachability for `net` (see module docs for the
    /// approximation direction).
    pub fn compute(net: &TaNetwork) -> NetReachability {
        // Static guard satisfiability. A guard fires *while the source
        // invariant still holds*, so `guard ∧ src-invariant` must be
        // satisfiable for the edge to be anything but dead.
        let unsat_guard: Vec<Vec<bool>> = net
            .automata
            .iter()
            .map(|aut| {
                aut.edges
                    .iter()
                    .map(|e| {
                        !atoms_satisfiable(&[
                            e.guard.as_slice(),
                            aut.locations[e.src].invariant.as_slice(),
                        ])
                    })
                    .collect()
            })
            .collect();

        // Optimistic start: every syntactically emitted root counts,
        // then shrink to roots emitted by live edges until stable.
        // Each iterate stays an over-approximation, so the limit is
        // still sound for "unreachable" verdicts.
        let mut emitted: HashSet<Root> = net
            .automata
            .iter()
            .flat_map(|a| a.edges.iter())
            .flat_map(|e| e.emits.iter().cloned())
            .collect();
        let mut reachable: Vec<Vec<bool>>;
        loop {
            reachable = net
                .automata
                .iter()
                .enumerate()
                .map(|(ai, aut)| {
                    let mut seen = vec![false; aut.locations.len()];
                    let mut stack = vec![aut.initial];
                    seen[aut.initial] = true;
                    while let Some(l) = stack.pop() {
                        for (eid, e) in aut.edges_from(l) {
                            if unsat_guard[ai][eid] || !sync_possible(&e.sync, &emitted) {
                                continue;
                            }
                            if !seen[e.dst] {
                                seen[e.dst] = true;
                                stack.push(e.dst);
                            }
                        }
                    }
                    seen
                })
                .collect();
            let mut next: HashSet<Root> = HashSet::new();
            for (ai, aut) in net.automata.iter().enumerate() {
                for (eid, e) in aut.edges.iter().enumerate() {
                    if reachable[ai][e.src]
                        && !unsat_guard[ai][eid]
                        && sync_possible(&e.sync, &emitted)
                    {
                        next.extend(e.emits.iter().cloned());
                    }
                }
            }
            if next == emitted {
                break;
            }
            emitted = next;
        }

        let dead_edge: Vec<Vec<bool>> = net
            .automata
            .iter()
            .enumerate()
            .map(|(ai, aut)| {
                aut.edges
                    .iter()
                    .enumerate()
                    .map(|(eid, e)| {
                        unsat_guard[ai][eid]
                            || !reachable[ai][e.src]
                            || !sync_possible(&e.sync, &emitted)
                    })
                    .collect()
            })
            .collect();

        NetReachability {
            reachable,
            unsat_guard,
            dead_edge,
            emitted,
        }
    }

    /// Iterates the live (non-dead) edges of automaton `ai`.
    pub(crate) fn live_edges<'n>(
        &'n self,
        net: &'n TaNetwork,
        ai: usize,
    ) -> impl Iterator<Item = (usize, &'n crate::ta::TaEdge)> + 'n {
        net.automata[ai]
            .edges
            .iter()
            .enumerate()
            .filter(move |(eid, _)| !self.dead_edge[ai][*eid])
    }
}

/// Whether an edge's trigger can ever occur, given the set of roots
/// emitted by live edges.
fn sync_possible(sync: &Sync, emitted: &HashSet<Root>) -> bool {
    match sync {
        Sync::None | Sync::External(_) => true,
        Sync::Reliable(r) | Sync::Lossy(r) => emitted.contains(r),
    }
}
