//! Static model analysis over lowered [`TaNetwork`]s.
//!
//! Runs once per model, after [`crate::lower::lower_network`] and
//! before [`crate::reach::check`], and produces three artifacts:
//!
//! 1. **Clock reduction** ([`ClockReduction`], the Reveaal/ECDAR pass):
//!    clocks never read by any reachable guard or invariant are
//!    dropped, and clocks that are provably equal forever — reset by
//!    exactly the same live edges to the same values, hence never
//!    diverging — are merged onto one representative. The result is an
//!    index remapping ([`TaNetwork::apply_clock_map`]) that shrinks the
//!    DBM dimension the engine pays O(k²)–O(k³) for.
//! 2. **Activity masks** ([`ActivityMasks`], UPPAAL's active-clock
//!    reduction): a backward liveness dataflow per automaton computes,
//!    for every location, which of the automaton's clocks may still be
//!    read before their next reset. The engine frees dead clocks per
//!    state ([`crate::dbm::Dbm::free`]), collapsing zones that differ
//!    only in dead-clock history.
//! 3. **Lint diagnostics** ([`lint::Diagnostic`]): unreachable
//!    locations, statically unsatisfiable guards, dead edges,
//!    receiver-less sends, and registers folded to constants —
//!    surfaced by the `pte-lint` binary and attached to verification
//!    reports.
//!
//! Soundness contract: every transformation here preserves the
//! verdict of the reachability check bit-for-bit. Dropped clocks are
//! unread, merged clocks are equal in every reachable valuation, and
//! freed clocks are dead (unread before their next reset), so no
//! guard, invariant, or observer constraint ever sees a different
//! value. Counter-example *traces* are additionally pinned by the
//! engine itself: [`crate::reach::check`] re-derives any violation
//! with the reduction disabled, so witness text is identical by
//! construction (see `Limits::reduce_clocks`).
//!
//! On the paper's own chain models the honest finding is that the
//! **global** pass reduces nothing: during the innermost nested lease
//! every supervisor stage timer `g_k`, the phase clock `c`, and every
//! device clock are simultaneously live — the pattern's concurrency is
//! exactly what the paper verifies. The measured win on chains comes
//! from the *per-location* masks (device clocks are dead in
//! `Fall-Back`, stage timers before their grant), while the global
//! pass pays off on models with genuinely redundant clocks (the lint
//! fixtures and proptest-generated networks exercise both).

mod activity;
mod clocks;
pub mod lint;
mod reachable;

pub use activity::ActivityMasks;
pub use clocks::ClockReduction;
pub use lint::{apply_allowlist, pattern_allowlist, AllowRule, Diagnostic, Severity};
pub use reachable::NetReachability;

use crate::ta::TaNetwork;

/// Everything the static analysis learned about one lowered network.
#[derive(Clone, Debug)]
pub struct ModelAnalysis {
    /// Discrete reachability / dead-edge classification.
    pub reachability: NetReachability,
    /// The global clock reduction (identity when nothing is redundant).
    pub reduction: ClockReduction,
    /// Per-(automaton, location) dead-clock masks **over the reduced
    /// clock space** (the space the engine explores when the reduction
    /// is enabled).
    pub activity: ActivityMasks,
    /// Structured lint findings, in deterministic model order.
    pub diagnostics: Vec<Diagnostic>,
}

/// Compact numeric summary of a [`ModelAnalysis`], sized for
/// verification reports and bench records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Network clocks before the global reduction.
    pub clocks_before: usize,
    /// Network clocks after dropping/merging.
    pub clocks_after: usize,
    /// Clocks dropped because nothing reachable reads them.
    pub clocks_dropped: usize,
    /// Clocks merged into an always-equal representative.
    pub clocks_merged: usize,
    /// Statically unreachable locations across all automata.
    pub locations_unreachable: usize,
    /// Lint findings with [`Severity::Error`].
    pub errors: usize,
    /// Lint findings with [`Severity::Warning`].
    pub warnings: usize,
    /// Lint findings with [`Severity::Info`].
    pub infos: usize,
}

impl ModelAnalysis {
    /// The numeric summary of this analysis.
    pub fn stats(&self) -> AnalysisStats {
        let (mut errors, mut warnings, mut infos) = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => infos += 1,
            }
        }
        AnalysisStats {
            clocks_before: self.reduction.map.len().saturating_sub(1),
            clocks_after: self.reduction.kept.len(),
            clocks_dropped: self.reduction.dropped.len(),
            clocks_merged: self.reduction.merged.len(),
            locations_unreachable: self
                .reachability
                .reachable
                .iter()
                .map(|locs| locs.iter().filter(|r| !**r).count())
                .sum(),
            errors,
            warnings,
            infos,
        }
    }

    /// `true` if any diagnostic is [`Severity::Error`] — the CI lint
    /// gate's failure condition.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Runs the full static analysis over a lowered network.
///
/// Deterministic: iteration is in model order everywhere, so the same
/// network always produces the same diagnostics, reduction, and masks.
pub fn analyze(net: &TaNetwork) -> ModelAnalysis {
    let reachability = NetReachability::compute(net);
    let reduction = ClockReduction::compute(net, &reachability);
    // Liveness runs over the *reduced* network (reads of merged clocks
    // land on their representative), reusing the reachability — the
    // discrete structure is untouched by the clock map.
    let reduced = reduction.apply(net);
    let activity = ActivityMasks::compute(&reduced, &reachability);
    let diagnostics = lint::lint(net, &reachability, &reduction);
    ModelAnalysis {
        reachability,
        reduction,
        activity,
        diagnostics,
    }
}
