//! Model lint: structured diagnostics over a lowered network.
//!
//! Each check is purely static and deterministic (model order), so a
//! given network always lints identically — the property the CI lint
//! gate relies on. Severity semantics:
//!
//! * [`Severity::Error`] — the model asks for something impossible
//!   (e.g. a statically unsatisfiable guard). The `pte-lint` binary
//!   and the CI gate fail on these.
//! * [`Severity::Warning`] — dead model text (unreachable locations,
//!   edges that can never fire or never complete). Often intentional
//!   fallout of register folding, but worth a look.
//! * [`Severity::Info`] — observations (receiver-less sends, registers
//!   folded to constants, clocks the reduction dropped or merged).

use super::clocks::ClockReduction;
use super::reachable::{atoms_satisfiable, NetReachability};
use crate::ta::{Atom, Rel, TaNetwork};
use std::collections::BTreeMap;
use std::fmt;

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An observation; nothing is wrong.
    Info,
    /// Dead or suspicious model text.
    Warning,
    /// A statically impossible construct.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable kebab-case check identifier (e.g. `unsat-guard`).
    pub code: &'static str,
    /// Owning automaton, when the finding is automaton-scoped.
    pub automaton: Option<String>,
    /// Location name or `edge #k: src -> dst` site description.
    pub site: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(a) = &self.automaton {
            write!(f, " {a}")?;
        }
        if let Some(s) = &self.site {
            write!(f, " at {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// An allowlist rule: `(code, needle)`. A [`Severity::Warning`]
/// diagnostic whose `code` matches and whose site **or** message
/// contains `needle` is *expected* — [`apply_allowlist`] downgrades it
/// to [`Severity::Info`] and marks the message. Errors are never
/// downgraded: an allowlist documents intentional dead model text, not
/// impossible constructs.
pub type AllowRule = (String, String);

/// The canonical allowlist for the lease-pattern models — every
/// warning here is intentional model text, documented at its source:
///
/// * `dead-edge` on `lease_deny` receives — the base pattern's
///   participation condition is `True`, so participants never emit
///   deny; the Supervisor's receive edges are deliberately present
///   (they become live under
///   `pte_core::pattern::PatternOptions { deny_capable: true }`).
/// * `unreachable-location` on `[approval_bad=1]` mode copies — the
///   register fold's location × mode product contains Lease-state
///   copies nothing assigns, because the only edges that set
///   `approval_bad = 1` leave the lease chain in the same step.
pub fn pattern_allowlist() -> Vec<AllowRule> {
    vec![
        ("dead-edge".to_string(), "lease_deny".to_string()),
        (
            "unreachable-location".to_string(),
            "[approval_bad=1]".to_string(),
        ),
    ]
}

/// Downgrades allowlisted warnings to [`Severity::Info`], appending
/// ` [allowlisted]` to the message so reports still show *why* the
/// finding is quiet. Returns how many diagnostics were downgraded.
/// Deterministic and idempotent (an already-downgraded finding is Info
/// and no longer matches).
pub fn apply_allowlist(diags: &mut [Diagnostic], rules: &[AllowRule]) -> usize {
    let mut downgraded = 0;
    for d in diags.iter_mut() {
        if d.severity != Severity::Warning {
            continue;
        }
        let hit = rules.iter().any(|(code, needle)| {
            d.code == code
                && (d.site.as_deref().is_some_and(|s| s.contains(needle))
                    || d.message.contains(needle))
        });
        if hit {
            d.severity = Severity::Info;
            d.message.push_str(" [allowlisted]");
            downgraded += 1;
        }
    }
    downgraded
}

/// Renders an edge site as `edge #k: src -> dst`.
fn edge_site(net: &TaNetwork, ai: usize, eid: usize) -> String {
    let aut = &net.automata[ai];
    let e = &aut.edges[eid];
    format!(
        "edge #{eid}: {} -> {}",
        aut.locations[e.src].name, aut.locations[e.dst].name
    )
}

/// Runs every lint check, in deterministic order.
pub fn lint(net: &TaNetwork, reach: &NetReachability, red: &ClockReduction) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    unreachable_locations(net, reach, &mut out);
    unsat_guards(net, reach, &mut out);
    dead_edges(net, reach, &mut out);
    no_receiver_sends(net, reach, &mut out);
    register_constants(net, reach, &mut out);
    reduced_clocks(net, red, &mut out);
    out
}

/// `unreachable-location` (warning): no run can enter the location.
/// Register folding routinely produces these (location × mode products
/// for mode values nothing assigns).
fn unreachable_locations(net: &TaNetwork, reach: &NetReachability, out: &mut Vec<Diagnostic>) {
    for (ai, aut) in net.automata.iter().enumerate() {
        for (li, loc) in aut.locations.iter().enumerate() {
            if !reach.reachable[ai][li] {
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "unreachable-location",
                    automaton: Some(aut.name.clone()),
                    site: Some(loc.name.clone()),
                    message: "location is unreachable in the discrete graph".to_string(),
                });
            }
        }
    }
}

/// `unsat-guard` (error): the guard contradicts itself or the source
/// invariant it must fire under — the edge asks for an impossible
/// transition.
fn unsat_guards(net: &TaNetwork, reach: &NetReachability, out: &mut Vec<Diagnostic>) {
    for (ai, aut) in net.automata.iter().enumerate() {
        for (eid, e) in aut.edges.iter().enumerate() {
            if reach.unsat_guard[ai][eid] {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    code: "unsat-guard",
                    automaton: Some(aut.name.clone()),
                    site: Some(edge_site(net, ai, eid)),
                    message: if atoms_satisfiable(&[e.guard.as_slice()]) {
                        "guard contradicts the source invariant".to_string()
                    } else {
                        "guard bounds are contradictory; the edge can never fire".to_string()
                    },
                });
            }
        }
    }
}

/// `dead-edge` (warning): the edge never fires for a reason other than
/// its own guard — a receive nothing emits, or a target whose
/// invariant rejects every post-reset valuation. (Edges from
/// unreachable sources are implied by `unreachable-location` and not
/// re-reported.)
fn dead_edges(net: &TaNetwork, reach: &NetReachability, out: &mut Vec<Diagnostic>) {
    for (ai, aut) in net.automata.iter().enumerate() {
        for (eid, e) in aut.edges.iter().enumerate() {
            if reach.unsat_guard[ai][eid] || !reach.reachable[ai][e.src] {
                continue;
            }
            if reach.dead_edge[ai][eid] {
                let root = e.sync.root().map(|r| r.as_str().to_string());
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "dead-edge",
                    automaton: Some(aut.name.clone()),
                    site: Some(edge_site(net, ai, eid)),
                    message: format!(
                        "receive of `{}` can never fire: no live edge emits it",
                        root.unwrap_or_default()
                    ),
                });
                continue;
            }
            // Fireable, but can the target be entered? Clocks the edge
            // resets enter the target at their reset value; the rest
            // must satisfy guard ∧ target invariant jointly.
            let reset_violates = aut.locations[e.dst].invariant.iter().any(|a| {
                e.resets
                    .iter()
                    .find(|(c, _)| *c == a.clock)
                    .is_some_and(|&(_, v)| !const_satisfies(v, a))
            });
            let unreset: Vec<Atom> = aut.locations[e.dst]
                .invariant
                .iter()
                .filter(|a| !e.resets.iter().any(|(c, _)| *c == a.clock))
                .copied()
                .collect();
            if reset_violates || !atoms_satisfiable(&[e.guard.as_slice(), unreset.as_slice()]) {
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "dead-edge",
                    automaton: Some(aut.name.clone()),
                    site: Some(edge_site(net, ai, eid)),
                    message: "target invariant rejects every valuation the edge produces"
                        .to_string(),
                });
            }
        }
    }
}

/// `v ⋈ ticks` for a constant clock value `v`.
fn const_satisfies(v: i64, a: &Atom) -> bool {
    match a.rel {
        Rel::Le => v <= a.ticks,
        Rel::Lt => v < a.ticks,
        Rel::Ge => v >= a.ticks,
        Rel::Gt => v > a.ticks,
    }
}

/// `no-receiver-send` (info): a live edge emits an event no automaton
/// has a receiving edge for — an output to the environment (plant
/// signals like `evt_to_stop_*`), or a wiring mistake.
fn no_receiver_sends(net: &TaNetwork, reach: &NetReachability, out: &mut Vec<Diagnostic>) {
    use std::collections::HashSet;
    let received: HashSet<&str> = net
        .automata
        .iter()
        .flat_map(|a| a.edges.iter())
        .filter_map(|e| e.sync.root().map(|r| r.as_str()))
        .collect();
    let mut reported: HashSet<&str> = HashSet::new();
    for (ai, aut) in net.automata.iter().enumerate() {
        for (_, e) in reach.live_edges(net, ai) {
            for r in &e.emits {
                if !received.contains(r.as_str()) && reported.insert(r.as_str()) {
                    out.push(Diagnostic {
                        severity: Severity::Info,
                        code: "no-receiver-send",
                        automaton: Some(aut.name.clone()),
                        site: None,
                        message: format!(
                            "emitted event `{}` has no receiver; treated as an environment output",
                            r.as_str()
                        ),
                    });
                }
            }
        }
    }
}

/// `register-constant` (info): the lowering folds hybrid registers
/// into location × mode products, naming locations `base [reg=val]`.
/// When every *reachable* location of an automaton agrees on one value
/// for a register, the register is constant in practice and its other
/// mode copies are dead weight.
fn register_constants(net: &TaNetwork, reach: &NetReachability, out: &mut Vec<Diagnostic>) {
    for (ai, aut) in net.automata.iter().enumerate() {
        // register -> (reachable values, total values) observed in names.
        let mut values: BTreeMap<String, (Vec<String>, usize)> = BTreeMap::new();
        for (li, loc) in aut.locations.iter().enumerate() {
            for (reg, val) in parse_mode_suffix(&loc.name) {
                let entry = values.entry(reg).or_default();
                entry.1 += 1;
                if reach.reachable[ai][li] && !entry.0.contains(&val) {
                    entry.0.push(val);
                }
            }
        }
        for (reg, (reachable_vals, total)) in values {
            if reachable_vals.len() == 1 && total > aut.locations.len() / 2 {
                out.push(Diagnostic {
                    severity: Severity::Info,
                    code: "register-constant",
                    automaton: Some(aut.name.clone()),
                    site: None,
                    message: format!(
                        "register `{reg}` holds the constant value {} in every reachable \
                         location; its other mode copies are unreachable",
                        reachable_vals[0]
                    ),
                });
            }
        }
    }
}

/// Parses the lowering's ` [reg=val,...]` location-name suffix.
fn parse_mode_suffix(name: &str) -> Vec<(String, String)> {
    let Some(open) = name.rfind(" [") else {
        return Vec::new();
    };
    let Some(inner) = name[open + 2..].strip_suffix(']') else {
        return Vec::new();
    };
    inner
        .split(',')
        .filter_map(|kv| {
            kv.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

/// `unread-clock` / `duplicate-clock` (info): what the global clock
/// reduction found.
fn reduced_clocks(net: &TaNetwork, red: &ClockReduction, out: &mut Vec<Diagnostic>) {
    for &c in &red.dropped {
        out.push(Diagnostic {
            severity: Severity::Info,
            code: "unread-clock",
            automaton: None,
            site: None,
            message: format!(
                "clock `{}` is never read by a reachable guard or invariant; \
                 the reduction drops it",
                net.clocks[c - 1]
            ),
        });
    }
    for &(dup, rep) in &red.merged {
        out.push(Diagnostic {
            severity: Severity::Info,
            code: "duplicate-clock",
            automaton: None,
            site: None,
            message: format!(
                "clock `{}` always equals `{}` (reset together by the same live edges); \
                 the reduction merges them",
                net.clocks[dup - 1],
                net.clocks[rep - 1]
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity, code: &'static str, site: &str, message: &str) -> Diagnostic {
        Diagnostic {
            severity,
            code,
            automaton: Some("supervisor".to_string()),
            site: Some(site.to_string()),
            message: message.to_string(),
        }
    }

    /// The allowlist downgrades matching warnings (by site or message),
    /// leaves errors and non-matching warnings alone, and is idempotent.
    #[test]
    fn allowlist_downgrades_only_matching_warnings() {
        let mut diags = vec![
            diag(
                Severity::Warning,
                "dead-edge",
                "edge #3: Lease xi1 -> Abort Lease xi1",
                "receive of `evt_xi1_to_xi0_lease_deny` can never fire: no live edge emits it",
            ),
            diag(
                Severity::Warning,
                "unreachable-location",
                "Lease xi1 [approval_bad=1]",
                "location is unreachable in the discrete graph",
            ),
            // Same code, different site/message: must survive.
            diag(
                Severity::Warning,
                "unreachable-location",
                "Orphan",
                "location is unreachable in the discrete graph",
            ),
            // Errors are never downgraded, even on a needle hit.
            diag(
                Severity::Error,
                "unsat-guard",
                "edge #9: L0 -> Fall-Back",
                "guard mentions lease_deny impossibly",
            ),
        ];
        let rules = pattern_allowlist();
        assert_eq!(apply_allowlist(&mut diags, &rules), 2);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.ends_with(" [allowlisted]"));
        assert_eq!(diags[1].severity, Severity::Info);
        assert_eq!(diags[2].severity, Severity::Warning);
        assert_eq!(diags[3].severity, Severity::Error);
        // Idempotent: a second pass finds nothing left to downgrade.
        assert_eq!(apply_allowlist(&mut diags, &rules), 0);
        assert!(!diags[0].message.ends_with("[allowlisted] [allowlisted]"));
    }
}
