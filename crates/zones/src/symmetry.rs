//! Device-permutation symmetry: detection and orbit canonicalization.
//!
//! A [`TaNetwork`] built from N interchangeable devices reaches every
//! interleaving of their behaviours once per device permutation — the
//! passed list stores `N!` copies of what is semantically one state.
//! This module detects when a network really is invariant under
//! permuting a set of member automata and gives the engine a canonical
//! representative per orbit, so the passed list stores one.
//!
//! ## Detection ([`detect`])
//!
//! Detection is **structural and sound-by-construction**: a group of
//! automata is reported symmetric only when the whole network is
//! literally invariant under every transposition of its members. Two
//! automata unify when they have identical location/edge structure —
//! same source/destination indices, guard/invariant atoms (relation
//! *and* tick constants), reset values, urgency, frozen/risky flags,
//! synchronization kinds, and initial location — up to a consistent
//! bijection of their **owned clocks** (clocks referenced by no other
//! automaton). Everything else must be fixed pointwise:
//!
//! * event roots must match exactly (members may share broadcast
//!   events, but per-member *private* event names defeat detection);
//! * clocks referenced by more than one automaton must appear
//!   identically in both members.
//!
//! Because the clock bijection only touches clocks no third automaton
//! references and roots are fixed, invariance of the member pair
//! implies invariance of the whole network — no graph-isomorphism
//! search, no unsound "looks similar" heuristics. The price is that
//! detection is conservative: the lease chains of
//! `LeaseConfig::chain(n)` are reported **asymmetric**, and that is
//! correct — condition c6 forces strictly decreasing nested run
//! budgets, so participant `i` and participant `j` have different
//! guard constants and genuinely different behaviour (the same honest
//! outcome PR 7 reached for clock reduction: chains are globally
//! clock-irreducible). The quotient win shows up on fleets of
//! *identical* devices — see [`demo_fleet`].
//!
//! ## Canonicalization ([`Symmetry::canonicalize`])
//!
//! The engine calls [`Symmetry::canonicalize`] on every cooked state
//! before interning. Members of each group are stably sorted by a
//! permutation-invariant signature — their location index, then the
//! zone's bounds on their owned clocks against the reference clock and
//! among themselves — and the matching clock permutation is applied to
//! the zone ([`Dbm::remap`]). Applying *any* group element to a state
//! is sound (the network, the activity masks, and the monitor are all
//! invariant, so it maps reachable states to reachable states and
//! violations to violations), and the sort keys are themselves
//! invariant under permuting the *other* members, so the map is
//! idempotent and deterministic — a pure function of the state,
//! independent of worker count or scheduling.
//!
//! The canonical form is a **heuristic quotient**: states that differ
//! only in cross-member clock differences can tie on the signature and
//! remain distinct representatives of one orbit. That only costs
//! compression, never soundness — exact orbit canonicalization of a
//! zone is graph-canonization-hard, and the location-vector collapse
//! alone removes the `N!` interleaving blowup that dominates.

use crate::analysis::ActivityMasks;
use crate::dbm::{Bound, Dbm};
use crate::ta::{Sync, TaAutomaton, TaEdge, TaLocation, TaNetwork};
use pte_hybrid::Root;
use std::collections::HashMap;

/// Owned-clock bijection under construction (forward or reverse image).
type ClockMap = HashMap<usize, usize>;

/// The clock-pair unifier threaded through the guard/invariant/reset
/// walks of [`unify`].
type ClockUnifier<'c> = dyn FnMut(usize, usize, &mut ClockMap, &mut ClockMap) -> bool + 'c;

/// One interchangeable-device group: member automata plus their owned
/// clocks in a consistent per-member order.
#[derive(Clone, Debug)]
pub struct SymGroup {
    /// Automaton indices of the interchangeable members (≥ 2).
    pub members: Vec<usize>,
    /// `clocks[p][k]` — the k-th owned clock (1-based global index) of
    /// `members[p]`. Lists are parallel across members: swapping
    /// members `p` and `q` swaps `clocks[p][k]` with `clocks[q][k]`
    /// for every `k`.
    pub clocks: Vec<Vec<usize>>,
}

impl SymGroup {
    /// `true` when the per-location activity masks are invariant under
    /// this group: member `p`'s dead mask at each location, with its
    /// owned clocks renamed to member `q`'s, equals member `q`'s mask
    /// at the same location. The engine requires this before combining
    /// the quotient with mask-based clock freeing — a mask that
    /// distinguishes members would make canonicalization unsound.
    pub fn masks_invariant(&self, masks: &ActivityMasks) -> bool {
        if masks.clocks == 0 {
            return true;
        }
        let anchor = self.members[0];
        (1..self.members.len()).all(|p| {
            let m = self.members[p];
            masks.dead[anchor]
                .iter()
                .zip(&masks.dead[m])
                .all(|(&mask_a, &mask_m)| {
                    let mut mapped = mask_a;
                    for (k, &ca) in self.clocks[0].iter().enumerate() {
                        let (ba, bm) = (1u64 << (ca - 1), 1u64 << (self.clocks[p][k] - 1));
                        mapped &= !ba;
                        if mask_a & ba != 0 {
                            mapped |= bm;
                        }
                    }
                    mapped == mask_m
                })
        })
    }

    /// `true` when the extrapolation bound vectors assign the same
    /// constant to corresponding owned clocks of every member — an
    /// invariant detection already guarantees for network-derived
    /// bounds, re-checked here because monitors fold their own
    /// constants in afterwards.
    pub fn bounds_uniform(&self, kmax: &[i64], lower: &[i64], upper: &[i64]) -> bool {
        (1..self.members.len()).all(|p| {
            self.clocks[0]
                .iter()
                .zip(&self.clocks[p])
                .all(|(&ca, &cm)| {
                    kmax[ca] == kmax[cm] && lower[ca] == lower[cm] && upper[ca] == upper[cm]
                })
        })
    }
}

/// The device-permutation symmetry of a network: zero or more disjoint
/// interchangeable-device groups (see the module docs for what
/// qualifies). Obtain one with [`detect`] or
/// [`TaNetwork::symmetry`](crate::ta::TaNetwork::symmetry).
#[derive(Clone, Debug, Default)]
pub struct Symmetry {
    /// Disjoint groups of interchangeable automata.
    pub groups: Vec<SymGroup>,
}

impl Symmetry {
    /// `true` when no interchangeable group was found — the quotient
    /// is a no-op and the engine skips it entirely.
    pub fn is_trivial(&self) -> bool {
        self.groups.is_empty()
    }

    /// Product of the group orders (`∏ |members|!`) — the worst-case
    /// orbit size, i.e. the factor by which the quotient can shrink
    /// the discrete state space.
    pub fn order(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| (1..=g.members.len()).map(|k| k as f64).product::<f64>())
            .product()
    }

    /// [`SymGroup::masks_invariant`] over every group.
    pub fn masks_invariant(&self, masks: &ActivityMasks) -> bool {
        self.groups.iter().all(|g| g.masks_invariant(masks))
    }

    /// [`SymGroup::bounds_uniform`] over every group.
    pub fn bounds_uniform(&self, kmax: &[i64], lower: &[i64], upper: &[i64]) -> bool {
        self.groups
            .iter()
            .all(|g| g.bounds_uniform(kmax, lower, upper))
    }

    /// Rewrites `(locs, zone)` to the canonical representative of its
    /// orbit: stably sorts each group's members by the
    /// permutation-invariant signature described in the module docs and
    /// permutes the owned clocks of the zone to match. Returns the
    /// remapped zone when anything moved, `None` when the state was
    /// already canonical (the common case — zones are untouched then).
    pub fn canonicalize(&self, locs: &mut [u32], zone: &Dbm) -> Option<Dbm> {
        let mut from: Vec<usize> = (0..=zone.clocks()).collect();
        let mut changed = false;
        for g in &self.groups {
            let n = g.members.len();
            // Signature of member p: location, then the zone's bounds
            // on p's owned clocks vs the reference and among
            // themselves — all invariant under permuting the *other*
            // members, which is what makes the sort idempotent.
            let sig = |p: usize| -> (u32, Vec<Bound>) {
                let cs = &g.clocks[p];
                let mut bounds = Vec::with_capacity(cs.len() * (cs.len() + 1));
                for &c in cs {
                    bounds.push(zone.get(c, 0));
                    bounds.push(zone.get(0, c));
                }
                for &ci in cs {
                    for &cj in cs {
                        if ci != cj {
                            bounds.push(zone.get(ci, cj));
                        }
                    }
                }
                (locs[g.members[p]], bounds)
            };
            let sigs: Vec<(u32, Vec<Bound>)> = (0..n).map(sig).collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
            if order.iter().enumerate().all(|(p, &o)| p == o) {
                continue;
            }
            changed = true;
            let old_locs: Vec<u32> = g.members.iter().map(|&m| locs[m]).collect();
            for (p, &m) in g.members.iter().enumerate() {
                locs[m] = old_locs[order[p]];
            }
            for (p, &o) in order.iter().enumerate() {
                for (k, &c) in g.clocks[p].iter().enumerate() {
                    from[c] = g.clocks[o][k];
                }
            }
        }
        changed.then(|| zone.remap(&from))
    }
}

/// Clock ownership over a network: `owned[c]` is `Some(ai)` when
/// automaton `ai` is the only automaton whose guards, invariants, or
/// resets reference clock `c` (1-based; `owned[0]` is `None`).
fn clock_owners(net: &TaNetwork) -> Vec<Option<usize>> {
    let n = net.clock_count();
    let mut owner: Vec<Option<usize>> = vec![None; n + 1];
    let mut shared = vec![false; n + 1];
    let mut touch = |c: usize, ai: usize, owner: &mut Vec<Option<usize>>| match owner[c] {
        None => owner[c] = Some(ai),
        Some(o) if o != ai => shared[c] = true,
        _ => {}
    };
    for (ai, aut) in net.automata.iter().enumerate() {
        for loc in &aut.locations {
            for a in &loc.invariant {
                touch(a.clock, ai, &mut owner);
            }
        }
        for e in &aut.edges {
            for a in &e.guard {
                touch(a.clock, ai, &mut owner);
            }
            for &(c, _) in &e.resets {
                touch(c, ai, &mut owner);
            }
        }
    }
    owner
        .into_iter()
        .enumerate()
        .map(|(c, o)| o.filter(|_| !shared[c]))
        .collect()
}

/// Attempts to unify automaton `b` with automaton `a` under a
/// bijection of their owned clocks (identity on everything else).
/// Returns `a`'s owned clocks in first-reference order paired with
/// their images in `b`, or `None` when the automata differ
/// structurally.
fn unify(
    net: &TaNetwork,
    a: usize,
    b: usize,
    owned: &[Option<usize>],
) -> Option<Vec<(usize, usize)>> {
    let (aa, ab): (&TaAutomaton, &TaAutomaton) = (&net.automata[a], &net.automata[b]);
    if aa.locations.len() != ab.locations.len()
        || aa.edges.len() != ab.edges.len()
        || aa.initial != ab.initial
    {
        return None;
    }
    let mut fwd: HashMap<usize, usize> = HashMap::new();
    let mut rev: HashMap<usize, usize> = HashMap::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut unify_clock =
        |ca: usize, cb: usize, fwd: &mut HashMap<usize, usize>, rev: &mut HashMap<usize, usize>| {
            let (oa, ob) = (owned[ca] == Some(a), owned[cb] == Some(b));
            if oa != ob {
                return false;
            }
            if !oa {
                // Shared (or third-party) clocks must be fixed pointwise.
                return ca == cb;
            }
            match (fwd.get(&ca), rev.get(&cb)) {
                (None, None) => {
                    fwd.insert(ca, cb);
                    rev.insert(cb, ca);
                    pairs.push((ca, cb));
                    true
                }
                (Some(&prev_b), Some(&prev_a)) => prev_b == cb && prev_a == ca,
                _ => false,
            }
        };
    let unify_atoms = |ga: &[crate::ta::Atom],
                       gb: &[crate::ta::Atom],
                       fwd: &mut ClockMap,
                       rev: &mut ClockMap,
                       unify_clock: &mut ClockUnifier| {
        ga.len() == gb.len()
            && ga.iter().zip(gb).all(|(x, y)| {
                x.rel == y.rel && x.ticks == y.ticks && unify_clock(x.clock, y.clock, fwd, rev)
            })
    };
    let same_sync = |sa: &Sync, sb: &Sync| match (sa, sb) {
        (Sync::None, Sync::None) => true,
        (Sync::External(ra), Sync::External(rb))
        | (Sync::Reliable(ra), Sync::Reliable(rb))
        | (Sync::Lossy(ra), Sync::Lossy(rb)) => ra == rb,
        _ => false,
    };
    for (la, lb) in aa.locations.iter().zip(&ab.locations) {
        let (la, lb): (&TaLocation, &TaLocation) = (la, lb);
        if la.frozen != lb.frozen
            || la.risky != lb.risky
            || !unify_atoms(
                &la.invariant,
                &lb.invariant,
                &mut fwd,
                &mut rev,
                &mut unify_clock,
            )
        {
            return None;
        }
    }
    for (ea, eb) in aa.edges.iter().zip(&ab.edges) {
        let (ea, eb): (&TaEdge, &TaEdge) = (ea, eb);
        if ea.src != eb.src
            || ea.dst != eb.dst
            || ea.urgent != eb.urgent
            || !same_sync(&ea.sync, &eb.sync)
            || ea.emits != eb.emits
            || ea.resets.len() != eb.resets.len()
            || !unify_atoms(&ea.guard, &eb.guard, &mut fwd, &mut rev, &mut unify_clock)
        {
            return None;
        }
        for (&(ca, va), &(cb, vb)) in ea.resets.iter().zip(&eb.resets) {
            if va != vb || !unify_clock(ca, cb, &mut fwd, &mut rev) {
                return None;
            }
        }
    }
    Some(pairs)
}

/// Detects the device-permutation symmetry of `net` (see the module
/// docs for exactly what qualifies). Networks with no interchangeable
/// pair — including every `LeaseConfig::chain(n)`, whose participants
/// carry pairwise-distinct timing constants — return a trivial
/// [`Symmetry`], and the engine's quotient auto-disables.
pub fn detect(net: &TaNetwork) -> Symmetry {
    let owned = clock_owners(net);
    let mut grouped = vec![false; net.automata.len()];
    let mut groups = Vec::new();
    for anchor in 0..net.automata.len() {
        if grouped[anchor] {
            continue;
        }
        let mut members = vec![anchor];
        let mut member_pairs: Vec<Vec<(usize, usize)>> = Vec::new();
        for b in (anchor + 1..net.automata.len()).filter(|&b| !grouped[b]) {
            if let Some(pairs) = unify(net, anchor, b, &owned) {
                members.push(b);
                member_pairs.push(pairs);
            }
        }
        if members.len() < 2 {
            continue;
        }
        // Anchor clock order is the first-reference order of the first
        // successful unification (all unifications walk the anchor
        // identically, so the orders agree); an automaton with no owned
        // clocks yields empty lists, which is fine.
        let anchor_clocks: Vec<usize> = member_pairs[0].iter().map(|&(ca, _)| ca).collect();
        let mut clocks = vec![anchor_clocks.clone()];
        for pairs in &member_pairs {
            let map: HashMap<usize, usize> = pairs.iter().copied().collect();
            clocks.push(anchor_clocks.iter().map(|ca| map[ca]).collect());
        }
        for &m in &members {
            grouped[m] = true;
        }
        groups.push(SymGroup { members, clocks });
    }
    Symmetry { groups }
}

/// A deliberately symmetric demo network: a coordinator that broadcasts
/// a lossy `tick` every 2 ticks to `devices` **identical** worker
/// devices, each cycling `Ready → Busy → Cooling → Ready` on its own
/// clock. Every device pair unifies, so [`detect`] reports one group of
/// order `devices!` — the fixture behind the symmetry benches and
/// tests, and the honest counterpart to the chains (which are
/// asymmetric by construction and auto-disable the quotient).
pub fn demo_fleet(devices: usize) -> TaNetwork {
    use crate::ta::{Atom, Rel};
    assert!(devices >= 1, "a fleet needs at least one device");
    let tick = Root::new("evt_fleet_tick");
    let mut clocks = vec!["coord".to_string()];
    clocks.extend((0..devices).map(|i| format!("dev{i}")));
    let atom = |clock: usize, rel: Rel, ticks: i64| Atom { clock, rel, ticks };
    let loc = |name: &str, invariant: Vec<Atom>| TaLocation {
        name: name.to_string(),
        invariant,
        frozen: false,
        risky: false,
    };
    let coordinator = TaAutomaton {
        name: "coordinator".to_string(),
        locations: vec![loc("Pace", vec![atom(1, Rel::Le, 2)])],
        edges: vec![TaEdge {
            src: 0,
            dst: 0,
            guard: vec![atom(1, Rel::Ge, 2)],
            resets: vec![(1, 0)],
            sync: Sync::None,
            emits: vec![tick.clone()],
            urgent: false,
        }],
        initial: 0,
    };
    let mut automata = vec![coordinator];
    for i in 0..devices {
        let d = 2 + i; // 1-based clock index of this device's clock
        automata.push(TaAutomaton {
            name: format!("device{i}"),
            locations: vec![
                loc("Ready", vec![]),
                loc("Busy", vec![atom(d, Rel::Le, 3)]),
                loc("Cooling", vec![atom(d, Rel::Le, 2)]),
            ],
            edges: vec![
                TaEdge {
                    src: 0,
                    dst: 1,
                    guard: vec![],
                    resets: vec![(d, 0)],
                    sync: Sync::Lossy(tick.clone()),
                    emits: vec![],
                    urgent: false,
                },
                TaEdge {
                    src: 1,
                    dst: 2,
                    guard: vec![atom(d, Rel::Ge, 1)],
                    resets: vec![(d, 0)],
                    sync: Sync::None,
                    emits: vec![],
                    urgent: false,
                },
                TaEdge {
                    src: 2,
                    dst: 0,
                    guard: vec![atom(d, Rel::Ge, 2)],
                    resets: vec![(d, 0)],
                    sync: Sync::None,
                    emits: vec![],
                    urgent: false,
                },
            ],
            initial: 0,
        });
    }
    TaNetwork { clocks, automata }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ta::{Atom, Rel};

    #[test]
    fn fleet_detects_one_group_of_all_devices() {
        let net = demo_fleet(4);
        let sym = detect(&net);
        assert_eq!(sym.groups.len(), 1);
        let g = &sym.groups[0];
        // Automaton 0 is the coordinator; devices are 1..=4.
        assert_eq!(g.members, vec![1, 2, 3, 4]);
        // Each device owns exactly its own clock (1-based indices 2..=5).
        assert_eq!(g.clocks, vec![vec![2], vec![3], vec![4], vec![5]]);
        assert_eq!(sym.order(), 24.0);
    }

    #[test]
    fn single_device_fleet_is_trivial() {
        assert!(detect(&demo_fleet(1)).is_trivial());
    }

    #[test]
    fn heterogeneous_timing_breaks_symmetry() {
        // Same fleet, but device 1 runs with a longer Busy budget: its
        // tick constant differs, so it must drop out of the group while
        // the two still-identical devices keep quotienting each other.
        let mut net = demo_fleet(3);
        net.automata[2].locations[1].invariant[0].ticks = 7;
        let sym = detect(&net);
        assert_eq!(sym.groups.len(), 1);
        assert_eq!(sym.groups[0].members, vec![1, 3]);
        // A two-device fleet with one slowed device has no pair left.
        let mut pair = demo_fleet(2);
        pair.automata[2].locations[1].invariant[0].ticks = 7;
        assert!(detect(&pair).is_trivial());
    }

    #[test]
    fn private_events_break_symmetry() {
        // Give device 0 a private event emission: roots must be fixed
        // pointwise, so it drops out of the group.
        let mut net = demo_fleet(3);
        net.automata[1].edges[1]
            .emits
            .push(Root::new("evt_dev0_private"));
        let sym = detect(&net);
        assert_eq!(sym.groups.len(), 1);
        assert_eq!(sym.groups[0].members, vec![2, 3]);
    }

    #[test]
    fn lease_chains_are_asymmetric() {
        // The honest headline: chain participants carry pairwise
        // distinct constants (c6 forces strictly decreasing nested
        // budgets), so the quotient auto-disables on every chain.
        let cfg = pte_core::pattern::LeaseConfig::chain(4);
        let sys = pte_core::pattern::build_pattern_system(&cfg, true).expect("chain builds");
        let net = crate::lower::lower_network(&sys.automata).expect("chain lowers");
        assert!(detect(&net).is_trivial());
    }

    #[test]
    fn canonicalize_is_idempotent_and_sorts_locations() {
        let net = demo_fleet(3);
        let sym = detect(&net);
        let nclocks = net.clock_count();
        // Devices at locations (Busy, Ready, Cooling) with distinct
        // clock values; canonical form must sort by location index.
        let mut locs = vec![0u32, 1, 0, 2];
        let mut zone = Dbm::zero(nclocks);
        zone.up();
        // dev0 (clock 2) ≤ 3, dev1 (clock 3) free, dev2 (clock 4) ≤ 2.
        assert!(Atom {
            clock: 2,
            rel: Rel::Le,
            ticks: 3
        }
        .apply_and_close(&mut zone));
        assert!(Atom {
            clock: 4,
            rel: Rel::Le,
            ticks: 2
        }
        .apply_and_close(&mut zone));
        let canon = sym.canonicalize(&mut locs, &zone).expect("state moves");
        assert_eq!(locs, vec![0, 0, 1, 2]);
        // Idempotent: canonicalizing the canonical state is a no-op.
        let mut locs2 = locs.clone();
        assert!(sym.canonicalize(&mut locs2, &canon).is_none());
        assert_eq!(locs2, locs);
    }

    #[test]
    fn canonicalize_identifies_orbit_members() {
        // Two states that differ only by swapping devices 0 and 2 must
        // canonicalize to the same representative.
        let net = demo_fleet(3);
        let sym = detect(&net);
        let nclocks = net.clock_count();
        let mk = |busy_dev: usize| {
            let mut locs = vec![0u32; 4];
            locs[1 + busy_dev] = 1;
            let mut zone = Dbm::zero(nclocks);
            zone.up();
            let c = 2 + busy_dev;
            assert!(Atom {
                clock: c,
                rel: Rel::Le,
                ticks: 3
            }
            .apply_and_close(&mut zone));
            (locs, zone)
        };
        let (mut la, za) = mk(0);
        let (mut lb, zb) = mk(2);
        let ca = sym.canonicalize(&mut la, &za).unwrap_or(za);
        let cb = sym.canonicalize(&mut lb, &zb).unwrap_or(zb);
        assert_eq!(la, lb);
        assert_eq!(ca, cb);
    }
}
