//! Zone-graph reachability with an embedded PTE observer.
//!
//! The engine explores the product of a [`TaNetwork`] symbolically:
//! a state is a location vector plus a zone (DBM) over every clock, and
//! the passed/waiting-list algorithm with zone inclusion and maximal-
//! constant extrapolation guarantees termination. Every drop/deliver
//! assignment of every wireless emission and every real-valued timing is
//! covered — the dense-time completion of `pte-verify`'s bounded
//! `2^k` exhaustive exploration.
//!
//! PTE checking is built in as a deterministic observer rather than a
//! monitor automaton: per entity a clock `r_i` tracks time since the
//! current risky dwelling began (Rule 1), and per adjacent pair a state
//! machine (`Idle / OuterOnly / Embedded / InnerExited`) plus a clock
//! `s_k` (time since the inner entity left risky) check proper temporal
//! embedding — coverage, the `T^min_risky` enter lead, and the
//! `T^min_safe` exit lag — exactly mirroring `pte_core::monitor`.

use crate::dbm::Dbm;
use crate::ta::{Atom, Rel, Sync, TaNetwork};
use pte_core::rules::PteSpec;
use pte_hybrid::Root;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Integer-tick form of the PTE specification the observer enforces.
#[derive(Clone, Debug)]
pub struct ObserverSpec {
    /// Entity names, outermost first (must name automata in the network).
    pub entities: Vec<String>,
    /// Rule-1 bound per entity, in ticks.
    pub rule1_ticks: Vec<i64>,
    /// Safeguard bounds per adjacent pair (`pairs[k]` relates outer
    /// entity `k` and inner entity `k + 1`).
    pub pairs: Vec<PairBounds>,
}

/// Safeguard intervals of one adjacent pair, in ticks.
#[derive(Clone, Copy, Debug)]
pub struct PairBounds {
    /// `T^min_risky`: minimum enter lead of the outer entity.
    pub t_min_risky: i64,
    /// `T^min_safe`: minimum exit lag of the outer entity.
    pub t_min_safe: i64,
}

impl ObserverSpec {
    /// Converts a [`PteSpec`] into tick units.
    pub fn from_spec(spec: &PteSpec) -> ObserverSpec {
        ObserverSpec {
            entities: spec.entities.clone(),
            rule1_ticks: spec
                .rule1_bounds
                .iter()
                .map(|t| crate::to_ticks(t.as_secs_f64()))
                .collect(),
            pairs: spec
                .pairs
                .iter()
                .map(|p| PairBounds {
                    t_min_risky: crate::to_ticks(p.t_min_risky.as_secs_f64()),
                    t_min_safe: crate::to_ticks(p.t_min_safe.as_secs_f64()),
                })
                .collect(),
        }
    }
}

/// Which PTE rule a symbolic counter-example violates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Rule 1: entity `entity` can dwell risky beyond its bound.
    Rule1 {
        /// Index into [`ObserverSpec::entities`].
        entity: usize,
    },
    /// Rule 2/3 coverage: the inner entity of `pair` is risky while its
    /// outer entity is not.
    Coverage {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The inner entity can enter risky less than `T^min_risky` after
    /// the outer entity did.
    EnterMargin {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The outer entity can leave risky while the inner entity is still
    /// risky.
    ExitUncovered {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The outer entity can leave risky less than `T^min_safe` after the
    /// inner entity did.
    ExitLag {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Rule1 { entity } => {
                write!(f, "rule 1 dwelling bound exceedable (entity #{entity})")
            }
            ViolationKind::Coverage { pair } => {
                write!(f, "inner risky while outer safe (pair #{pair})")
            }
            ViolationKind::EnterMargin { pair } => {
                write!(f, "enter lead below T^min_risky (pair #{pair})")
            }
            ViolationKind::ExitUncovered { pair } => {
                write!(f, "outer exits risky before inner (pair #{pair})")
            }
            ViolationKind::ExitLag { pair } => {
                write!(f, "exit lag below T^min_safe (pair #{pair})")
            }
        }
    }
}

/// A symbolic counter-example: an interleaving of discrete actions
/// (with explicit drop/deliver fates) whose zone contains at least one
/// violating real-valued timing.
#[derive(Clone, Debug)]
pub struct SymbolicCounterExample {
    /// The violated rule.
    pub kind: ViolationKind,
    /// Discrete actions from the initial state to the violation, one
    /// line per settled step.
    pub steps: Vec<String>,
    /// Rendered zone constraints at the violation point (ticks).
    pub zone: String,
}

impl fmt::Display for SymbolicCounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "symbolic PTE violation: {}", self.kind)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {s}", i + 1)?;
        }
        write!(f, "  zone: {}", self.zone)
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Settled symbolic states stored.
    pub states: usize,
    /// Discrete transitions fired (including cascade branches).
    pub transitions: usize,
    /// Successor states subsumed by an already-passed zone.
    pub subsumed: usize,
}

/// Outcome of a symbolic reachability check.
#[derive(Clone, Debug)]
pub enum SymbolicVerdict {
    /// No PTE violation is reachable for any loss fate or timing.
    Safe(SearchStats),
    /// A violation is reachable; the witness explains how.
    Unsafe(Box<SymbolicCounterExample>),
    /// The state budget was exhausted before the search finished.
    OutOfBudget(SearchStats),
}

impl SymbolicVerdict {
    /// `true` if the verdict proves safety.
    pub fn is_safe(&self) -> bool {
        matches!(self, SymbolicVerdict::Safe(_))
    }

    /// `true` if a violation was found.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, SymbolicVerdict::Unsafe(_))
    }
}

impl fmt::Display for SymbolicVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicVerdict::Safe(s) => write!(
                f,
                "PTE-unreachable: safe over all timings and loss fates \
                 ({} states, {} transitions)",
                s.states, s.transitions
            ),
            SymbolicVerdict::Unsafe(ce) => write!(f, "{ce}"),
            SymbolicVerdict::OutOfBudget(s) => write!(
                f,
                "inconclusive: state budget exhausted ({} states)",
                s.states
            ),
        }
    }
}

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum number of settled symbolic states.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 200_000,
        }
    }
}

/// Per-pair observer state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum PairState {
    /// Both entities safe.
    Idle,
    /// Outer risky, inner has not entered this round.
    OuterOnly,
    /// Both risky (proper embedding in progress).
    Embedded,
    /// Inner exited, outer still risky (lag phase).
    InnerExited,
}

type Key = (Vec<u32>, Vec<PairState>);

struct Node {
    key: Key,
    zone: Dbm,
    parent: Option<usize>,
    action: String,
}

/// In-flight resolution work: a state mid-cascade (pending emissions not
/// yet assigned a fate) with the actions taken so far this step.
#[derive(Clone)]
struct Work {
    locs: Vec<u32>,
    pairs: Vec<PairState>,
    zone: Dbm,
    /// In-flight emissions: `(sender automaton, root)` — the sender is
    /// excluded from delivery (the executor never self-delivers).
    queue: VecDeque<(usize, Root)>,
    actions: Vec<String>,
}

struct Violation {
    kind: ViolationKind,
    actions: Vec<String>,
    zone: Dbm,
}

/// Maximum zero-time cascade depth (urgent chains + deliveries) before
/// the engine settles a state as-is; prevents pathological recursion on
/// malformed inputs.
const CASCADE_DEPTH: usize = 128;

struct Engine<'s> {
    net: TaNetwork,
    spec: &'s ObserverSpec,
    /// entity index -> automaton index.
    entity_aut: Vec<usize>,
    /// automaton index -> entity index.
    aut_entity: Vec<Option<usize>>,
    /// entity index -> DBM index of its risky-dwell clock `r_i`.
    r_clock: Vec<usize>,
    /// pair index -> DBM index of its inner-exit clock `s_k`.
    s_clock: Vec<usize>,
    kmax: Vec<i64>,
    nodes: Vec<Node>,
    passed: HashMap<Key, Vec<usize>>,
    waiting: VecDeque<usize>,
    stats: SearchStats,
}

/// Runs the symbolic PTE check of `spec` over `net`.
///
/// Returns an error if a spec entity names no automaton in the network.
pub fn check(
    net: &TaNetwork,
    spec: &ObserverSpec,
    limits: &Limits,
) -> Result<SymbolicVerdict, String> {
    let mut net = net.clone();
    let mut entity_aut = Vec::with_capacity(spec.entities.len());
    let mut aut_entity = vec![None; net.automata.len()];
    for (ei, name) in spec.entities.iter().enumerate() {
        let ai = net
            .automaton_by_name(name)
            .ok_or_else(|| format!("spec entity `{name}` not found in network"))?;
        entity_aut.push(ai);
        aut_entity[ai] = Some(ei);
    }
    let r_clock: Vec<usize> = spec
        .entities
        .iter()
        .map(|name| net.add_clock(format!("r[{name}]")))
        .collect();
    let s_clock: Vec<usize> = (0..spec.pairs.len())
        .map(|k| net.add_clock(format!("s[pair{k}]")))
        .collect();

    // Maximal constants: network constants plus the observer's bounds.
    let mut kmax = net.max_constants();
    for (ei, &c) in r_clock.iter().enumerate() {
        let mut k = spec.rule1_ticks[ei];
        if ei < spec.pairs.len() {
            k = k.max(spec.pairs[ei].t_min_risky);
        }
        kmax[c] = k;
    }
    for (pk, &c) in s_clock.iter().enumerate() {
        kmax[c] = spec.pairs[pk].t_min_safe;
    }

    let mut engine = Engine {
        net,
        spec,
        entity_aut,
        aut_entity,
        r_clock,
        s_clock,
        kmax,
        nodes: Vec::new(),
        passed: HashMap::new(),
        waiting: VecDeque::new(),
        stats: SearchStats::default(),
    };
    Ok(engine.run(limits))
}

impl Engine<'_> {
    fn run(&mut self, limits: &Limits) -> SymbolicVerdict {
        // Initial state: every automaton in its initial location, every
        // clock zero, all pairs idle.
        let init = Work {
            locs: self.net.automata.iter().map(|a| a.initial as u32).collect(),
            pairs: vec![PairState::Idle; self.spec.pairs.len()],
            zone: Dbm::zero(self.net.clock_count()),
            queue: VecDeque::new(),
            actions: vec!["initial state".to_string()],
        };
        let mut settled = Vec::new();
        if let Err(v) = self.resolve(init, 0, &mut settled) {
            return SymbolicVerdict::Unsafe(Box::new(self.render_ce(None, v)));
        }
        for w in settled {
            if let Err(v) = self.admit(w, None) {
                return SymbolicVerdict::Unsafe(Box::new(self.render_ce(None, v)));
            }
        }

        while let Some(idx) = self.waiting.pop_front() {
            if self.nodes.len() > limits.max_states {
                return SymbolicVerdict::OutOfBudget(self.stats);
            }
            let (locs, pairs) = self.nodes[idx].key.clone();
            let zone = self.nodes[idx].zone.clone();
            for ai in 0..self.net.automata.len() {
                let loc = locs[ai] as usize;
                let edge_ids: Vec<usize> = self.net.automata[ai]
                    .edges_from(loc)
                    .filter(|(_, e)| matches!(e.sync, Sync::None | Sync::External(_)))
                    .map(|(i, _)| i)
                    .collect();
                for eid in edge_ids {
                    let w = Work {
                        locs: locs.clone(),
                        pairs: pairs.clone(),
                        zone: zone.clone(),
                        queue: VecDeque::new(),
                        actions: Vec::new(),
                    };
                    let fired = match self.apply_edge(w, ai, eid) {
                        Ok(Some(w2)) => w2,
                        Ok(None) => continue,
                        Err(v) => {
                            return SymbolicVerdict::Unsafe(Box::new(self.render_ce(Some(idx), v)))
                        }
                    };
                    let mut settled = Vec::new();
                    if let Err(v) = self.resolve(fired, 0, &mut settled) {
                        return SymbolicVerdict::Unsafe(Box::new(self.render_ce(Some(idx), v)));
                    }
                    for s in settled {
                        if let Err(v) = self.admit(s, Some(idx)) {
                            return SymbolicVerdict::Unsafe(Box::new(self.render_ce(Some(idx), v)));
                        }
                    }
                }
            }
        }
        SymbolicVerdict::Safe(self.stats)
    }

    /// Fires edge `eid` of automaton `ai` on `w`: guard restriction, PTE
    /// observer transition checks, resets, location move, emission
    /// enqueue. `Ok(None)` when the guard is unsatisfiable.
    fn apply_edge(
        &mut self,
        mut w: Work,
        ai: usize,
        eid: usize,
    ) -> Result<Option<Work>, Violation> {
        let mut zone = w.zone.clone();
        {
            // Scoped borrow: keep the hot path allocation-free.
            let edge = &self.net.automata[ai].edges[eid];
            for atom in &edge.guard {
                atom.apply(&mut zone);
            }
        }
        zone.canonicalize();
        if zone.is_empty() {
            return Ok(None);
        }
        self.stats.transitions += 1;

        let edge = &self.net.automata[ai].edges[eid];
        let src_risky = self.net.automata[ai].locations[edge.src].risky;
        let dst_risky = self.net.automata[ai].locations[edge.dst].risky;
        let desc = format!(
            "{}: {} -> {}{}",
            self.net.automata[ai].name,
            self.net.automata[ai].locations[edge.src].name,
            self.net.automata[ai].locations[edge.dst].name,
            match &edge.sync {
                Sync::External(r) => format!(" (on {})", r.as_str()),
                Sync::Reliable(r) | Sync::Lossy(r) => format!(" (recv {})", r.as_str()),
                Sync::None => String::new(),
            }
        );
        w.actions.push(desc);

        // PTE observer: transitions across the risky boundary.
        if let Some(ei) = self.aut_entity[ai] {
            if !src_risky && dst_risky {
                self.observe_enter(ei, &mut w, &mut zone)?;
            } else if src_risky && !dst_risky {
                self.observe_exit(ei, &mut w, &mut zone)?;
            }
        }

        for (clock, v) in &edge.resets {
            zone.reset(*clock, *v);
        }
        w.locs[ai] = edge.dst as u32;
        for root in &edge.emits {
            w.queue.push_back((ai, root.clone()));
        }
        w.zone = zone;
        Ok(Some(w))
    }

    /// Entity `ei` enters risky: coverage + enter-lead checks, pair state
    /// updates, `r` clock reset.
    fn observe_enter(&self, ei: usize, w: &mut Work, zone: &mut Dbm) -> Result<(), Violation> {
        // Pairs where `ei` is the inner entity.
        if ei >= 1 && ei - 1 < self.spec.pairs.len() {
            let pk = ei - 1;
            let outer_loc = w.locs[self.entity_aut[pk]] as usize;
            let outer_risky = self.net.automata[self.entity_aut[pk]].locations[outer_loc].risky;
            if !outer_risky {
                return Err(Violation {
                    kind: ViolationKind::Coverage { pair: pk },
                    actions: w.actions.clone(),
                    zone: zone.clone(),
                });
            }
            let lead_short = Atom {
                clock: self.r_clock[pk],
                rel: Rel::Lt,
                ticks: self.spec.pairs[pk].t_min_risky,
            };
            if lead_short.satisfiable_in(zone) {
                let mut witness = zone.clone();
                lead_short.apply(&mut witness);
                witness.canonicalize();
                return Err(Violation {
                    kind: ViolationKind::EnterMargin { pair: pk },
                    actions: w.actions.clone(),
                    zone: witness,
                });
            }
            w.pairs[pk] = PairState::Embedded;
        }
        // Pairs where `ei` is the outer entity.
        if ei < self.spec.pairs.len() && w.pairs[ei] == PairState::Idle {
            w.pairs[ei] = PairState::OuterOnly;
        }
        zone.reset(self.r_clock[ei], 0);
        Ok(())
    }

    /// Entity `ei` leaves risky: exit-lag checks, pair state updates,
    /// `s` clock reset.
    fn observe_exit(&self, ei: usize, w: &mut Work, zone: &mut Dbm) -> Result<(), Violation> {
        // Pairs where `ei` is the inner entity: start the lag phase.
        if ei >= 1 && ei - 1 < self.spec.pairs.len() {
            let pk = ei - 1;
            if w.pairs[pk] == PairState::Embedded {
                w.pairs[pk] = PairState::InnerExited;
                zone.reset(self.s_clock[pk], 0);
            }
        }
        // Pairs where `ei` is the outer entity.
        if ei < self.spec.pairs.len() {
            match w.pairs[ei] {
                PairState::Embedded => {
                    return Err(Violation {
                        kind: ViolationKind::ExitUncovered { pair: ei },
                        actions: w.actions.clone(),
                        zone: zone.clone(),
                    });
                }
                PairState::InnerExited => {
                    let lag_short = Atom {
                        clock: self.s_clock[ei],
                        rel: Rel::Lt,
                        ticks: self.spec.pairs[ei].t_min_safe,
                    };
                    if lag_short.satisfiable_in(zone) {
                        let mut witness = zone.clone();
                        lag_short.apply(&mut witness);
                        witness.canonicalize();
                        return Err(Violation {
                            kind: ViolationKind::ExitLag { pair: ei },
                            actions: w.actions.clone(),
                            zone: witness,
                        });
                    }
                    w.pairs[ei] = PairState::Idle;
                }
                PairState::OuterOnly | PairState::Idle => {
                    w.pairs[ei] = PairState::Idle;
                }
            }
        }
        Ok(())
    }

    /// Assigns a delivery fate to receiver `idx` of an in-flight event
    /// and recurses over the remaining receivers (in automaton order,
    /// matching the executor's broadcast order), producing the full
    /// cartesian product of per-receiver fates:
    ///
    /// * every enabled receiving edge is a *delivered* branch;
    /// * a **lossy** receiver can always *drop* instead;
    /// * a **reliable** receiver only ignores the event where no edge of
    ///   its is enabled — exact via guard-atom negation for a single
    ///   guarded edge, conservatively over-approximated (full-zone
    ///   ignore, which can only add behaviours, never hide one) when
    ///   several guarded edges compete.
    fn deliver_fates(
        &mut self,
        w: Work,
        root: &Root,
        receivers: &[(usize, Vec<(usize, bool)>)],
        idx: usize,
        depth: usize,
        out: &mut Vec<Work>,
    ) -> Result<(), Violation> {
        if idx == receivers.len() {
            return self.resolve(w, depth + 1, out);
        }
        let (ai, edges) = &receivers[idx];
        let mut any_delivered = false;
        for (eid, _) in edges {
            let mut branch = w.clone();
            branch.actions.push(format!(
                "deliver {} to {}",
                root.as_str(),
                self.net.automata[*ai].name
            ));
            if let Some(w2) = self.apply_edge(branch, *ai, *eid)? {
                any_delivered = true;
                self.deliver_fates(w2, root, receivers, idx + 1, depth, out)?;
            }
        }
        // Any lossy receiving edge means the wireless hop itself can drop
        // the message (also the conservative fate when an automaton mixes
        // lossy and reliable edges on one root, which the pattern never
        // does); a purely reliable receiver only misses the event where
        // none of its edges is enabled.
        let any_lossy = edges.iter().any(|(_, lossy)| *lossy);
        if any_lossy || !any_delivered {
            // Drop (lossy) or discard (reliable but nowhere enabled).
            let mut branch = w.clone();
            branch.actions.push(format!(
                "{} lost/ignored by {}",
                root.as_str(),
                self.net.automata[*ai].name
            ));
            self.deliver_fates(branch, root, receivers, idx + 1, depth, out)?;
        } else {
            // Reliable and at least one edge delivered somewhere in the
            // zone: the event is still ignored on the sub-zone where no
            // edge is enabled.
            let guarded: Vec<usize> = edges
                .iter()
                .filter(|(eid, _)| !self.net.automata[*ai].edges[*eid].guard.is_empty())
                .map(|(eid, _)| *eid)
                .collect();
            let unguarded_exists = edges.len() > guarded.len();
            if !unguarded_exists && guarded.len() == 1 {
                // Exact complement: one guarded edge, branch per negated
                // guard atom.
                let atoms = self.net.automata[*ai].edges[guarded[0]].guard.clone();
                for atom in atoms {
                    let mut branch = w.clone();
                    atom.negated().apply(&mut branch.zone);
                    branch.zone.canonicalize();
                    if branch.zone.is_empty() {
                        continue;
                    }
                    branch.actions.push(format!(
                        "{} ignored by {} (guard off)",
                        root.as_str(),
                        self.net.automata[*ai].name
                    ));
                    self.deliver_fates(branch, root, receivers, idx + 1, depth, out)?;
                }
            } else if !unguarded_exists {
                // Several guarded reliable edges: over-approximate with a
                // full-zone ignore branch (sound for Safe verdicts).
                let mut branch = w.clone();
                branch.actions.push(format!(
                    "{} possibly ignored by {}",
                    root.as_str(),
                    self.net.automata[*ai].name
                ));
                self.deliver_fates(branch, root, receivers, idx + 1, depth, out)?;
            }
            // An unguarded reliable edge is always enabled: no ignore
            // fate exists.
        }
        Ok(())
    }

    /// Resolves pending emissions (branching on delivery fates) and
    /// invariant-expired sub-zones (firing urgent escapes), collecting
    /// fully settled states.
    fn resolve(&mut self, mut w: Work, depth: usize, out: &mut Vec<Work>) -> Result<(), Violation> {
        if depth > CASCADE_DEPTH {
            out.push(w);
            return Ok(());
        }
        if let Some((sender, root)) = w.queue.pop_front() {
            // Candidate receivers, grouped per automaton: the executor
            // broadcasts an emission to every listener except the sender
            // (`route_emission` skips `receiver == sender`), and each
            // listener's wireless delivery has its own drop fate.
            let mut receivers: Vec<(usize, Vec<(usize, bool)>)> = Vec::new(); // (aut, [(edge, lossy)])
            for ai in 0..self.net.automata.len() {
                if ai == sender {
                    continue;
                }
                let loc = w.locs[ai] as usize;
                let edges: Vec<(usize, bool)> = self.net.automata[ai]
                    .edges_from(loc)
                    .filter_map(|(eid, e)| match &e.sync {
                        Sync::Lossy(r) if *r == root => Some((eid, true)),
                        Sync::Reliable(r) if *r == root => Some((eid, false)),
                        _ => None,
                    })
                    .collect();
                if !edges.is_empty() {
                    receivers.push((ai, edges));
                }
            }
            return self.deliver_fates(w, &root, &receivers, 0, depth, out);
        }

        // No pending events: split on invariant satisfaction.
        let mut zin = w.zone.clone();
        let mut atoms: Vec<(usize, Atom)> = Vec::new();
        for (ai, aut) in self.net.automata.iter().enumerate() {
            for atom in &aut.locations[w.locs[ai] as usize].invariant {
                atom.apply(&mut zin);
                atoms.push((ai, *atom));
            }
        }
        zin.canonicalize();
        if !zin.is_empty() {
            let mut settled = w.clone();
            settled.zone = zin;
            out.push(settled);
        }
        // Sub-zones beyond some invariant must take an urgent escape now.
        for (ai, atom) in &atoms {
            let mut zout = w.zone.clone();
            atom.negated().apply(&mut zout);
            zout.canonicalize();
            if zout.is_empty() {
                continue;
            }
            let loc = w.locs[*ai] as usize;
            let urgent_ids: Vec<usize> = self.net.automata[*ai]
                .edges_from(loc)
                .filter(|(_, e)| e.urgent)
                .map(|(i, _)| i)
                .collect();
            for eid in urgent_ids {
                let mut branch = w.clone();
                branch.zone = zout.clone();
                branch
                    .actions
                    .push(format!("{} invariant expired", self.net.automata[*ai].name));
                if let Some(w2) = self.apply_edge(branch, *ai, eid)? {
                    self.resolve(w2, depth + 1, out)?;
                }
            }
        }
        Ok(())
    }

    /// Applies delay + extrapolation to a settled work item, runs the
    /// state-level PTE checks, and stores it unless subsumed.
    fn admit(&mut self, mut w: Work, parent: Option<usize>) -> Result<(), Violation> {
        // Delay: up-close within the conjunction of location invariants,
        // unless some occupied location freezes time.
        let frozen = w
            .locs
            .iter()
            .enumerate()
            .any(|(ai, &l)| self.net.automata[ai].locations[l as usize].frozen);
        if !frozen {
            w.zone.up();
            for (ai, aut) in self.net.automata.iter().enumerate() {
                for atom in &aut.locations[w.locs[ai] as usize].invariant {
                    atom.apply(&mut w.zone);
                }
            }
            w.zone.canonicalize();
            if w.zone.is_empty() {
                // Cannot happen for a zone that satisfied the invariants,
                // but guard against malformed inputs.
                return Ok(());
            }
        }
        // Observer-clock activity reduction: `r_i` is only ever read
        // while entity `i` is risky (it is reset on entry), and `s_k`
        // only in the pair's `InnerExited` lag phase (reset on entry) —
        // elsewhere they are dead, and freeing them collapses zones that
        // differ only in dead-clock history.
        for (ei, &ai) in self.entity_aut.iter().enumerate() {
            if !self.net.automata[ai].locations[w.locs[ai] as usize].risky {
                w.zone.free(self.r_clock[ei]);
            }
        }
        for pk in 0..self.spec.pairs.len() {
            if w.pairs[pk] != PairState::InnerExited {
                w.zone.free(self.s_clock[pk]);
            }
        }
        w.zone.extrapolate(&self.kmax);

        // State-level PTE checks on the delay-closed zone.
        for (ei, &ai) in self.entity_aut.iter().enumerate() {
            let risky = self.net.automata[ai].locations[w.locs[ai] as usize].risky;
            if !risky {
                continue;
            }
            let over = Atom {
                clock: self.r_clock[ei],
                rel: Rel::Gt,
                ticks: self.spec.rule1_ticks[ei],
            };
            if over.satisfiable_in(&w.zone) {
                let mut witness = w.zone.clone();
                over.apply(&mut witness);
                witness.canonicalize();
                let mut actions = w.actions.clone();
                actions.push(format!(
                    "dwell risky beyond the Rule-1 bound ({} ticks)",
                    self.spec.rule1_ticks[ei]
                ));
                return Err(Violation {
                    kind: ViolationKind::Rule1 { entity: ei },
                    actions,
                    zone: witness,
                });
            }
        }
        for pk in 0..self.spec.pairs.len() {
            let outer = self.entity_aut[pk];
            let inner = self.entity_aut[pk + 1];
            let outer_risky = self.net.automata[outer].locations[w.locs[outer] as usize].risky;
            let inner_risky = self.net.automata[inner].locations[w.locs[inner] as usize].risky;
            if inner_risky && !outer_risky {
                return Err(Violation {
                    kind: ViolationKind::Coverage { pair: pk },
                    actions: w.actions.clone(),
                    zone: w.zone.clone(),
                });
            }
        }

        let key: Key = (w.locs.clone(), w.pairs.clone());
        let bucket = self.passed.entry(key.clone()).or_default();
        for &ni in bucket.iter() {
            if self.nodes[ni].zone.includes(&w.zone) {
                self.stats.subsumed += 1;
                return Ok(());
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            key,
            zone: w.zone,
            parent,
            action: w.actions.join("; "),
        });
        bucket.push(idx);
        self.waiting.push_back(idx);
        self.stats.states = self.nodes.len();
        Ok(())
    }

    fn render_ce(&self, parent: Option<usize>, v: Violation) -> SymbolicCounterExample {
        let mut steps = Vec::new();
        let mut chain = Vec::new();
        let mut cursor = parent;
        while let Some(i) = cursor {
            chain.push(self.nodes[i].action.clone());
            cursor = self.nodes[i].parent;
        }
        chain.reverse();
        steps.extend(chain);
        steps.push(v.actions.join("; "));
        SymbolicCounterExample {
            kind: v.kind,
            steps,
            zone: v.zone.render(&self.net.clocks),
        }
    }
}
